"""Transient allocation mitigation (§3.1 (4)).

Constant-sized small arrays move to the stack; temporaries whose size only
depends on input parameters become persistent (allocated once at SDFG
initialization), nearly eliminating dynamic allocation overhead.
"""

from __future__ import annotations

from ...config import Config
from ...ir.data import AllocationLifetime, Scalar, StorageType, Stream
from ..base import Transformation

__all__ = ["TransientAllocationMitigation"]


class TransientAllocationMitigation(Transformation):
    @classmethod
    def matches(cls, sdfg, **options):
        limit = Config.get("optimizer.stack_array_limit")
        input_symbols = {s for s in sdfg.symbols}
        for name, desc in sdfg.arrays.items():
            if not desc.transient or isinstance(desc, (Scalar, Stream)):
                continue
            if desc.storage != StorageType.Default:
                continue
            size = desc.total_size()
            if size.is_constant:
                if size.evaluate({}) <= limit:
                    yield (name, desc, "stack")
                    continue
            shape_syms = {s.name for s in desc.free_symbols}
            if desc.lifetime != AllocationLifetime.Persistent \
                    and shape_syms <= input_symbols:
                yield (name, desc, "persistent")

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        _name, desc, action = match
        if action == "stack":
            desc.storage = StorageType.CPU_Stack
            desc.lifetime = AllocationLifetime.Persistent
        else:
            desc.lifetime = AllocationLifetime.Persistent
