"""WCR map tiling (§3.1 (3)).

Parallel maps with write-conflicts lower to atomic updates on accelerators.
Tiling lets each tile accumulate privately and commit once, drastically
reducing atomics.  The structural split (outer tile map + inner intra-tile
map) is captured by setting ``map.tile_sizes``; the device performance
models account one conflicting update *per tile* instead of per element,
and the ablation benchmark toggles this pass.
"""

from __future__ import annotations

from ...ir.nodes import MapEntry, MapExit
from ..base import Transformation

__all__ = ["TileWCRMaps", "MapTiling"]


def _has_wcr_output(state, entry: MapEntry) -> bool:
    exit_ = entry.exit_node
    for edge in state.in_edges(exit_):
        if not edge.memlet.is_empty() and edge.memlet.wcr is not None:
            return True
    return False


class TileWCRMaps(Transformation):
    """Mark WCR-producing maps as tiled (configurable tile size)."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            for node in state.nodes():
                if isinstance(node, MapEntry) and node.map.tile_sizes is None \
                        and _has_wcr_output(state, node):
                    yield (state, node)

    @classmethod
    def apply_match(cls, sdfg, match, tile_size: int = None, **options) -> None:
        from ...config import Config

        if tile_size is None:
            tile_size = Config.get("optimizer.tile_size")
        _state, entry = match
        entry.map.tile_sizes = tuple(tile_size for _ in entry.map.params)


class MapTiling(Transformation):
    """General map tiling (attribute form), applicable to any map."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            for node in state.nodes():
                if isinstance(node, MapEntry) and node.map.tile_sizes is None:
                    yield (state, node)

    @classmethod
    def apply_match(cls, sdfg, match, tile_size: int = 64, **options) -> None:
        _state, entry = match
        entry.map.tile_sizes = tuple(tile_size for _ in entry.map.params)
