"""Nested-SDFG inlining (§2.4: "inlining Nested SDFGs").

A nested SDFG whose inner graph collapsed to a single state (after its own
coarsening) is spliced into the parent state: inner transients are adopted
under fresh names, inner argument containers are rewritten to the outer
containers they are bound to, and boundary access nodes merge with the
outer endpoints.  This exposes the callee's dataflow to the parent's
fusion passes and to vectorized code generation.
"""

from __future__ import annotations

from typing import Dict

from ...ir.data import Scalar
from ...ir.nodes import AccessNode, NestedSDFG
from ...symbolic import Symbol
from ..base import Transformation

__all__ = ["InlineNestedSDFG"]


def _identity_symbol_mapping(node: NestedSDFG) -> bool:
    for inner_name, outer_expr in node.symbol_mapping.items():
        if isinstance(outer_expr, Symbol):
            if outer_expr.name != inner_name:
                return False
        elif isinstance(outer_expr, str):
            if outer_expr != inner_name:
                return False
        else:
            return False
    return True


class InlineNestedSDFG(Transformation):
    """Splice single-state nested SDFGs into their parent state."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.nodes():
                if not isinstance(node, NestedSDFG):
                    continue
                if scope.get(node) is not None:
                    continue  # nested inside a map scope: leave in place
                inner = node.sdfg
                if inner.number_of_states() != 1:
                    continue
                if not _identity_symbol_mapping(node):
                    continue
                # every boundary memlet must bind the whole container
                # (our frontend's construction); partial views stay nested
                ok = True
                for edge in (list(state.in_edges(node))
                             + list(state.out_edges(node))):
                    if edge.memlet.is_empty():
                        continue
                    conn = edge.dst_conn if edge.dst is node else edge.src_conn
                    if conn is None or conn not in inner.arrays:
                        ok = False
                        break
                    outer_desc = sdfg.arrays[edge.memlet.data]
                    inner_desc = inner.arrays[conn]
                    if isinstance(outer_desc, Scalar) != isinstance(inner_desc,
                                                                    Scalar):
                        ok = False
                        break
                    if not isinstance(outer_desc, Scalar) \
                            and tuple(map(str, outer_desc.shape)) \
                            != tuple(map(str, inner_desc.shape)):
                        ok = False
                        break
                if ok:
                    yield (state, node)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, node = match
        inner = node.sdfg
        inner_state = inner.states()[0]

        # container renaming: arguments -> bound outer containers,
        # transients -> fresh outer names
        rename: Dict[str, str] = {}
        outer_in: Dict[str, AccessNode] = {}
        outer_out: Dict[str, AccessNode] = {}
        for edge in state.in_edges(node):
            if edge.memlet.is_empty() or edge.dst_conn is None:
                continue
            rename[edge.dst_conn] = edge.memlet.data
            if isinstance(edge.src, AccessNode):
                outer_in[edge.dst_conn] = edge.src
        for edge in state.out_edges(node):
            if edge.memlet.is_empty() or edge.src_conn is None:
                continue
            rename[edge.src_conn] = edge.memlet.data
            if isinstance(edge.dst, AccessNode):
                outer_out[edge.src_conn] = edge.dst
        for name, desc in inner.arrays.items():
            if name in rename:
                continue
            fresh = sdfg.temp_data_name(f"__inl_{node.label}_")
            sdfg.add_datadesc(fresh, desc.clone())
            rename[name] = fresh
        for sym in inner.symbols:
            sdfg.add_symbol(sym)
        sdfg.constants.update(inner.constants)

        # splice nodes (renaming container references)
        for inner_node in inner_state.nodes():
            if isinstance(inner_node, AccessNode):
                inner_node.data = rename[inner_node.data]
                inner_node.label = inner_node.data
            state.add_node(inner_node)
        for edge in inner_state.edges():
            memlet = edge.memlet
            if not memlet.is_empty():
                memlet = memlet.clone()
                memlet.data = rename[memlet.data]
            state.add_edge(edge.src, edge.src_conn, edge.dst, edge.dst_conn,
                           memlet)

        # merge boundary access nodes with the outer endpoints: inner source
        # nodes of an input read from the outer source node; inner sink nodes
        # of an output redirect into the outer destination node
        moved = set(inner_state.nodes())
        for conn, outer_node in outer_in.items():
            outer_name = rename[conn]
            for inner_node in list(moved):
                if not isinstance(inner_node, AccessNode) \
                        or inner_node.data != outer_name:
                    continue
                if inner_state.in_degree(inner_node) == 0 \
                        and inner_node in state:
                    for e in state.out_edges(inner_node):
                        state.add_edge(outer_node, e.src_conn, e.dst,
                                       e.dst_conn, e.memlet)
                        state.remove_edge(e)
                    if state.in_degree(inner_node) == 0 \
                            and state.out_degree(inner_node) == 0:
                        state.remove_node(inner_node)
        for conn, outer_node in outer_out.items():
            outer_name = rename[conn]
            sinks = [n for n in moved
                     if isinstance(n, AccessNode) and n.data == outer_name
                     and n in state and inner_state.out_degree(n) == 0
                     and inner_state.in_degree(n) > 0]
            for sink in sinks:
                for e in state.in_edges(sink):
                    if e.src in moved or e.src is outer_node:
                        state.add_edge(e.src, e.src_conn, outer_node,
                                       e.dst_conn, e.memlet)
                        state.remove_edge(e)
                if state.in_degree(sink) == 0 and state.out_degree(sink) == 0:
                    state.remove_node(sink)

        # detach and remove the nested node
        for edge in (list(state.in_edges(node)) + list(state.out_edges(node))):
            state.remove_edge(edge)
        state.remove_node(node)
