"""State fusion (§2.4): merge consecutive states when no data race results.

The transformation matches two states connected by a single unconditional,
assignment-free edge where the predecessor has one successor and the
successor one predecessor.  Access nodes pointing to the same memory are
fused; otherwise ordering (dependency) edges are inserted, so
read-after-write and write-after-read hazards across the old state boundary
are preserved by graph structure.
"""

from __future__ import annotations

from typing import Dict, List

from ...ir.memlet import Memlet
from ...ir.nodes import AccessNode
from ..base import Transformation

__all__ = ["StateFusion"]


class StateFusion(Transformation):
    """Fuse state B into its unique predecessor A."""

    @classmethod
    def matches(cls, sdfg, **options):
        for edge in list(sdfg.edges()):
            first, second = edge.src, edge.dst
            if first is second:
                continue
            if not edge.data.is_unconditional() or edge.data.assignments:
                continue
            if len(sdfg.out_edges(first)) != 1:
                continue
            if len(sdfg.in_edges(second)) != 1:
                continue
            yield (first, second, edge)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        first, second, edge = match

        # topologically-last access node per container in the first state
        last_access: Dict[str, AccessNode] = {}
        order = list(first.topological_nodes())
        for node in order:
            if isinstance(node, AccessNode):
                last_access[node.data] = node

        # move nodes and edges of the second state into the first
        second_nodes = second.nodes()
        second_edges = second.edges()
        for node in second_nodes:
            first.add_node(node)
        for e in second_edges:
            first.add_edge(e.src, e.src_conn, e.dst, e.dst_conn, e.memlet)

        # merge or order access nodes of shared containers
        sources_in_second = [n for n in second_nodes
                             if isinstance(n, AccessNode)
                             and second.in_degree(n) == 0]
        for node in sources_in_second:
            anchor = last_access.get(node.data)
            if anchor is None:
                continue
            if anchor is node:
                continue
            # redirect the reads of the second state to the anchor
            for e in first.out_edges(node):
                first.add_edge(anchor, e.src_conn, e.dst, e.dst_conn, e.memlet)
                first.remove_edge(e)
            first.remove_node(node)

        # write-after-read / write-after-write ordering: computations of the
        # second state that write a shared container must run after the first
        # state's accesses of it.  Dependency edges must target the *writing
        # code node's scope root* (ordering the access node alone would not
        # delay the computation that performs the write).
        from ...ir.nodes import MapEntry, MapExit

        def writer_roots(access_node):
            roots = []
            for e in first.in_edges(access_node):
                producer = e.src
                if isinstance(producer, MapExit):
                    roots.append(producer.entry_node)
                else:
                    roots.append(producer)
            return roots

        moved = set(second_nodes)
        for node in second_nodes:
            if not isinstance(node, AccessNode) or node not in first:
                continue
            if first.in_degree(node) == 0:
                continue
            anchor = last_access.get(node.data)
            if anchor is None or anchor is node:
                continue
            # first-state consumers of the anchor (whole scopes must finish)
            consumers = []
            for e in first.out_edges(anchor):
                if e.dst in moved:
                    continue
                consumer = e.dst
                if isinstance(consumer, MapEntry):
                    consumer = consumer.exit_node
                consumers.append(consumer)
            for root in writer_roots(node):
                if root not in moved:
                    continue  # producer already lived in the first state
                for src in consumers + [anchor]:
                    if src is root or src in moved:
                        continue
                    if not first.edges_between(src, root):
                        first.add_nedge(src, root, Memlet.empty())

        # rewire interstate edges
        sdfg.remove_edge(edge)
        for e in sdfg.out_edges(second):
            sdfg.add_edge(first, e.dst, e.data)
            sdfg.remove_edge(e)
        # transfer loop metadata if present
        if hasattr(second, "loop_info") and not hasattr(first, "loop_info"):
            first.loop_info = second.loop_info  # type: ignore[attr-defined]
        _update_loop_refs(sdfg, second, first)
        sdfg.remove_state(second)


def _update_loop_refs(sdfg, old_state, new_state) -> None:
    """Keep loop_info metadata valid when a state is removed/merged."""
    for state in sdfg.states():
        info = getattr(state, "loop_info", None)
        if info is None:
            continue
        if info.get("body_first") is old_state:
            info["body_first"] = new_state
        if info.get("after") is old_state:
            info["after"] = new_state
