"""Dataflow transformations (coarsening pass + auto-optimization passes)."""

from .cleanup import (DeadDataflowElimination, DegenerateMapRemoval,
                      EmptyStateRemoval)
from .inline_nested import InlineNestedSDFG
from .loop_to_map import LoopToMap
from .map_collapse import MapCollapse
from .map_fusion import GreedySubgraphFusion
from .map_tiling import MapTiling, TileWCRMaps
from .redundant_copy import RedundantReadCopy, RedundantWriteCopy
from .state_fusion import StateFusion
from .transient_alloc import TransientAllocationMitigation

__all__ = [
    "StateFusion", "InlineNestedSDFG", "RedundantReadCopy", "RedundantWriteCopy",
    "EmptyStateRemoval", "DegenerateMapRemoval", "DeadDataflowElimination",
    "LoopToMap", "MapCollapse", "GreedySubgraphFusion",
    "TileWCRMaps", "MapTiling", "TransientAllocationMitigation",
]
