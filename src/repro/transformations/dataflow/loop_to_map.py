"""LoopToMap (§2.2): convert for-loops with independent iterations to maps.

Matches the guard/body/after state pattern produced by the frontend (the
frontend stashes ``loop_info`` metadata on guard states) where the body has
been coarsened to a single state.  Iteration independence is established
with symbolic affine analysis: for every container written in the body, the
subsets accessed at two distinct iteration values (``i`` and ``i + delta``
with ``delta > 0``) must be provably disjoint.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ...ir.data import Scalar
from ...ir.interstate import InterstateEdge
from ...ir.memlet import Memlet
from ...ir.nodes import AccessNode, MapEntry, MapExit, make_map_scope
from ...symbolic import Expr, Integer, Range, Symbol, sympify
from ..base import Transformation

__all__ = ["LoopToMap", "parse_symbolic_str"]


def parse_symbolic_str(text: str, sdfg) -> Optional[Expr]:
    """Parse an interstate expression string symbolically.

    Returns None when the expression references containers (data-dependent
    bounds) or uses non-affine constructs.
    """
    try:
        tree = ast.parse(text, mode="eval").body
    except SyntaxError:
        return None

    def convert(node) -> Optional[Expr]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) and not isinstance(node.value, bool):
                return Integer(node.value)
            return None
        if isinstance(node, ast.Name):
            if node.id in sdfg.arrays:
                return None  # data-dependent
            return Symbol(node.id, nonnegative=False)
        if isinstance(node, ast.BinOp):
            left = convert(node.left)
            right = convert(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = convert(node.operand)
            return -inner if inner is not None else None
        return None

    return convert(tree)


def _accessed_in_other_states(sdfg, name: str, state) -> bool:
    for st in sdfg.states():
        if st is state:
            continue
        for node in st.data_nodes():
            if node.data == name:
                return True
    return False


class LoopToMap(Transformation):
    """Turn a parallel for-loop (guard + single body state) into a map."""

    @classmethod
    def matches(cls, sdfg, **options):
        for guard in sdfg.states():
            info = getattr(guard, "loop_info", None)
            if info is None:
                continue
            match = cls._analyze(sdfg, guard, info)
            if match is not None:
                yield match

    @classmethod
    def _analyze(cls, sdfg, guard, info):
        ivar = info["ivar"]
        # structural validation: guard -> body (cond) and guard -> after
        out = sdfg.out_edges(guard)
        if len(out) != 2:
            return None
        body = info["body_first"]
        after = info["after"]
        if body not in sdfg.states() or after not in sdfg.states():
            return None
        body_out = sdfg.out_edges(body)
        if len(body_out) != 1 or body_out[0].dst is not guard:
            return None
        if ivar not in body_out[0].data.assignments:
            return None
        # single body state between guard and itself
        body_in = sdfg.in_edges(body)
        if len(body_in) != 1 or body_in[0].src is not guard:
            return None

        start = parse_symbolic_str(info["start"], sdfg)
        stop = parse_symbolic_str(info["stop"], sdfg)
        step = parse_symbolic_str(info["step"], sdfg)
        if start is None or stop is None or step is None:
            return None
        if not isinstance(step, Integer):
            return None  # require a constant step for the disjointness proof
        if info.get("cmp", "<") == "<":
            rng_dim = (start, stop - 1, step)
            if step.value <= 0:
                return None
        else:
            rng_dim = (start, stop + 1, step)
            if step.value >= 0:
                return None

        if not cls._iterations_independent(sdfg, body, ivar):
            return None
        return (guard, body, after, ivar, rng_dim)

    @classmethod
    def _iterations_independent(cls, sdfg, body, ivar: str) -> bool:
        reads: Dict[str, List[Range]] = {}
        writes: Dict[str, List[Range]] = {}

        def record(target, name, subset, dynamic):
            if dynamic or subset is None:
                target.setdefault(name, []).append(None)
            else:
                target.setdefault(name, []).append(subset)

        for edge in body.edges():
            memlet = edge.memlet
            if memlet.is_empty():
                continue
            if isinstance(edge.src, AccessNode) and isinstance(edge.dst, AccessNode):
                # copy edge: read of src, write of dst
                if memlet.data == edge.src.data:
                    record(reads, edge.src.data, memlet.subset, memlet.dynamic)
                    record(writes, edge.dst.data,
                           memlet.other_subset, memlet.dynamic)
                else:
                    record(reads, edge.src.data,
                           memlet.other_subset, memlet.dynamic)
                    record(writes, edge.dst.data, memlet.subset, memlet.dynamic)
                continue
            # outer (hull) edges at scope boundaries are imprecise; the
            # corresponding inner edges carry the exact per-point subsets
            if isinstance(edge.src, MapExit) and isinstance(edge.dst, AccessNode):
                continue
            if isinstance(edge.src, AccessNode) and isinstance(edge.dst, MapEntry):
                continue
            is_write = isinstance(edge.dst, AccessNode) or (
                isinstance(edge.dst, MapExit) and edge.dst_conn is not None
                and edge.dst_conn.startswith("IN_"))
            if is_write:
                record(writes, memlet.data, memlet.subset, memlet.dynamic)
            else:
                record(reads, memlet.data, memlet.subset, memlet.dynamic)

        # symbols that are stable across the two compared iterations: declared
        # SDFG symbols (sizes, outer loop variables).  Map parameters are
        # iteration-local and must be renamed independently on each side.
        stable = set(sdfg.symbols) | set(sdfg.arrays)
        alpha = Symbol("__lta", nonnegative=False)
        delta = Symbol("__ltd", positive=True)

        def side(subset: Range, offset, tag: str) -> Range:
            env = {ivar: alpha + offset}
            for sym in subset.free_symbols:
                if sym.name != ivar and sym.name not in stable:
                    env[sym.name] = Symbol(sym.name + tag, nonnegative=False)
            return subset.subs(env)

        for name, write_subsets in writes.items():
            desc = sdfg.arrays[name]
            # iteration-private transients (scratch space): no dependence
            if desc.transient and not _accessed_in_other_states(sdfg, name, body):
                continue
            if isinstance(desc, Scalar):
                return False  # scalar accumulation across iterations
            if any(w is None for w in write_subsets):
                return False  # dynamic writes are unanalyzable
            others = write_subsets + reads.get(name, [])
            if any(a is None for a in others):
                return False
            for w in write_subsets:
                if ivar not in {s.name for s in w.free_symbols}:
                    return False  # same cells written every iteration
                for a in others:
                    if side(w, Integer(0), "__L").intersects(
                            side(a, delta, "__R")) is not False:
                        return False
                    if side(w, delta, "__L").intersects(
                            side(a, Integer(0), "__R")) is not False:
                        return False
        return True

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        guard, body, after, ivar, rng_dim = match

        entry, exit_ = make_map_scope(f"loop_{ivar}", [ivar], Range([rng_dim]))
        body.add_node(entry)
        body.add_node(exit_)

        sources = [n for n in body.data_nodes() if body.in_degree(n) == 0
                   and body.out_degree(n) > 0]
        sinks = [n for n in body.data_nodes() if body.out_degree(n) == 0
                 and body.in_degree(n) > 0]

        for node in sources:
            desc = sdfg.arrays[node.data]
            in_conn = f"IN_{node.data}"
            out_conn = f"OUT_{node.data}"
            if in_conn not in entry.in_connectors:
                entry.add_in_connector(in_conn)
                entry.add_out_connector(out_conn)
                outer = (Memlet(node.data, Range.from_string("0"))
                         if isinstance(desc, Scalar)
                         else Memlet.from_array(node.data, desc))
                body.add_edge(node, None, entry, in_conn, outer)
            for edge in body.out_edges(node):
                if edge.dst is entry:
                    continue
                body.add_edge(entry, out_conn, edge.dst, edge.dst_conn, edge.memlet)
                body.remove_edge(edge)

        for node in sinks:
            desc = sdfg.arrays[node.data]
            in_conn = f"IN_{node.data}"
            out_conn = f"OUT_{node.data}"
            if out_conn not in exit_.out_connectors:
                exit_.add_in_connector(in_conn)
                exit_.add_out_connector(out_conn)
                outer = (Memlet(node.data, Range.from_string("0"))
                         if isinstance(desc, Scalar)
                         else Memlet.from_array(node.data, desc))
                body.add_edge(exit_, out_conn, node, None, outer)
            for edge in body.in_edges(node):
                if edge.src is exit_:
                    continue
                body.add_edge(edge.src, edge.src_conn, exit_, in_conn, edge.memlet)
                body.remove_edge(edge)

        # maps must have dataflow through them: degenerate case of an empty
        # body (nothing to do) is handled by connecting entry to exit
        if body.out_degree(entry) == 0:
            body.add_nedge(entry, exit_, Memlet.empty())

        # rewire control flow: predecessors of the guard go straight to the
        # (now-parallel) body; the body continues to the after-state
        for edge in sdfg.in_edges(guard):
            if edge.src is body:
                sdfg.remove_edge(edge)
                continue
            assignments = {k: v for k, v in edge.data.assignments.items()
                           if k != ivar}
            sdfg.add_edge(edge.src, body,
                          InterstateEdge(edge.data.condition, assignments))
            sdfg.remove_edge(edge)
        for edge in sdfg.out_edges(guard):
            sdfg.remove_edge(edge)
        sdfg.add_edge(body, after, InterstateEdge())
        if sdfg.start_state is guard:
            sdfg.start_state = body
        sdfg.remove_state(guard)
        if hasattr(body, "loop_info"):
            del body.loop_info
