"""Redundant copy removal (§2.4).

The -O0 frontend materializes every slice read and subset store through a
transient copy.  After state fusion these copies sit in the same state as
their consumers/producers and can be eliminated by *composing subsets*:

* :class:`RedundantReadCopy`: ``X --copy--> T`` where transient ``T`` is only
  read afterwards; every edge referencing ``T`` is rewritten to reference
  ``X`` through the composed subset and readers are rewired to the ``X``
  access node (view semantics, "native to the SDFG" per the paper).
* :class:`RedundantWriteCopy`: a computation writes transient ``T`` in full
  and ``T --copy--> Y[S]`` is its only use; the computation writes ``Y``
  directly through the composed subset.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...ir.data import Scalar, Stream
from ...ir.memlet import Memlet
from ...ir.nodes import AccessNode
from ...symbolic import Integer, Range, definitely_eq
from ..base import Transformation

__all__ = ["RedundantReadCopy", "RedundantWriteCopy", "compose_through_copy"]


def compose_through_copy(copy_subset: Range, inner_subset: Range) -> Optional[Range]:
    """Compose a ``T``-relative subset through the copy ``X[copy_subset] -> T``.

    ``T``'s dimensions correspond to the non-degenerate dimensions of
    ``copy_subset`` when ranks differ (integer-indexed dims were squeezed),
    or one-to-one when ranks match.  Returns None when undecidable.
    """
    if copy_subset.ndim == inner_subset.ndim:
        nondegenerate = [True] * copy_subset.ndim
    else:
        nondegenerate = [definitely_eq(b, e) is not True
                         for b, e, _ in copy_subset.dims]
        if sum(nondegenerate) != inner_subset.ndim:
            return None
    dims = []
    squeeze = []
    inner_iter = iter(inner_subset.dims)
    for axis, ((begin, _end, step), keep) in enumerate(
            zip(copy_subset.dims, nondegenerate)):
        if not keep:
            dims.append((begin, begin, Integer(1)))
            squeeze.append(axis)
            continue
        ib, ie, istep = next(inner_iter)
        dims.append((begin + ib * step, begin + ie * step, istep * step))
    return Range(dims), tuple(squeeze)


def _write_nodes(sdfg, name: str) -> List[Tuple]:
    """(state, access node) pairs where *name* is written."""
    out = []
    for st in sdfg.states():
        for node in st.data_nodes():
            if node.data == name and st.in_degree(node) > 0:
                out.append((st, node))
    return out


def _accessed_outside(sdfg, name: str, state) -> bool:
    for st in sdfg.states():
        if st is state:
            continue
        for node in st.data_nodes():
            if node.data == name:
                return True
    return False


def _delete_if_unused(sdfg, name: str) -> None:
    if not any(n.data == name for st in sdfg.states() for n in st.data_nodes()):
        if name in sdfg.arrays and sdfg.arrays[name].transient:
            del sdfg.arrays[name]


class RedundantReadCopy(Transformation):
    """Eliminate ``X -> T`` copies whose transient target is only read."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            for edge in state.edges():
                if not (isinstance(edge.src, AccessNode)
                        and isinstance(edge.dst, AccessNode)):
                    continue
                memlet = edge.memlet
                if memlet.is_empty() or memlet.wcr:
                    continue
                src_name, dst_name = edge.src.data, edge.dst.data
                if memlet.data != src_name or src_name == dst_name:
                    continue
                dst_desc = sdfg.arrays.get(dst_name)
                src_desc = sdfg.arrays.get(src_name)
                if dst_desc is None or not dst_desc.transient:
                    continue
                if dst_name.startswith("__return"):
                    continue  # return containers are observed by the caller
                if isinstance(dst_desc, Stream) or isinstance(src_desc, Stream):
                    continue
                # the copy must cover the whole destination
                if not isinstance(dst_desc, Scalar) and memlet.other_subset is not None:
                    if memlet.other_subset != Range.from_shape(dst_desc.shape):
                        continue
                writers = _write_nodes(sdfg, dst_name)
                if len(writers) != 1 or writers[0][1] is not edge.dst:
                    continue
                if _accessed_outside(sdfg, dst_name, state):
                    continue
                yield (state, edge)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, copy_edge = match
        src_node = copy_edge.src
        src_name, dst_name = src_node.data, copy_edge.dst.data
        copy_subset = copy_edge.memlet.subset
        dst_desc = sdfg.arrays[dst_name]
        src_desc = sdfg.arrays[src_name]
        scalar_target = isinstance(dst_desc, Scalar)

        # plan: rewrite every edge whose memlet references T
        plan = []
        for edge in state.edges():
            if edge == copy_edge or edge.memlet.data != dst_name:
                continue
            if edge.memlet.squeeze:
                return  # already composed through a squeezing copy
            if scalar_target:
                composed, squeeze = copy_subset, ()
            else:
                result = compose_through_copy(copy_subset, edge.memlet.subset)
                if result is None:
                    return  # cannot rewrite; leave the copy in place
                composed, squeeze = result
            new_memlet = Memlet(src_name, composed, wcr=edge.memlet.wcr,
                                other_subset=edge.memlet.other_subset,
                                dynamic=edge.memlet.dynamic,
                                squeeze=squeeze or None)
            plan.append((edge, new_memlet))

        t_nodes = [n for n in state.data_nodes() if n.data == dst_name]
        for edge, new_memlet in plan:
            src = src_node if edge.src in t_nodes else edge.src
            dst = edge.dst
            state.add_edge(src, edge.src_conn, dst, edge.dst_conn, new_memlet)
            state.remove_edge(edge)
        state.remove_edge(copy_edge)
        for t_node in t_nodes:
            if t_node in state and state.in_degree(t_node) == 0 \
                    and state.out_degree(t_node) == 0:
                state.remove_node(t_node)
        _delete_if_unused(sdfg, dst_name)


class RedundantWriteCopy(Transformation):
    """Fold ``T --copy--> Y[S]`` into the computation producing transient T."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            for edge in state.edges():
                if not (isinstance(edge.src, AccessNode)
                        and isinstance(edge.dst, AccessNode)):
                    continue
                memlet = edge.memlet
                if memlet.is_empty() or memlet.wcr:
                    continue
                src_name, dst_name = edge.src.data, edge.dst.data
                if src_name == dst_name:
                    continue
                src_desc = sdfg.arrays.get(src_name)
                dst_desc = sdfg.arrays.get(dst_name)
                if src_desc is None or not src_desc.transient:
                    continue
                if isinstance(src_desc, (Stream, Scalar)) \
                        or isinstance(dst_desc, Stream):
                    continue
                # source subset of the copy must cover all of T
                src_subset = (memlet.subset if memlet.data == src_name
                              else memlet.other_subset)
                dst_subset = (memlet.other_subset if memlet.data == src_name
                              else memlet.subset)
                if src_subset is not None \
                        and src_subset != Range.from_shape(src_desc.shape):
                    continue
                if dst_subset is None:
                    continue
                # T is written exactly once (in this state) and read only by
                # this copy
                writers = _write_nodes(sdfg, src_name)
                if len(writers) != 1 or writers[0][0] is not state \
                        or writers[0][1] is not edge.src:
                    continue
                if _accessed_outside(sdfg, src_name, state):
                    continue
                reads = [e for st in sdfg.states() for n in st.data_nodes()
                         if n.data == src_name for e in st.out_edges(n)]
                if len(reads) != 1:
                    continue
                yield (state, edge, dst_subset)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, copy_edge, dst_subset = match
        t_node = copy_edge.src
        y_node = copy_edge.dst
        t_name, y_name = t_node.data, y_node.data
        y_desc = sdfg.arrays[y_name]

        # rewrite every edge that references T to write Y through dst_subset
        plan = []
        for edge in state.edges():
            if edge == copy_edge or edge.memlet.data != t_name:
                continue
            if edge.memlet.wcr is not None:
                # WCR accumulates into the (zero-initialized) transient;
                # folding into Y would accumulate into stale data
                return
            if edge.memlet.squeeze:
                return
            if isinstance(y_desc, Scalar):
                composed: Optional[Range] = dst_subset
            else:
                result = compose_through_copy(dst_subset, edge.memlet.subset)
                if result is None:
                    return
                composed = result[0]
            plan.append((edge, Memlet(y_name, composed, wcr=edge.memlet.wcr,
                                      dynamic=edge.memlet.dynamic)))

        for edge, new_memlet in plan:
            dst = y_node if edge.dst is t_node else edge.dst
            src = y_node if edge.src is t_node else edge.src
            state.add_edge(src, edge.src_conn, dst, edge.dst_conn, new_memlet)
            state.remove_edge(edge)
        state.remove_edge(copy_edge)
        if t_node in state and state.in_degree(t_node) == 0 \
                and state.out_degree(t_node) == 0:
            state.remove_node(t_node)
        _delete_if_unused(sdfg, t_name)
