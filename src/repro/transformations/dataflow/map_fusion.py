"""Greedy subgraph fusion (§3.1 (2)).

Fuses two map scopes in the same state connected through an intermediate
transient access node, when the consumer reads exactly the element the
producer wrote at the matching iteration point (symbolic set check on
memlets: "the data consumed is a subset of the data produced").  Chains of
element-wise operations collapse into single scopes — the paper's main
source of CPU/GPU speedups over per-statement frameworks.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ...ir.data import Scalar
from ...ir.memlet import Memlet
from ...ir.nodes import AccessNode, MapEntry, MapExit, Tasklet
from ...symbolic import Range, Symbol
from ..base import Transformation

__all__ = ["GreedySubgraphFusion"]


def _param_match(first: MapEntry, second: MapEntry) -> Optional[Dict[str, str]]:
    """Map second's parameters onto first's when the iteration spaces are
    equal (identically ordered or permuted)."""
    r1, r2 = first.map.range, second.map.range
    if r1.ndim != r2.ndim:
        return None
    # identity order first
    if all(d1 == d2 for d1, d2 in zip(r1.dims, r2.dims)):
        return dict(zip(second.map.params, first.map.params))
    # greedy permutation matching
    available = list(range(r1.ndim))
    mapping: Dict[str, str] = {}
    for j, dim2 in enumerate(r2.dims):
        found = None
        for i in available:
            if r1.dims[i] == dim2:
                found = i
                break
        if found is None:
            return None
        available.remove(found)
        mapping[second.map.params[j]] = first.map.params[found]
    return mapping


def _rename_subset(subset: Range, mapping: Dict[str, str]) -> Range:
    env = {old: Symbol(new, nonnegative=False) for old, new in mapping.items()}
    return subset.subs(env)


def _rename_code(code: str, mapping: Dict[str, str]) -> str:
    for old, new in mapping.items():
        if old != new:
            code = re.sub(rf"\b{re.escape(old)}\b", new, code)
    return code


class GreedySubgraphFusion(Transformation):
    """Fuse producer/consumer maps sharing their iteration space."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.data_nodes():
                desc = sdfg.arrays.get(node.data)
                if desc is None or not desc.transient or isinstance(desc, Scalar):
                    continue
                if scope.get(node) is not None:
                    continue
                producers = [e for e in state.in_edges(node)
                             if isinstance(e.src, MapExit)]
                consumers = [e for e in state.out_edges(node)
                             if isinstance(e.dst, MapEntry)]
                if len(producers) != 1 or not consumers:
                    continue
                exit1 = producers[0].src
                entry1 = exit1.entry_node
                for consumer_edge in consumers:
                    entry2 = consumer_edge.dst
                    if entry2 is entry1:
                        continue
                    match = cls._check(sdfg, state, node, entry1, exit1,
                                       entry2, scope)
                    if match is not None:
                        yield match
                        break  # re-match after application

    @classmethod
    def _check(cls, sdfg, state, t_node, entry1, exit1, entry2, scope):
        mapping = _param_match(entry1, entry2)
        if mapping is None:
            return None
        exit2 = entry2.exit_node
        t_name = t_node.data

        # fusing must not create a cycle: no other input of scope 2 may be
        # reachable from scope 1 (directly or through other computations)
        downstream = state.descendants(exit1)
        for edge in state.in_edges(entry2):
            if not isinstance(edge.src, AccessNode):
                return None
            if edge.src.data != t_name and edge.src in downstream:
                return None

        # producer inner writes of T, keyed by (renamed) subset
        produced: Dict[str, Tuple] = {}
        for edge in state.in_edges(exit1):
            if edge.memlet.is_empty() or edge.memlet.data != t_name:
                continue
            if edge.memlet.wcr is not None or edge.memlet.dynamic:
                return None
            if not isinstance(edge.src, Tasklet):
                return None
            produced[str(edge.memlet.subset)] = (edge.src, edge.src_conn,
                                                 edge.memlet)

        if not produced:
            return None

        # consumer inner reads of T must each match a produced point
        wires = []
        for edge in state.out_edges(entry2):
            if edge.memlet.is_empty() or edge.memlet.data != t_name:
                continue
            if edge.memlet.dynamic:
                return None
            renamed = _rename_subset(edge.memlet.subset, mapping)
            key = str(renamed)
            if key not in produced:
                return None  # reads an element another iteration produced
            wires.append((edge, produced[key]))
        if not wires:
            return None

        # all scope-2 body nodes must be tasklets or scalar transients
        body2 = [n for n, s in scope.items() if s is entry2]
        for node in body2:
            if isinstance(node, (Tasklet, MapExit)):
                continue
            if isinstance(node, AccessNode):
                desc = sdfg.arrays.get(node.data)
                if desc is not None and desc.transient:
                    continue
            return None
        return (state, t_node, entry1, exit1, entry2, exit2, mapping, wires)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, t_node, entry1, exit1, entry2, exit2, mapping, wires = match
        t_name = t_node.data

        # move scope-2 body nodes into scope 1 by rewiring boundaries
        scope = state.scope_dict()
        body2 = [n for n, s in scope.items() if s is entry2 and n is not exit2]

        # rename map parameters in scope-2 memlets and tasklet code
        for node in body2:
            if isinstance(node, Tasklet):
                node.code = _rename_code(node.code, mapping)
            for edge in state.out_edges(node):
                if not edge.memlet.is_empty():
                    new_memlet = edge.memlet.clone()
                    new_memlet.subset = _rename_subset(edge.memlet.subset, mapping)
                    state.add_edge(edge.src, edge.src_conn, edge.dst,
                                   edge.dst_conn, new_memlet)
                    state.remove_edge(edge)

        # (1) T reads -> direct wires from producer tasklets through scalar
        # transients
        for consumer_edge, (ptask, pconn, pmemlet) in wires:
            elem = sdfg.temp_data_name("__fused")
            sdfg.add_scalar(elem, sdfg.arrays[t_name].dtype, transient=True)
            elem_node = state.add_access(elem)
            state.add_edge(ptask, pconn, elem_node, None,
                           Memlet(elem, Range.from_string("0")))
            state.add_edge(elem_node, None, consumer_edge.dst,
                           consumer_edge.dst_conn,
                           Memlet(elem, Range.from_string("0")))
            state.remove_edge(consumer_edge)

        # (2) other inputs of entry2: route through entry1
        for edge in state.in_edges(entry2):
            if edge.src.data == t_name if isinstance(edge.src, AccessNode) else False:
                state.remove_edge(edge)
                continue
            conn_base = edge.dst_conn[3:] if edge.dst_conn else None
            if conn_base is None:
                state.remove_edge(edge)
                continue
            in_conn = f"IN_{conn_base}"
            out_conn = f"OUT_{conn_base}"
            if in_conn not in entry1.in_connectors:
                entry1.add_in_connector(in_conn)
                entry1.add_out_connector(out_conn)
                state.add_edge(edge.src, edge.src_conn, entry1, in_conn,
                               edge.memlet)
            # inner consumers of this connector
            for inner in state.out_edges(entry2):
                if inner.src_conn == out_conn:
                    new_memlet = inner.memlet.clone()
                    if not new_memlet.is_empty():
                        new_memlet.subset = _rename_subset(new_memlet.subset,
                                                           mapping)
                    state.add_edge(entry1, out_conn, inner.dst, inner.dst_conn,
                                   new_memlet)
                    state.remove_edge(inner)
            state.remove_edge(edge)
        # no-input consumers (constant maps): keep body roots attached
        for inner in state.out_edges(entry2):
            if inner.src_conn is None:
                state.add_nedge(entry1, inner.dst, Memlet.empty())
                state.remove_edge(inner)

        # (3) outputs of exit2: route through exit1 (connector named after
        # the container to avoid collisions with renamed transients)
        for edge in state.in_edges(exit2):
            conn_base = edge.memlet.data if not edge.memlet.is_empty() \
                else (edge.dst_conn[3:] if edge.dst_conn else None)
            if conn_base is None:
                state.add_nedge(edge.src, exit1, Memlet.empty())
                state.remove_edge(edge)
                continue
            in_conn = f"IN_{conn_base}"
            out_conn = f"OUT_{conn_base}"
            new_memlet = edge.memlet.clone()
            if not new_memlet.is_empty():
                new_memlet.subset = _rename_subset(new_memlet.subset, mapping)
            if in_conn not in exit1.in_connectors:
                exit1.add_in_connector(in_conn)
                exit1.add_out_connector(out_conn)
                for drain in state.out_edges(exit2):
                    if not drain.memlet.is_empty() \
                            and drain.memlet.data == edge.memlet.data:
                        state.add_edge(exit1, out_conn, drain.dst,
                                       drain.dst_conn, drain.memlet)
            state.add_edge(edge.src, edge.src_conn, exit1, in_conn, new_memlet)
            state.remove_edge(edge)

        state.remove_node(entry2)
        state.remove_node(exit2)

        # (4) the intermediate transient: if nothing else reads it, drop the
        # producer's write as well
        if state.out_degree(t_node) == 0:
            still_needed = False
            for st in sdfg.states():
                for n in st.data_nodes():
                    if n.data == t_name and (st is not state or n is not t_node):
                        still_needed = True
            if not still_needed:
                # remove exit1's connector edges for T
                for edge in list(state.in_edges(exit1)):
                    if edge.memlet.data == t_name:
                        state.remove_edge(edge)
                for edge in list(state.out_edges(exit1)):
                    if edge.memlet.data == t_name:
                        state.remove_edge(edge)
                used_in = {e.dst_conn for e in state.in_edges(exit1)}
                used_out = {e.src_conn for e in state.out_edges(exit1)}
                exit1.in_connectors &= used_in
                exit1.out_connectors &= used_out
                if t_node in state and state.in_degree(t_node) == 0 \
                        and state.out_degree(t_node) == 0:
                    state.remove_node(t_node)
                from .redundant_copy import _delete_if_unused

                _delete_if_unused(sdfg, t_name)