"""MapCollapse: merge perfectly-nested maps into one multidimensional map
(§3.1 (1)).  Increases GPU parallelism as a by-product, per the paper."""

from __future__ import annotations

from ...ir.nodes import Map, MapEntry, MapExit
from ...symbolic import Range, Symbol
from ..base import Transformation

__all__ = ["MapCollapse"]


class MapCollapse(Transformation):
    """Collapse ``outer{ inner{ body } }`` into ``outer+inner{ body }``."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.nodes():
                if not isinstance(node, MapEntry):
                    continue
                children = [n for n, s in scope.items() if s is node]
                # direct children must be exactly: one inner entry + our exit
                inner_entries = [n for n in children if isinstance(n, MapEntry)]
                rest = [n for n in children
                        if not isinstance(n, (MapEntry, MapExit))]
                if len(inner_entries) != 1 or rest:
                    continue
                inner = inner_entries[0]
                # inner bounds must not depend on outer parameters
                free = {s.name for s in inner.map.range.free_symbols}
                if free & set(node.map.params):
                    continue
                # every edge between outer entry and inner entry must be a
                # direct connector pass-through
                direct = all(e.dst is inner for e in state.out_edges(node)) \
                    and all(e.src is inner.exit_node
                            for e in state.in_edges(node.exit_node))
                if not direct:
                    continue
                yield (state, node, inner)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, outer, inner = match
        outer_exit = outer.exit_node
        inner_exit = inner.exit_node

        merged = Map(outer.map.label,
                     list(outer.map.params) + list(inner.map.params),
                     Range(list(outer.map.range.dims) + list(inner.map.range.dims)),
                     schedule=outer.map.schedule)
        outer.map = merged
        outer_exit.map = merged

        # bypass the inner entry: outer OUT_x feeds whatever the inner OUT_x fed
        for edge in state.out_edges(inner):
            if edge.src_conn and edge.src_conn.startswith("OUT_"):
                in_conn = "IN_" + edge.src_conn[4:]
                feeders = [e for e in state.in_edges(inner)
                           if e.dst_conn == in_conn]
                for feeder in feeders:
                    state.add_edge(feeder.src, feeder.src_conn,
                                   edge.dst, edge.dst_conn, edge.memlet)
            elif edge.src_conn is None:
                for feeder in state.in_edges(inner):
                    if feeder.dst_conn is None:
                        state.add_edge(feeder.src, None, edge.dst,
                                       edge.dst_conn, edge.memlet)
        # bypass the inner exit
        for edge in state.in_edges(inner_exit):
            if edge.dst_conn and edge.dst_conn.startswith("IN_"):
                out_conn = "OUT_" + edge.dst_conn[3:]
                for drain in state.out_edges(inner_exit):
                    if drain.src_conn == out_conn:
                        state.add_edge(edge.src, edge.src_conn,
                                       drain.dst, drain.dst_conn, edge.memlet)
            elif edge.dst_conn is None:
                for drain in state.out_edges(inner_exit):
                    if drain.src_conn is None:
                        state.add_edge(edge.src, edge.src_conn, drain.dst,
                                       None, edge.memlet)
        state.remove_node(inner)
        state.remove_node(inner_exit)
