"""Graph cleanup transformations used by the coarsening pass:

* :class:`EmptyStateRemoval` — drop states with no nodes and trivial control
  flow.
* :class:`DegenerateMapRemoval` — remove size-1 maps (§3.1 (1)), substituting
  the parameter value into the scope's memlets and tasklet code.
* :class:`DeadDataflowElimination` — remove computations whose results are
  never observed (transient written, never read, not an argument).
"""

from __future__ import annotations

import re
from typing import Dict

from ...ir.memlet import Memlet
from ...ir.nodes import AccessNode, MapEntry, MapExit, Tasklet
from ...symbolic import Integer, definitely_eq
from ..base import Transformation

__all__ = ["EmptyStateRemoval", "DegenerateMapRemoval", "DeadDataflowElimination"]


class EmptyStateRemoval(Transformation):
    """Remove empty states whose in/out edges can be merged."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            if state.number_of_nodes() > 0:
                continue
            out = sdfg.out_edges(state)
            ins = sdfg.in_edges(state)
            if len(out) != 1 or not out[0].data.is_unconditional():
                continue
            if out[0].dst is state:
                continue
            if state is sdfg.start_state and (out[0].data.assignments or not ins):
                # keep a start state that performs initial assignments
                if not out[0].data.assignments and not ins:
                    yield (state, out[0])
                continue
            # merging requires composing edge conditions/assignments; only
            # safe when one side is trivial
            if out[0].data.assignments and any(not e.data.is_unconditional()
                                               or e.data.assignments
                                               for e in ins):
                continue
            yield (state, out[0])

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        from ...ir.interstate import InterstateEdge

        state, out_edge = match
        successor = out_edge.dst
        for in_edge in sdfg.in_edges(state):
            assignments = dict(in_edge.data.assignments)
            assignments.update(out_edge.data.assignments)
            sdfg.add_edge(in_edge.src, successor,
                          InterstateEdge(in_edge.data.condition, assignments))
            sdfg.remove_edge(in_edge)
        if sdfg.start_state is state:
            sdfg.start_state = successor
            # preserve initial assignments by turning them into a fresh edge
            if out_edge.data.assignments and not sdfg.in_edges(state):
                init = sdfg.add_state("init_assign")
                sdfg.add_edge(init, successor, out_edge.data.clone())
                sdfg.start_state = init
        from .state_fusion import _update_loop_refs

        _update_loop_refs(sdfg, state, successor)
        sdfg.remove_state(state)


class DegenerateMapRemoval(Transformation):
    """Remove maps whose every dimension has exactly one iteration."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            for node in state.nodes():
                if not isinstance(node, MapEntry):
                    continue
                if all(definitely_eq(b, e) is True for b, e, _ in node.map.range.dims):
                    yield (state, node)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, entry = match
        exit_ = entry.exit_node
        values = {p: b for p, (b, _e, _s) in zip(entry.map.params,
                                                 entry.map.range.dims)}

        # substitute parameter values in all scope memlets and tasklet code
        body = state.scope_subgraph_nodes(entry)
        for node in body:
            for edge in state.out_edges(node) + state.in_edges(node):
                if not edge.memlet.is_empty():
                    new_memlet = edge.memlet.subs(values)
                    state.add_edge(edge.src, edge.src_conn, edge.dst,
                                   edge.dst_conn, new_memlet)
                    state.remove_edge(edge)
            if isinstance(node, Tasklet):
                prelude = "\n".join(f"{p} = {v}" for p, v in values.items()
                                    if re.search(rf"\b{re.escape(p)}\b", node.code))
                if prelude:
                    node.code = prelude + "\n" + node.code

        # reconnect through-edges: IN_x -> OUT_x on entry; exit likewise
        for in_edge in state.in_edges(entry):
            conn = in_edge.dst_conn
            if conn and conn.startswith("IN_"):
                out_conn = "OUT_" + conn[3:]
                for out_edge in state.out_edges(entry):
                    if out_edge.src_conn == out_conn:
                        state.add_edge(in_edge.src, in_edge.src_conn,
                                       out_edge.dst, out_edge.dst_conn,
                                       out_edge.memlet.subs(values))
            elif conn is None:
                for out_edge in state.out_edges(entry):
                    if out_edge.src_conn is None:
                        state.add_edge(in_edge.src, None, out_edge.dst,
                                       out_edge.dst_conn,
                                       out_edge.memlet.subs(values))
        for out_edge in state.out_edges(exit_):
            conn = out_edge.src_conn
            if conn and conn.startswith("OUT_"):
                in_conn = "IN_" + conn[4:]
                for in_edge in state.in_edges(exit_):
                    if in_edge.dst_conn == in_conn:
                        # the inner memlet carries the precise write subset
                        state.add_edge(in_edge.src, in_edge.src_conn,
                                       out_edge.dst, out_edge.dst_conn,
                                       in_edge.memlet.subs(values))
        state.remove_node(entry)
        state.remove_node(exit_)


class DeadDataflowElimination(Transformation):
    """Remove writes to transients that are never subsequently read."""

    @classmethod
    def matches(cls, sdfg, **options):
        read_names = set()
        for state in sdfg.states():
            for node in state.data_nodes():
                if state.out_degree(node) > 0:
                    read_names.add(node.data)
        for isedge in sdfg.edges():
            read_names |= isedge.data.free_symbols
        for state in sdfg.states():
            for node in state.data_nodes():
                desc = sdfg.arrays.get(node.data)
                if desc is None or not desc.transient:
                    continue
                if node.data.startswith("__return"):
                    continue
                if node.data in read_names:
                    continue
                if state.out_degree(node) != 0 or state.in_degree(node) == 0:
                    continue
                # only remove cheap producers (tasklets outside scopes)
                producers = state.predecessors(node)
                if all(isinstance(p, Tasklet) and state.entry_node_of(p) is None
                       and state.out_degree(p) == 1 and state.in_degree(p) == 0
                       for p in producers):
                    yield (state, node, producers)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, node, producers = match
        for producer in producers:
            state.remove_node(producer)
        state.remove_node(node)
        from .redundant_copy import _delete_if_unused

        _delete_if_unused(sdfg, node.data)
