"""Transformation framework: pattern-matching graph rewrites (§2.4, §3.1)."""

from .base import Transformation, apply_transformation
from .pipeline import SIMPLIFY_TRANSFORMATIONS, simplify_pass

__all__ = ["Transformation", "apply_transformation", "simplify_pass",
           "SIMPLIFY_TRANSFORMATIONS"]
