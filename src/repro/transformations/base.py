"""Transformation infrastructure.

All transformations follow the same pattern-matching shape as in the paper:
a transformation *matches* a subgraph (returning match descriptors) and
*applies* by modifying or removing elements of the graph.  Matching is
re-run after every application, because applications invalidate prior
matches; the driver loops until a fixed point.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ..config import Config

__all__ = ["Transformation", "apply_transformation"]


class Transformation:
    """Base class: subclasses implement ``matches`` and ``apply_match``."""

    #: human-readable name (defaults to the class name)
    name: str = ""

    @classmethod
    def matches(cls, sdfg, **options) -> Iterator[Any]:
        """Yield match descriptors (opaque to the driver)."""
        raise NotImplementedError

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        """Apply the transformation at the given match."""
        raise NotImplementedError

    @classmethod
    def apply_once(cls, sdfg, **options) -> bool:
        """Apply at the first match; returns True if anything changed."""
        for match in cls.matches(sdfg, **options):
            cls.apply_match(sdfg, match, **options)
            if Config.get("validate.after_transform"):
                sdfg.validate()
            return True
        return False

    @classmethod
    def apply_repeated(cls, sdfg, max_applications: Optional[int] = None,
                       **options) -> int:
        """Apply until no more matches (or the limit is reached)."""
        count = 0
        while max_applications is None or count < max_applications:
            if not cls.apply_once(sdfg, **options):
                break
            count += 1
        return count


def apply_transformation(sdfg, transformation, **options) -> int:
    """Entry point used by ``SDFG.apply``: accepts a Transformation subclass
    (or instance) and applies it repeatedly."""
    if isinstance(transformation, type) and issubclass(transformation, Transformation):
        return transformation.apply_repeated(sdfg, **options)
    if isinstance(transformation, Transformation):
        return type(transformation).apply_repeated(sdfg, **options)
    raise TypeError(f"not a transformation: {transformation!r}")
