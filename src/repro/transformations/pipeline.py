"""Transformation pipelines.

``simplify_pass`` is the paper's dataflow-coarsening pass (§2.4, the -O1
analogue): a fixed set of transformations that only modify or remove graph
elements, so the pass terminates.  ``auto_optimize`` (§3.1) lives in
:mod:`repro.autoopt` and builds on these.

The driver is *transactional* (``resilience.transactional``): every member
pass runs under snapshot → apply → validate → rollback-on-failure, passes
that keep failing on the same SDFG are quarantined, and the fixed-point loop
is guarded by an application cap plus an oscillation detector, so a buggy
pass (or a buggy pair of passes undoing each other) degrades the pipeline
instead of corrupting the graph or looping forever.
"""

from __future__ import annotations

import time
import warnings
from typing import Optional

from .. import instrumentation
from ..config import Config
from .base import Transformation
from .dataflow.cleanup import (
    DeadDataflowElimination,
    DegenerateMapRemoval,
    EmptyStateRemoval,
)
from .dataflow.inline_nested import InlineNestedSDFG
from .dataflow.redundant_copy import RedundantReadCopy, RedundantWriteCopy
from .dataflow.state_fusion import StateFusion

__all__ = ["simplify_pass", "SIMPLIFY_TRANSFORMATIONS"]

#: the coarsening pass members, in application order
SIMPLIFY_TRANSFORMATIONS = [
    EmptyStateRemoval,
    StateFusion,
    InlineNestedSDFG,
    RedundantReadCopy,
    RedundantWriteCopy,
    DegenerateMapRemoval,
    DeadDataflowElimination,
]


def simplify_pass(sdfg, report=None) -> int:
    """Run the coarsening transformations to a fixed point; returns the
    total number of applications.

    ``report`` optionally receives a :class:`repro.resilience.FailureReport`
    that collects every rolled-back pass instead of crashing the pipeline.
    """
    from ..ir.nodes import NestedSDFG
    from ..resilience import (
        FailureReport,
        OscillationDetector,
        Quarantine,
        ResilienceWarning,
        transactional_apply,
        transformation_name,
    )

    transactional = Config.get("resilience.transactional")
    cap = Config.get("resilience.max_pass_applications")
    if report is None:
        report = FailureReport()
    quarantine = Quarantine()

    # nested SDFGs coarsen first, so single-state callees become inlinable
    total = 0
    for state in sdfg.states():
        for node in state.nodes():
            if isinstance(node, NestedSDFG):
                total += simplify_pass(node.sdfg, report=report)

    detector = OscillationDetector()
    detector.observe(sdfg)
    changed = True
    while changed:
        changed = False
        sweep_active = []
        for transformation in SIMPLIFY_TRANSFORMATIONS:
            name = transformation_name(transformation)
            if quarantine.is_quarantined(name):
                continue
            remaining = max(0, cap - total)
            prof = instrumentation._ACTIVE
            pass_start = time.perf_counter() if prof is not None else 0.0
            if transactional:
                applied = transactional_apply(
                    sdfg, transformation, report=report,
                    quarantine=quarantine, max_applications=remaining)
            else:
                applied = transformation.apply_repeated(
                    sdfg, max_applications=remaining)
            if prof is not None:
                prof.add("pass", name, time.perf_counter() - pass_start)
            if applied:
                total += applied
                changed = True
                sweep_active.append(name)
        if total >= cap:
            warnings.warn(
                f"simplify_pass on {sdfg.name!r} hit the application cap "
                f"({cap}); likely non-terminating transformation(s): "
                f"{', '.join(sweep_active) or 'unknown'}",
                ResilienceWarning, stacklevel=2)
            break
        if changed and detector.observe(sdfg):
            warnings.warn(
                f"simplify_pass on {sdfg.name!r} is oscillating: "
                f"transformation(s) {', '.join(sweep_active)} returned the "
                f"graph to a previously-seen state; stopping the fixed-point "
                f"loop", ResilienceWarning, stacklevel=2)
            break
    return total
