"""Transformation pipelines.

``simplify_pass`` is the paper's dataflow-coarsening pass (§2.4, the -O1
analogue): a fixed set of transformations that only modify or remove graph
elements, so the pass terminates.  ``auto_optimize`` (§3.1) lives in
:mod:`repro.autoopt` and builds on these.
"""

from __future__ import annotations

from .base import Transformation
from .dataflow.cleanup import (
    DeadDataflowElimination,
    DegenerateMapRemoval,
    EmptyStateRemoval,
)
from .dataflow.inline_nested import InlineNestedSDFG
from .dataflow.redundant_copy import RedundantReadCopy, RedundantWriteCopy
from .dataflow.state_fusion import StateFusion

__all__ = ["simplify_pass", "SIMPLIFY_TRANSFORMATIONS"]

#: the coarsening pass members, in application order
SIMPLIFY_TRANSFORMATIONS = [
    EmptyStateRemoval,
    StateFusion,
    InlineNestedSDFG,
    RedundantReadCopy,
    RedundantWriteCopy,
    DegenerateMapRemoval,
    DeadDataflowElimination,
]


def simplify_pass(sdfg) -> int:
    """Run the coarsening transformations to a fixed point; returns the
    total number of applications."""
    from ..ir.nodes import NestedSDFG

    # nested SDFGs coarsen first, so single-state callees become inlinable
    total = 0
    for state in sdfg.states():
        for node in state.nodes():
            if isinstance(node, NestedSDFG):
                total += simplify_pass(node.sdfg)
    changed = True
    while changed:
        changed = False
        for transformation in SIMPLIFY_TRANSFORMATIONS:
            applied = transformation.apply_repeated(sdfg)
            if applied:
                total += applied
                changed = True
    return total
