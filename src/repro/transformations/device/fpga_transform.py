"""FPGATransformSDFG and StreamingComposition (§3.1).

``FPGATransformSDFG`` schedules maps as pipelines and moves arrays to
off-chip (DRAM) storage.  ``StreamingComposition`` then finds
producer/consumer map pairs connected through a transient that is written
and read in the same sequential order, and converts the intermediate into an
on-chip FIFO stream — the connected components then form pipelined units
that stream memory instead of bouncing through DRAM, enabling systolic
behaviour during hardware specialization.  The FPGA performance model
(:mod:`repro.runtime.fpga`) charges DRAM round-trips only for
non-streamed containers.
"""

from __future__ import annotations

from ...ir.data import Scalar, StorageType, Stream
from ...ir.nodes import AccessNode, MapEntry, MapExit, ScheduleType
from ..base import Transformation

__all__ = ["FPGATransformSDFG", "StreamingComposition"]


class FPGATransformSDFG(Transformation):
    @classmethod
    def matches(cls, sdfg, **options):
        pending_maps = []
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.nodes():
                if isinstance(node, MapEntry) and scope.get(node) is None \
                        and node.map.schedule != ScheduleType.FPGA_Pipeline:
                    pending_maps.append((state, node))
        pending_data = [
            desc for desc in sdfg.arrays.values()
            if not isinstance(desc, (Scalar, Stream))
            and desc.storage == StorageType.Default
        ]
        if pending_maps or pending_data:
            yield (pending_maps, pending_data)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        pending_maps, pending_data = match
        for _state, entry in pending_maps:
            entry.map.schedule = ScheduleType.FPGA_Pipeline
        for desc in pending_data:
            desc.storage = StorageType.FPGA_Global


class StreamingComposition(Transformation):
    """Convert map-to-map transients into on-chip streams when the consumer
    reads elements in the exact order the producer writes them."""

    @classmethod
    def matches(cls, sdfg, **options):
        from .map_fusion_helpers import same_order_streaming_candidate

        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.data_nodes():
                desc = sdfg.arrays.get(node.data)
                if desc is None or not desc.transient \
                        or isinstance(desc, (Scalar, Stream)):
                    continue
                if getattr(desc, "fpga_streamed", False):
                    continue
                if scope.get(node) is not None:
                    continue
                producers = [e for e in state.in_edges(node)
                             if isinstance(e.src, MapExit)]
                consumers = [e for e in state.out_edges(node)
                             if isinstance(e.dst, MapEntry)]
                if len(producers) != 1 or len(consumers) != 1:
                    continue
                if same_order_streaming_candidate(
                        state, producers[0], consumers[0]):
                    yield (sdfg, node.data)

    @classmethod
    def apply_match(cls, sdfg_unused, match, **options) -> None:
        sdfg, name = match
        desc = sdfg.arrays[name]
        desc.storage = StorageType.FPGA_Local
        desc.fpga_streamed = True  # read by the FPGA performance model
