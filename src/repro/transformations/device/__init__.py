"""Device-specific transformations (§3.1)."""

from .cpu_transform import CPUParallelize
from .fpga_transform import FPGATransformSDFG, StreamingComposition
from .gpu_transform import GPUTransformSDFG

__all__ = ["CPUParallelize", "GPUTransformSDFG", "FPGATransformSDFG",
           "StreamingComposition"]
