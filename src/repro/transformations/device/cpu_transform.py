"""CPU device pass (§3.1): multicore schedules with OpenMP-collapse
semantics on top-level maps.

Promotion is safety-gated on the static race detector
(:mod:`repro.sanitizer.races`): a map becomes ``CPU_Multicore`` only with a
``race-free`` verdict — injective writes, or commutative WCR accumulation
(which the runtime privatizes per worker).  ``unproved`` and ``race`` maps
are pinned to ``Sequential`` so the decision is explicit in the IR and the
pass reaches a fixed point.
"""

from __future__ import annotations

from ...ir.nodes import MapEntry, ScheduleType
from ...sanitizer.races import RACE_FREE, analyze_map
from ..base import Transformation

__all__ = ["CPUParallelize"]


class CPUParallelize(Transformation):
    """Schedule top-level race-free maps as CPU_Multicore and collapse all
    dimensions (the OpenMP ``collapse`` clause analogue); everything the
    detector cannot prove safe stays sequential."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.nodes():
                if isinstance(node, MapEntry) and scope.get(node) is None \
                        and node.map.schedule == ScheduleType.Default:
                    yield (state, node)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, entry = match
        if analyze_map(state, entry, sdfg).verdict == RACE_FREE:
            entry.map.schedule = ScheduleType.CPU_Multicore
            entry.map.collapse = len(entry.map.params)
        else:
            entry.map.schedule = ScheduleType.Sequential
