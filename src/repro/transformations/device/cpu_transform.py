"""CPU device pass (§3.1): multicore schedules with OpenMP-collapse
semantics on top-level maps."""

from __future__ import annotations

from ...ir.nodes import MapEntry, ScheduleType
from ..base import Transformation

__all__ = ["CPUParallelize"]


class CPUParallelize(Transformation):
    """Schedule top-level maps as CPU_Multicore and collapse all dimensions
    (the OpenMP ``collapse`` clause analogue)."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.nodes():
                if isinstance(node, MapEntry) and scope.get(node) is None \
                        and node.map.schedule == ScheduleType.Default:
                    yield (state, node)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        _state, entry = match
        entry.map.schedule = ScheduleType.CPU_Multicore
        entry.map.collapse = len(entry.map.params)
