"""GPUTransformSDFG (§3.1): map the program onto the (simulated) GPU.

Top-level maps become GPU kernels (``GPU_Device`` schedule) and transient
arrays move to device-global memory.  Host<->device transfers of the
non-transient arguments are accounted by the GPU performance model
(:mod:`repro.runtime.gpu`), which reads the storage/schedule annotations this
pass sets — the functional execution is unchanged (the simulated device
computes with NumPy).
"""

from __future__ import annotations

from ...ir.data import Scalar, StorageType, Stream
from ...ir.nodes import MapEntry, ScheduleType
from ..base import Transformation

__all__ = ["GPUTransformSDFG"]


class GPUTransformSDFG(Transformation):
    @classmethod
    def matches(cls, sdfg, **options):
        pending_maps = []
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.nodes():
                if isinstance(node, MapEntry) and scope.get(node) is None \
                        and node.map.schedule != ScheduleType.GPU_Device:
                    pending_maps.append((state, node))
        pending_data = [
            (name, desc) for name, desc in sdfg.arrays.items()
            if desc.transient and not isinstance(desc, (Scalar, Stream))
            and desc.storage not in (StorageType.GPU_Global, StorageType.CPU_Stack)
        ]
        if pending_maps or pending_data:
            yield (pending_maps, pending_data)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        pending_maps, pending_data = match
        for _state, entry in pending_maps:
            entry.map.schedule = ScheduleType.GPU_Device
        for _name, desc in pending_data:
            desc.storage = StorageType.GPU_Global
