"""Shared analysis helpers for device transformations."""

from __future__ import annotations

from ...ir.nodes import MapEntry, MapExit


def same_order_streaming_candidate(state, producer_edge, consumer_edge) -> bool:
    """True when the producer writes and the consumer reads the intermediate
    transient element-by-element over equal iteration spaces — the memory can
    then stream through a FIFO in write order (§3.1 FPGA)."""
    exit1: MapExit = producer_edge.src
    entry2: MapEntry = consumer_edge.dst
    r1 = exit1.entry_node.map.range
    r2 = entry2.map.range
    if r1.ndim != r2.ndim:
        return False
    if any(d1 != d2 for d1, d2 in zip(r1.dims, r2.dims)):
        return False
    name = producer_edge.memlet.data
    # inner writes/reads must be single elements indexed by the map params in
    # canonical order (same linear order on both sides)
    writes = [e.memlet for e in state.in_edges(exit1)
              if not e.memlet.is_empty() and e.memlet.data == name]
    reads = [e.memlet for e in state.out_edges(entry2)
             if not e.memlet.is_empty() and e.memlet.data == name]
    if len(writes) != 1 or len(reads) != 1:
        return False
    w, r = writes[0], reads[0]
    if w.wcr is not None or w.dynamic or r.dynamic:
        return False
    if w.subset.is_point() is not True or r.subset.is_point() is not True:
        return False
    w_idx = [str(b) for b, _e, _s in w.subset.dims]
    r_idx = [str(b) for b, _e, _s in r.subset.dims]
    p1 = list(exit1.entry_node.map.params)
    p2 = list(entry2.map.params)
    return w_idx == p1 and r_idx == p2
