"""Pattern-matching wrappers over the communication optimizer passes.

The comm optimizer (:mod:`repro.distributed.commopt`) exposes whole-SDFG
entry points; these classes adapt them to the repository's
:class:`~repro.transformations.base.Transformation` protocol so they
compose with ``sdfg.apply(...)`` pipelines, the transactional rollback in
:func:`repro.autoopt.auto_optimize`, and the pass timers.
"""

from __future__ import annotations

from ..base import Transformation

__all__ = ["OverlapHaloExchange", "DeduplicateCollectives"]


class OverlapHaloExchange(Transformation):
    """Split blocking halo exchanges into start/interior/finish/boundary
    (see :mod:`repro.distributed.commopt.plan`)."""

    name = "OverlapHaloExchange"

    @classmethod
    def matches(cls, sdfg, **options):
        from ...distributed.commopt.plan import (_EAGER_CALL, _analyze_site,
                                                 _check_safety, _find_sites)

        for state in sdfg.states():
            for tasklet in _find_sites(sdfg, state):
                site = _analyze_site(sdfg, state, tasklet)
                if site is not None and _check_safety(sdfg, state, site):
                    yield site

    @classmethod
    def apply_match(cls, sdfg, match, **options):
        from ...distributed.commopt.plan import _rewrite_site

        _rewrite_site(sdfg, match.state, match)


class DeduplicateCollectives(Transformation):
    """Memoize collectives whose source container is provably never
    written (see :mod:`repro.distributed.commopt.dedup`)."""

    name = "DeduplicateCollectives"

    @classmethod
    def matches(cls, sdfg, **options):
        from ...distributed.commopt.dedup import (_dedup_candidates,
                                                  written_containers)

        yield from _dedup_candidates(sdfg, written_containers(sdfg))

    @classmethod
    def apply_match(cls, sdfg, match, **options):
        from ...distributed.commopt import dedup as _dedup
        from ...distributed.commopt import runtime as rt

        state, tasklet, call = match
        cached = _dedup._REWRITES[call]
        site = f"{state.label}:{tasklet.label}:{id(tasklet):x}"
        tasklet.code = _dedup._rewrite_call(tasklet.code, call, cached, site)
        sdfg.constants[cached] = {
            "__commopt_BlockScatter_cached": rt.block_scatter_cached,
            "__commopt_Allreduce_cached": rt.allreduce_cached,
        }[cached]
