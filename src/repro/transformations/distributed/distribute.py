"""Distributed-memory transformations (§4.1-§4.2).

* :class:`DistributeElementWiseArrayOp` — converts a shared-memory
  element-wise map into scatter -> local map -> gather (Fig. 10), with a
  configurable layout (1-D block for contiguous arrays, 2-D grid blocks when
  the result feeds matrix operations — the paper's block-size parameters).
* ``PBLAS`` expansion of MatMul — registered on the library node; expands to
  grid scatters + a SUMMA/pgemv tasklet + gather (§4.1 "Distributing Library
  Nodes").
* :class:`RemoveRedundantComm` — eliminates gather-then-scatter round trips
  of matching distributions (Fig. 11).
* :class:`DeduplicateComm` — merges repeated scatters of the same container
  and layout (common-subexpression elimination on communication).

Rank-local container shapes use the reserved symbols ``__P`` (world size),
``__GR0`` and ``__GR1`` (grid dimensions), bound automatically by
:func:`repro.distributed.run_distributed`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...ir.data import Scalar
from ...ir.memlet import Memlet
from ...ir.nodes import AccessNode, MapEntry, MapExit, Tasklet
from ...library.blas import MatMul
from ...library.registry import register_expansion, set_priority
from ...symbolic import Expr, Integer, Range, Symbol
from ..base import Transformation

__all__ = ["DistributeElementWiseArrayOp", "RemoveRedundantComm",
           "DeduplicateComm", "GRID_ROWS", "GRID_COLS", "WORLD_SIZE"]

WORLD_SIZE = Symbol("__P", positive=True)
GRID_ROWS = Symbol("__GR0", positive=True)
GRID_COLS = Symbol("__GR1", positive=True)


def _install_dist_constants(sdfg) -> None:
    from ...distributed import comm_api, lib_rt

    sdfg.constants.setdefault("__comm_BlockScatter", comm_api.BlockScatter)
    sdfg.constants.setdefault("__comm_BlockGather", comm_api.BlockGather)
    sdfg.constants.setdefault("__pblas_pgemm", lib_rt.pgemm_rt)
    sdfg.constants.setdefault("__pblas_pgemv", lib_rt.pgemv_rt)


def _local_shape(shape: Tuple[Expr, ...], layout: str) -> Tuple[Expr, ...]:
    if layout == "row":
        return (shape[0] // WORLD_SIZE,) + tuple(shape[1:])
    if layout == "grid":
        dims = [shape[0] // GRID_ROWS]
        if len(shape) > 1:
            dims.append(shape[1] // GRID_COLS)
            dims.extend(shape[2:])
        return tuple(dims)
    if layout == "replicate":
        return tuple(shape)
    raise ValueError(f"unknown layout {layout!r}")


def _shape_code(shape: Tuple[Expr, ...]) -> str:
    return "(" + ", ".join(f"({s})" for s in shape) + ",)"


def _add_scatter(sdfg, state, global_name: str, layout: str,
                 local_name: Optional[str] = None,
                 global_node: Optional[AccessNode] = None) -> AccessNode:
    """Insert ``global -> scatter tasklet -> local`` and return the local
    access node.  Reuses *local_name* if that container already exists, and
    reads from *global_node* (keeping ordering with earlier producers) when
    given."""
    _install_dist_constants(sdfg)
    desc = sdfg.arrays[global_name]
    lshape = _local_shape(desc.shape, layout)
    if local_name is None or local_name not in sdfg.arrays:
        if local_name is None:
            local_name = sdfg.temp_data_name(f"__l{global_name}_")
        local_desc = sdfg.add_transient(local_name, lshape, desc.dtype)
        local_desc.dist_layout = layout
        local_desc.dist_global = global_name
    tasklet = state.add_tasklet(
        f"scatter_{global_name}", {"__g"}, {"__out"},
        f"__out = __comm_BlockScatter(__g, {_shape_code(lshape)}, "
        f"layout={layout!r})")
    tasklet.comm_op = {"kind": "scatter", "layout": layout,
                       "global": global_name, "local": local_name}
    if global_node is None:
        global_node = state.add_read(global_name)
    state.add_edge(global_node, None, tasklet, "__g",
                   Memlet(global_name, Range.from_shape(desc.shape),
                          dynamic=True))
    local_node = state.add_access(local_name)
    state.add_edge(tasklet, "__out", local_node, None,
                   Memlet(local_name, Range.from_shape(lshape)))
    return local_node


def _add_gather(sdfg, state, local_node: AccessNode, global_name: str,
                layout: str,
                global_node: Optional[AccessNode] = None) -> AccessNode:
    _install_dist_constants(sdfg)
    desc = sdfg.arrays[global_name]
    local_desc = sdfg.arrays[local_node.data]
    tasklet = state.add_tasklet(
        f"gather_{global_name}", {"__l"}, {"__out"},
        f"__out = __comm_BlockGather(__l, {_shape_code(desc.shape)}, "
        f"layout={layout!r})")
    tasklet.comm_op = {"kind": "gather", "layout": layout,
                       "global": global_name, "local": local_node.data}
    state.add_edge(local_node, None, tasklet, "__l",
                   Memlet(local_node.data, Range.from_shape(local_desc.shape),
                          dynamic=True))
    if global_node is None:
        global_node = state.add_access(global_name)
    state.add_edge(tasklet, "__out", global_node, None,
                   Memlet(global_name, Range.from_shape(desc.shape)))
    return global_node



def _rename_container_in_state(state, old: str, new: str) -> None:
    """Rewrite every memlet in *state* referencing *old* to reference *new*
    (same shape/layout by construction)."""
    for edge in state.edges():
        if edge.memlet.data == old:
            new_memlet = edge.memlet.clone()
            new_memlet.data = new
            state.add_edge(edge.src, edge.src_conn, edge.dst, edge.dst_conn,
                           new_memlet)
            state.remove_edge(edge)


class DistributeElementWiseArrayOp(Transformation):
    """Scatter-compute-gather distribution of element-wise maps (Fig. 10)."""

    @classmethod
    def matches(cls, sdfg, layout: str = "grid", **options):
        for state in sdfg.states():
            scope = state.scope_dict()
            for node in state.nodes():
                if not isinstance(node, MapEntry) or scope.get(node) is not None:
                    continue
                if getattr(node.map, "distributed", False):
                    continue
                plan = cls._analyze(sdfg, state, node, layout)
                if plan is not None:
                    yield plan

    @classmethod
    def _analyze(cls, sdfg, state, entry: MapEntry, layout: str):
        exit_ = entry.exit_node
        params = list(entry.map.params)
        sizes = entry.map.range.size()
        # find the parameter order from an output memlet with identity indices
        arrays: Dict[str, bool] = {}      # container -> is_output
        for edge in state.edges():
            memlet = edge.memlet
            if memlet.is_empty():
                continue
            # boundary hull edges (access->entry, exit->access) carry the
            # full-shape bookkeeping subset; analyze the precise inner edges
            if isinstance(edge.src, AccessNode) and edge.dst is entry:
                if memlet.dynamic:
                    return None
                desc0 = sdfg.arrays[memlet.data]
                if not isinstance(desc0, Scalar):
                    arrays.setdefault(memlet.data, False)
                continue
            if edge.src is exit_ and isinstance(edge.dst, AccessNode):
                if memlet.dynamic:
                    return None
                arrays[memlet.data] = True
                continue
            involved = (edge.src is entry or edge.dst is exit_
                        or state.scope_dict().get(edge.src) is entry
                        or state.scope_dict().get(edge.dst) is entry)
            if not involved:
                continue
            if memlet.dynamic or memlet.wcr is not None:
                return None
            desc = sdfg.arrays[memlet.data]
            if isinstance(desc, Scalar):
                continue
            if desc.transient and hasattr(desc, "dist_layout"):
                return None  # already local data
            # identity point indices required: index d == param d
            if memlet.subset.ndim != len(params):
                return None
            for d, (begin, end, step) in enumerate(memlet.subset.dims):
                if begin != Symbol(params[d], nonnegative=False) or begin != end:
                    return None
            # shape must equal the iteration space
            for s_dim, r_dim in zip(desc.shape, sizes):
                if s_dim != r_dim:
                    return None
            is_output = isinstance(edge.dst, MapExit)
            arrays[memlet.data] = arrays.get(memlet.data, False) or is_output
        if not arrays:
            return None
        ndim = len(params)
        if layout == "grid" and ndim == 1:
            layout = "row"
        if layout == "grid" and ndim != 2:
            return None
        return (state, entry, arrays, layout)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, entry, arrays, layout = match
        exit_ = entry.exit_node
        params = list(entry.map.params)

        locals_of: Dict[str, str] = {}
        for name, is_output in arrays.items():
            desc = sdfg.arrays[name]
            lshape = _local_shape(desc.shape, layout)
            local_name = sdfg.temp_data_name(f"__l{name}_")
            local_desc = sdfg.add_transient(local_name, lshape, desc.dtype)
            local_desc.dist_layout = layout
            local_desc.dist_global = name
            locals_of[name] = local_name

        # rewrite all scope memlets to the local containers
        scope = state.scope_dict()
        for edge in state.edges():
            memlet = edge.memlet
            if memlet.is_empty() or memlet.data not in locals_of:
                continue
            involved = (edge.src is entry or edge.dst is exit_
                        or scope.get(edge.src) is entry
                        or scope.get(edge.dst) is entry)
            if not involved:
                continue
            local_name = locals_of[memlet.data]
            if edge.src is entry or edge.dst is exit_ \
                    or scope.get(edge.src) is entry or scope.get(edge.dst) is entry:
                new_memlet = Memlet(local_name, memlet.subset, wcr=memlet.wcr)
                state.add_edge(edge.src, edge.src_conn, edge.dst, edge.dst_conn,
                               new_memlet)
                state.remove_edge(edge)

        # rewire boundary edges: scatters feed the entry, exit feeds gathers
        for edge in state.in_edges(entry):
            if edge.memlet.is_empty() or isinstance(edge.src, Tasklet):
                continue
            if not isinstance(edge.src, AccessNode):
                continue
            name = edge.src.data
            if name not in locals_of:
                continue
            declared = locals_of[name]
            local_node = _add_scatter(sdfg, state, name, layout,
                                      local_name=declared,
                                      global_node=edge.src)
            local_desc = sdfg.arrays[declared]
            state.add_edge(local_node, None, entry, edge.dst_conn,
                           Memlet(declared, Range.from_shape(local_desc.shape)))
            state.remove_edge(edge)
            if state.in_degree(edge.src) == 0 and state.out_degree(edge.src) == 0:
                state.remove_node(edge.src)

        for edge in state.out_edges(exit_):
            if edge.memlet.is_empty() or not isinstance(edge.dst, AccessNode):
                continue
            name = edge.dst.data
            if name not in locals_of:
                continue
            declared = locals_of[name]
            local_desc = sdfg.arrays[declared]
            local_node = state.add_access(declared)
            state.add_edge(exit_, edge.src_conn, local_node, None,
                           Memlet(declared, Range.from_shape(local_desc.shape)))
            # gather back into the ORIGINAL output node so downstream
            # consumers stay ordered after the gather
            _add_gather(sdfg, state, local_node, name, layout,
                        global_node=edge.dst)
            state.remove_edge(edge)

        # shrink the iteration space to the local block
        first_local = sdfg.arrays[next(iter(locals_of.values()))]
        new_dims = [(Integer(0), s - 1, Integer(1)) for s in first_local.shape]
        entry.map.range = Range(new_dims)
        entry.exit_node.map.range = entry.map.range
        entry.map.distributed = True


class RemoveRedundantComm(Transformation):
    """Drop gather-then-scatter round trips of matching distributions
    (Fig. 11): consumers read the producer's local blocks directly."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            for node in state.nodes():
                if not isinstance(node, Tasklet):
                    continue
                op = getattr(node, "comm_op", None)
                if op is None or op["kind"] != "gather":
                    continue
                out_edges = state.out_edges(node)
                if len(out_edges) != 1:
                    continue
                global_node = out_edges[0].dst
                if not isinstance(global_node, AccessNode):
                    continue
                desc = sdfg.arrays[global_node.data]
                if not desc.transient:
                    continue  # program outputs must be gathered
                consumers = state.out_edges(global_node)
                if not consumers:
                    continue
                scatters = []
                for consumer in consumers:
                    c_op = getattr(consumer.dst, "comm_op", None)
                    if c_op is None or c_op["kind"] != "scatter" \
                            or c_op["layout"] != op["layout"]:
                        scatters = None
                        break
                    scatters.append(consumer.dst)
                if not scatters:
                    continue
                # the global must not be used in any other state
                used_elsewhere = any(
                    n.data == global_node.data
                    for st in sdfg.states() if st is not state
                    for n in st.data_nodes())
                if used_elsewhere:
                    continue
                yield (state, node, global_node, scatters)

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, gather, global_node, scatters = match
        # the gather's input local node supplies the data directly
        local_in = [e.src for e in state.in_edges(gather)
                    if isinstance(e.src, AccessNode)][0]
        for scatter in scatters:
            for out_edge in state.out_edges(scatter):
                target_local = out_edge.dst
                name = target_local.data
                # redirect all consumers of the scatter's local output to the
                # producer's local node
                for consumer_edge in state.out_edges(target_local):
                    state.add_edge(local_in, consumer_edge.src_conn,
                                   consumer_edge.dst, consumer_edge.dst_conn,
                                   consumer_edge.memlet)
                    state.remove_edge(consumer_edge)
                state.remove_edge(out_edge)
                if state.in_degree(target_local) == 0 \
                        and state.out_degree(target_local) == 0:
                    state.remove_node(target_local)
                # rename every remaining memlet (e.g. inner scope edges)
                _rename_container_in_state(state, name, local_in.data)
                if not any(n.data == name for st in sdfg.states()
                           for n in st.data_nodes()):
                    if name in sdfg.arrays and sdfg.arrays[name].transient:
                        del sdfg.arrays[name]
            for in_edge in state.in_edges(scatter):
                state.remove_edge(in_edge)
            state.remove_node(scatter)
        # remove the gather and the intermediate global container
        for edge in list(state.in_edges(gather)) + list(state.out_edges(gather)):
            state.remove_edge(edge)
        state.remove_node(gather)
        name = global_node.data
        if state.in_degree(global_node) == 0 and state.out_degree(global_node) == 0:
            state.remove_node(global_node)
        if not any(n.data == name for st in sdfg.states()
                   for n in st.data_nodes()):
            if name in sdfg.arrays and sdfg.arrays[name].transient:
                del sdfg.arrays[name]


class DeduplicateComm(Transformation):
    """Merge repeated scatters of the same container and layout."""

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            seen: Dict[Tuple[str, str], Tasklet] = {}
            for node in state.topological_nodes():
                if not isinstance(node, Tasklet):
                    continue
                op = getattr(node, "comm_op", None)
                if op is None or op["kind"] != "scatter":
                    continue
                key = (op["global"], op["layout"])
                if key in seen:
                    yield (state, seen[key], node)
                    return
                seen[key] = node

    @classmethod
    def apply_match(cls, sdfg, match, **options) -> None:
        state, keeper, duplicate = match
        keeper_local = [e.dst for e in state.out_edges(keeper)
                        if isinstance(e.dst, AccessNode)][0]
        for out_edge in state.out_edges(duplicate):
            dup_local = out_edge.dst
            name = dup_local.data
            for consumer_edge in state.out_edges(dup_local):
                state.add_edge(keeper_local, consumer_edge.src_conn,
                               consumer_edge.dst, consumer_edge.dst_conn,
                               consumer_edge.memlet)
                state.remove_edge(consumer_edge)
            state.remove_edge(out_edge)
            if state.in_degree(dup_local) == 0 and state.out_degree(dup_local) == 0:
                state.remove_node(dup_local)
            if name != keeper_local.data:
                _rename_container_in_state(state, name, keeper_local.data)
                if not any(n.data == name for st in sdfg.states()
                           for n in st.data_nodes()):
                    if name in sdfg.arrays and sdfg.arrays[name].transient:
                        del sdfg.arrays[name]
        for in_edge in state.in_edges(duplicate):
            state.remove_edge(in_edge)
            src = in_edge.src
            if isinstance(src, AccessNode) and state.in_degree(src) == 0 \
                    and state.out_degree(src) == 0:
                state.remove_node(src)
        state.remove_node(duplicate)


# ---------------------------------------------------------------------------
# PBLAS expansion for MatMul (§4.1 "Distributing Library Nodes")
# ---------------------------------------------------------------------------

@register_expansion(MatMul, "PBLAS")
def _expand_matmul_pblas(node: MatMul, sdfg, state):
    _install_dist_constants(sdfg)
    ins = {e.dst_conn: e for e in state.in_edges(node) if e.dst_conn}
    outs = {e.src_conn: e for e in state.out_edges(node) if e.src_conn}
    a_name = ins["_a"].memlet.data
    b_name = ins["_b"].memlet.data
    c_name = outs["_c"].memlet.data
    a_desc = sdfg.arrays[a_name]
    b_desc = sdfg.arrays[b_name]
    c_desc = sdfg.arrays[c_name]

    if a_desc.ndim == 2 and b_desc.ndim == 2:
        M, K = a_desc.shape
        N = b_desc.shape[1]
        la = _add_scatter(sdfg, state, a_name, "grid",
                          global_node=ins["_a"].src
                          if isinstance(ins["_a"].src, AccessNode) else None)
        lb = _add_scatter(sdfg, state, b_name, "grid",
                          global_node=ins["_b"].src
                          if isinstance(ins["_b"].src, AccessNode) else None)
        lc_name = sdfg.temp_data_name(f"__l{c_name}_")
        lc_shape = _local_shape(c_desc.shape, "grid")
        lc_desc = sdfg.add_transient(lc_name, lc_shape, c_desc.dtype)
        lc_desc.dist_layout = "grid"
        lc_desc.dist_global = c_name
        tasklet = state.add_tasklet(
            "pgemm", {"__a", "__b"}, {"__c"},
            f"__c = __pblas_pgemm(__a, __b, (({M}), ({K}), ({N})))")
        tasklet.comm_op = {"kind": "pgemm", "layout": "grid",
                           "global": c_name, "local": lc_name}
        state.add_edge(la, None, tasklet, "__a",
                       Memlet(la.data, Range.from_shape(sdfg.arrays[la.data].shape),
                              dynamic=True))
        state.add_edge(lb, None, tasklet, "__b",
                       Memlet(lb.data, Range.from_shape(sdfg.arrays[lb.data].shape),
                              dynamic=True))
        lc_node = state.add_access(lc_name)
        state.add_edge(tasklet, "__c", lc_node, None,
                       Memlet(lc_name, Range.from_shape(lc_shape)))
        orig_c = outs["_c"].dst
        state.remove_node(node)
        _add_gather(sdfg, state, lc_node, c_name, "grid",
                    global_node=orig_c if isinstance(orig_c, AccessNode) else None)
        for acc in (ins["_a"].src, ins["_b"].src):
            if acc in state and state.in_degree(acc) == 0 \
                    and state.out_degree(acc) == 0:
                state.remove_node(acc)
        return tasklet

    # matrix-vector (and transposed): A grid-distributed, x replicated
    transpose = a_desc.ndim == 1
    mat_name, vec_name = (b_name, a_name) if transpose else (a_name, b_name)
    mat_desc = sdfg.arrays[mat_name]
    M, N = mat_desc.shape
    mat_edge = ins["_a"] if not transpose else ins["_b"]
    lm = _add_scatter(sdfg, state, mat_name, "grid",
                      global_node=mat_edge.src
                      if isinstance(mat_edge.src, AccessNode) else None)
    vec_desc = sdfg.arrays[vec_name]
    tasklet = state.add_tasklet(
        "pgemv", {"__a", "__x"}, {"__y"},
        f"__y = __pblas_pgemv(__a, __x, (({M}), ({N})), "
        f"transpose={transpose!r})")
    tasklet.comm_op = {"kind": "pgemv", "layout": "grid",
                       "global": c_name, "local": None}
    state.add_edge(lm, None, tasklet, "__a",
                   Memlet(lm.data, Range.from_shape(sdfg.arrays[lm.data].shape),
                          dynamic=True))
    vec_edge = ins["_b"] if not transpose else ins["_a"]
    vec_node = (vec_edge.src if isinstance(vec_edge.src, AccessNode)
                else state.add_read(vec_name))
    state.add_edge(vec_node, None, tasklet, "__x",
                   Memlet(vec_name, Range.from_shape(vec_desc.shape),
                          dynamic=True))
    state.add_edge(tasklet, "__y", outs["_c"].dst, outs["_c"].dst_conn,
                   Memlet(c_name, Range.from_shape(c_desc.shape)))
    state.remove_node(node)
    for acc in (ins["_a"].src, ins["_b"].src):
        if acc in state and state.in_degree(acc) == 0 \
                and state.out_degree(acc) == 0:
            state.remove_node(acc)
    return tasklet


set_priority(MatMul, "distributed", ["PBLAS"])
