"""Distributed-memory transformations (§4) and the comm optimizer (§13)."""

from .commopt import DeduplicateCollectives, OverlapHaloExchange
from .distribute import (DeduplicateComm, DistributeElementWiseArrayOp,
                         RemoveRedundantComm)

__all__ = ["DistributeElementWiseArrayOp", "RemoveRedundantComm",
           "DeduplicateComm", "OverlapHaloExchange",
           "DeduplicateCollectives"]
