"""Distributed-memory transformations (§4)."""

from .distribute import (DeduplicateComm, DistributeElementWiseArrayOp,
                         RemoveRedundantComm)

__all__ = ["DistributeElementWiseArrayOp", "RemoveRedundantComm",
           "DeduplicateComm"]
