"""A miniature Legate-style runtime: an eager drop-in NumPy replacement.

Legate (the paper's second distributed comparator) intercepts each NumPy
operation, runs a runtime dependence analysis, partitions the operands over
logical regions, and launches distributed tasks per operation — with good
local BLAS performance but a fixed per-operation runtime-analysis cost and
no cross-operation fusion.  This shim reproduces that structure: every
operation executes eagerly (NumPy numerics) and charges

* a per-operation runtime-analysis overhead,
* GASNet-like transfer costs for the operand partitions that move, and
* local compute at near-native rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = ["LegateishRuntime", "LegateishArray"]

RUNTIME_ANALYSIS_S = 0.25e-3     # Legion dynamic dependence analysis per op
GASNET_LATENCY_S = 4e-6
GASNET_GBS = 6.0
NODE_FLOPS = 45e9
BLAS_EFFICIENCY = 0.85


@dataclass
class LegateishRuntime:
    """Tracks modeled time across eager operations."""

    nodes: int = 1
    modeled_time: float = 0.0
    operations: int = 0
    bytes_moved: int = 0

    def charge(self, flops: float, moved_bytes: float,
               library: bool = False) -> None:
        self.operations += 1
        rate = NODE_FLOPS * (BLAS_EFFICIENCY if library else 0.5) * self.nodes
        compute = flops / rate if rate else 0.0
        transfer = 0.0
        if moved_bytes and self.nodes > 1:
            transfer = GASNET_LATENCY_S + moved_bytes / (GASNET_GBS * 1e9)
            self.bytes_moved += int(moved_bytes)
        self.modeled_time += RUNTIME_ANALYSIS_S + compute + transfer

    def array(self, data: np.ndarray) -> "LegateishArray":
        return LegateishArray(np.asarray(data), self)


class LegateishArray:
    """Eager distributed array: NumPy semantics + per-op cost accounting."""

    __slots__ = ("data", "runtime")

    def __init__(self, data: np.ndarray, runtime: LegateishRuntime):
        self.data = np.asarray(data)
        self.runtime = runtime

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    def _wrap(self, result: np.ndarray, flops: float, moved: float,
              library: bool = False) -> "LegateishArray":
        self.runtime.charge(flops, moved, library)
        return LegateishArray(result, self.runtime)

    def _coerce(self, other):
        return other.data if isinstance(other, LegateishArray) else other

    def __add__(self, other):
        o = self._coerce(other)
        return self._wrap(self.data + o, self.data.size, 0)

    __radd__ = __add__

    def __sub__(self, other):
        return self._wrap(self.data - self._coerce(other), self.data.size, 0)

    def __rsub__(self, other):
        return self._wrap(self._coerce(other) - self.data, self.data.size, 0)

    def __mul__(self, other):
        return self._wrap(self.data * self._coerce(other), self.data.size, 0)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._wrap(self.data / self._coerce(other), self.data.size, 0)

    def __matmul__(self, other):
        o = self._coerce(other)
        result = self.data @ o
        if self.data.ndim == 2 and np.ndim(o) == 2:
            flops = 2.0 * self.data.shape[0] * self.data.shape[1] * o.shape[1]
            # SUMMA-like panel movement across nodes
            moved = (self.data.nbytes + o.nbytes) / max(self.runtime.nodes, 1) \
                * np.sqrt(self.runtime.nodes)
        else:
            flops = 2.0 * self.data.size
            moved = self.data.nbytes / max(self.runtime.nodes, 1)
        return self._wrap(result, flops, moved, library=True)

    @property
    def T(self) -> "LegateishArray":
        return self._wrap(self.data.T.copy(), 0,
                          self.data.nbytes if self.runtime.nodes > 1 else 0)

    def sum(self):
        return self._wrap(np.array([self.data.sum()]), self.data.size,
                          8 * self.runtime.nodes)

    def __getitem__(self, item):
        view = self.data[item]
        self.runtime.charge(0, 0)
        return LegateishArray(np.asarray(view), self.runtime)

    def __setitem__(self, item, value):
        self.runtime.charge(np.asarray(self.data[item]).size, 0)
        self.data[item] = self._coerce(value)

    def copy(self) -> "LegateishArray":
        return self._wrap(self.data.copy(), 0, 0)

    def numpy(self) -> np.ndarray:
        return self.data
