"""A miniature distributed-tasking framework in the style of Dask Array.

Reproduces Dask's *cost structure* (the comparator of Fig. 12): arrays are
split into chunks, operations build a lazy task graph, and ``compute()``
walks the graph through a **central scheduler** that charges a fixed
scheduling overhead per task and TCP-like transfer costs for every chunk
that moves between workers.  Numerics are real NumPy.

Supported operations cover the distributed benchmark kernels: element-wise
arithmetic, scalar broadcasting, matmul, transpose, reductions, and
``shift`` (the map_overlap analogue used by stencils).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DaskishArray", "DaskishScheduler", "from_array", "compute"]

#: scheduler and transport parameters (Dask's centralized scheduler handles
#: a few thousand tasks/second; workers speak TCP)
SCHEDULER_OVERHEAD_S = 0.8e-3          # per task
TCP_LATENCY_S = 60e-6
TCP_GBS = 1.2
WORKER_FLOPS = 35e9                    # per-worker effective rate


class _Task:
    __slots__ = ("key", "fn", "deps", "nbytes", "worker")

    def __init__(self, key, fn, deps, nbytes=0, worker=0):
        self.key = key
        self.fn = fn
        self.deps = deps
        self.nbytes = nbytes
        self.worker = worker


@dataclass
class DaskishScheduler:
    """Central scheduler: executes task graphs, modeling time."""

    workers: int = 1
    modeled_time: float = 0.0
    tasks_run: int = 0
    bytes_moved: int = 0

    def execute(self, graph: Dict, key) -> np.ndarray:
        cache: Dict = {}
        order = self._toposort(graph)
        worker_clock = [0.0] * self.workers
        scheduler_clock = 0.0
        producer_worker: Dict = {}
        for task_key in order:
            task = graph[task_key]
            args = [cache[d] for d in task.deps]
            # the central scheduler dispatches every task
            scheduler_clock += SCHEDULER_OVERHEAD_S
            worker = task.worker % self.workers
            start = max(worker_clock[worker], scheduler_clock)
            # transfer chunks produced on other workers (TCP)
            moved = 0
            for dep in task.deps:
                src_worker = producer_worker.get(dep, worker)
                if src_worker != worker:
                    dep_bytes = cache[dep].nbytes if hasattr(cache[dep], "nbytes") else 64
                    moved += dep_bytes
            if moved:
                start += TCP_LATENCY_S + moved / (TCP_GBS * 1e9)
                self.bytes_moved += moved
            result = task.fn(*args)
            flops = getattr(result, "size", 1) * 2
            worker_clock[worker] = start + flops / WORKER_FLOPS
            cache[task_key] = result
            producer_worker[task_key] = worker
            self.tasks_run += 1
        self.modeled_time += max(max(worker_clock), scheduler_clock)
        return cache[key]

    @staticmethod
    def _toposort(graph: Dict) -> List:
        seen = set()
        order: List = []

        def visit(key):
            if key in seen:
                return
            seen.add(key)
            for dep in graph[key].deps:
                visit(dep)
            order.append(key)

        for key in graph:
            visit(key)
        return order


_COUNTER = itertools.count()


class DaskishArray:
    """A lazy chunked array (1-D or 2-D chunk grids)."""

    def __init__(self, graph: Dict, chunk_keys, chunk_shape, shape, dtype,
                 scheduler: DaskishScheduler):
        self.graph = graph
        self.chunk_keys = chunk_keys          # ndarray (object) of keys
        self.chunk_shape = chunk_shape        # chunks per dim
        self.shape = shape
        self.dtype = dtype
        self.scheduler = scheduler

    # -- construction -------------------------------------------------------
    @staticmethod
    def from_array(data: np.ndarray, chunks: Tuple[int, ...],
                   scheduler: Optional[DaskishScheduler] = None) -> "DaskishArray":
        scheduler = scheduler or DaskishScheduler()
        data = np.asarray(data)
        grid = tuple(math.ceil(s / c) for s, c in zip(data.shape, chunks))
        graph: Dict = {}
        keys = np.empty(grid, dtype=object)
        for index in np.ndindex(*grid):
            slices = tuple(slice(i * c, min((i + 1) * c, s))
                           for i, c, s in zip(index, chunks, data.shape))
            key = ("chunk", next(_COUNTER))
            block = np.copy(data[slices])
            graph[key] = _Task(key, (lambda b=block: b), [],
                               worker=_flat_index(index, grid))
            keys[index] = key
        return DaskishArray(graph, keys, grid, data.shape, data.dtype, scheduler)

    # -- element-wise -------------------------------------------------------
    def _elementwise(self, other, op: Callable, symbol: str) -> "DaskishArray":
        graph = dict(self.graph)
        keys = np.empty(self.chunk_shape, dtype=object)
        other_is_array = isinstance(other, DaskishArray)
        if other_is_array:
            graph.update(other.graph)
        for index in np.ndindex(*self.chunk_shape):
            key = (symbol, next(_COUNTER))
            deps = [self.chunk_keys[index]]
            if other_is_array:
                deps.append(other.chunk_keys[index])
                fn = (lambda a, b, _op=op: _op(a, b))
            else:
                fn = (lambda a, _op=op, _o=other: _op(a, _o))
            graph[key] = _Task(key, fn, deps,
                               worker=_flat_index(index, self.chunk_shape))
            keys[index] = key
        return DaskishArray(graph, keys, self.chunk_shape, self.shape,
                            self.dtype, self.scheduler)

    def __add__(self, other):
        return self._elementwise(other, np.add, "add")

    def __radd__(self, other):
        return self._elementwise(other, lambda a, b=other: b + a, "radd") \
            if not isinstance(other, DaskishArray) else other.__add__(self)

    def __sub__(self, other):
        return self._elementwise(other, np.subtract, "sub")

    def __mul__(self, other):
        return self._elementwise(other, np.multiply, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._elementwise(other, np.divide, "div")

    # -- matmul ------------------------------------------------------------
    def __matmul__(self, other: "DaskishArray") -> "DaskishArray":
        graph = dict(self.graph)
        graph.update(other.graph)
        scheduler = self.scheduler
        if len(self.chunk_shape) == 2 and len(other.chunk_shape) == 2:
            gm, gk = self.chunk_shape
            gk2, gn = other.chunk_shape
            keys = np.empty((gm, gn), dtype=object)
            for i in range(gm):
                for j in range(gn):
                    partials = []
                    for k in range(min(gk, gk2)):
                        pkey = ("mm", next(_COUNTER))
                        graph[pkey] = _Task(
                            pkey, (lambda a, b: a @ b),
                            [self.chunk_keys[i, k], other.chunk_keys[k, j]],
                            worker=i * gn + j)
                        partials.append(pkey)
                    skey = ("mmsum", next(_COUNTER))
                    graph[skey] = _Task(
                        skey, (lambda *parts: np.sum(parts, axis=0)),
                        partials, worker=i * gn + j)
                    keys[i, j] = skey
            shape = (self.shape[0], other.shape[1])
            return DaskishArray(graph, keys, (gm, gn), shape, self.dtype,
                                scheduler)
        # matrix-vector: gather the vector, chunked rows
        if len(self.chunk_shape) == 2 and len(other.chunk_shape) == 1:
            gm, gk = self.chunk_shape
            keys = np.empty((gm,), dtype=object)
            for i in range(gm):
                partials = []
                for k in range(gk):
                    pkey = ("mv", next(_COUNTER))
                    graph[pkey] = _Task(pkey, (lambda a, x: a @ x),
                                        [self.chunk_keys[i, k],
                                         other.chunk_keys[min(k, other.chunk_shape[0] - 1)]],
                                        worker=i)
                    partials.append(pkey)
                skey = ("mvsum", next(_COUNTER))
                graph[skey] = _Task(skey,
                                    (lambda *parts: np.sum(parts, axis=0)),
                                    partials, worker=i)
                keys[i] = skey
            return DaskishArray(graph, keys, (gm,), (self.shape[0],),
                                self.dtype, scheduler)
        raise NotImplementedError("daskish matmul supports 2Dx2D and 2Dx1D")

    @property
    def T(self) -> "DaskishArray":
        if len(self.chunk_shape) != 2:
            return self
        graph = dict(self.graph)
        gm, gn = self.chunk_shape
        keys = np.empty((gn, gm), dtype=object)
        for i in range(gm):
            for j in range(gn):
                key = ("t", next(_COUNTER))
                graph[key] = _Task(key, (lambda a: a.T),
                                   [self.chunk_keys[i, j]], worker=j * gm + i)
                keys[j, i] = key
        return DaskishArray(graph, keys, (gn, gm),
                            (self.shape[1], self.shape[0]), self.dtype,
                            self.scheduler)

    def sum(self) -> "DaskishArray":
        graph = dict(self.graph)
        partials = []
        for index in np.ndindex(*self.chunk_shape):
            key = ("psum", next(_COUNTER))
            graph[key] = _Task(key, (lambda a: np.sum(a)),
                               [self.chunk_keys[index]],
                               worker=_flat_index(index, self.chunk_shape))
            partials.append(key)
        key = ("sum", next(_COUNTER))
        graph[key] = _Task(key, (lambda *parts: np.atleast_1d(np.sum(parts))),
                           partials)
        keys = np.empty((1,), dtype=object)
        keys[0] = key
        return DaskishArray(graph, keys, (1,), (1,), self.dtype, self.scheduler)

    def shift(self, offset: int) -> "DaskishArray":
        """1-D halo access (map_overlap analogue): element i of the result is
        element i+offset of the source (zero at the boundary)."""
        if len(self.chunk_shape) != 1:
            raise NotImplementedError("shift supports 1-D arrays")
        graph = dict(self.graph)
        (gc,) = self.chunk_shape
        keys = np.empty((gc,), dtype=object)
        for c in range(gc):
            deps = [self.chunk_keys[c]]
            neighbor = c + (1 if offset > 0 else -1)
            has_neighbor = 0 <= neighbor < gc
            if has_neighbor and offset != 0:
                deps.append(self.chunk_keys[neighbor])

            def fn(block, *rest, _offset=offset, _has=has_neighbor):
                out = np.zeros_like(block)
                if _offset > 0:
                    out[:-_offset or None] = block[_offset:]
                    if _has and rest:
                        out[-_offset:] = rest[0][:_offset]
                elif _offset < 0:
                    out[-_offset:] = block[:_offset]
                    if _has and rest:
                        out[:-_offset] = rest[0][_offset:]
                else:
                    out[:] = block
                return out

            key = ("shift", next(_COUNTER))
            graph[key] = _Task(key, fn, deps, worker=c)
            keys[c] = key
        return DaskishArray(graph, keys, (gc,), self.shape, self.dtype,
                            self.scheduler)

    # -- materialization ------------------------------------------------------
    def compute(self) -> np.ndarray:
        """Assemble the full array (drives the scheduler)."""
        blocks = np.empty(self.chunk_shape, dtype=object)
        for index in np.ndindex(*self.chunk_shape):
            blocks[index] = self.scheduler.execute(self.graph,
                                                   self.chunk_keys[index])
        return np.block(blocks.tolist()) if len(self.chunk_shape) > 1 \
            else np.concatenate(list(blocks))


def _flat_index(index, grid) -> int:
    flat = 0
    for i, g in zip(index, grid):
        flat = flat * g + i
    return flat


def from_array(data: np.ndarray, chunks,
               scheduler: Optional[DaskishScheduler] = None) -> DaskishArray:
    if isinstance(chunks, int):
        chunks = (chunks,) * np.asarray(data).ndim
    return DaskishArray.from_array(data, chunks, scheduler)


def compute(array: DaskishArray) -> np.ndarray:
    return array.compute()
