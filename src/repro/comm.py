"""``repro.comm``: the explicit communication namespace (§4.3).

Re-exports :mod:`repro.distributed.comm_api` so annotated programs can write
``repro.comm.BlockScatter(...)`` exactly as the paper writes
``dace.comm.BlockScatter(...)``.
"""

from .distributed.comm_api import (Allreduce, Barrier, Bcast, BlockGather,
                                   BlockScatter, HaloExchange, Irecv, Isend,
                                   Waitall, rank, size)

__all__ = ["BlockScatter", "BlockGather", "HaloExchange", "Isend", "Irecv",
           "Waitall", "Allreduce", "Bcast", "Barrier", "rank", "size"]
