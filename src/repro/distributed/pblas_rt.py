"""PBLAS substitute: distributed BLAS over the simulated MPI (§4.1).

Implements the routines the paper's transformations expand to —
``p?gemm`` (SUMMA-style), ``p?gemv`` (with transpose), ``p?tran``, and the
``p?gemr2d``-style redistribution — on 2-D block-distributed operands.
Broadcasts along grid rows/columns use point-to-point messages, so the
LogGP clock accounting composes without sub-communicators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..simmpi.comm import Comm
from ..simmpi.grid import ProcessGrid
from .block import block_bounds

__all__ = ["pgemm", "pgemv", "ptran", "pgemr2d"]

_TAG_ROW = 101
_TAG_COL = 102
_TAG_RED = 103
_TAG_TRN = 104


def _row_bcast(comm: Comm, grid: ProcessGrid, owner_col: int, data, shape, dtype):
    """Broadcast within a grid row from the member at *owner_col*."""
    row, col = grid.coords(comm.rank)
    pr, pc = grid.dims
    comm._world.account("PanelBcast", count=1)
    if col == owner_col:
        for dst_col in range(pc):
            if dst_col != col:
                comm.Send(data, grid.rank_of((row, dst_col)), tag=_TAG_ROW)
        return data
    recv = np.empty(shape, dtype=dtype)
    comm.Recv(recv, grid.rank_of((row, owner_col)), tag=_TAG_ROW)
    return recv


def _col_bcast(comm: Comm, grid: ProcessGrid, owner_row: int, data, shape, dtype):
    row, col = grid.coords(comm.rank)
    pr, pc = grid.dims
    comm._world.account("PanelBcast", count=1)
    if row == owner_row:
        for dst_row in range(pr):
            if dst_row != row:
                comm.Send(data, grid.rank_of((dst_row, col)), tag=_TAG_COL)
        return data
    recv = np.empty(shape, dtype=dtype)
    comm.Recv(recv, grid.rank_of((owner_row, col)), tag=_TAG_COL)
    return recv


def pgemm(comm: Comm, grid: ProcessGrid, local_a: np.ndarray,
          local_b: np.ndarray, global_shapes, alpha: float = 1.0,
          beta: float = 0.0, local_c: Optional[np.ndarray] = None) -> np.ndarray:
    """SUMMA: C = alpha*A@B + beta*C on 2-D block-distributed operands.

    ``global_shapes = (M, K, N)``.  A is (M,K)-distributed, B is (K,N)-
    distributed, C is (M,N)-distributed, all on the same (Pr, Pc) grid.
    """
    M, K, N = global_shapes
    pr, pc = grid.dims
    row, col = grid.coords(comm.rank)
    m_lo, m_hi = block_bounds(M, pr, row)
    n_lo, n_hi = block_bounds(N, pc, col)
    acc = np.zeros((m_hi - m_lo, n_hi - n_lo), dtype=np.result_type(local_a,
                                                                    local_b))
    # common K partition: union of A's (by grid columns) and B's (by grid
    # rows) block boundaries, so every panel has one A owner and one B owner
    cuts = {0, K}
    for c in range(pc):
        cuts.update(block_bounds(K, pc, c))
    for r in range(pr):
        cuts.update(block_bounds(K, pr, r))
    boundaries = sorted(cuts)
    for lo, hi in zip(boundaries[:-1], boundaries[1:], strict=True):
        if lo >= hi:
            continue
        a_owner = next(c for c in range(pc)
                       if block_bounds(K, pc, c)[0] <= lo < block_bounds(K, pc, c)[1])
        b_owner = next(r for r in range(pr)
                       if block_bounds(K, pr, r)[0] <= lo < block_bounds(K, pr, r)[1])
        k_lo_a = block_bounds(K, pc, a_owner)[0]
        k_lo_b = block_bounds(K, pr, b_owner)[0]
        a_shape = (m_hi - m_lo, hi - lo)
        a_slice = (np.ascontiguousarray(local_a[:, lo - k_lo_a:hi - k_lo_a])
                   if col == a_owner else None)
        a_panel = _row_bcast(comm, grid, a_owner, a_slice, a_shape, acc.dtype)
        b_shape = (hi - lo, n_hi - n_lo)
        b_slice = (np.ascontiguousarray(local_b[lo - k_lo_b:hi - k_lo_b, :])
                   if row == b_owner else None)
        b_panel = _col_bcast(comm, grid, b_owner, b_slice, b_shape, acc.dtype)
        acc += a_panel @ b_panel
        comm.advance(2.0 * a_shape[0] * (hi - lo) * b_shape[1]
                     / _local_gemm_rate())
    if local_c is not None and beta != 0.0:
        return alpha * acc + beta * local_c
    return alpha * acc


def _local_gemm_rate() -> float:
    from ..config import Config

    return (Config.get("cpu.flops_gflops") * 1e9
            * Config.get("cpu.mkl_gemm_efficiency") / 2.0)


def pgemv(comm: Comm, grid: ProcessGrid, local_a: np.ndarray,
          x_block: np.ndarray, global_shapes, transpose: bool = False) -> np.ndarray:
    """y = A @ x (or A.T @ x) with A 2-D block-distributed.

    ``x`` is distributed along grid columns (replicated across rows) for the
    normal case, and along grid rows for the transposed case.  The result is
    distributed along rows (normal) or columns (transposed) and replicated
    across the orthogonal grid dimension — matching what a chain like
    ``A.T @ (A @ x)`` (atax) needs with no redistribution.
    """
    M, N = global_shapes
    pr, pc = grid.dims
    row, col = grid.coords(comm.rank)
    if not transpose:
        partial = local_a @ x_block
        # sum partials across the grid row; leave result replicated row-wide
        result = _ring_reduce_replicate(comm, grid, partial, axis="row")
    else:
        partial = local_a.T @ x_block
        result = _ring_reduce_replicate(comm, grid, partial, axis="col")
    return result


def _ring_reduce_replicate(comm: Comm, grid: ProcessGrid, partial: np.ndarray,
                           axis: str) -> np.ndarray:
    """Sum partials along a grid row/column and replicate the result there."""
    pr, pc = grid.dims
    row, col = grid.coords(comm.rank)
    comm._world.account("RingReduce", count=1)
    members = ([grid.rank_of((row, c)) for c in range(pc)] if axis == "row"
               else [grid.rank_of((r, col)) for r in range(pr)])
    me = members.index(comm.rank)
    leader = members[0]
    if comm.rank == leader:
        total = np.copy(partial)
        for other in members[1:]:
            buf = np.empty_like(partial)
            comm.Recv(buf, other, tag=_TAG_RED)
            total += buf
        for other in members[1:]:
            comm.Send(total, other, tag=_TAG_RED + 1)
        return total
    comm.Send(partial, leader, tag=_TAG_RED)
    total = np.empty_like(partial)
    comm.Recv(total, leader, tag=_TAG_RED + 1)
    return total


def ptran(comm: Comm, grid: ProcessGrid, local_a: np.ndarray,
          global_shape) -> np.ndarray:
    """Distributed transpose: block (i,j) of A becomes block (j,i) of A.T.

    Requires a square grid for direct pairwise exchange; on non-square grids
    the blocks are routed through a gather at the diagonal owner.
    """
    M, N = global_shape
    pr, pc = grid.dims
    row, col = grid.coords(comm.rank)
    if pr == pc:
        partner = grid.rank_of((col, row))
        if partner == comm.rank:
            return np.ascontiguousarray(local_a.T)
        sent = np.ascontiguousarray(local_a.T)
        recv_shape = _transposed_block_shape(M, N, grid, row, col)
        recv = np.empty(recv_shape, dtype=local_a.dtype)
        if comm.rank < partner:
            comm.Send(sent, partner, tag=_TAG_TRN)
            comm.Recv(recv, partner, tag=_TAG_TRN)
        else:
            comm.Recv(recv, partner, tag=_TAG_TRN)
            comm.Send(sent, partner, tag=_TAG_TRN)
        return recv
    raise NotImplementedError("ptran requires a square process grid")


def _transposed_block_shape(M, N, grid, row, col):
    pr, pc = grid.dims
    # after transpose, rank (row, col) holds the (row, col) block of the
    # (N, M) matrix
    r_lo, r_hi = block_bounds(N, pr, row)
    c_lo, c_hi = block_bounds(M, pc, col)
    return (r_hi - r_lo, c_hi - c_lo)


def pgemr2d(comm: Comm, src_grid: ProcessGrid, dst_grid: ProcessGrid,
            local_block: np.ndarray, global_shape) -> np.ndarray:
    """Redistribution between grids (gather-at-root then re-scatter)."""
    from .block import gather_blocks, scatter_blocks

    full = np.empty(global_shape, dtype=local_block.dtype)
    gathered = np.empty(global_shape, dtype=local_block.dtype) \
        if comm.rank == 0 else None
    # everyone sends its block to root
    if comm.rank == 0:
        gather_blocks(gathered, local_block, src_grid, 0)
        for other in range(1, comm.size):
            coords_shape = _block_shape_of(global_shape, src_grid, other)
            buf = np.empty(coords_shape, dtype=local_block.dtype)
            comm.Recv(buf, other, tag=_TAG_TRN + 10)
            gather_blocks(gathered, buf, src_grid, other)
        full = gathered
        for other in range(1, comm.size):
            comm.Send(full, other, tag=_TAG_TRN + 11)
    else:
        comm.Send(np.ascontiguousarray(local_block), 0, tag=_TAG_TRN + 10)
        comm.Recv(full, 0, tag=_TAG_TRN + 11)
    return scatter_blocks(full, dst_grid, comm.rank)


def _block_shape_of(global_shape, grid, rank):
    from .block import block_shape

    return block_shape(global_shape, grid, grid.coords(rank))
