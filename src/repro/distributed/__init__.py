"""Distributed data-centric programs over the simulated cluster (§4)."""

from . import comm_api, frontend_ext  # noqa: F401  (registers replacements)
from .block import block_bounds, block_shape, gather_blocks, local_block, scatter_blocks
from .context import DistContext, current, set_current
from .pblas_rt import pgemm, pgemr2d, pgemv, ptran
from .runner import DistributedResult, run_distributed

__all__ = [
    "comm_api", "run_distributed", "DistributedResult",
    "DistContext", "current", "set_current",
    "block_bounds", "block_shape", "local_block", "scatter_blocks",
    "gather_blocks", "pgemm", "pgemv", "ptran", "pgemr2d",
]
