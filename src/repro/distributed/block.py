"""Block distribution arithmetic (§4.1).

Arrays distribute onto Cartesian process grids in contiguous blocks (the
paper's default; block-cyclic is available for fine-tuning).  These helpers
compute per-rank block bounds, local shapes, and assemble/disassemble global
arrays — shared by the distributed runtime, the PBLAS substitute, and the
``repro.comm`` explicit API.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..simmpi.grid import ProcessGrid

__all__ = ["block_bounds", "local_block", "scatter_blocks", "gather_blocks",
           "block_shape"]


def block_bounds(extent: int, parts: int, index: int) -> Tuple[int, int]:
    """Half-open bounds of block *index* when *extent* elements are split
    into *parts* contiguous blocks (remainder spread over leading blocks)."""
    base = extent // parts
    remainder = extent % parts
    start = index * base + min(index, remainder)
    stop = start + base + (1 if index < remainder else 0)
    return start, stop


def block_shape(shape: Sequence[int], grid: ProcessGrid,
                coords: Sequence[int]) -> Tuple[int, ...]:
    dims = []
    for axis, extent in enumerate(shape):
        if axis < grid.ndims:
            lo, hi = block_bounds(extent, grid.dims[axis], coords[axis])
            dims.append(hi - lo)
        else:
            dims.append(extent)
    return tuple(dims)


def local_block(array: np.ndarray, grid: ProcessGrid, rank: int) -> np.ndarray:
    """The block of *array* owned by *rank* (view)."""
    coords = grid.coords(rank)
    slices: List[slice] = []
    for axis, extent in enumerate(array.shape):
        if axis < grid.ndims:
            lo, hi = block_bounds(extent, grid.dims[axis], coords[axis])
            slices.append(slice(lo, hi))
        else:
            slices.append(slice(None))
    return array[tuple(slices)]


def scatter_blocks(array: np.ndarray, grid: ProcessGrid, rank: int) -> np.ndarray:
    """Copy of the rank's block (the functional effect of a block scatter)."""
    return np.copy(local_block(array, grid, rank))


def gather_blocks(global_out: np.ndarray, block: np.ndarray,
                  grid: ProcessGrid, rank: int) -> None:
    """Write a rank's block back into the global array."""
    view = local_block(global_out, grid, rank)
    view[...] = block.reshape(view.shape)
