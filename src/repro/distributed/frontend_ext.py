"""Frontend integration of ``repro.comm``: communication calls become
tasklets in the program's dataflow (the paper's Library-Node integration,
§4.3), enabling the graph-level communication transformations to see them.
"""

from __future__ import annotations

import ast
from typing import Tuple

from ..frontend.astutils import UnsupportedFeature, unparse
from ..frontend.parser import ArrayOp, ConstOp, SymOp
from ..frontend.replacements import register_replacement
from ..ir.memlet import Memlet
from ..symbolic import Expr, Range
from . import comm_api

__all__ = []


def _symbolic_shape(visitor, node: ast.expr) -> Tuple[Expr, ...]:
    elements = list(node.elts) if isinstance(node, (ast.Tuple, ast.List)) \
        else [node]
    shape = []
    for element in elements:
        operand = visitor._parse_expr(element)
        if isinstance(operand, SymOp):
            shape.append(operand.expr)
        elif isinstance(operand, ConstOp):
            from ..symbolic import Integer

            shape.append(Integer(int(operand.value)))
        else:
            raise UnsupportedFeature(
                "comm shapes must be constants or symbolic expressions")
    return tuple(shape)


def _install_constants(visitor) -> None:
    visitor.sdfg.constants.setdefault("__comm_BlockScatter", comm_api.BlockScatter)
    visitor.sdfg.constants.setdefault("__comm_BlockGather", comm_api.BlockGather)
    visitor.sdfg.constants.setdefault("__comm_HaloExchange", comm_api.HaloExchange)
    visitor.sdfg.constants.setdefault("__comm_Allreduce", comm_api.Allreduce)
    visitor.sdfg.constants.setdefault("__comm_Barrier", comm_api.Barrier)


@register_replacement(comm_api.BlockScatter)
def _block_scatter(visitor, node: ast.Call):
    if len(node.args) < 2:
        raise UnsupportedFeature(
            "repro.comm.BlockScatter(global, local_shape) requires the "
            "local shape (see DESIGN.md on the API deviation)")
    source = visitor._parse_expr(node.args[0])
    if not isinstance(source, ArrayOp):
        raise UnsupportedFeature("BlockScatter requires an array argument")
    shape = _symbolic_shape(visitor, node.args[1])
    _install_constants(visitor)
    desc = visitor._desc(source)
    out = visitor._tmp(shape, desc.dtype)
    state = visitor._new_state("block_scatter")
    shape_code = "(" + ", ".join(f"({s})" for s in shape) + ",)"
    tasklet = state.add_tasklet(
        "BlockScatter", {"__g"}, {"__out"},
        f"__out = __comm_BlockScatter(__g, {shape_code})")
    state.add_edge(state.add_read(source.name), None, tasklet, "__g",
                   Memlet(source.name, Range.from_shape(desc.shape),
                          dynamic=True))
    out_desc = visitor.sdfg.arrays[out]
    state.add_edge(tasklet, "__out", state.add_write(out), None,
                   Memlet(out, Range.from_shape(out_desc.shape)))
    return ArrayOp(out)


@register_replacement(comm_api.BlockGather)
def _block_gather(visitor, node: ast.Call):
    source = visitor._parse_expr(node.args[0])
    if not isinstance(source, ArrayOp):
        raise UnsupportedFeature("BlockGather requires an array argument")
    if len(node.args) < 2:
        raise UnsupportedFeature(
            "repro.comm.BlockGather(local, global_shape) requires the "
            "global shape (see DESIGN.md on the API deviation)")
    shape = _symbolic_shape(visitor, node.args[1])
    _install_constants(visitor)
    desc = visitor._desc(source)
    out = visitor._tmp(shape, desc.dtype)
    state = visitor._new_state("block_gather")
    shape_code = "(" + ", ".join(f"({s})" for s in shape) + ",)"
    tasklet = state.add_tasklet(
        "BlockGather", {"__l"}, {"__out"},
        f"__out = __comm_BlockGather(__l, {shape_code})")
    state.add_edge(state.add_read(source.name), None, tasklet, "__l",
                   Memlet(source.name, Range.from_shape(desc.shape),
                          dynamic=True))
    out_desc = visitor.sdfg.arrays[out]
    state.add_edge(tasklet, "__out", state.add_write(out), None,
                   Memlet(out, Range.from_shape(out_desc.shape)))
    return ArrayOp(out)


@register_replacement(comm_api.HaloExchange)
def _halo_exchange(visitor, node: ast.Call):
    target = visitor._parse_expr(node.args[0])
    if not isinstance(target, ArrayOp):
        raise UnsupportedFeature("HaloExchange requires an array argument")
    _install_constants(visitor)
    desc = visitor._desc(target)
    state = visitor._new_state("halo_exchange")
    conn = "__halo"
    tasklet = state.add_tasklet(
        "HaloExchange", {conn}, {conn + "_out"},
        f"__comm_HaloExchange({conn})\n{conn}_out = {conn}")
    full = Range.from_shape(desc.shape)
    state.add_edge(state.add_read(target.name), None, tasklet, conn,
                   Memlet(target.name, full, dynamic=True))
    state.add_edge(tasklet, conn + "_out", state.add_write(target.name), None,
                   Memlet(target.name, full, dynamic=True))
    return target


@register_replacement(comm_api.Allreduce)
def _allreduce(visitor, node: ast.Call):
    value = visitor._parse_expr(node.args[0])
    _install_constants(visitor)
    if not isinstance(value, ArrayOp):
        raise UnsupportedFeature("comm.Allreduce requires a container operand")
    desc = visitor._desc(value)
    out = visitor._tmp((), desc.dtype)
    state = visitor._new_state("allreduce")
    from ..ir.data import Scalar

    subset = (Range.from_string("0") if isinstance(desc, Scalar)
              else Range.from_shape(desc.shape))
    tasklet = state.add_tasklet("Allreduce", {"__v"}, {"__out"},
                                "__out = __comm_Allreduce(__v)")
    state.add_edge(state.add_read(value.name), None, tasklet, "__v",
                   Memlet(value.name, subset, dynamic=True))
    state.add_edge(tasklet, "__out", state.add_write(out), None,
                   Memlet(out, Range.from_string("0")))
    return ArrayOp(out)


@register_replacement(comm_api.Barrier)
def _barrier(visitor, node: ast.Call):
    _install_constants(visitor)
    state = visitor._new_state("barrier")
    tasklet = state.add_tasklet("Barrier", set(), {"__out"},
                                "__comm_Barrier()\n__out = 0")
    sink = visitor._tmp((), visitor._dtype_of(ConstOp(0)))
    state.add_edge(tasklet, "__out", state.add_write(sink), None,
                   Memlet(sink, Range.from_string("0")))
    return ConstOp(0)
