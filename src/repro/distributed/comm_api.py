"""Explicit communication operations: the ``repro.comm`` namespace (§4.3).

These give power users direct control over partitioning with *pythonic*
local-view semantics: ``BlockScatter`` returns the calling rank's block,
``BlockGather`` reassembles (and replicates) the global view, and
``HaloExchange`` swaps one-deep halos with grid neighbors using nonblocking
sends/receives over derived vector datatypes (no extraneous copies for the
strided column halos, mirroring the paper's ``MPI_Type_vector`` usage).

All operations are callable from plain Python under
:func:`repro.distributed.run_distributed`, and are recognized by the
``@repro.program`` frontend (registered as replacements), integrating the
communication into the program's dataflow.

API deviation from the paper: ``BlockScatter``/``BlockGather`` take the
result shape explicitly (the paper's frontend infers it from the assignment
target); see DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..simmpi.comm import Request, VectorType
from . import context
from .block import block_bounds, gather_blocks, scatter_blocks

__all__ = ["BlockScatter", "BlockGather", "HaloExchange", "Isend", "Irecv",
           "Waitall", "Allreduce", "Bcast", "Barrier", "rank", "size"]


def rank() -> int:
    return context.require().rank


def size() -> int:
    return context.require().size


def _layout_grid(ctx, layout: str):
    from ..simmpi.grid import ProcessGrid

    if layout == "row":
        return ProcessGrid(ctx.size, ndims=1)
    return ctx.grid  # "grid": the context's (2-D) grid


def BlockScatter(global_array: np.ndarray,
                 shape: Optional[Sequence[int]] = None,
                 layout: str = "grid") -> np.ndarray:
    """Return this rank's block of a block-distributed global array.

    ``layout`` selects the distribution: ``"grid"`` blocks over the 2-D
    process grid (paper §4.1, matrices); ``"row"`` is the 1-D block
    distribution used for element-wise operations and vectors;
    ``"replicate"`` broadcasts the full array.  The root conceptually
    scatters; the network model charges every rank's clock.
    """
    ctx = context.require()
    arr = np.asarray(global_array)
    net = ctx.comm._world.net
    if layout == "replicate":
        ctx.comm.advance(net.bcast(int(arr.nbytes), ctx.size))
        return np.copy(arr)
    grid = _layout_grid(ctx, layout)
    block = scatter_blocks(arr, grid, ctx.rank)
    if shape is not None and tuple(block.shape) != tuple(int(s) for s in shape):
        raise ValueError(
            f"BlockScatter: rank {ctx.rank} block has shape {block.shape}, "
            f"expected {tuple(shape)} (choose sizes divisible by the grid "
            f"{grid.dims})")
    ctx.comm.advance(net.scatter(int(arr.nbytes), ctx.size))
    if ctx.rank == 0 and ctx.size > 1:
        ctx.comm._world.record(int(arr.nbytes))
        ctx.comm._world.account("BlockScatter", nbytes=int(arr.nbytes))
    ctx.comm._world.account("BlockScatter", count=1)
    return block


def BlockGather(local_block: np.ndarray,
                shape: Optional[Sequence[int]] = None,
                layout: str = "grid") -> np.ndarray:
    """Reassemble the global array from per-rank blocks (replicated on all
    ranks so the result is usable everywhere; costed as gather+broadcast)."""
    ctx = context.require()
    comm = ctx.comm
    grid = _layout_grid(ctx, layout)
    local_block = np.ascontiguousarray(local_block)
    if shape is None:
        # infer: every dimension scales by the grid extent (uniform blocks)
        shape = tuple(s * (grid.dims[d] if d < grid.ndims else 1)
                      for d, s in enumerate(local_block.shape))
    blocks = comm._exchange(local_block)
    out = np.empty(tuple(int(s) for s in shape), dtype=local_block.dtype)
    for other, block in enumerate(blocks):
        gather_blocks(out, block, grid, other)
    net = comm._world.net
    comm._sync_clocks(net.gather(int(out.nbytes), ctx.size)
                      + net.bcast(int(out.nbytes), ctx.size),
                      "BlockGather()")
    if ctx.rank == 0 and ctx.size > 1:
        comm._world.record(2 * int(out.nbytes))
        comm._world.account("BlockGather", nbytes=2 * int(out.nbytes))
    comm._world.account("BlockGather", count=1)
    return out


def HaloExchange(padded: np.ndarray, halo: int = 1) -> np.ndarray:
    """Exchange *halo*-deep boundary layers with the four 2-D grid neighbors.

    ``padded`` is the local block with a halo frame; interior is
    ``padded[halo:-halo, halo:-halo]``.  Row halos are contiguous; column
    halos use a derived vector datatype.
    """
    ctx = context.require()
    comm, grid = ctx.comm, ctx.grid
    if grid.ndims != 2:
        raise ValueError("HaloExchange requires a 2-D process grid")
    neighbors = grid.neighbors(ctx.rank)
    rows, cols = padded.shape
    from .commopt.runtime import validate_halo_extents

    validate_halo_extents((rows, cols), halo, neighbors, ctx.rank)
    requests = []
    # receive into halo frames
    recv_specs = {
        "north": (slice(0, halo), slice(halo, cols - halo)),
        "south": (slice(rows - halo, rows), slice(halo, cols - halo)),
        "west": (slice(halo, rows - halo), slice(0, halo)),
        "east": (slice(halo, rows - halo), slice(cols - halo, cols)),
    }
    send_specs = {
        "north": (slice(halo, 2 * halo), slice(halo, cols - halo)),
        "south": (slice(rows - 2 * halo, rows - halo), slice(halo, cols - halo)),
        "west": (slice(halo, rows - halo), slice(halo, 2 * halo)),
        "east": (slice(halo, rows - halo), slice(cols - 2 * halo, cols - halo)),
    }
    opposite = {"north": "south", "south": "north", "west": "east",
                "east": "west"}
    tags = {"north": 11, "south": 12, "west": 13, "east": 14}

    recv_bufs = {}
    for side, neighbor in neighbors.items():
        if neighbor < 0:
            continue
        buf = np.empty_like(padded[recv_specs[side]])
        recv_bufs[side] = buf
        requests.append(comm.Irecv(buf, neighbor, tag=tags[opposite[side]]))
    for side, neighbor in neighbors.items():
        if neighbor < 0:
            continue
        # column halos are strided; the simulator's send packs the view
        # (the real system would use the committed MPI vector datatype)
        payload = np.ascontiguousarray(padded[send_specs[side]])
        requests.append(comm.Isend(payload, neighbor, tag=tags[side]))
    before = comm._world.clocks[comm.rank]
    Waitall(requests)
    comm._world.account(
        "HaloExchange", count=1,
        wait_s=max(0.0, comm._world.clocks[comm.rank] - before))
    for side, buf in recv_bufs.items():
        padded[recv_specs[side]] = buf
    return padded


def Isend(buf, dest: int, tag: int = 0) -> Request:
    return context.require().comm.Isend(np.ascontiguousarray(buf), dest, tag)


def Irecv(buf, source: int, tag: int = 0) -> Request:
    return context.require().comm.Irecv(buf, source, tag)


def Waitall(requests) -> None:
    Request.waitall([r for r in requests if r is not None])


def Allreduce(value, op: str = "sum"):
    ctx = context.require()
    arr = np.atleast_1d(np.asarray(value, dtype=np.float64))
    out = np.empty_like(arr)
    ctx.comm.Allreduce(arr, out, op=op)
    return out[0] if np.isscalar(value) or np.asarray(value).ndim == 0 else out


def Bcast(array, root: int = 0):
    ctx = context.require()
    return ctx.comm.Bcast(np.asarray(array), root=root)


def Barrier() -> None:
    context.require().comm.Barrier()
