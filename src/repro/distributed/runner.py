"""SPMD execution of data-centric programs on the simulated cluster.

``run_distributed(program, size, ...)`` compiles the program once and runs
one instance per simulated rank (threads).  Rank 0 operates on the caller's
arrays (preserving the in-place calling convention); other ranks receive
private copies, as each node of a real cluster would hold its own buffers.
Returns the per-rank virtual clocks and communication statistics along with
rank 0's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..simmpi.comm import run_spmd
from ..simmpi.grid import ProcessGrid
from . import context

__all__ = ["run_distributed", "DistributedResult"]


@dataclass
class DistributedResult:
    """Outcome of a distributed execution."""

    value: Any                       # rank 0's return value
    clocks: List[float]              # per-rank virtual time (seconds)
    comm_stats: Dict[str, int]       # messages / bytes on the wire
    state_visits: Dict[int, int] = field(default_factory=dict)

    @property
    def modeled_time(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


def run_distributed(program, size: int, grid: Optional[ProcessGrid] = None,
                    rank_args=None, **kwargs) -> DistributedResult:
    """Run *program* (a DaceProgram or SDFG) on *size* simulated ranks.

    ``rank_args(rank, grid) -> dict`` supplies per-rank symbol/argument
    values (e.g. the boundary offsets of the paper's explicit jacobi_2d).
    """
    from ..codegen import compile_sdfg
    from ..frontend.decorator import DaceProgram
    from ..ir.sdfg import SDFG

    if isinstance(program, DaceProgram):
        sdfg = program.to_sdfg()
        compiled = compile_sdfg(sdfg)
    elif isinstance(program, SDFG):
        compiled = compile_sdfg(program)
    else:
        raise TypeError(f"cannot run {program!r} distributed")

    grid_obj = grid or ProcessGrid(size)
    visits_holder: Dict[int, int] = {}

    def rank_fn(comm):
        context.set_current(context.DistContext(comm, grid_obj))
        try:
            local_kwargs = {}
            for name, value in kwargs.items():
                if isinstance(value, np.ndarray) and comm.rank != 0:
                    local_kwargs[name] = np.copy(value)
                else:
                    local_kwargs[name] = value
            if rank_args is not None:
                local_kwargs.update(rank_args(comm.rank, grid_obj))
            # reserved distribution symbols used by the transformations
            free = compiled.sdfg.free_symbols
            if "__P" in free:
                local_kwargs.setdefault("__P", size)
            if "__GR0" in free:
                local_kwargs.setdefault("__GR0", grid_obj.dims[0])
            if "__GR1" in free:
                local_kwargs.setdefault("__GR1", grid_obj.dims[1])
            result = compiled(**local_kwargs)
            if comm.rank == 0:
                visits_holder.update(compiled.last_state_visits)
            return result
        finally:
            context.set_current(None)

    results, clocks, stats = run_spmd(rank_fn, size)
    return DistributedResult(results[0], clocks, stats, visits_holder)
