"""SPMD execution of data-centric programs on the simulated cluster.

``run_distributed(program, size, ...)`` compiles the program once and runs
one instance per simulated rank (threads).  Rank 0 operates on the caller's
arrays (preserving the in-place calling convention); other ranks receive
private copies, as each node of a real cluster would hold its own buffers.
Returns the per-rank virtual clocks and communication statistics along with
rank 0's result.

Execution is routed through the checkpoint/restart supervisor
(:mod:`repro.resilience.distributed`, DESIGN.md §10): with checkpointing
enabled (``ckpt_interval``/``ckpt_comm_ops`` or the matching
``resilience.*`` configuration keys) ranks snapshot at state boundaries,
and recoverable rank failures — e.g. crashes injected through
*fault_plan* — trigger a coordinated rollback-and-replay instead of
aborting the run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..config import Config
from ..resilience.distributed import RankSnapshot, run_spmd_supervised
from ..simmpi.grid import ProcessGrid
from ..simmpi.netmodel import FaultPlan, NetModel
from . import context

__all__ = ["run_distributed", "DistributedResult"]


@dataclass
class DistributedResult:
    """Outcome of a distributed execution."""

    value: Any                       # rank 0's return value
    clocks: List[float]              # per-rank virtual time (seconds)
    comm_stats: Dict[str, int]       # messages / bytes on the wire
    state_visits: Dict[int, int] = field(default_factory=dict)
    per_rank_values: List[Any] = field(default_factory=list)
    failed_ranks: List[int] = field(default_factory=list)   # recovered ranks
    recovery_events: List[Any] = field(default_factory=list)
    op_counts: List[int] = field(default_factory=list)      # per-rank comm ops
    op_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    commopt_stats: Dict[str, float] = field(default_factory=dict)
    comm_report: Optional[Any] = None    # commopt.report.CommReport

    @property
    def modeled_time(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


def run_distributed(program, size: int, grid: Optional[ProcessGrid] = None,
                    rank_args=None, fault_plan: Optional[FaultPlan] = None,
                    net: Optional[NetModel] = None,
                    timeout_s: Optional[float] = None,
                    ckpt_interval: Optional[int] = None,
                    ckpt_comm_ops: Optional[int] = None,
                    max_restarts: Optional[int] = None,
                    budget=None,
                    **kwargs) -> DistributedResult:
    """Run *program* (a DaceProgram or SDFG) on *size* simulated ranks.

    ``rank_args(rank, grid) -> dict`` supplies per-rank symbol/argument
    values (e.g. the boundary offsets of the paper's explicit jacobi_2d).
    *fault_plan* injects communication faults and rank crashes;
    *ckpt_interval* / *ckpt_comm_ops* / *max_restarts* override the
    ``resilience.*`` checkpointing keys for this run.

    *budget* (a :class:`repro.governor.Budget`) governs the whole launch:
    each rank is armed with its per-rank slice against one absolute
    deadline that survives supervisor restarts, each rank's memory plan is
    admission-checked before its allocations, and a timed-out/rejected run
    raises the structured governor error directly.
    """
    from ..codegen import compile_sdfg
    from ..frontend.decorator import DaceProgram
    from ..governor.budget import Budget
    from ..ir.sdfg import SDFG
    from ..runtime.executor import prepare_arguments

    budget = Budget.resolve(budget)
    if budget.is_null:
        budget = None
    govern = budget is not None and budget.deadline_s is not None
    if isinstance(program, DaceProgram):
        sdfg = program.to_sdfg()
    elif isinstance(program, SDFG):
        sdfg = program
    else:
        raise TypeError(f"cannot run {program!r} distributed")

    # communication optimizer: opt in via config or $REPRO_COMM_OPT=1; the
    # caller's SDFG is never mutated (passes rewrite a clone)
    commopt_applied: Dict[str, int] = {}
    if Config.get("commopt.enabled") \
            or os.environ.get("REPRO_COMM_OPT", "") not in ("", "0"):
        from .commopt import optimize_comm

        sdfg = sdfg.clone()
        commopt_applied = optimize_comm(sdfg)
    compiled = compile_sdfg(sdfg, govern=govern)

    grid_obj = grid or ProcessGrid(size)
    visits_holder: Dict[int, int] = {}

    # a restart without a committed checkpoint replays from the initial
    # inputs; rank 0 mutates the caller's arrays in place, so keep pristine
    # copies to roll them back
    pristine = {name: np.copy(value) for name, value in kwargs.items()
                if isinstance(value, np.ndarray)}

    def reset() -> None:
        for name, copy_ in pristine.items():
            np.copyto(kwargs[name], copy_)

    def rank_fn(comm, snapshot: Optional[RankSnapshot]):
        context.set_current(context.DistContext(comm, grid_obj))
        try:
            local_kwargs = {}
            for name, value in kwargs.items():
                if isinstance(value, np.ndarray) and comm.rank != 0:
                    local_kwargs[name] = np.copy(value)
                else:
                    local_kwargs[name] = value
            if rank_args is not None:
                local_kwargs.update(rank_args(comm.rank, grid_obj))
            # reserved distribution symbols used by the transformations
            free = compiled.sdfg.free_symbols
            if "__P" in free:
                local_kwargs.setdefault("__P", size)
            if "__GR0" in free:
                local_kwargs.setdefault("__GR0", grid_obj.dims[0])
            if "__GR1" in free:
                local_kwargs.setdefault("__GR1", grid_obj.dims[1])
            containers, symbols = prepare_arguments(
                compiled.sdfg, (), local_kwargs)
            if budget is not None and budget.max_bytes:
                from ..governor.admission import admit

                # strict per-rank admission: degrading one rank to a
                # different tier would diverge the SPMD state machines
                admit(compiled.sdfg, symbols, budget.per_rank(size),
                      program=compiled.sdfg.name, allow_degrade=False)
            start_state = None
            if snapshot is not None:
                # resume from the checkpoint boundary: restore container
                # contents in place (rank 0 keeps the caller's buffers) and
                # rebind symbols, including interstate loop variables
                start_state = snapshot.state_index
                snapshot.restore_into(containers)
                symbols.update(snapshot.symbols)
            result = compiled.run_prepared(containers, symbols,
                                           start_state=start_state)
            if comm.rank == 0:
                visits_holder.update(compiled.last_state_visits)
            return result
        finally:
            context.set_current(None)

    run = run_spmd_supervised(
        rank_fn, size, net=net, fault_plan=fault_plan, timeout_s=timeout_s,
        ckpt_interval=ckpt_interval, ckpt_comm_ops=ckpt_comm_ops,
        max_restarts=max_restarts, reset=reset, budget=budget)
    from .commopt.report import build_report

    comm_report = build_report(
        run.op_stats, run.commopt_stats,
        optimized=bool(commopt_applied) and any(commopt_applied.values()),
        applied=commopt_applied, net=net, size=size)
    return DistributedResult(
        value=run.results[0], clocks=run.clocks, comm_stats=run.comm_stats,
        state_visits=visits_holder, per_rank_values=list(run.results),
        failed_ranks=run.failed_ranks, recovery_events=run.recovery_events,
        op_counts=run.op_counts, op_stats=run.op_stats,
        commopt_stats=run.commopt_stats, comm_report=comm_report)
