"""Weak-scaling estimator for the distributed evaluation (Fig. 12).

Produces modeled runtimes for DaCe, Dask, and Legate executions of the
Table 2 kernels at any process count.  The same communication-pattern cost
functions are built from the LogGP :class:`~repro.simmpi.NetModel` that the
functional simulator uses, so the estimator is *validated against the
functional virtual clocks at small rank counts* (see
tests/test_estimator.py) and extended to Piz-Daint scale (1,296 processes)
analytically.

Per-framework behaviour follows §4.4's findings:

* **DaCe** — MPI over the Cray-like network, local MKL-grade compute.
* **Legate** — matches DaCe's single-node time on BLAS-heavy kernels,
  1.7-15x slower elsewhere; pays per-operation runtime analysis; GASNet
  transport; efficiency roughly constant after the initial drop.
* **Dask** — central scheduler (task cost grows with the chunk count), TCP
  transport, much slower per-task compute; runs half-size problems and
  still struggles (the paper's out-of-memory regime is reported as NaN
  above 256 ranks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..bench.distributed_suite import TABLE2, DistributedBenchmark, scaled_sizes
from ..config import Config
from ..simmpi.grid import balanced_dims
from ..simmpi.netmodel import NetModel

__all__ = ["FrameworkModel", "FRAMEWORKS", "estimate", "weak_scaling_series"]

_D = 8  # bytes per float64


def _work(bench: DistributedBenchmark, sizes: Dict[str, int]) -> Dict[str, float]:
    """Total flops and memory traffic (bytes) of one kernel execution."""
    s = sizes
    if bench.name in ("atax", "bicg"):
        flops = 4.0 * s["M"] * s["N"]
        traffic = 2.0 * s["M"] * s["N"] * _D
    elif bench.name == "doitgen":
        flops = 2.0 * s["NR"] * s["NQ"] * s["NP"] * s["NP"]
        traffic = 2.0 * s["NR"] * s["NQ"] * s["NP"] * _D
    elif bench.name == "gemm":
        flops = 2.0 * s["NI"] * s["NJ"] * s["NK"]
        traffic = (s["NI"] * s["NK"] + s["NK"] * s["NJ"]
                   + 2.0 * s["NI"] * s["NJ"]) * _D
    elif bench.name == "gemver":
        flops = 10.0 * s["N"] * s["N"]
        traffic = 4.0 * s["N"] * s["N"] * _D
    elif bench.name == "gesummv":
        flops = 4.0 * s["N"] * s["N"]
        traffic = 2.0 * s["N"] * s["N"] * _D
    elif bench.name == "jacobi_1d":
        flops = 6.0 * s["T"] * s["N"]
        traffic = 4.0 * s["T"] * s["N"] * _D
    elif bench.name == "jacobi_2d":
        flops = 10.0 * s["T"] * s["N"] * s["N"]
        traffic = 4.0 * s["T"] * s["N"] * s["N"] * _D
    elif bench.name == "k2mm":
        flops = 2.0 * s["NI"] * s["NJ"] * s["NK"] \
            + 2.0 * s["NI"] * s["NJ"] * s["NM"]
        traffic = 4.0 * s["NI"] * s["NJ"] * _D
    elif bench.name == "k3mm":
        flops = (2.0 * s["NI"] * s["NJ"] * s["NK"]
                 + 2.0 * s["NJ"] * s["NL"] * s["NM"]
                 + 2.0 * s["NI"] * s["NL"] * s["NJ"])
        traffic = 6.0 * s["NI"] * s["NL"] * _D
    elif bench.name == "mvt":
        flops = 4.0 * s["N"] * s["N"]
        traffic = 2.0 * s["N"] * s["N"] * _D
    else:
        raise KeyError(bench.name)
    return {"flops": flops, "traffic": traffic}


def _comm_time(bench: DistributedBenchmark, sizes: Dict[str, int], procs: int,
               net: NetModel) -> float:
    """Per-rank communication time of the transformed (DaCe) program."""
    if procs <= 1:
        return 0.0
    pr, pc = balanced_dims(procs)
    s = sizes
    if bench.pattern == "embarrassing":
        return 0.0
    if bench.pattern == "matvec":
        # pgemv: ring-reduce along a grid row (pc-1 block messages) and the
        # allgather rebuilding the replicated vector; a handful per kernel
        n = s.get("N", s.get("M", 0))
        block = (n // pr) * _D
        ops = {"atax": 2, "bicg": 2, "gemver": 2, "gesummv": 2, "mvt": 2}[bench.name]
        reduce_time = math.ceil(math.log2(max(pc, 2))) * net.ptp(block) * 4
        gather_time = net.allgather(block, max(pr, pc))
        return ops * (reduce_time + gather_time)
    if bench.pattern == "matmul":
        # SUMMA: each rank receives its row strip of A (M/pr x K) and column
        # strip of B (K x N/pc) over max(pr, pc) panel broadcasts
        mm = {"gemm": 1, "k2mm": 2, "k3mm": 3}[bench.name]
        dims = [v for v in s.values()]
        n_eq = sum(dims) / len(dims)
        a_bytes = (n_eq / pr) * n_eq * _D
        b_bytes = n_eq * (n_eq / pc) * _D
        steps = max(pr, pc)
        per_panel = net.ptp(int((a_bytes + b_bytes) / steps)) \
            * math.ceil(math.log2(max(pc, 2)))
        return mm * steps * per_panel
    if bench.pattern == "stencil1d":
        return s["T"] * 2 * net.ptp(_D)
    if bench.pattern == "stencil2d":
        local_edge = (s["N"] // pr) * _D
        # two fields, four halo messages each, per time step
        return s["T"] * 2 * 4 * net.ptp(local_edge)
    raise KeyError(bench.pattern)


@dataclass(frozen=True)
class FrameworkModel:
    name: str
    compute_efficiency: float       # fraction of node peak for local work
    bandwidth_fraction: float       # fraction of node memory bandwidth
    per_op_overhead_s: float        # runtime/scheduler cost per operation
    ops_scale_with_chunks: bool     # Dask: tasks grow with the chunk count
    net: NetModel                   # transport cost model
    comm_multiplier: float = 1.0
    max_procs: Optional[int] = None  # out-of-memory / instability ceiling
    blas_kernels_match_dace: bool = False


def _node_rates():
    flops = Config.get("cpu.flops_gflops") * 1e9 / 18.0  # one-socket share
    bw = Config.get("cpu.bandwidth_gbs") * 1e9 / 2.0
    return flops, bw


def _frameworks() -> Dict[str, FrameworkModel]:
    cray = NetModel.from_config()
    gasnet = NetModel(latency_s=4e-6, overhead_s=2e-6,
                      inv_bandwidth_s_per_byte=1.0 / 6e9)
    tcp = NetModel(latency_s=60e-6, overhead_s=25e-6,
                   inv_bandwidth_s_per_byte=1.0 / 1.2e9)
    return {
        "dace": FrameworkModel("dace", compute_efficiency=0.80,
                               bandwidth_fraction=0.85,
                               per_op_overhead_s=2e-6,
                               ops_scale_with_chunks=False, net=cray),
        "legate": FrameworkModel("legate", compute_efficiency=0.75,
                                 bandwidth_fraction=0.45,
                                 per_op_overhead_s=0.4e-3,
                                 ops_scale_with_chunks=False, net=gasnet,
                                 comm_multiplier=1.6,
                                 blas_kernels_match_dace=True),
        "dask": FrameworkModel("dask", compute_efficiency=0.03,
                               bandwidth_fraction=0.08,
                               per_op_overhead_s=0.8e-3,
                               ops_scale_with_chunks=True, net=tcp,
                               comm_multiplier=2.0, max_procs=256),
    }


FRAMEWORKS = _frameworks()

#: kernels whose runtime is dominated by BLAS library calls (the paper:
#: "On BLAS-heavy benchmarks, Legate matches the runtime of DaCe on a
#: single CPU, whereas in others we observe slowdowns of 1.7-15x")
_BLAS_HEAVY = {"gemm", "k2mm", "k3mm", "atax", "bicg", "gesummv", "mvt",
               "gemver"}

#: base operation counts per kernel (for per-op runtime overheads)
_OP_COUNT = {"atax": 4, "bicg": 4, "doitgen": 2, "gemm": 5, "gemver": 8,
             "gesummv": 6, "jacobi_1d": 2, "jacobi_2d": 2, "k2mm": 7,
             "k3mm": 8, "mvt": 4}


def estimate(kernel: str, procs: int, framework: str = "dace") -> Optional[float]:
    """Modeled runtime (seconds) for a Table 2 kernel at *procs* processes.

    Returns None where the framework cannot run (Dask out-of-memory regime).
    """
    bench = TABLE2[kernel]
    model = FRAMEWORKS[framework]
    if model.max_procs is not None and procs > model.max_procs:
        return None
    sizes = scaled_sizes(bench, procs, framework)
    work = _work(bench, sizes)
    node_flops, node_bw = _node_rates()

    eff = model.compute_efficiency
    if framework == "legate" and kernel not in _BLAS_HEAVY:
        eff *= 0.25  # the observed 1.7-15x slowdowns on non-BLAS kernels
    compute = max(
        work["flops"] / procs / (node_flops * eff),
        work["traffic"] / procs / (node_bw * model.bandwidth_fraction))
    # scale-dependent degradation: distributed BLAS (ScaLAPACK-class) loses
    # efficiency to load imbalance, redistribution, and non-overlapped panel
    # broadcasts; stencils lose to halo synchronization (between the matvec
    # and matmul categories, per §4.4)
    if procs > 1:
        if bench.pattern == "matmul":
            compute /= max(0.50, 1.0 - 0.042 * math.log2(procs))
        elif bench.pattern == "stencil2d":
            compute /= max(0.58, 1.0 - 0.034 * math.log2(procs))
        elif bench.pattern == "stencil1d":
            compute /= max(0.72, 1.0 - 0.020 * math.log2(procs))

    ops = _OP_COUNT[kernel]
    steps = sizes.get("T", 1)
    per_step_ops = ops * max(steps, 1)
    if model.ops_scale_with_chunks:
        # one task per chunk through a central scheduler; block algorithms
        # (matmul) enqueue O(P^1.5) chunk products
        chunk_factor = procs ** 1.5 if bench.pattern == "matmul" else procs
        per_step_ops *= chunk_factor
    overhead = per_step_ops * model.per_op_overhead_s

    comm = _comm_time(bench, sizes, procs, model.net) * model.comm_multiplier
    total = compute + overhead + comm
    # distributed-runtime coordination: the immediate efficiency drop both
    # tasking frameworks show from the second process onward (§4.4)
    if procs > 1 and framework == "legate":
        total += 0.55 * compute
    if procs > 1 and framework == "dask":
        total += (0.6 + 0.05 * math.log2(procs)) * compute
    return total


def weak_scaling_series(kernel: str, proc_counts, framework: str = "dace"
                        ) -> Dict[int, float]:
    """Fig. 12 series: {process count: modeled runtime}."""
    series = {}
    for procs in proc_counts:
        t = estimate(kernel, procs, framework)
        if t is not None:
            series[procs] = t
    return series
