"""Thread-local distributed execution context.

SPMD execution runs one interpreter per rank in a thread; the explicit
``repro.comm`` operations and the distributed library nodes resolve the
calling rank's communicator and process grid through this context.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..simmpi.comm import Comm
from ..simmpi.grid import ProcessGrid

__all__ = ["DistContext", "current", "set_current", "require"]

_tls = threading.local()


class DistContext:
    """Per-rank handle: communicator + default process grid."""

    def __init__(self, comm: Comm, grid: Optional[ProcessGrid] = None):
        self.comm = comm
        self.grid = grid or ProcessGrid(comm.size)

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def epoch(self) -> int:
        """Checkpoint epoch of the underlying world (0 before any restart)."""
        return self.comm._world.epoch


def current() -> Optional[DistContext]:
    return getattr(_tls, "ctx", None)


def set_current(ctx: Optional[DistContext]) -> None:
    _tls.ctx = ctx


def require() -> DistContext:
    ctx = current()
    if ctx is None:
        raise RuntimeError(
            "no distributed context: repro.comm operations must run inside "
            "a distributed execution (repro.distributed.run_distributed)")
    return ctx
