"""Loop-invariant collective deduplication.

The distribution pipeline re-executes scatter/allreduce tasklets on every
loop iteration even when the source buffer is provably never written — a
``for it in range(reps)`` around a distributed GEMM re-scatters the same
``A`` and ``B`` blocks *reps* times.  This pass rewrites such collectives
to their memoizing runtime variants: the first execution runs the eager
collective and stores a content fingerprint; later executions whose
fingerprint matches return the cached local block without touching the
network.

Static eligibility is a whole-SDFG write-set argument: a container is
dedupable only if **no** state writes it (no non-empty memlet enters any
of its access nodes).  The runtime re-checks the fingerprint on every
hit, so a source that is mutated through a channel the IR cannot see
falls back to the eager collective (scatter) or raises a structured
:class:`~.runtime.CollectiveDivergenceError` (allreduce, whose barrier
semantics make silent per-rank divergence a deadlock).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ...ir.nodes import AccessNode, Tasklet

__all__ = ["dedup_collectives", "written_containers"]

#: eager entry point -> (memoizing entry point, runtime attribute)
_REWRITES = {
    "__comm_BlockScatter": "__commopt_BlockScatter_cached",
    "__comm_Allreduce": "__commopt_Allreduce_cached",
}


def written_containers(sdfg) -> Set[str]:
    """Names of containers written by any state (the SDFG write set)."""
    written: Set[str] = set()
    for state in sdfg.states():
        for node in state.nodes():
            if not isinstance(node, AccessNode) or node.data in written:
                continue
            if any(not e.memlet.is_empty() for e in state.in_edges(node)):
                written.add(node.data)
    return written


def _dedup_candidates(sdfg, written: Set[str]) -> List[Tuple[object, Tasklet, str]]:
    """(state, tasklet, eager_call) triples whose source is never written."""
    out = []
    for state in sdfg.states():
        for node in state.nodes():
            if not isinstance(node, Tasklet):
                continue
            call = next((c for c in _REWRITES if c + "(" in node.code), None)
            if call is None:
                continue
            in_edges = state.in_edges(node)
            if len(in_edges) != 1:
                continue
            src = in_edges[0].src
            if not isinstance(src, AccessNode) or src.data in written:
                continue
            out.append((state, node, call))
    return out


def _rewrite_call(code: str, eager: str, cached: str, site: str) -> str:
    """``__comm_X(args)`` -> ``__commopt_X_cached(args, site='...')``.

    The tasklet code is a single generated assignment ending in ``)``, so
    the site keyword is spliced before the final close paren (this also
    handles calls that already carry a ``layout='grid'`` keyword).
    """
    code = code.replace(eager + "(", cached + "(")
    head, sep, _tail = code.rstrip().rpartition(")")
    if not sep:
        raise ValueError(f"unparseable collective tasklet code: {code!r}")
    return f"{head}, site={site!r})"


def dedup_collectives(sdfg) -> int:
    """Rewrite loop-invariant collectives to their memoizing variants.

    Returns the number of rewritten tasklets."""
    from . import runtime as rt

    written = written_containers(sdfg)
    rewritten = 0
    for n, (state, tasklet, call) in enumerate(
            _dedup_candidates(sdfg, written)):
        cached = _REWRITES[call]
        site = f"{state.label}:{tasklet.label}:{n}"
        tasklet.code = _rewrite_call(tasklet.code, call, cached, site)
        sdfg.constants[cached] = {
            "__commopt_BlockScatter_cached": rt.block_scatter_cached,
            "__commopt_Allreduce_cached": rt.allreduce_cached,
        }[cached]
        rewritten += 1
    return rewritten
