"""The comm plan: nonblocking halo-exchange / interior-compute overlap.

The frontend turns ``repro.comm.HaloExchange(lA)`` into a blocking tasklet
followed by the stencil maps that consume ``lA`` — comm time is pure serial
overhead.  This pass restructures each such site *within its state* (so
checkpoint boundaries never see in-flight messages and the eager and
optimized runs traverse identical state machines):

1. the exchange tasklet becomes :func:`~.runtime.halo_start` — post the
   ``Isend``/``Irecv`` pairs and return;
2. the consumer maps are clipped to the **interior** (each dimension
   shrunk by the halo width) — those iterations provably never read a halo
   frame, so they run while messages are in flight;
3. a ``HaloFinish`` tasklet waits for the messages, unpacks the frames,
   and credits the interior compute time to the virtual clock (the overlap
   benefit under the LogGP model, which otherwise treats generated compute
   as instantaneous);
4. the **boundary** iterations re-run as 2·ndim cloned "onion strip" maps
   ordered after the finish, reading the freshly exchanged frames.

Legality is gated on the race detector (every rewritten map must be
RACE_FREE), on unit-coefficient point reads of the exchanged array, and on
a symbolic proof that the clipped interior never touches a frame.  Sites
failing any gate stay eager — the pass is purely opportunistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...ir.memlet import Memlet
from ...ir.nodes import AccessNode, MapEntry, MapExit, Tasklet, make_map_scope
from ...symbolic import Expr, Integer, Range, Symbol
from ...symbolic.expr import definitely_le, simplify

__all__ = ["overlap_halo_exchanges", "HaloSite"]

#: the frontend's eager exchange entry point inside tasklet code
_EAGER_CALL = "__comm_HaloExchange"


@dataclass
class HaloSite:
    """One analyzable halo-exchange tasklet and its consumer region."""

    state: object
    tasklet: Tasklet
    data: str                       # exchanged container
    source: AccessNode              # pre-exchange access node
    mid: AccessNode                 # post-exchange access node
    halo: int
    region: List[MapEntry] = field(default_factory=list)
    internal: List[AccessNode] = field(default_factory=list)
    terminal: List[AccessNode] = field(default_factory=list)
    rng: Optional[Range] = None


def _is_full_dynamic(memlet: Memlet, data: str) -> bool:
    return (not memlet.is_empty() and memlet.data == data and memlet.dynamic)


def _point_offset(memlet: Memlet, params: Tuple[str, ...]) -> Optional[List[Expr]]:
    """For a point subset whose dim *d* reads exactly ``param_d + c_d``,
    return the offsets ``c_d``; None when the shape does not match."""
    subset = memlet.subset
    if subset is None or subset.ndim != len(params):
        return None
    offsets = []
    for d, (begin, end, step) in enumerate(subset.dims):
        if begin != end or step != Integer(1):
            return None
        offset = simplify(begin - Symbol(params[d]))
        names = {s.name for s in offset.free_symbols}
        if names & set(params):
            return None  # not unit-coefficient in this dimension's parameter
        # must not involve the other parameters either (checked above) and
        # the expression must be independent of sibling dims' parameters
        offsets.append(offset)
    return offsets


def _find_sites(sdfg, state) -> List[Tasklet]:
    return [n for n in state.nodes()
            if isinstance(n, Tasklet) and _EAGER_CALL + "(" in n.code]


def _analyze_site(sdfg, state, tasklet: Tasklet) -> Optional[HaloSite]:
    in_edges = state.in_edges(tasklet)
    out_edges = state.out_edges(tasklet)
    if len(in_edges) != 1 or len(out_edges) != 1:
        return None
    src, dst = in_edges[0].src, out_edges[0].dst
    if not isinstance(src, AccessNode) or not isinstance(dst, AccessNode) \
            or src.data != dst.data:
        return None
    data = src.data
    desc = sdfg.arrays.get(data)
    if desc is None or len(desc.shape) != 2:
        return None
    if not _is_full_dynamic(in_edges[0].memlet, data) \
            or not _is_full_dynamic(out_edges[0].memlet, data):
        return None

    site = HaloSite(state=state, tasklet=tasklet, data=data, source=src,
                    mid=dst, halo=1)

    # every consumer of the exchanged array must be a top-level map entry
    consumers = state.out_edges(dst)
    if not consumers:
        return None
    entries: List[MapEntry] = []
    for edge in consumers:
        if not isinstance(edge.dst, MapEntry):
            return None
        if edge.dst not in entries:
            entries.append(edge.dst)
    rng = entries[0].map.range
    if any(e.map.range != rng for e in entries):
        return None
    if rng.ndim != len(desc.shape):
        return None
    if any(step != Integer(1) for _, _, step in rng.dims):
        return None
    site.rng = rng

    # grow the region: maps of the same range whose inputs all come from
    # the exchanged array or from temporaries written inside the region
    region: List[MapEntry] = list(entries)
    produced: Set[AccessNode] = set()
    changed = True
    while changed:
        changed = False
        for entry in list(region):
            for edge in state.out_edges(entry.exit_node):
                out = edge.dst
                if not isinstance(out, AccessNode) or out in produced:
                    continue
                produced.add(out)
                for consumer in state.out_edges(out):
                    nxt = consumer.dst
                    if not isinstance(nxt, MapEntry) or nxt in region:
                        continue
                    if nxt.map.range != rng:
                        continue
                    feeders_ok = all(
                        isinstance(f.src, AccessNode)
                        and (f.src is dst or f.src in produced)
                        for f in state.in_edges(nxt))
                    if feeders_ok:
                        region.append(nxt)
                        changed = True
    # clone order must respect producer-before-consumer for the temp chain
    topo = {n: i for i, n in enumerate(state.topological_nodes())}
    region.sort(key=lambda e: topo[e])
    site.region = region

    region_set = set(region)
    for out in produced:
        out_consumers = state.out_edges(out)
        if out_consumers and all(isinstance(e.dst, MapEntry)
                                 and e.dst in region_set
                                 for e in out_consumers):
            desc_out = sdfg.arrays.get(out.data)
            if desc_out is None or not desc_out.transient:
                return None  # non-transient intermediates stay eager
            site.internal.append(out)
        else:
            if any(isinstance(e.dst, MapEntry) and e.dst in region_set
                   for e in out_consumers):
                # partially consumed inside the region: the strip clones
                # would read it before the strips that write it ran
                return None
            site.terminal.append(out)
    if not site.terminal:
        return None

    internal_names = {n.data for n in site.internal}
    if site.data in internal_names \
            or site.data in {n.data for n in site.terminal}:
        return None  # region writes the exchanged array itself

    return site


def _check_safety(sdfg, state, site: HaloSite) -> bool:
    from ...sanitizer.races import RACE_FREE, analyze_map

    desc = sdfg.arrays[site.data]
    h = site.halo
    internal_names = {n.data for n in site.internal}
    for entry in site.region:
        if analyze_map(state, entry, sdfg).verdict != RACE_FREE:
            return False
        params = tuple(entry.map.params)
        exit_ = entry.exit_node
        for edge in state.out_edges(entry):
            memlet = edge.memlet
            if memlet.is_empty():
                continue
            if memlet.wcr is not None:
                return False
            offsets = _point_offset(memlet, params)
            if offsets is None:
                return False
            if memlet.data == site.data:
                # the clipped interior read [b+h+c, e-h+c] must stay inside
                # the interior [h, shape-1-h]; equivalent to proving the
                # ORIGINAL hull [b+c, e+c] within [0, shape-1]
                for d, ((b, e, _s), c) in enumerate(
                        zip(site.rng.dims, offsets, strict=True)):
                    if definitely_le(Integer(0), simplify(b + c)) is not True:
                        return False
                    upper = simplify(desc.shape[d] - 1)
                    if definitely_le(simplify(e + c), upper) is not True:
                        return False
            elif memlet.data in internal_names:
                if any(c != Integer(0) for c in offsets):
                    return False  # internal temps must chain at identity
        for edge in state.in_edges(exit_):
            memlet = edge.memlet
            if memlet.is_empty():
                continue
            if memlet.wcr is not None:
                return False
            offsets = _point_offset(memlet, params)
            if offsets is None:
                return False
            if memlet.data in internal_names \
                    and any(c != Integer(0) for c in offsets):
                return False
    return True


def _interior_range(rng: Range, h: int) -> Range:
    return Range([(simplify(b + Integer(h)), simplify(e - Integer(h)), s)
                  for b, e, s in rng.dims])


def _strip_ranges(rng: Range, h: int) -> List[Range]:
    """The 2·ndim boundary strips: dim *d* pinned to its low/high band,
    earlier dims clipped to the interior, later dims full — a disjoint
    partition of (range − interior)."""
    strips = []
    for d in range(rng.ndim):
        for high in (False, True):
            dims = []
            for i, (b, e, s) in enumerate(rng.dims):
                if i < d:
                    dims.append((simplify(b + Integer(h)),
                                 simplify(e - Integer(h)), s))
                elif i == d:
                    if high:
                        dims.append((simplify(e - Integer(h - 1)), e, s))
                    else:
                        dims.append((b, simplify(b + Integer(h - 1)), s))
                else:
                    dims.append((b, e, s))
            strips.append(Range(dims))
    return strips


def _interior_flops_expr(state, site: HaloSite) -> str:
    """Static flop count of the interior partition, as a Python expression
    over the SDFG symbols (evaluated inside the generated HaloFinish call)."""
    from ...runtime.perfmodel import tasklet_flops

    h = site.halo
    per_point = 0
    for entry in site.region:
        for node in state.scope_children(entry):
            if isinstance(node, Tasklet):
                per_point += tasklet_flops(node.code)
    vol_terms = [f"max(0, ({e}) - ({b}) - {2 * h} + 1)"
                 for b, e, _s in site.rng.dims]
    return "(" + " * ".join(vol_terms) + f") * {max(per_point, 1)}"


def _clone_region(sdfg, state, site: HaloSite, strip: Range, label: str,
                  x_post: AccessNode,
                  terminal_post: Dict[AccessNode, AccessNode]) -> None:
    """Instantiate one boundary-strip copy of the region after *x_post*."""
    internal_clone: Dict[AccessNode, AccessNode] = {}
    entry_clone: Dict[MapEntry, Tuple[MapEntry, MapExit]] = {}
    internal_set = set(site.internal)

    for entry in site.region:  # region is in topological order by growth
        new_entry, new_exit = make_map_scope(
            f"{entry.map.label}_{label}", entry.map.params, strip,
            entry.map.schedule)
        new_entry.in_connectors = set(entry.in_connectors)
        new_entry.out_connectors = set(entry.out_connectors)
        new_exit.in_connectors = set(entry.exit_node.in_connectors)
        new_exit.out_connectors = set(entry.exit_node.out_connectors)
        state.add_node(new_entry)
        state.add_node(new_exit)
        entry_clone[entry] = (new_entry, new_exit)

        tasklet_clone: Dict[Tasklet, Tasklet] = {}
        for node in state.scope_children(entry):
            if isinstance(node, Tasklet):
                clone = Tasklet(node.label, set(node.in_connectors),
                                set(node.out_connectors), node.code,
                                node.side_effect_free)
                state.add_node(clone)
                tasklet_clone[node] = clone

        # inbound edges: the exchanged array now reads from x_post; internal
        # temps read from this strip's clones
        for edge in state.in_edges(entry):
            src = edge.src
            if src is site.mid:
                new_src = x_post
            elif src in internal_set:
                new_src = internal_clone[src]
            else:  # pre-existing inputs (other arrays, scalars) are reused
                new_src = src
            state.add_edge(new_src, edge.src_conn, new_entry, edge.dst_conn,
                           edge.memlet.clone())
        for edge in state.out_edges(entry):
            state.add_edge(new_entry, edge.src_conn, tasklet_clone[edge.dst],
                           edge.dst_conn, edge.memlet.clone())
        # scope-internal tasklet-to-tasklet wiring (none in the stencil
        # corpus, but cheap to support)
        for node, clone in tasklet_clone.items():
            for edge in state.out_edges(node):
                if isinstance(edge.dst, Tasklet):
                    state.add_edge(clone, edge.src_conn,
                                   tasklet_clone[edge.dst], edge.dst_conn,
                                   edge.memlet.clone())
                elif edge.dst is entry.exit_node:
                    state.add_edge(clone, edge.src_conn, new_exit,
                                   edge.dst_conn, edge.memlet.clone())
        for edge in state.out_edges(entry.exit_node):
            out = edge.dst
            if out in internal_set:
                clone = internal_clone.get(out)
                if clone is None:
                    clone = internal_clone[out] = state.add_access(out.data)
                state.add_edge(new_exit, edge.src_conn, clone, None,
                               edge.memlet.clone())
            else:
                state.add_edge(new_exit, edge.src_conn, terminal_post[out],
                               None, edge.memlet.clone())


def _rewrite_site(sdfg, state, site: HaloSite) -> None:
    from . import runtime as rt

    h = site.halo
    flops_expr = _interior_flops_expr(state, site)

    # 1. blocking exchange -> nonblocking start
    site.tasklet.code = site.tasklet.code.replace(
        _EAGER_CALL + "(", "__commopt_HaloStart(")
    site.tasklet.label = "HaloStart"
    sdfg.constants["__commopt_HaloStart"] = rt.halo_start
    sdfg.constants["__commopt_HaloFinish"] = rt.halo_finish

    # 2. clip the region maps to the interior
    interior = _interior_range(site.rng, h)
    for entry in site.region:
        entry.map.range = interior

    # 3. the finish tasklet: waits, unpacks, credits the interior compute
    finish = state.add_tasklet(
        "HaloFinish", {"__halo"}, {"__halo_out"},
        f"__commopt_HaloFinish(__halo, float({flops_expr}))\n"
        f"__halo_out = __halo")
    full = Range.from_shape(sdfg.arrays[site.data].shape)
    state.add_edge(site.mid, None, finish, "__halo",
                   Memlet(site.data, full, dynamic=True))
    x_post = state.add_access(site.data)
    state.add_edge(finish, "__halo_out", x_post, None,
                   Memlet(site.data, full, dynamic=True))
    # the finish runs only after the interior partition is done: ordering
    # (empty-memlet) dependencies from the region's terminal outputs
    for out in site.terminal:
        state.add_nedge(out, finish)

    # 4. boundary strips, ordered after the finish via x_post
    terminal_post = {out: state.add_access(out.data) for out in site.terminal}
    for out, post in terminal_post.items():
        state.add_nedge(out, post)  # interior writes happen-before
        for edge in list(state.out_edges(out)):
            if edge.dst is finish or edge.dst is post:
                continue
            state.add_edge(post, edge.src_conn, edge.dst, edge.dst_conn,
                           edge.memlet)
            state.remove_edge(edge)
    for i, strip in enumerate(_strip_ranges(site.rng, h)):
        _clone_region(sdfg, state, site, strip, f"halo{i}", x_post,
                      terminal_post)


def overlap_halo_exchanges(sdfg) -> int:
    """Apply the overlap rewrite to every provably safe halo site.

    Returns the number of rewritten sites; unproven sites stay eager."""
    rewritten = 0
    for state in sdfg.states():
        for tasklet in _find_sites(sdfg, state):
            site = _analyze_site(sdfg, state, tasklet)
            if site is None or not _check_safety(sdfg, state, site):
                continue
            _rewrite_site(sdfg, state, site)
            rewritten += 1
    return rewritten
