"""The comm-optimizer kernel corpus: jacobi / pgemm / pgemv.

Mirrors the resilience chaos corpus (:mod:`repro.resilience.chaos`) but
with an **iterated** distributed GEMM — ``for it in range(reps)`` around
``C = alpha*A@B + beta*C`` — because that is the shape where collective
dedup pays: the distribution pipeline re-scatters the loop-invariant
``A`` and ``B`` blocks every iteration, and the optimizer proves they are
never written and memoizes the scatter.

Each kernel is a :class:`CorpusKernel` carrying an SDFG builder, seeded
input construction, and the run keyword set, so the bench harness, the
report CLI, and the tests all execute byte-identical configurations.
"""

# NOTE: no `from __future__ import annotations` — it would stringify the
# @repro.program parameter annotations before the frontend reads them.

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

import repro
import repro.comm

__all__ = ["CorpusKernel", "KERNELS", "kernel", "run_kernel"]

_N = repro.symbol("cN")
_lNx = repro.symbol("lNx")
_lNy = repro.symbol("lNy")
_noff = repro.symbol("noff")
_soff = repro.symbol("soff")
_woff = repro.symbol("woff")
_eoff = repro.symbol("eoff")
_NI = repro.symbol("cNI")
_NJ = repro.symbol("cNJ")
_NK = repro.symbol("cNK")
_M = repro.symbol("cM")
_Nv = repro.symbol("cNv")


@repro.program
def _jacobi_comm(TSTEPS: repro.int32, A: repro.float64[_N, _N],
                 B: repro.float64[_N, _N]):
    lA = np.zeros((_lNx + 2, _lNy + 2))
    lB = np.zeros((_lNx + 2, _lNy + 2))
    lA[1:-1, 1:-1] = repro.comm.BlockScatter(A, (_lNx, _lNy))
    lB[1:-1, 1:-1] = repro.comm.BlockScatter(B, (_lNx, _lNy))
    for _t in range(1, TSTEPS):
        repro.comm.HaloExchange(lA)
        lB[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff] = 0.2 * (
            lA[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lA[1 + _noff:_lNx + 1 - _soff, _woff:_lNy - _eoff]
            + lA[1 + _noff:_lNx + 1 - _soff, 2 + _woff:_lNy + 2 - _eoff]
            + lA[2 + _noff:_lNx + 2 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lA[_noff:_lNx - _soff, 1 + _woff:_lNy + 1 - _eoff])
        repro.comm.HaloExchange(lB)
        lA[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff] = 0.2 * (
            lB[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lB[1 + _noff:_lNx + 1 - _soff, _woff:_lNy - _eoff]
            + lB[1 + _noff:_lNx + 1 - _soff, 2 + _woff:_lNy + 2 - _eoff]
            + lB[2 + _noff:_lNx + 2 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lB[_noff:_lNx - _soff, 1 + _woff:_lNy + 1 - _eoff])
    A[:] = repro.comm.BlockGather(lA[1:-1, 1:-1], (_N, _N))
    B[:] = repro.comm.BlockGather(lB[1:-1, 1:-1], (_N, _N))


@repro.program
def _gemm_iter(reps: repro.int32, alpha: repro.float64, beta: repro.float64,
               C: repro.float64[_NI, _NJ], A: repro.float64[_NI, _NK],
               B: repro.float64[_NK, _NJ]):
    for _it in range(reps):
        C[:] = alpha * A @ B + beta * C


@repro.program
def _atax_comm(A: repro.float64[_M, _Nv], x: repro.float64[_Nv],
               y: repro.float64[_Nv]):
    y[:] = (A @ x) @ A


def _jacobi_offsets(rank, grid):
    nb = grid.neighbors(rank)
    return {"noff": 1 if nb["north"] < 0 else 0,
            "soff": 1 if nb["south"] < 0 else 0,
            "woff": 1 if nb["west"] < 0 else 0,
            "eoff": 1 if nb["east"] < 0 else 0}


def _jacobi_sdfg():
    return _jacobi_comm.to_sdfg().clone()


def _pgemm_sdfg():
    from ...transformations.distributed import (DistributeElementWiseArrayOp,
                                                RemoveRedundantComm)

    sdfg = _gemm_iter.to_sdfg().clone()
    sdfg.apply(DistributeElementWiseArrayOp)
    sdfg.expand_library_nodes(implementation="PBLAS")
    sdfg.apply(RemoveRedundantComm)
    return sdfg


def _pgemv_sdfg():
    from ...transformations.distributed import DeduplicateComm

    sdfg = _atax_comm.to_sdfg().clone()
    sdfg.expand_library_nodes(implementation="PBLAS")
    sdfg.apply(DeduplicateComm)
    return sdfg


def _jacobi_inputs(seed: int):
    n, tsteps = 12, 5
    rng = np.random.default_rng(seed)
    return ({"TSTEPS": tsteps, "A": rng.random((n, n)),
             "B": rng.random((n, n)), "lNx": n // 2, "lNy": n // 2},
            ("A", "B"))


def _pgemm_inputs(seed: int):
    rng = np.random.default_rng(seed)
    ni, nj, nk = 12, 16, 24
    return ({"reps": 4, "alpha": 1.5, "beta": 0.5,
             "C": rng.random((ni, nj)), "A": rng.random((ni, nk)),
             "B": rng.random((nk, nj))},
            ("C",))


def _pgemv_inputs(seed: int):
    rng = np.random.default_rng(seed)
    return ({"A": rng.random((12, 8)), "x": rng.random(8),
             "y": np.zeros(8)},
            ("y",))


@dataclass
class CorpusKernel:
    """One corpus kernel: SDFG builder + seeded inputs + run options."""

    name: str
    build_sdfg: Callable
    make_inputs: Callable[[int], Tuple[Dict, Tuple[str, ...]]]
    rank_args: Optional[Callable] = None


KERNELS = ("jacobi", "pgemm", "pgemv")

_KERNELS: Dict[str, CorpusKernel] = {
    "jacobi": CorpusKernel("jacobi", _jacobi_sdfg, _jacobi_inputs,
                           rank_args=_jacobi_offsets),
    "pgemm": CorpusKernel("pgemm", _pgemm_sdfg, _pgemm_inputs),
    "pgemv": CorpusKernel("pgemv", _pgemv_sdfg, _pgemv_inputs),
}


def kernel(name: str) -> CorpusKernel:
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown corpus kernel {name!r}; "
                       f"expected one of {KERNELS}") from None


def run_kernel(name: str, size: int = 4, optimize: bool = False,
               seed: int = 0, fault_plan=None, **run_kwargs):
    """Run one corpus kernel on *size* simulated ranks.

    Returns ``(outputs, DistributedResult)`` where *outputs* maps the
    kernel's output array names to their (mutated, rank-0) values.
    """
    from ...config import Config
    from ..runner import run_distributed

    k = kernel(name)
    inputs, out_names = k.make_inputs(seed)
    sdfg = k.build_sdfg()
    # route optimization through the runner gate (commopt.enabled) so the
    # run records which passes applied and flags the report as optimized
    with Config.override(commopt__enabled=bool(optimize)):
        result = run_distributed(sdfg, size, rank_args=k.rank_args,
                                 fault_plan=fault_plan, **inputs,
                                 **run_kwargs)
    return {name_: inputs[name_] for name_ in out_names}, result
