"""``python -m repro.distributed.commopt report`` — planned vs. eager.

Runs each corpus kernel twice on the simulated cluster (eager, then with
``optimize_comm`` applied), prints the measured comm volume and wait time
side by side, and the netmodel-predicted benefit of each optimization.
``--json PATH`` additionally writes the machine-readable reports
(schema ``repro-comm/1``).
"""

from __future__ import annotations

import argparse
import json
import sys

from ...config import Config
from .corpus import KERNELS, run_kernel


def _report_cmd(args: argparse.Namespace) -> int:
    rows = []
    payload = {"schema": "repro-comm/1", "ranks": args.ranks, "kernels": {}}
    for name in args.kernels:
        with Config.override(commopt__stencil_gflops=args.stencil_gflops):
            _, eager = run_kernel(name, size=args.ranks, optimize=False,
                                  seed=args.seed)
            _, opt = run_kernel(name, size=args.ranks, optimize=True,
                                seed=args.seed)
        er, orp = eager.comm_report, opt.comm_report
        rows.append((name, er, orp))
        payload["kernels"][name] = {"eager": er.to_dict(),
                                    "optimized": orp.to_dict()}

    print(f"communication plan report ({args.ranks} simulated ranks)")
    print(f"{'kernel':<8} {'':>10} {'bytes':>10} {'msgs':>6} "
          f"{'wait':>12} {'predicted benefit':>22}")
    for name, er, orp in rows:
        e_msgs = sum(er.count(op) for op in ("Send", "Bcast", "bcast"))
        o_msgs = sum(orp.count(op) for op in ("Send", "Bcast", "bcast"))
        print(f"{name:<8} {'eager':>10} {er.total_bytes:>10} {e_msgs:>6} "
              f"{er.total_wait_s * 1e6:>10.1f}us "
              f"{'overlap ' + format(er.predicted_overlap_s * 1e6, '.1f') + 'us':>22}")
        dv = (f"dedup {100 * (er.total_bytes - orp.total_bytes) / er.total_bytes:.1f}%"
              if er.total_bytes else "dedup 0%")
        print(f"{'':<8} {'optimized':>10} {orp.total_bytes:>10} {o_msgs:>6} "
              f"{orp.total_wait_s * 1e6:>10.1f}us {dv:>22}")
        applied = ", ".join(f"{k}={v}" for k, v in orp.applied.items() if v) \
            or "nothing applied"
        hidden = orp.commopt.get("overlap_credit_s", 0.0)
        extra = f"; compute hidden behind comm: {hidden * 1e6:.1f}us" \
            if hidden else ""
        print(f"{'':<8} {applied}{extra}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distributed.commopt",
        description="communication optimizer tools")
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report",
                         help="planned-vs-eager comm volume per kernel")
    rep.add_argument("--kernels", nargs="*", default=list(KERNELS),
                     choices=list(KERNELS))
    rep.add_argument("--ranks", type=int, default=4)
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--stencil-gflops", type=float, default=1e-4,
                     help="modeled stencil compute rate for the overlap "
                          "credit (small = visible overlap at toy sizes)")
    rep.add_argument("--json", default="",
                     help="also write the JSON payload here")
    rep.set_defaults(fn=_report_cmd)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
