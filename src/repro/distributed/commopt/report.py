"""Comm accounting report (schema ``repro-comm/1``).

Builds a :class:`CommReport` from the simulator's per-op counters
(:attr:`~repro.simmpi.comm._World.op_stats`) and the optimizer effect
counters (``commopt_stats``), plus a :class:`~repro.simmpi.netmodel.NetModel`
prediction of what the optimizations are worth:

* ``predicted_overlap_s`` — the eager exchange wait the overlap rewrite
  can hide (bounded by the interior compute credit actually banked);
* ``predicted_dedup_s`` — wire time of the bytes the dedup memo elided.

Attached to :class:`~repro.distributed.runner.DistributedResult` as
``comm_report`` and printed by ``python -m repro.distributed.commopt
report``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["CommReport", "build_report", "SCHEMA"]

SCHEMA = "repro-comm/1"


@dataclass
class CommReport:
    """Per-operation communication accounting for one distributed run."""

    #: op name -> {"count": int, "bytes": int, "wait_s": float}
    ops: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: optimizer effect counters (dedup_hits, dedup_bytes_saved,
    #: coalesced_messages, overlap_credit_s)
    commopt: Dict[str, float] = field(default_factory=dict)
    #: was optimize_comm applied to the executed SDFG?
    optimized: bool = False
    #: per-pass application counts ({"overlap": n, "dedup": m})
    applied: Dict[str, int] = field(default_factory=dict)
    #: netmodel predictions (seconds)
    predicted_overlap_s: float = 0.0
    predicted_dedup_s: float = 0.0

    # ------------------------------------------------------------- queries
    @property
    def total_bytes(self) -> int:
        return int(sum(st.get("bytes", 0) for st in self.ops.values()))

    @property
    def total_wait_s(self) -> float:
        return float(sum(st.get("wait_s", 0.0) for st in self.ops.values()))

    def wait_s(self, op: str) -> float:
        return float(self.ops.get(op, {}).get("wait_s", 0.0))

    def count(self, op: str) -> int:
        return int(self.ops.get(op, {}).get("count", 0))

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "ops": {op: dict(st) for op, st in sorted(self.ops.items())},
            "commopt": dict(self.commopt),
            "optimized": self.optimized,
            "applied": dict(self.applied),
            "predicted_overlap_s": self.predicted_overlap_s,
            "predicted_dedup_s": self.predicted_dedup_s,
            "total_bytes": self.total_bytes,
            "total_wait_s": self.total_wait_s,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CommReport":
        return cls(
            ops={op: dict(st) for op, st in d.get("ops", {}).items()},
            commopt=dict(d.get("commopt", {})),
            optimized=bool(d.get("optimized", False)),
            applied=dict(d.get("applied", {})),
            predicted_overlap_s=float(d.get("predicted_overlap_s", 0.0)),
            predicted_dedup_s=float(d.get("predicted_dedup_s", 0.0)),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        lines = [f"comm report ({'optimized' if self.optimized else 'eager'}"
                 f", {self.total_bytes} bytes on the wire, "
                 f"{self.total_wait_s * 1e6:.1f} us total wait)"]
        for op, st in sorted(self.ops.items()):
            lines.append(f"  {op:<16} x{int(st.get('count', 0)):<5} "
                         f"{int(st.get('bytes', 0)):>10} B "
                         f"{st.get('wait_s', 0.0) * 1e6:>10.1f} us wait")
        if self.commopt:
            interesting = {k: v for k, v in sorted(self.commopt.items()) if v}
            if interesting:
                lines.append("  optimizer: " + ", ".join(
                    f"{k}={v:g}" for k, v in interesting.items()))
        if self.predicted_overlap_s or self.predicted_dedup_s:
            lines.append(
                f"  predicted benefit: overlap "
                f"{self.predicted_overlap_s * 1e6:.1f} us, dedup "
                f"{self.predicted_dedup_s * 1e6:.1f} us")
        return "\n".join(lines)


def build_report(op_stats: Dict[str, Dict[str, float]],
                 commopt_stats: Dict[str, float],
                 optimized: bool = False,
                 applied: Optional[Dict[str, int]] = None,
                 net=None, size: int = 1) -> CommReport:
    """Assemble a :class:`CommReport` from the world counters.

    *net* (a :class:`~repro.simmpi.netmodel.NetModel`; defaults to the
    configured one) prices the predictions: the overlap prediction is the
    halo wait the rewrite targets (capped by the banked compute credit),
    the dedup prediction is the wire time of the saved bytes.
    """
    if net is None:
        from ...simmpi.netmodel import NetModel

        net = NetModel.from_config()
    report = CommReport(
        ops={op: dict(st) for op, st in (op_stats or {}).items()},
        commopt=dict(commopt_stats or {}),
        optimized=optimized,
        applied=dict(applied or {}),
    )
    # overlap: the eager wait (or, in an optimized run, the wait that is
    # left plus what the credit already hid) bounded by the banked credit
    halo_wait = report.wait_s("HaloExchange") + report.wait_s("HaloFinish")
    credit = float(report.commopt.get("overlap_credit_s", 0.0))
    if optimized:
        # benefit realized: compute time banked against the message flight
        report.predicted_overlap_s = credit
    else:
        # an eager run: everything the rewrite could hide, assuming enough
        # interior work — the whole measured exchange wait
        report.predicted_overlap_s = halo_wait
    saved = float(report.commopt.get("dedup_bytes_saved", 0.0))
    if saved:
        hits = max(1, int(report.commopt.get("dedup_hits", 1)))
        per_hit = saved / hits
        report.predicted_dedup_s = hits * net.scatter(int(per_hit),
                                                      max(2, size))
    return report
