"""Runtime half of the communication optimizer (DESIGN.md §13).

The planning passes (:mod:`.plan`, :mod:`.dedup`) rewrite comm tasklets to
call the functions here instead of the eager :mod:`repro.distributed.comm_api`
operations:

* :func:`halo_start` / :func:`halo_finish` — the split halo exchange.
  ``halo_start`` posts the nonblocking sends/receives and returns
  immediately; the interior partition of the stencil runs while the
  messages are conceptually in flight, and ``halo_finish`` waits, unpacks
  the halo frames, and credits the interior compute time to the virtual
  clock *before* completing the receives — so the measured wait shrinks by
  exactly the overlapped compute.
* :func:`block_scatter_cached` / :func:`allreduce_cached` — loop-invariant
  collective dedup.  The static pass proves the source container is never
  written; the runtime keeps a per-site content fingerprint as
  belt-and-braces and replays the cached result on a hit, skipping the
  wire traffic entirely.
* :func:`coalesce_send` / :func:`coalesce_recv` — the small-message
  envelope: several payloads to the same peer fuse into one message,
  paying the per-message overhead once.

Pending nonblocking state lives on the :class:`~..context.DistContext`
(fresh per rank per launch), so checkpoint epochs never capture in-flight
operations; :func:`drain_pending` is the safety net the checkpoint boundary
calls before cutting a snapshot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...config import Config
from .. import comm_api, context

__all__ = [
    "HaloExtentError", "CollectiveDivergenceError", "PendingHalo",
    "halo_start", "halo_finish", "drain_pending",
    "block_scatter_cached", "allreduce_cached",
    "coalesce_send", "coalesce_recv",
]

#: tag base for coalesced envelopes (clear of the halo/pblas tag ranges)
_TAG_ENVELOPE = 900

#: canonical side order shared by coalescing senders and receivers
_CANONICAL = ("north", "south", "west", "east")


class HaloExtentError(ValueError):
    """A halo exchange whose block is too small for its halo width.

    Sending a halo from a block whose interior is narrower than the halo
    would transmit rows that belong to the *opposite* halo frame — silently
    exchanging garbage.  Raised with the structured fields so callers (and
    tests) can inspect the violation.
    """

    def __init__(self, dim: str, extent: int, halo: int, rank: int):
        self.dim = dim
        self.extent = extent
        self.halo = halo
        self.rank = rank
        super().__init__(
            f"HaloExchange: rank {rank} local block has interior extent "
            f"{extent} along {dim} but needs at least {halo} (halo width "
            f"{halo}) to exchange with its neighbors; pad the block or "
            f"shrink the halo")


class CollectiveDivergenceError(RuntimeError):
    """A deduplicated collective saw a changed input buffer at runtime.

    The static pass only rewrites sites whose source container is provably
    never written, so this firing means the write-set analysis was wrong —
    a bug, not a user error.  Synchronized collectives raise instead of
    silently reusing a stale result."""


def _fingerprint(arr: np.ndarray) -> str:
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha1()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def validate_halo_extents(shape: Tuple[int, int], halo: int,
                          neighbors: Dict[str, int], rank: int) -> None:
    """Reject blocks whose interior is narrower than the halo (satellite
    fix): the send region must lie entirely inside the interior."""
    rows, cols = shape
    if (neighbors.get("north", -1) >= 0 or neighbors.get("south", -1) >= 0) \
            and rows - 2 * halo < halo:
        raise HaloExtentError("rows", rows - 2 * halo, halo, rank)
    if (neighbors.get("west", -1) >= 0 or neighbors.get("east", -1) >= 0) \
            and cols - 2 * halo < halo:
        raise HaloExtentError("cols", cols - 2 * halo, halo, rank)


# ---------------------------------------------------------------------------
# split halo exchange
# ---------------------------------------------------------------------------

@dataclass
class PendingHalo:
    """One started-but-unfinished halo exchange on this rank."""

    array_id: int
    padded: np.ndarray
    halo: int
    requests: List[object] = field(default_factory=list)
    recv_bufs: Dict[str, np.ndarray] = field(default_factory=dict)
    recv_specs: Dict[str, Tuple[slice, slice]] = field(default_factory=dict)
    #: envelope buffer -> ordered (side, shape) list to unpack it into
    envelopes: List[Tuple[np.ndarray, List[str]]] = field(default_factory=list)

    def complete(self) -> None:
        comm_api.Waitall(self.requests)
        for envelope, sides in self.envelopes:
            offset = 0
            for side in sides:
                buf = self.recv_bufs[side]
                buf[...] = envelope[offset:offset + buf.size] \
                    .reshape(buf.shape)
                offset += buf.size
        for side, buf in self.recv_bufs.items():
            self.padded[self.recv_specs[side]] = buf


def _pending_list(ctx) -> List[PendingHalo]:
    pending = getattr(ctx, "commopt_pending", None)
    if pending is None:
        pending = ctx.commopt_pending = []
    return pending


def halo_start(padded: np.ndarray, halo: int = 1) -> np.ndarray:
    """Post the nonblocking halo sends/receives and return immediately.

    Mirrors :func:`repro.distributed.comm_api.HaloExchange` up to (but not
    including) the wait: receive buffers and requests are parked on the
    distributed context until :func:`halo_finish`.
    """
    ctx = context.require()
    comm, grid = ctx.comm, ctx.grid
    if grid.ndims != 2:
        raise ValueError("halo_start requires a 2-D process grid")
    neighbors = grid.neighbors(ctx.rank)
    rows, cols = padded.shape
    validate_halo_extents((rows, cols), halo, neighbors, ctx.rank)
    recv_specs = {
        "north": (slice(0, halo), slice(halo, cols - halo)),
        "south": (slice(rows - halo, rows), slice(halo, cols - halo)),
        "west": (slice(halo, rows - halo), slice(0, halo)),
        "east": (slice(halo, rows - halo), slice(cols - halo, cols)),
    }
    send_specs = {
        "north": (slice(halo, 2 * halo), slice(halo, cols - halo)),
        "south": (slice(rows - 2 * halo, rows - halo), slice(halo, cols - halo)),
        "west": (slice(halo, rows - halo), slice(halo, 2 * halo)),
        "east": (slice(halo, rows - halo), slice(cols - 2 * halo, cols - halo)),
    }
    opposite = {"north": "south", "south": "north", "west": "east",
                "east": "west"}
    tags = {"north": 11, "south": 12, "west": 13, "east": 14}

    # group both directions by peer: a peer adjacent on several sides gets
    # its small messages fused into one envelope.  Sender and receiver make
    # the same decision independently — the shared sides and their payload
    # sizes are symmetric, and _CANONICAL fixes the packing order (a
    # receiver orders its sides by the sender-side name, ``opposite``).
    # On plain 2-D grids every peer is adjacent on exactly one side, so
    # this degenerates to one plain message per neighbor.
    max_bytes = Config.get("commopt.coalesce_max_bytes")
    pending = PendingHalo(array_id=id(padded), padded=padded, halo=halo)
    recv_by_peer: Dict[int, List[str]] = {}
    send_by_peer: Dict[int, List[str]] = {}
    for side in _CANONICAL:
        neighbor = neighbors.get(side, -1)
        if neighbor < 0:
            continue
        send_by_peer.setdefault(neighbor, []).append(side)
        recv_by_peer.setdefault(neighbor, []).append(side)
    for neighbor, sides in recv_by_peer.items():
        bufs = {s: np.empty_like(padded[recv_specs[s]]) for s in sides}
        for s in sides:
            pending.recv_bufs[s] = bufs[s]
            pending.recv_specs[s] = recv_specs[s]
        if len(sides) > 1 and max_bytes > 0 \
                and all(b.nbytes <= max_bytes for b in bufs.values()):
            ordered = sorted(sides, key=lambda s: _CANONICAL.index(opposite[s]))
            envelope = np.empty(sum(bufs[s].size for s in ordered),
                                dtype=padded.dtype)
            pending.envelopes.append((envelope, ordered))
            pending.requests.append(
                comm.Irecv(envelope, neighbor, tag=_TAG_ENVELOPE))
        else:
            for s in sides:
                pending.requests.append(
                    comm.Irecv(bufs[s], neighbor, tag=tags[opposite[s]]))
    for neighbor, sides in send_by_peer.items():
        payloads = [np.ascontiguousarray(padded[send_specs[s]])
                    for s in sides]
        if len(sides) > 1 and max_bytes > 0 \
                and all(p.nbytes <= max_bytes for p in payloads):
            pending.requests.append(coalesce_send(
                comm, neighbor, _TAG_ENVELOPE, payloads))
        else:
            for s, payload in zip(sides, payloads, strict=True):
                pending.requests.append(
                    comm.Isend(payload, neighbor, tag=tags[s]))
    comm._world.account("HaloStart", count=1)
    _pending_list(ctx).append(pending)
    return padded


def halo_finish(padded: np.ndarray, interior_flops: float = 0.0) -> np.ndarray:
    """Complete the matching :func:`halo_start` and unpack the frames.

    *interior_flops* is the planner's static estimate of the interior
    partition executed between start and finish; its modeled time advances
    this rank's virtual clock **before** the waits, so the measured wait is
    ``max(0, eager_wait - overlap_credit)`` — the overlap benefit.
    """
    ctx = context.require()
    comm = ctx.comm
    world = comm._world
    pending_ops = _pending_list(ctx)
    match = next((p for p in pending_ops if p.array_id == id(padded)), None)
    if match is None:
        # replay after a checkpoint restart can land on a finish whose start
        # belongs to the rolled-back epoch: fall back to a full exchange
        return comm_api.HaloExchange(padded)
    pending_ops.remove(match)
    credit_s = 0.0
    if interior_flops > 0.0:
        rate = Config.get("commopt.stencil_gflops") \
            or Config.get("cpu.flops_gflops")
        credit_s = float(interior_flops) / (rate * 1e9)
        comm.advance(credit_s)
        world.commopt_note("overlap_credit_s", credit_s)
    before = world.clocks[comm.rank]
    match.complete()
    world.account("HaloFinish", count=1,
                  wait_s=max(0.0, world.clocks[comm.rank] - before))
    return padded


def drain_pending(ctx=None) -> int:
    """Complete every outstanding nonblocking halo on this rank.

    Called by the checkpoint boundary before a snapshot is cut, so deferred
    operations never straddle a recovery line; returns the drain count."""
    ctx = ctx or context.current()
    if ctx is None:
        return 0
    pending_ops = _pending_list(ctx)
    drained = 0
    while pending_ops:
        pending_ops.pop(0).complete()
        drained += 1
    return drained


# ---------------------------------------------------------------------------
# collective dedup
# ---------------------------------------------------------------------------

def _memo(ctx) -> Dict[str, Tuple[str, object]]:
    memo = getattr(ctx, "commopt_memo", None)
    if memo is None:
        memo = ctx.commopt_memo = {}
    return memo


def block_scatter_cached(global_array: np.ndarray,
                         shape=None, layout: str = "grid",
                         site: str = "") -> np.ndarray:
    """Loop-invariant :func:`~..comm_api.BlockScatter`.

    ``BlockScatter`` is barrier-free (only clocks advance), so a per-rank
    cache decision cannot desynchronize the SPMD state machines: a
    (theoretically impossible) fingerprint mismatch just re-executes the
    scatter eagerly on that rank.
    """
    ctx = context.require()
    arr = np.asarray(global_array)
    fp = _fingerprint(arr)
    memo = _memo(ctx)
    hit = memo.get(site)
    if hit is not None and hit[0] == fp:
        world = ctx.comm._world
        world.commopt_note("dedup_hits", 1)
        if ctx.rank == 0 and ctx.size > 1:
            # what the eager scatter would have put on the wire
            world.commopt_note("dedup_bytes_saved", int(arr.nbytes))
        return np.copy(hit[1])
    block = comm_api.BlockScatter(global_array, shape, layout)
    memo[site] = (fp, np.copy(block))
    return block


def allreduce_cached(value, op: str = "sum", site: str = ""):
    """Loop-invariant :func:`~..comm_api.Allreduce`.

    Allreduce is clock-synchronizing, so the dedup decision must agree on
    every rank.  The static pass guarantees the operand container is never
    written; all ranks therefore hit (or miss) together.  A mismatch after
    a hit elsewhere would deadlock — raise the structured divergence error
    instead of communicating.
    """
    ctx = context.require()
    arr = np.atleast_1d(np.asarray(value, dtype=np.float64))
    fp = _fingerprint(arr) + f"|{op}"
    memo = _memo(ctx)
    hit = memo.get(site)
    if hit is not None:
        if hit[0] != fp:
            raise CollectiveDivergenceError(
                f"deduplicated Allreduce at {site or '<unknown site>'} saw "
                f"a modified input buffer on rank {ctx.rank}; the static "
                f"write-set analysis admitted a site it should not have")
        world = ctx.comm._world
        world.commopt_note("dedup_hits", 1)
        if ctx.rank == 0 and ctx.size > 1:
            world.commopt_note(
                "dedup_bytes_saved", int(arr.nbytes) * (ctx.size - 1))
        return hit[1]
    result = comm_api.Allreduce(value, op=op)
    memo[site] = (fp, result)
    return result


# ---------------------------------------------------------------------------
# small-message coalescing
# ---------------------------------------------------------------------------

def coalesce_send(comm, dest: int, tag: int, payloads: List[np.ndarray]):
    """Fuse *payloads* into one envelope and send it as a single message.

    The receiver unpacks with :func:`coalesce_recv` using the same shapes
    and dtypes.  One message means the per-message overhead (and latency)
    is paid once instead of ``len(payloads)`` times.
    """
    parts = [np.ascontiguousarray(p) for p in payloads]
    if not parts:
        raise ValueError("coalesce_send requires at least one payload")
    dtype = parts[0].dtype
    if any(p.dtype != dtype for p in parts):
        raise ValueError("coalesced payloads must share a dtype")
    envelope = np.concatenate([p.reshape(-1) for p in parts])
    request = comm.Isend(envelope, dest, tag=tag)
    comm._world.commopt_note("coalesced_messages", len(parts) - 1)
    return request


def coalesce_recv(comm, source: int, tag: int,
                  shapes: List[Tuple[int, ...]], dtype) -> List[np.ndarray]:
    """Receive one envelope from *source* and split it back into arrays."""
    sizes = [int(np.prod(s)) for s in shapes]
    envelope = np.empty(sum(sizes), dtype=dtype)
    comm.Recv(envelope, source, tag=tag)
    out, offset = [], 0
    for shape, size in zip(shapes, sizes, strict=True):
        out.append(envelope[offset:offset + size].reshape(shape).copy())
        offset += size
    return out
