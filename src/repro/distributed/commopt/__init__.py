"""Communication-aware distributed optimizer (DESIGN.md §13).

Three passes over distributed SDFGs, all opportunistic (unproven sites
stay eager) and all gated on :mod:`repro.config` keys:

* :func:`~.plan.overlap_halo_exchanges` — split stencil bodies into
  interior/boundary, post ``Isend``/``Irecv`` before the interior and
  ``Waitall`` only before the boundary strips (``commopt.overlap``);
* :func:`~.dedup.dedup_collectives` — memoize loop-invariant collectives
  whose source buffers are provably never written (``commopt.dedup``);
* :mod:`~.runtime` — the rank-local runtime: pending-exchange registry,
  envelope coalescing, collective memo, halo-extent validation.

``optimize_comm(sdfg)`` applies the enabled passes in place and returns
a per-pass application count.  ``python -m repro.distributed.commopt
report`` prints planned-vs-eager comm volume for the kernel corpus.
"""

from __future__ import annotations

from typing import Dict

from ...config import Config
from .plan import overlap_halo_exchanges
from .dedup import dedup_collectives
from .runtime import (
    CollectiveDivergenceError,
    HaloExtentError,
    drain_pending,
    validate_halo_extents,
)

__all__ = [
    "optimize_comm",
    "overlap_halo_exchanges",
    "dedup_collectives",
    "drain_pending",
    "validate_halo_extents",
    "HaloExtentError",
    "CollectiveDivergenceError",
]


def optimize_comm(sdfg) -> Dict[str, int]:
    """Apply the enabled communication optimizations to *sdfg* in place.

    Returns ``{"overlap": n_sites, "dedup": n_collectives}``.
    """
    applied = {"overlap": 0, "dedup": 0}
    if Config.get("commopt.overlap"):
        applied["overlap"] = overlap_halo_exchanges(sdfg)
    if Config.get("commopt.dedup"):
        applied["dedup"] = dedup_collectives(sdfg)
    if any(applied.values()):
        sdfg.validate()
    return applied
