"""Automatic optimization heuristics (§3.1, the -O3 analogue).

``auto_optimize`` runs, in order:

1. **Map scope cleanup** — remove degenerate (size-1) maps, repeatedly apply
   *LoopToMap*, and collapse nested maps into multidimensional maps.
2. **Greedy subgraph fusion** — fuse the largest contiguous map subgraphs
   sharing (a subset of) the same iteration space.
3. **Tile WCR maps** — tile parallel maps with write-conflicts to reduce
   atomic operations.
4. **Transient allocation mitigation** — move small constant-sized arrays to
   the stack and make input-sized temporaries persistent.

Device-specific passes follow: OpenMP-collapse for CPU, the
``{GPU,FPGA}TransformSDFG`` passes for accelerators, and finally library
nodes are specialized using the per-platform priority lists (§3.2).
"""

from __future__ import annotations

from .config import Config

__all__ = ["auto_optimize"]


def auto_optimize(sdfg, device: str = "CPU", use_fast_library: bool = True,
                  passes: dict = None):
    """Auto-optimize *sdfg* in place for *device*; returns the SDFG.

    ``passes`` optionally disables individual steps (for the ablation
    benchmarks), e.g. ``passes={"fusion": False}``.
    """
    from .transformations.dataflow.cleanup import DegenerateMapRemoval
    from .transformations.dataflow.loop_to_map import LoopToMap
    from .transformations.dataflow.map_collapse import MapCollapse
    from .transformations.dataflow.map_fusion import GreedySubgraphFusion
    from .transformations.dataflow.map_tiling import TileWCRMaps
    from .transformations.dataflow.transient_alloc import TransientAllocationMitigation
    from .transformations.pipeline import simplify_pass

    enabled = {
        "cleanup": True,
        "loop_to_map": True,
        "collapse": True,
        "fusion": True,
        "tile_wcr": True,
        "transients": True,
        "device": True,
        "library": True,
    }
    enabled.update(passes or {})

    # (1) map scope cleanup
    if enabled["cleanup"]:
        DegenerateMapRemoval.apply_repeated(sdfg)
    if enabled["loop_to_map"]:
        while LoopToMap.apply_once(sdfg):
            simplify_pass(sdfg)
    if enabled["collapse"]:
        MapCollapse.apply_repeated(sdfg)

    # (2) greedy subgraph fusion
    if enabled["fusion"]:
        GreedySubgraphFusion.apply_repeated(sdfg)
        simplify_pass(sdfg)

    # (3) tile WCR maps
    if enabled["tile_wcr"]:
        TileWCRMaps.apply_repeated(sdfg, tile_size=Config.get("optimizer.tile_size"))

    # (4) transient allocation mitigation
    if enabled["transients"]:
        TransientAllocationMitigation.apply_repeated(sdfg)

    # device-specific passes
    if enabled["device"]:
        if device == "CPU":
            from .transformations.device.cpu_transform import CPUParallelize

            CPUParallelize.apply_repeated(sdfg)
        elif device == "GPU":
            from .transformations.device.gpu_transform import GPUTransformSDFG

            GPUTransformSDFG.apply_repeated(sdfg)
        elif device == "FPGA":
            from .transformations.device.fpga_transform import (
                FPGATransformSDFG,
                StreamingComposition,
            )

            FPGATransformSDFG.apply_repeated(sdfg)
            StreamingComposition.apply_repeated(sdfg)
        else:
            raise ValueError(f"unknown device {device!r}")

    # library specialization (§3.2)
    if enabled["library"]:
        if use_fast_library:
            sdfg.expand_library_nodes(device=device)
        else:
            sdfg.expand_library_nodes(implementation="native")
        # expansions may introduce WCR maps (native reductions): tile them too
        if enabled["tile_wcr"]:
            TileWCRMaps.apply_repeated(
                sdfg, tile_size=Config.get("optimizer.tile_size"))

    return sdfg
