"""Automatic optimization heuristics (§3.1, the -O3 analogue).

``auto_optimize`` runs, in order:

1. **Map scope cleanup** — remove degenerate (size-1) maps, repeatedly apply
   *LoopToMap*, and collapse nested maps into multidimensional maps.
2. **Greedy subgraph fusion** — fuse the largest contiguous map subgraphs
   sharing (a subset of) the same iteration space.
3. **Tile WCR maps** — tile parallel maps with write-conflicts to reduce
   atomic operations.
4. **Transient allocation mitigation** — move small constant-sized arrays to
   the stack and make input-sized temporaries persistent.

Device-specific passes follow: OpenMP-collapse for CPU, the
``{GPU,FPGA}TransformSDFG`` passes for accelerators, and finally library
nodes are specialized using the per-platform priority lists (§3.2).

Under ``resilience.transactional`` each step runs as a transaction: a step
that raises (or leaves an invalid graph behind) is rolled back and recorded
in the :class:`repro.resilience.FailureReport`, and optimization continues
with the remaining steps — an optimization failure degrades the result, it
does not corrupt it.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Optional

from . import instrumentation
from .config import Config

__all__ = ["auto_optimize"]


def auto_optimize(sdfg, device: str = "CPU", use_fast_library: bool = True,
                  passes: dict = None, report=None):
    """Auto-optimize *sdfg* in place for *device*; returns the SDFG.

    ``passes`` optionally disables individual steps (for the ablation
    benchmarks), e.g. ``passes={"fusion": False}``.  ``report`` optionally
    collects rolled-back steps in a :class:`repro.resilience.FailureReport`.
    """
    from .resilience import FailureReport, ResilienceWarning, SDFGSnapshot
    from .transformations.dataflow.cleanup import DegenerateMapRemoval
    from .transformations.dataflow.loop_to_map import LoopToMap
    from .transformations.dataflow.map_collapse import MapCollapse
    from .transformations.dataflow.map_fusion import GreedySubgraphFusion
    from .transformations.dataflow.map_tiling import TileWCRMaps
    from .transformations.dataflow.transient_alloc import TransientAllocationMitigation
    from .transformations.pipeline import simplify_pass

    enabled = {
        "cleanup": True,
        "loop_to_map": True,
        "collapse": True,
        "fusion": True,
        "tile_wcr": True,
        "transients": True,
        "device": True,
        "library": True,
        "commopt": Config.get("commopt.enabled"),
    }
    enabled.update(passes or {})

    transactional = Config.get("resilience.transactional")
    if report is None:
        report = FailureReport()

    def step(name: str, thunk: Callable[[], None]) -> None:
        if not enabled.get(name, True):
            return
        prof = instrumentation._ACTIVE
        step_start = time.perf_counter() if prof is not None else 0.0
        try:
            if not transactional:
                thunk()
                return
            from .resilience import _check_static_issues, _static_issues

            check_static = Config.get("sanitize.check_transforms")
            baseline = _static_issues(sdfg) if check_static else frozenset()
            snapshot = SDFGSnapshot.capture(sdfg)
            try:
                thunk()
                if not Config.get("validate.after_transform"):
                    sdfg.validate()
                if check_static:
                    _check_static_issues(sdfg, baseline)
            except Exception as exc:
                snapshot.restore(sdfg)
                report.record("optimization", name, exc, "rolled-back",
                              device=device)
                warnings.warn(
                    f"auto_optimize step {name!r} failed "
                    f"({type(exc).__name__}: {exc}); rolled back and continuing",
                    ResilienceWarning, stacklevel=3)
        finally:
            if prof is not None:
                prof.add("pass", f"autoopt.{name}",
                         time.perf_counter() - step_start)

    def loop_to_map_to_fixed_point() -> None:
        cap = Config.get("resilience.max_pass_applications")
        count = 0
        while LoopToMap.apply_once(sdfg):
            simplify_pass(sdfg, report=report)
            count += 1
            if count >= cap:
                warnings.warn(
                    f"auto_optimize: LoopToMap hit the application cap "
                    f"({cap}) on {sdfg.name!r}; stopping",
                    ResilienceWarning, stacklevel=2)
                break

    # (1) map scope cleanup
    step("cleanup", lambda: DegenerateMapRemoval.apply_repeated(sdfg))
    step("loop_to_map", loop_to_map_to_fixed_point)
    step("collapse", lambda: MapCollapse.apply_repeated(sdfg))

    # (2) greedy subgraph fusion
    def fusion() -> None:
        GreedySubgraphFusion.apply_repeated(sdfg)
        simplify_pass(sdfg, report=report)

    step("fusion", fusion)

    # (3) tile WCR maps
    step("tile_wcr", lambda: TileWCRMaps.apply_repeated(
        sdfg, tile_size=Config.get("optimizer.tile_size")))

    # (4) transient allocation mitigation
    step("transients", lambda: TransientAllocationMitigation.apply_repeated(sdfg))

    # device-specific passes
    def device_passes() -> None:
        if device == "CPU":
            from .transformations.device.cpu_transform import CPUParallelize

            CPUParallelize.apply_repeated(sdfg)
        elif device == "GPU":
            from .transformations.device.gpu_transform import GPUTransformSDFG

            GPUTransformSDFG.apply_repeated(sdfg)
        elif device == "FPGA":
            from .transformations.device.fpga_transform import (
                FPGATransformSDFG,
                StreamingComposition,
            )

            FPGATransformSDFG.apply_repeated(sdfg)
            StreamingComposition.apply_repeated(sdfg)
        else:
            raise ValueError(f"unknown device {device!r}")

    if enabled["device"]:
        if device not in ("CPU", "GPU", "FPGA"):
            # a bad device name is a caller error, never a step failure to absorb
            raise ValueError(f"unknown device {device!r}")
        step("device", device_passes)

    # library specialization (§3.2)
    def library() -> None:
        if use_fast_library:
            sdfg.expand_library_nodes(device=device)
        else:
            sdfg.expand_library_nodes(implementation="native")
        # expansions may introduce WCR maps (native reductions): tile them too
        if enabled["tile_wcr"]:
            TileWCRMaps.apply_repeated(
                sdfg, tile_size=Config.get("optimizer.tile_size"))

    step("library", library)

    # communication optimizer (§13; distributed SDFGs only, opt-in via
    # commopt.enabled — run_distributed applies it independently of -O3)
    def commopt_pass() -> None:
        from .distributed.commopt import optimize_comm

        optimize_comm(sdfg)

    step("commopt", commopt_pass)

    return sdfg
