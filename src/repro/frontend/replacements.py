"""NumPy / builtin function replacements (§2.3).

Calls to library functions are replaced with custom subgraphs or Library
Nodes during parsing.  The registry maps the *resolved callable object*
(``np.zeros``, ``np.sum``, …) to a handler, so aliasing (``import numpy as
anything``) works naturally.  Users can extend the registry with
:func:`register_replacement` — the mechanism the paper describes for
supporting additional libraries and object types.
"""

from __future__ import annotations

import ast
import inspect
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..dtypes import dtype_of, typeclass
from ..ir.data import Scalar
from ..ir.memlet import Memlet
from ..symbolic import Expr, Integer, Range, Symbol, sympify
from .astutils import UnsupportedFeature, static_eval, unparse
from .parser import ArrayOp, ConstOp, Operand, ProgramVisitor, SymOp

__all__ = ["dispatch_call", "register_replacement"]

_REGISTRY: Dict[Any, Callable] = {}


def register_replacement(*functions: Any) -> Callable:
    """Register a parse-time replacement for the given callables."""

    def decorator(handler: Callable) -> Callable:
        for func in functions:
            _REGISTRY[func] = handler
        return handler

    return decorator


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def dispatch_call(visitor: ProgramVisitor, node: ast.Call, statement: bool = False):
    ok, func = static_eval(node.func, visitor.globals)
    if ok and func is not None:
        try:
            handler = _REGISTRY.get(func)
        except TypeError:
            handler = None
        if handler is not None:
            return handler(visitor, node)
        # calls to other data-centric programs -> nested SDFGs
        from .decorator import DaceProgram

        if isinstance(func, DaceProgram):
            return _emit_nested_call(visitor, func, node)
        if inspect.isfunction(func):
            wrapped = DaceProgram(func)
            return _emit_nested_call(visitor, wrapped, node)

    # method calls on arrays: A.sum(), A.copy(), A.astype(...)
    if isinstance(node.func, ast.Attribute):
        try:
            base = visitor._parse_expr(node.func.value)
        except UnsupportedFeature:
            base = None
        if isinstance(base, ArrayOp):
            return _dispatch_method(visitor, base, node)

    raise UnsupportedFeature(f"unsupported call {unparse(node)!r}")


def _dispatch_method(visitor: ProgramVisitor, base: ArrayOp, node: ast.Call):
    method = node.func.attr
    if method in ("sum", "min", "max", "prod"):
        # method form: the array is the receiver, so a positional axis
        # sits at args[0] (not args[1] as in the free-function form)
        return _emit_reduce(visitor, base, method,
                            _axis_of(visitor, node, start=0),
                            keepdims=_keepdims_of(visitor, node))
    if method == "mean":
        return _emit_mean(visitor, base, _axis_of(visitor, node, start=0),
                          keepdims=_keepdims_of(visitor, node))
    if method == "copy":
        return _emit_copy_of(visitor, base)
    if method == "astype":
        ok, np_dtype = static_eval(node.args[0], visitor.globals)
        if not ok:
            raise UnsupportedFeature("astype requires a static dtype")
        return _emit_cast(visitor, base, dtype_of(np.dtype(np_dtype)))
    if method == "transpose":
        return visitor._emit_transpose(base)
    if method == "fill":
        value = visitor._parse_expr(node.args[0])
        desc = visitor._desc(base)
        visitor._store_subset(base.name, Range.from_shape(desc.shape), [], value)
        return base
    raise UnsupportedFeature(f"unsupported array method .{method}()")


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _axis_of(visitor: ProgramVisitor, node: ast.Call,
             start: int = 1) -> Optional[Tuple[int, ...]]:
    """Static reduction axes of a call.  *start* is the position of the
    axis argument: 1 for free functions (``np.sum(A, axis)``), 0 for
    method calls (``A.sum(axis)``, where the array is not an argument)."""
    axis_node = None
    for kw in node.keywords:
        if kw.arg == "axis":
            axis_node = kw.value
    if axis_node is None and len(node.args) > start \
            and not any(isinstance(a, ast.Starred) for a in node.args):
        axis_node = node.args[start]
    if axis_node is None:
        return None
    ok, value = static_eval(axis_node, visitor.globals)
    if not ok:
        raise UnsupportedFeature("reduction axis must be a constant")
    if value is None:
        return None
    if isinstance(value, int):
        return (value,)
    return tuple(int(v) for v in value)


def _keepdims_of(visitor: ProgramVisitor, node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "keepdims":
            ok, value = static_eval(kw.value, visitor.globals)
            if not ok:
                raise UnsupportedFeature("keepdims must be a constant")
            return bool(value)
    return False


def _normalize_axes(axes: Optional[Tuple[int, ...]],
                    ndim: int) -> Optional[Tuple[int, ...]]:
    """Validate and wrap negative reduction axes (NumPy semantics: an axis
    outside ``[-ndim, ndim)`` is an error, not a silent modulo)."""
    if axes is None:
        return None
    norm = []
    for a in axes:
        if not -ndim <= a < ndim:
            raise UnsupportedFeature(
                f"reduction axis {a} out of range for {ndim}-d array")
        norm.append(a + ndim if a < 0 else a)
    return tuple(norm)


def _shape_from_node(visitor: ProgramVisitor, node: ast.expr) -> Tuple[Expr, ...]:
    elements = list(node.elts) if isinstance(node, (ast.Tuple, ast.List)) else [node]
    shape: List[Expr] = []
    for element in elements:
        operand = visitor._parse_expr(element)
        if isinstance(operand, ConstOp):
            shape.append(Integer(int(operand.value)))
        elif isinstance(operand, SymOp):
            shape.append(operand.expr)
        else:
            raise UnsupportedFeature(
                "array shapes must be constants or symbolic expressions")
    return tuple(shape)


def _dtype_arg(visitor: ProgramVisitor, node: ast.Call, position: int,
               default: typeclass) -> typeclass:
    dtype_node = None
    if len(node.args) > position:
        dtype_node = node.args[position]
    for kw in node.keywords:
        if kw.arg == "dtype":
            dtype_node = kw.value
    if dtype_node is None:
        return default
    ok, value = static_eval(dtype_node, visitor.globals)
    if not ok:
        raise UnsupportedFeature("dtype argument must be static")
    if isinstance(value, typeclass):
        return value
    return dtype_of(np.dtype(value))


def _alloc(visitor: ProgramVisitor, node: ast.Call, fill: Optional[float]) -> Operand:
    shape = _shape_from_node(visitor, node.args[0])
    dtype = _dtype_arg(visitor, node, 1, dtype_of(np.float64))
    name = visitor._tmp(shape, dtype)
    if fill is not None:
        visitor._store_subset(name, Range.from_shape(shape), [], ConstOp(fill))
    return ArrayOp(name)


def _emit_reduce(visitor: ProgramVisitor, operand: ArrayOp, wcr: str,
                 axes: Optional[Tuple[int, ...]],
                 keepdims: bool = False) -> Operand:
    from ..library.reduce import Reduce

    desc = visitor._desc(operand)
    if isinstance(desc, Scalar):
        return operand
    ndim = desc.ndim
    axes = _normalize_axes(axes, ndim)
    out_dims = [desc.shape[i] for i in range(ndim)
                if axes is not None and i not in axes]
    out = visitor._tmp(tuple(out_dims) if out_dims else (), desc.dtype)
    state = visitor._new_state("reduce")
    red = Reduce(wcr=wcr, axes=axes)
    state.add_node(red)
    src = state.add_read(operand.name)
    dst = state.add_write(out)
    state.add_edge(src, None, red, "_in", Memlet.from_array(operand.name, desc))
    out_desc = visitor.sdfg.arrays[out]
    if isinstance(out_desc, Scalar):
        state.add_edge(red, "_out", dst, None, Memlet(out, Range.from_string("0")))
    else:
        state.add_edge(red, "_out", dst, None, Memlet.from_array(out, out_desc))
    if not keepdims:
        return ArrayOp(out)
    return _emit_keepdims(visitor, out, desc, axes)


def _emit_keepdims(visitor: ProgramVisitor, reduced: str, src_desc,
                   axes: Optional[Tuple[int, ...]]) -> Operand:
    """Copy a reduced result into a view-compatible shape with size-1
    entries at the reduced axes (``keepdims=True`` semantics)."""
    ndim = src_desc.ndim
    red_axes = set(axes) if axes is not None else set(range(ndim))
    keep_shape = tuple(Integer(1) if i in red_axes else src_desc.shape[i]
                       for i in range(ndim))
    keep = visitor._tmp(keep_shape, src_desc.dtype)
    state = visitor._new_state("keepdims")
    out_desc = visitor.sdfg.arrays[reduced]
    kept = [i for i in range(ndim) if i not in red_axes]
    if isinstance(out_desc, Scalar):
        tasklet = state.add_tasklet("keepdims", {"__in"}, {"__out"},
                                    "__out = __in")
        state.add_edge(state.add_read(reduced), None, tasklet, "__in",
                       Memlet(reduced, Range.from_string("0")))
        state.add_edge(tasklet, "__out", state.add_write(keep), None,
                       Memlet(keep, Range.from_indices(
                           [Integer(0)] * ndim)))
        return ArrayOp(keep)
    params = [f"__k{i}" for i in range(len(kept))]
    dims = {p: (Integer(0), src_desc.shape[axis] - 1, Integer(1))
            for p, axis in zip(params, kept)}
    in_memlet = Memlet(reduced, Range.from_indices(
        [Symbol(p, nonnegative=False) for p in params]))
    out_indices: List[Expr] = []
    param_iter = iter(params)
    for i in range(ndim):
        out_indices.append(Integer(0) if i in red_axes
                           else Symbol(next(param_iter), nonnegative=False))
    state.add_mapped_tasklet(
        "keepdims", dims, {"__in": in_memlet}, "__out = __in",
        {"__out": Memlet(keep, Range.from_indices(out_indices))})
    return ArrayOp(keep)


def _emit_mean(visitor: ProgramVisitor, operand: ArrayOp,
               axes: Optional[Tuple[int, ...]],
               keepdims: bool = False) -> Operand:
    desc = visitor._desc(operand)
    if isinstance(desc, Scalar):
        return operand
    axes = _normalize_axes(axes, desc.ndim)
    total = _emit_reduce(visitor, operand, "sum", axes, keepdims=keepdims)
    axes_eff = axes if axes is not None else tuple(range(desc.ndim))
    count: Expr = Integer(1)
    for axis in axes_eff:
        count = count * desc.shape[axis]
    return visitor._emit_binary("/", total, SymOp(count))


def _emit_copy_of(visitor: ProgramVisitor, operand: ArrayOp) -> Operand:
    desc = visitor._desc(operand)
    if isinstance(desc, Scalar):
        out = visitor._tmp((), desc.dtype)
    else:
        out = visitor._tmp(desc.shape, desc.dtype)
    visitor._emit_copy(operand.name, None, out, None)
    return ArrayOp(out)


def _emit_cast(visitor: ProgramVisitor, operand: Operand, dtype: typeclass) -> Operand:
    if isinstance(operand, ConstOp):
        return ConstOp(dtype.nptype.type(operand.value).item())
    return visitor._emit_map_op(f"np.{dtype.name}({{0}})", [operand], dtype,
                                label="cast")


def _unary_np(np_name: str):
    def handler(visitor: ProgramVisitor, node: ast.Call):
        operand = visitor._parse_expr(node.args[0])
        if isinstance(operand, ConstOp):
            return ConstOp(getattr(np, np_name)(operand.value).item())
        in_dtype = visitor._dtype_of(operand)
        # transcendental functions promote integers to float
        if np_name in _FLOAT_FUNCS and not in_dtype.is_float and not in_dtype.is_complex:
            out_dtype = dtype_of(np.float64)
        else:
            out_dtype = in_dtype
        if np_name in ("floor", "ceil", "trunc", "rint") and in_dtype.is_float:
            out_dtype = in_dtype
        return visitor._emit_map_op(f"np.{np_name}({{0}})", [operand], out_dtype,
                                    label=np_name)

    return handler


_FLOAT_FUNCS = {"sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan",
                "tanh", "sinh", "cosh", "arcsin", "arccos", "arctan", "floor",
                "ceil", "trunc", "rint", "cbrt", "expm1", "log1p"}


def _binary_np(np_name: str):
    def handler(visitor: ProgramVisitor, node: ast.Call):
        left = visitor._parse_expr(node.args[0])
        right = visitor._parse_expr(node.args[1])
        if isinstance(left, ConstOp) and isinstance(right, ConstOp):
            return ConstOp(getattr(np, np_name)(left.value, right.value).item())
        dtype = visitor._promote("+", left, right)
        return visitor._emit_map_op(f"np.{np_name}({{0}}, {{1}})", [left, right],
                                    dtype, label=np_name)

    return handler


# ---------------------------------------------------------------------------
# NumPy registrations
# ---------------------------------------------------------------------------

@register_replacement(np.zeros)
def _np_zeros(visitor, node):
    return _alloc(visitor, node, 0)


@register_replacement(np.ones)
def _np_ones(visitor, node):
    return _alloc(visitor, node, 1)


@register_replacement(np.empty)
def _np_empty(visitor, node):
    return _alloc(visitor, node, None)


@register_replacement(np.full)
def _np_full(visitor, node):
    shape = _shape_from_node(visitor, node.args[0])
    fill = visitor._parse_expr(node.args[1])
    default = dtype_of(np.float64)
    if isinstance(fill, ConstOp):
        default = dtype_of(fill.value)
    dtype = _dtype_arg(visitor, node, 2, default)
    name = visitor._tmp(shape, dtype)
    visitor._store_subset(name, Range.from_shape(shape), [], fill)
    return ArrayOp(name)


@register_replacement(np.zeros_like, np.empty_like, np.ones_like)
def _np_like(visitor, node):
    ok, func = static_eval(node.func, visitor.globals)
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        raise UnsupportedFeature("zeros_like requires an array argument")
    desc = visitor._desc(operand)
    dtype = _dtype_arg(visitor, node, 99, desc.dtype)
    name = visitor._tmp(desc.shape if not isinstance(desc, Scalar) else (), dtype)
    if func is not np.empty_like:
        fill = 0 if func is np.zeros_like else 1
        shape = (Range.from_string("0") if isinstance(desc, Scalar)
                 else Range.from_shape(desc.shape))
        visitor._store_subset(name, shape, [], ConstOp(fill))
    return ArrayOp(name)


@register_replacement(np.copy)
def _np_copy(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    return _emit_copy_of(visitor, operand)


@register_replacement(np.sum, np.add.reduce)
def _np_sum(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    return _emit_reduce(visitor, operand, "sum", _axis_of(visitor, node),
                        keepdims=_keepdims_of(visitor, node))


@register_replacement(np.prod)
def _np_prod(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    return _emit_reduce(visitor, operand, "prod", _axis_of(visitor, node),
                        keepdims=_keepdims_of(visitor, node))


@register_replacement(np.min, np.amin)
def _np_min(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    return _emit_reduce(visitor, operand, "min", _axis_of(visitor, node),
                        keepdims=_keepdims_of(visitor, node))


@register_replacement(np.max, np.amax)
def _np_max(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    return _emit_reduce(visitor, operand, "max", _axis_of(visitor, node),
                        keepdims=_keepdims_of(visitor, node))


@register_replacement(np.mean)
def _np_mean(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    return _emit_mean(visitor, operand, _axis_of(visitor, node),
                      keepdims=_keepdims_of(visitor, node))


@register_replacement(np.matmul, np.dot)
def _np_matmul(visitor, node):
    left = visitor._parse_expr(node.args[0])
    right = visitor._parse_expr(node.args[1])
    return visitor._emit_matmul(left, right)


@register_replacement(np.outer)
def _np_outer(visitor, node):
    from ..library.blas import Outer

    left = visitor._parse_expr(node.args[0])
    right = visitor._parse_expr(node.args[1])
    if not isinstance(left, ArrayOp) or not isinstance(right, ArrayOp):
        raise UnsupportedFeature("np.outer requires array operands")
    a_desc = visitor._desc(left)
    b_desc = visitor._desc(right)
    dtype = visitor._promote("*", left, right)
    out = visitor._tmp((a_desc.shape[0], b_desc.shape[0]), dtype)
    state = visitor._new_state("outer")
    lib = Outer()
    state.add_node(lib)
    state.add_edge(state.add_read(left.name), None, lib, "_a",
                   Memlet.from_array(left.name, a_desc))
    state.add_edge(state.add_read(right.name), None, lib, "_b",
                   Memlet.from_array(right.name, b_desc))
    state.add_edge(lib, "_c", state.add_write(out), None,
                   Memlet.from_array(out, visitor.sdfg.arrays[out]))
    return ArrayOp(out)


@register_replacement(np.flip)
def _np_flip(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    desc = visitor._desc(operand)
    if desc.ndim != 1:
        raise UnsupportedFeature("np.flip is only supported for 1-D arrays")
    n = desc.shape[0]
    out = visitor._tmp((n,), desc.dtype)
    state = visitor._new_state("flip")
    state.add_mapped_tasklet(
        "flip", {"__i": (Integer(0), n - 1, Integer(1))},
        {"__in": Memlet(operand.name, Range.from_indices(
            [n - 1 - Symbol("__i", nonnegative=False)]))},
        "__out = __in",
        {"__out": Memlet(out, Range.from_string("__i"))})
    return ArrayOp(out)


@register_replacement(np.transpose)
def _np_transpose(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if not isinstance(operand, ArrayOp):
        return operand
    return visitor._emit_transpose(operand)


for _name in sorted(_FLOAT_FUNCS | {"abs", "absolute", "real", "imag", "conj",
                                    "sign", "reciprocal", "square"}):
    if hasattr(np, _name):
        register_replacement(getattr(np, _name))(_unary_np(_name))

for _name in ("maximum", "minimum", "fmax", "fmin", "power", "arctan2",
              "hypot", "mod", "fmod", "copysign"):
    register_replacement(getattr(np, _name))(_binary_np(_name))


@register_replacement(np.float32, np.float64, np.int32, np.int64, np.int8,
                      np.int16, np.uint8, np.uint16, np.uint32, np.uint64,
                      np.complex64, np.complex128, np.bool_)
def _np_cast(visitor, node):
    ok, func = static_eval(node.func, visitor.globals)
    operand = visitor._parse_expr(node.args[0])
    return _emit_cast(visitor, operand, dtype_of(np.dtype(func)))


@register_replacement(np.clip)
def _np_clip(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    low = visitor._parse_expr(node.args[1])
    high = visitor._parse_expr(node.args[2])
    dtype = visitor._promote("+", operand, low, high)
    return visitor._emit_map_op("np.clip({0}, {1}, {2})", [operand, low, high],
                                dtype, label="clip")


@register_replacement(np.where)
def _np_where(visitor, node):
    cond = visitor._parse_expr(node.args[0])
    left = visitor._parse_expr(node.args[1])
    right = visitor._parse_expr(node.args[2])
    dtype = visitor._promote("+", left, right)
    return visitor._emit_map_op("({1}) if ({0}) else ({2})", [cond, left, right],
                                dtype, label="where")


@register_replacement(np.exp2)
def _np_exp2(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    return visitor._emit_map_op("np.exp2({0})", [operand],
                                dtype_of(np.float64), label="exp2")


# ---------------------------------------------------------------------------
# math module and builtins (scalar paths)
# ---------------------------------------------------------------------------

for _name in ("sqrt", "exp", "log", "sin", "cos", "tan", "tanh", "floor",
              "ceil", "atan", "asin", "acos", "fabs"):
    if hasattr(math, _name):
        register_replacement(getattr(math, _name))(_unary_np(
            {"atan": "arctan", "asin": "arcsin", "acos": "arccos",
             "fabs": "abs"}.get(_name, _name)))


@register_replacement(abs)
def _builtin_abs(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if isinstance(operand, ConstOp):
        return ConstOp(abs(operand.value))
    return visitor._emit_map_op("abs({0})", [operand],
                                visitor._dtype_of(operand), label="abs")


@register_replacement(min)
def _builtin_min(visitor, node):
    operands = [visitor._parse_expr(a) for a in node.args]
    if all(isinstance(o, (ConstOp, SymOp)) for o in operands):
        try:
            from ..symbolic import Min
            return SymOp(Min.make(*[sympify(o.value) if isinstance(o, ConstOp)
                                    else o.expr for o in operands]))
        except TypeError:
            return ConstOp(min(o.value for o in operands))
    dtype = visitor._promote("+", *operands)
    template = "min(" + ", ".join("{%d}" % i for i in range(len(operands))) + ")"
    return visitor._emit_map_op(template, operands, dtype, label="min")


@register_replacement(max)
def _builtin_max(visitor, node):
    operands = [visitor._parse_expr(a) for a in node.args]
    if all(isinstance(o, (ConstOp, SymOp)) for o in operands):
        try:
            from ..symbolic import Max
            return SymOp(Max.make(*[sympify(o.value) if isinstance(o, ConstOp)
                                    else o.expr for o in operands]))
        except TypeError:
            return ConstOp(max(o.value for o in operands))
    dtype = visitor._promote("+", *operands)
    template = "max(" + ", ".join("{%d}" % i for i in range(len(operands))) + ")"
    return visitor._emit_map_op(template, operands, dtype, label="max")


@register_replacement(int)
def _builtin_int(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if isinstance(operand, ConstOp):
        return ConstOp(int(operand.value))
    if isinstance(operand, SymOp):
        return operand
    return _emit_cast(visitor, operand, dtype_of(np.int64))


@register_replacement(float)
def _builtin_float(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if isinstance(operand, ConstOp):
        return ConstOp(float(operand.value))
    return _emit_cast(visitor, operand, dtype_of(np.float64))


@register_replacement(len)
def _builtin_len(visitor, node):
    operand = visitor._parse_expr(node.args[0])
    if isinstance(operand, ArrayOp):
        return SymOp(visitor._desc(operand).shape[0])
    raise UnsupportedFeature("len() requires an array argument")


@register_replacement(range)
def _builtin_range(visitor, node):
    raise UnsupportedFeature("range() outside of a for loop")


# ---------------------------------------------------------------------------
# Nested data-centric programs (Table 1: function calls -> nested SDFGs)
# ---------------------------------------------------------------------------

def _emit_nested_call(visitor: ProgramVisitor, program, node: ast.Call) -> Operand:
    from ..ir.nodes import AccessNode

    signature = inspect.signature(program.func)
    param_names = list(signature.parameters)

    # bind call arguments to parameter names
    bound_args: Dict[str, Operand] = {}
    for param_name, arg in zip(param_names, node.args):
        bound_args[param_name] = visitor._parse_expr(arg)
    for kw in node.keywords:
        if kw.arg is None:
            raise UnsupportedFeature("**kwargs in program calls")
        bound_args[kw.arg] = visitor._parse_expr(kw.value)

    # materialize scalar operands into containers; build descriptors
    arg_descs: Dict[str, Any] = {}
    arg_containers: Dict[str, str] = {}
    for param_name, operand in bound_args.items():
        if isinstance(operand, (ConstOp, SymOp)):
            if isinstance(operand, SymOp) and isinstance(operand.expr, Symbol):
                arg_descs[param_name] = operand.expr
                continue
            dtype = visitor._dtype_of(operand)
            container = visitor._tmp((), dtype)
            visitor._store_subset(container, Range.from_string("0"), [], operand)
            operand = ArrayOp(container)
            bound_args[param_name] = operand
        desc = visitor._desc(operand)
        arg_descs[param_name] = desc.clone()
        arg_containers[param_name] = operand.name

    inner = program.parse_for_descs(arg_descs, visitor.globals)
    inner = inner.clone()
    inner.name = f"{inner.name}_call"

    # read/write sets of the callee's argument containers
    reads, writes = set(), set()
    for state in inner.states():
        for n in state.nodes():
            if isinstance(n, AccessNode) and n.data in arg_containers:
                if state.out_degree(n) > 0:
                    reads.add(n.data)
                if state.in_degree(n) > 0:
                    writes.add(n.data)
    # be conservative for untouched args: treat as read
    for name in arg_containers:
        if name not in reads and name not in writes:
            reads.add(name)

    outputs = set(writes)
    returns = sorted(n for n in inner.arrays if n.startswith("__return"))
    for ret in returns:
        # expose the return container as an output connector
        inner.arrays[ret].transient = False
        outputs.add(ret)

    state = visitor._new_state(f"call_{program.name}")
    symbol_mapping = {s: Symbol(s) for s in inner.free_symbols}
    nested = state.add_nested_sdfg(inner, program.name, inputs=reads,
                                   outputs=outputs, symbol_mapping=symbol_mapping)

    for inner_name in sorted(reads):
        outer = arg_containers[inner_name]
        desc = visitor.sdfg.arrays[outer]
        memlet = (Memlet(outer, Range.from_string("0")) if isinstance(desc, Scalar)
                  else Memlet.from_array(outer, desc))
        state.add_edge(state.add_read(outer), None, nested, inner_name, memlet)
    if not reads:
        pass
    result_ops: List[ArrayOp] = []
    for inner_name in sorted(outputs):
        if inner_name.startswith("__return"):
            inner_desc = inner.arrays[inner_name]
            if isinstance(inner_desc, Scalar):
                outer = visitor._tmp((), inner_desc.dtype)
            else:
                outer = visitor._tmp(inner_desc.shape, inner_desc.dtype)
            result_ops.append(ArrayOp(outer))
        else:
            outer = arg_containers[inner_name]
        desc = visitor.sdfg.arrays[outer]
        memlet = (Memlet(outer, Range.from_string("0")) if isinstance(desc, Scalar)
                  else Memlet.from_array(outer, desc))
        state.add_edge(nested, inner_name, state.add_write(outer), None, memlet)

    if len(result_ops) == 1:
        return result_ops[0]
    if result_ops:
        return tuple(result_ops)  # type: ignore[return-value]
    return ConstOp(0)  # statement call with no return value
