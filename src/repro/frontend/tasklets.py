"""Lowering of ``dace.map`` loop bodies into tasklets.

A map body is straight-line Python (optionally with inner sequential loops
and branches, which stay inside the tasklet).  Array accesses become
connectors with symbolic memlets; augmented assignments either become
read-modify-write pairs (no race: every map parameter appears in the index)
or WCR outputs (§2.3), reproducing the paper's write-conflict analysis.
"""

from __future__ import annotations

import ast
import copy
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.data import Scalar
from ..ir.memlet import Memlet
from ..symbolic import Range
from .astutils import BINOP_STR, UnsupportedFeature, unparse

__all__ = ["TaskletBuilder"]

#: augmented operators convertible to WCR under races
_AUG_WCR = {ast.Add: "sum", ast.Mult: "prod", ast.Sub: "sum", ast.Div: "prod"}


def _collect_locals(body: List[ast.stmt], params: Sequence[str]) -> Set[str]:
    """Names assigned inside the body (tasklet-local variables)."""
    names: Set[str] = set()

    class Collector(ast.NodeVisitor):
        def visit_Name(self, node: ast.Name):
            if isinstance(node.ctx, ast.Store):
                names.add(node.id)

        def visit_AugAssign(self, node: ast.AugAssign):
            # augmented targets need a prior definition; one defined outside
            # the body is an outer container (WCR candidate), not a local
            self.visit(node.value)
            if isinstance(node.target, ast.Subscript):
                self.visit(node.target)

        def visit_For(self, node: ast.For):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    names.add(target.id)
            for stmt in node.body + node.orelse:
                self.visit(stmt)

    collector = Collector()
    for stmt in body:
        collector.visit(stmt)
    return names - set(params)


class TaskletBuilder(ast.NodeTransformer):
    """Transforms a map body into tasklet code + input/output memlets."""

    def __init__(self, visitor, params: Sequence[str]):
        self.visitor = visitor
        self.params = list(params)
        self.param_set = set(params)
        self.inputs: Dict[str, Memlet] = {}
        self.outputs: Dict[str, Memlet] = {}
        self._read_conns: Dict[Tuple[str, str], str] = {}
        self._write_conns: Dict[Tuple[str, str], str] = {}
        self._dynamic_conns: Dict[str, str] = {}
        self._counter = 0
        self.locals: Set[str] = set()

    # ------------------------------------------------------------------ entry
    def build(self, body: List[ast.stmt]) -> Tuple[str, Dict[str, Memlet], Dict[str, Memlet]]:
        self.locals = _collect_locals(body, self.params)
        statements = []
        for stmt in body:
            result = self.visit(copy.deepcopy(stmt))
            if result is not None:
                statements.append(result)
        for stmt in statements:
            ast.fix_missing_locations(stmt)
        code = "\n".join(unparse(s) for s in statements)
        if not self.outputs:
            raise UnsupportedFeature("map body writes no data")
        return code, self.inputs, self.outputs

    # ----------------------------------------------------------------- helpers
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _resolve_array(self, name: str) -> Optional[str]:
        from .parser import ArrayOp

        operand = self.visitor.symtable.get(name)
        if isinstance(operand, ArrayOp):
            return operand.name
        return None

    def _subset_of(self, arr: str, slice_node: ast.expr) -> Optional[Range]:
        """Symbolic subset, or None when the access must be dynamic."""
        from .parser import _DataDependentIndex

        desc = self.visitor.sdfg.arrays[arr]
        try:
            subset, _ = self.visitor._subset_from_ast(desc, slice_node)
        except (_DataDependentIndex, UnsupportedFeature):
            return None
        # indices referencing tasklet locals cannot be static memlets
        known = self.param_set | set(self.visitor.sdfg.symbols)
        for sym in subset.free_symbols:
            if sym.name in self.locals:
                return None
            if sym.name not in known and sym.name not in self.visitor.symtable:
                # unknown name: assume it is an outer loop symbol
                continue
        return subset

    def _dynamic_conn(self, arr: str, write: bool) -> str:
        conn = self._dynamic_conns.get(arr)
        if conn is None:
            conn = f"__dyn_{arr}"
            self._dynamic_conns[arr] = conn
            desc = self.visitor.sdfg.arrays[arr]
            self.inputs[conn] = Memlet(arr, Range.from_shape(desc.shape), dynamic=True)
        if write and conn not in self.outputs:
            desc = self.visitor.sdfg.arrays[arr]
            self.outputs[conn] = Memlet(arr, Range.from_shape(desc.shape), dynamic=True)
        return conn

    def _input_conn(self, arr: str, subset: Range) -> str:
        key = (arr, str(subset))
        if key in self._read_conns:
            return self._read_conns[key]
        conn = self._fresh("__c")
        self._read_conns[key] = conn
        self.inputs[conn] = Memlet(arr, subset)
        return conn

    def _output_conn(self, arr: str, subset: Range, wcr: Optional[str] = None) -> str:
        key = (arr, str(subset))
        if key in self._write_conns:
            conn = self._write_conns[key]
            if wcr and self.outputs[conn].wcr is None:
                self.outputs[conn] = Memlet(arr, subset, wcr=wcr)
            return conn
        conn = self._fresh("__o")
        self._write_conns[key] = conn
        self.outputs[conn] = Memlet(arr, subset, wcr=wcr)
        return conn

    def _is_race(self, subset: Range) -> bool:
        """A write races iff some map parameter does not pin the subset."""
        free = {s.name for s in subset.free_symbols}
        return not self.param_set.issubset(free)

    # --------------------------------------------------------------- transforms
    def visit_Subscript(self, node: ast.Subscript):
        if isinstance(node.ctx, ast.Store):
            raise UnsupportedFeature(
                "internal: store subscripts handled by Assign/AugAssign")
        if isinstance(node.value, ast.Name):
            arr = self._resolve_array(node.value.id)
            if arr is not None:
                subset = self._subset_of(arr, node.slice)
                if subset is not None and subset.is_point() is True:
                    conn = self._input_conn(arr, subset)
                    return ast.copy_location(ast.Name(id=conn, ctx=ast.Load()), node)
                # dynamic or sliced access: full-array connector, keep indexing
                conn = self._dynamic_conn(arr, write=False)
                new_slice = self.visit(node.slice)
                return ast.copy_location(
                    ast.Subscript(value=ast.Name(id=conn, ctx=ast.Load()),
                                  slice=new_slice, ctx=ast.Load()), node)
        return self.generic_visit(node)

    def visit_Name(self, node: ast.Name):
        from .parser import ArrayOp, ConstOp, SymOp

        if not isinstance(node.ctx, ast.Load):
            return node
        if node.id in self.param_set or node.id in self.locals:
            return node
        operand = self.visitor.symtable.get(node.id)
        if operand is None:
            return node  # outer loop symbol / builtin
        if isinstance(operand, ConstOp):
            return ast.copy_location(ast.Constant(value=operand.value), node)
        if isinstance(operand, SymOp):
            expr = ast.parse(str(operand.expr), mode="eval").body
            return ast.copy_location(expr, node)
        assert isinstance(operand, ArrayOp)
        desc = self.visitor.sdfg.arrays[operand.name]
        if isinstance(desc, Scalar):
            conn = self._input_conn(operand.name, Range.from_string("0"))
            return ast.copy_location(ast.Name(id=conn, ctx=ast.Load()), node)
        conn = self._dynamic_conn(operand.name, write=False)
        return ast.copy_location(ast.Name(id=conn, ctx=ast.Load()), node)

    def visit_Assign(self, node: ast.Assign):
        if len(node.targets) != 1:
            raise UnsupportedFeature("multiple targets in map body")
        target = node.targets[0]
        value = self.visit(node.value)
        if isinstance(target, ast.Name):
            self.locals.add(target.id)
            return ast.copy_location(
                ast.Assign(targets=[target], value=value), node)
        if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            arr = self._resolve_array(target.value.id)
            if arr is None:
                raise UnsupportedFeature(
                    f"assignment to unknown array {target.value.id!r} in map body")
            subset = self._subset_of(arr, target.slice)
            if subset is not None and subset.is_point() is True:
                conn = self._output_conn(arr, subset)
                return ast.copy_location(
                    ast.Assign(targets=[ast.Name(id=conn, ctx=ast.Store())],
                               value=value), node)
            conn = self._dynamic_conn(arr, write=True)
            new_slice = self.visit(target.slice)
            new_target = ast.Subscript(value=ast.Name(id=conn, ctx=ast.Load()),
                                       slice=new_slice, ctx=ast.Store())
            return ast.copy_location(
                ast.Assign(targets=[new_target], value=value), node)
        raise UnsupportedFeature(
            f"unsupported assignment target in map body: {unparse(target)!r}")

    def visit_AugAssign(self, node: ast.AugAssign):
        from .parser import ArrayOp

        op_str = BINOP_STR.get(type(node.op))
        if op_str is None:
            raise UnsupportedFeature(
                f"unsupported augmented operator in map body {unparse(node)!r}")
        value = self.visit(node.value)

        if isinstance(node.target, ast.Name):
            if node.target.id in self.locals:
                return ast.copy_location(
                    ast.AugAssign(target=node.target, op=node.op, value=value), node)
            operand = self.visitor.symtable.get(node.target.id)
            if isinstance(operand, ArrayOp):
                desc = self.visitor.sdfg.arrays[operand.name]
                if isinstance(desc, Scalar):
                    # scalar accumulation across iterations: always a race
                    return self._wcr_assign(operand.name, Range.from_string("0"),
                                            node.op, value)
            raise UnsupportedFeature(
                f"unsupported augmented target in map body {unparse(node.target)!r}")

        if isinstance(node.target, ast.Subscript) and isinstance(node.target.value, ast.Name):
            arr = self._resolve_array(node.target.value.id)
            if arr is None:
                raise UnsupportedFeature(
                    f"augmented write to unknown array in map body")
            subset = self._subset_of(arr, node.target.slice)
            if subset is not None and subset.is_point() is True:
                if not self._is_race(subset):
                    # no race: output is also an input (read-modify-write)
                    in_conn = self._input_conn(arr, subset)
                    out_conn = self._output_conn(arr, subset)
                    rmw = ast.BinOp(left=ast.Name(id=in_conn, ctx=ast.Load()),
                                    op=node.op, right=value)
                    return ast.copy_location(
                        ast.Assign(targets=[ast.Name(id=out_conn, ctx=ast.Store())],
                                   value=rmw), node)
                return self._wcr_assign(arr, subset, node.op, value)
            # dynamic indirect accumulation (e.g. histogram bins)
            conn = self._dynamic_conn(arr, write=True)
            new_slice = self.visit(node.target.slice)
            new_target = ast.Subscript(value=ast.Name(id=conn, ctx=ast.Load()),
                                       slice=new_slice, ctx=ast.Store())
            return ast.copy_location(
                ast.AugAssign(target=new_target, op=node.op, value=value), node)
        raise UnsupportedFeature(
            f"unsupported augmented target in map body {unparse(node.target)!r}")

    def _wcr_assign(self, arr: str, subset: Range, op: ast.operator,
                    value: ast.expr) -> ast.stmt:
        wcr = _AUG_WCR.get(type(op))
        if wcr is None:
            raise UnsupportedFeature(
                "racy augmented assignment only supports +,-,*,/")
        # a -= v  ==  a += (-v);  a /= v == a *= (1/v)
        if isinstance(op, ast.Sub):
            value = ast.UnaryOp(op=ast.USub(), operand=value)
        elif isinstance(op, ast.Div):
            value = ast.BinOp(left=ast.Constant(value=1.0), op=ast.Div(), right=value)
        conn = self._output_conn(arr, subset, wcr=wcr)
        return ast.Assign(targets=[ast.Name(id=conn, ctx=ast.Store())], value=value)

    def visit_For(self, node: ast.For):
        # inner sequential loop stays inside the tasklet
        if not (isinstance(node.iter, ast.Call) and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"):
            raise UnsupportedFeature("only range() loops are allowed inside map bodies")
        for target in ast.walk(node.target):
            if isinstance(target, ast.Name):
                self.locals.add(target.id)
        new_iter = self.generic_visit_expr(node.iter)
        new_body = [self.visit(s) for s in node.body]
        return ast.copy_location(
            ast.For(target=node.target, iter=new_iter,
                    body=[s for s in new_body if s is not None], orelse=[]), node)

    def visit_If(self, node: ast.If):
        test = self.generic_visit_expr(node.test)
        body = [s for s in (self.visit(s) for s in node.body) if s is not None]
        orelse = [s for s in (self.visit(s) for s in node.orelse) if s is not None]
        return ast.copy_location(ast.If(test=test, body=body, orelse=orelse), node)

    def visit_Call(self, node: ast.Call):
        # allow math/np calls and builtins inside tasklets; transform arguments
        args = [self.visit(a) for a in node.args]
        return ast.copy_location(
            ast.Call(func=node.func, args=args, keywords=node.keywords), node)

    def generic_visit_expr(self, node: ast.expr) -> ast.expr:
        return self.visit(node)
