"""The ``@repro.program`` decorator (the paper's ``@dace.program``).

Decorated functions are parsed on demand into SDFGs.  Type-annotated
functions support ahead-of-time compilation (§3.3); unannotated functions
are JIT-specialized per argument signature.  ``auto_optimize=True`` with a
``device`` runs the §3.1 heuristics before compilation.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..config import Config
from ..dtypes import ArrayAnnotation, dtype_of, typeclass
from ..ir.data import Array, Data, Scalar
from ..ir.sdfg import SDFG
from ..symbolic import Symbol
from .astutils import UnsupportedFeature, function_ast

__all__ = ["DaceProgram", "program", "MapMarker", "map_marker"]


class MapMarker:
    """The ``repro.map[...]`` parametric-parallelism iterator (§2.2)."""

    __is_map_marker__ = True

    def __getitem__(self, ranges):
        raise TypeError(
            "repro.map[...] can only be iterated inside an @repro.program "
            "function (it is parsed, not executed)")

    def __repr__(self) -> str:
        return "repro.map"


map_marker = MapMarker()


class DaceProgram:
    """A parsed-on-demand data-centric program."""

    def __init__(self, func: Callable, auto_optimize: bool = False,
                 device: str = "CPU", fallback: Optional[bool] = None,
                 backend: str = "codegen",
                 instrument: Optional[str] = None,
                 sanitize: Optional[str] = None,
                 budget=None):
        functools.update_wrapper(self, func)
        self.func = func
        self.name = func.__name__
        self.auto_optimize = auto_optimize
        self.device = device
        self.fallback = fallback
        self.backend = backend
        #: per-program instrumentation mode; None defers to the
        #: ``instrument.mode`` configuration key
        self.instrument = instrument
        #: per-program sanitizer mode ("bounds,nan" etc.); None defers to
        #: the ``sanitize.mode`` configuration key
        self.sanitize = sanitize
        #: per-program execution budget (repro.governor.Budget); None defers
        #: to the ``governor.*`` configuration keys (off by default)
        self.budget = budget
        #: ProfileReport of the most recent instrumented call
        self.last_profile = None
        #: degradation-chain attempts of the most recent degrade-mode call
        self.last_attempts: list = []
        self._sdfg_cache: Dict[Tuple, SDFG] = {}
        self._compiled_cache: Dict[Tuple, Any] = {}
        #: desc-key -> content fingerprint, memoized for the circuit breaker
        self._breaker_keys: Dict[Tuple, str] = {}
        #: absorbed failures (rollbacks, degradations) across all calls
        from ..resilience import FailureReport

        self.failure_report = FailureReport()
        self._signature = inspect.signature(func)
        self._defaults = {
            name: param.default
            for name, param in self._signature.parameters.items()
            if param.default is not inspect.Parameter.empty
        }

    # -------------------------------------------------------------- descriptors
    def _global_env(self) -> Dict[str, Any]:
        env = dict(getattr(self.func, "__globals__", {}))
        closure = getattr(self.func, "__closure__", None)
        if closure:
            for name, cell in zip(self.func.__code__.co_freevars, closure):
                try:
                    env[name] = cell.cell_contents
                except ValueError:
                    pass
        return env

    def _annotation_descs(self) -> Optional[Dict[str, Any]]:
        """Descriptors from type annotations, or None if unannotated."""
        descs: Dict[str, Any] = {}
        for name, param in self._signature.parameters.items():
            annotation = param.annotation
            if annotation is inspect.Parameter.empty:
                return None
            descs[name] = _annotation_to_desc(annotation)
        return descs

    def _descs_from_args(self, args, kwargs) -> Dict[str, Any]:
        bound = self._signature.bind_partial(*args, **kwargs)
        bound.apply_defaults()
        descs: Dict[str, Any] = {}
        for name, param in self._signature.parameters.items():
            annotation = param.annotation
            if annotation is not inspect.Parameter.empty:
                descs[name] = _annotation_to_desc(annotation)
                continue
            if name not in bound.arguments:
                raise TypeError(f"missing argument {name!r} for {self.name}")
            value = bound.arguments[name]
            descs[name] = _value_to_desc(value)
        return descs

    @staticmethod
    def _desc_key(descs: Dict[str, Any]) -> Tuple:
        parts = []
        for name, desc in descs.items():
            if isinstance(desc, Data):
                parts.append((name, type(desc).__name__, desc.dtype.name,
                              tuple(str(s) for s in desc.shape)))
            else:
                parts.append((name, "symbol"))
        return tuple(parts)

    # ------------------------------------------------------------------ parsing
    def parse_for_descs(self, arg_descs: Dict[str, Any],
                        extra_globals: Optional[Dict[str, Any]] = None) -> SDFG:
        from .parser import parse_program

        key = self._desc_key(arg_descs)
        if key in self._sdfg_cache:
            return self._sdfg_cache[key]
        env = self._global_env()
        if extra_globals:
            for name, value in extra_globals.items():
                env.setdefault(name, value)
        cloned = {name: (desc.clone() if isinstance(desc, Data) else desc)
                  for name, desc in arg_descs.items()}
        sdfg = parse_program(self.func, cloned, env, name=self.name,
                             defaults=self._defaults)
        if Config.get("optimizer.simplify"):
            sdfg.simplify()
        self._sdfg_cache[key] = sdfg
        return sdfg

    def to_sdfg(self, *args, simplify: Optional[bool] = None, **kwargs) -> SDFG:
        """Parse to an SDFG.  Annotated programs need no arguments (AOT);
        unannotated programs specialize to the given example arguments."""
        descs = self._annotation_descs()
        if descs is None:
            if not args and not kwargs:
                raise UnsupportedFeature(
                    f"{self.name} has unannotated parameters; pass example "
                    f"arguments to to_sdfg() for JIT specialization")
            descs = self._descs_from_args(args, kwargs)
        if simplify is None:
            return self.parse_for_descs(descs)
        with Config.override(optimizer__simplify=simplify):
            # bypass the cache so the simplify setting takes effect
            key = self._desc_key(descs) + (simplify,)
            if key not in self._sdfg_cache:
                from .parser import parse_program

                cloned = {name: (d.clone() if isinstance(d, Data) else d)
                          for name, d in descs.items()}
                sdfg = parse_program(self.func, cloned, self._global_env(),
                                     name=self.name, defaults=self._defaults)
                if simplify:
                    sdfg.simplify()
                self._sdfg_cache[key] = sdfg
            return self._sdfg_cache[key]

    # ---------------------------------------------------------------- execution
    def compile(self, *args, device: Optional[str] = None,
                instrument: bool = False,
                sanitize: Optional[bool] = None,
                govern: Optional[bool] = None, **kwargs):
        """Ahead-of-time compile; returns a CompiledSDFG.

        ``instrument=True`` compiles a module with timing hooks (cached
        separately from the plain module); ``sanitize=True`` one with
        bounds/NaN guard calls (``sanitize=None`` defers to the program's
        resolved sanitizer mode); ``govern=True`` one with cooperative
        deadline-check ticks at state boundaries (``govern=None``
        auto-detects an armed deadline on the calling thread).  When a
        profile collector is active, the compile phases (parse, autoopt,
        validate, codegen) report their wall time to it — the Fig. 6
        decomposition.

        Compilation is keyed through the persistent content-addressed cache
        (:mod:`repro.cache`): a hit — even in a fresh process — rehydrates
        the generated module and skips optimization, validation, and code
        generation.
        """
        from .. import instrumentation
        from ..cache import cached_compile

        device = device or self.device
        coll = instrumentation.current()
        if coll is not None:
            with coll.region("phase", "parse"):
                sdfg = self.to_sdfg(*args, **kwargs)
        else:
            sdfg = self.to_sdfg(*args, **kwargs)
        if sanitize is None:
            sanitize = bool(self._sanitize_mode())
        if govern is None:
            from ..governor import budget as _gb

            active = _gb.current()
            govern = active is not None and active.deadline is not None
        key = (self._desc_key(self.to_sdfg_descs(args, kwargs)), device,
               self.auto_optimize, instrument, sanitize, govern)
        if key in self._compiled_cache:
            return self._compiled_cache[key]
        compiled = cached_compile(
            sdfg, device=device, instrument=instrument, sanitize=sanitize,
            govern=govern, optimize=device if self.auto_optimize else None)
        self._compiled_cache[key] = compiled
        return compiled

    def to_sdfg_descs(self, args, kwargs) -> Dict[str, Any]:
        descs = self._annotation_descs()
        if descs is None:
            descs = self._descs_from_args(args, kwargs)
        return descs

    def _bind_call_kwargs(self, args, kwargs) -> Dict[str, Any]:
        bound = self._signature.bind_partial(*args, **kwargs)
        bound.apply_defaults()
        call_kwargs = {}
        for name, value in bound.arguments.items():
            if isinstance(value, (np.ndarray, np.generic, int, float, complex, bool)):
                call_kwargs[name] = value
        return call_kwargs

    def _sanitize_mode(self) -> str:
        """Resolved sanitizer mode: a comma-joined guard set, "" when off."""
        from ..sanitizer import guards

        mode = self.sanitize
        if mode is None:
            mode = Config.get("sanitize.mode")
        return ",".join(sorted(guards.parse_modes(mode)))

    def _instrument_mode(self) -> str:
        mode = self.instrument
        if mode is None:
            mode = Config.get("instrument.mode")
        if mode in (None, False, "off", ""):
            return "off"
        return "timers" if mode is True else str(mode)

    def __call__(self, *args, **kwargs):
        # reserved keyword: a per-call governor budget (never a program arg)
        budget = kwargs.pop("__budget", None)
        smode = self._sanitize_mode()
        if smode:
            from ..sanitizer import guards

            with guards.sanitize(smode, program=self.name):
                return self._call_impl(args, kwargs, budget)
        return self._call_impl(args, kwargs, budget)

    def _call_impl(self, args, kwargs, budget=None):
        from ..governor import Budget

        resolved = Budget.resolve(
            budget if budget is not None else self.budget)
        if not resolved.is_null:
            return self._call_governed(args, kwargs, resolved)
        return self._dispatch_call(args, kwargs)

    def _dispatch_call(self, args, kwargs):
        if self._instrument_mode() != "off":
            return self._call_instrumented(args, kwargs)
        if Config.get("resilience.mode") == "degrade":
            return self._call_degrading(args, kwargs)
        fallback = self.fallback
        try:
            compiled = self.compile(*args, **kwargs)
        except UnsupportedFeature as exc:
            if fallback:
                warnings.warn(
                    f"{self.name}: falling back to the Python interpreter "
                    f"({exc})", RuntimeWarning, stacklevel=2)
                return self.func(*args, **kwargs)
            raise
        return compiled(**self._bind_call_kwargs(args, kwargs))

    # ------------------------------------------------------------- governor
    def _breaker_key(self, args, kwargs) -> str:
        """Circuit key: the content-addressed fingerprint of the parsed
        graph (structurally identical programs share a circuit; any edit
        gets a fresh, closed one).  Memoized per argument-descriptor
        signature; falls back to the program name when parsing fails."""
        try:
            dkey = self._desc_key(self.to_sdfg_descs(args, kwargs))
        except Exception:
            return f"program:{self.name}"
        cached = self._breaker_keys.get(dkey)
        if cached is not None:
            return cached
        try:
            from ..cache import fingerprint

            key = fingerprint(self.to_sdfg(*args, **kwargs))
        except Exception:
            key = f"program:{self.name}"
        self._breaker_keys[dkey] = key
        return key

    def _call_governed(self, args, kwargs, budget):
        """Execute under a non-null budget: breaker gate, memory admission,
        deadline arming (see DESIGN.md §12).

        Compilation runs *before* the watchdog is armed — the deadline
        bounds execution, not the (cached, one-time) compile.  Terminal
        failures feed the program's circuit; an open circuit fast-fails
        with the cached failure history before any re-parse or re-compile.
        """
        import time

        from ..governor import CircuitOpenError, armed, breaker_registry

        registry = breaker_registry()
        key = self._breaker_key(args, kwargs)
        registry.before_call(key, self.name)

        decision = None
        start = time.perf_counter()
        try:
            if budget.max_bytes:
                decision = self._admit(args, kwargs, budget)
            if budget.deadline_s:
                # pre-warm the governed module outside the deadline window;
                # dispatch re-raises compile errors with full context
                try:
                    self.compile(
                        *args, govern=True,
                        instrument=self._instrument_mode() != "off",
                        **kwargs)
                except Exception:
                    pass
            with armed(budget, program=self.name):
                if decision is not None and decision.action == "degrade-serial":
                    with Config.override(device__cpu_threads=1):
                        result = self._dispatch_call(args, kwargs)
                else:
                    result = self._dispatch_call(args, kwargs)
        except CircuitOpenError:
            raise
        except Exception as exc:
            elapsed = time.perf_counter() - start
            registry.record_failure(key, exc, program=self.name,
                                    elapsed_s=elapsed)
            self.failure_report.record(
                "governor", self.name, exc, "terminal-failure",
                seconds=elapsed)
            raise
        registry.record_success(key, self.name)
        return result

    def _admit(self, args, kwargs, budget):
        """Price the planned allocations against ``budget.max_bytes``
        before anything is allocated; returns the AdmissionDecision, or
        None when the program cannot be parsed (the dispatch fallback
        path owns that case)."""
        from ..governor import admit
        from ..runtime.executor import prepare_arguments

        try:
            sdfg = self.to_sdfg(*args, **kwargs)
        except UnsupportedFeature:
            return None
        _, symbols = prepare_arguments(
            sdfg, (), self._bind_call_kwargs(args, kwargs))
        return admit(sdfg, symbols, budget, program=self.name)

    def _call_instrumented(self, args, kwargs):
        """Instrumented execution: compile phases, per-region timers, and
        (in degrade mode) attempt records all land in a profile collector.

        If a collector is already active (an enclosing
        :func:`repro.instrumentation.profile` block), events aggregate into
        it; otherwise a fresh collector is created and its report stored on
        ``self.last_profile``.
        """
        import contextlib

        from .. import instrumentation

        mode = self._instrument_mode()
        outer = instrumentation.current()
        ctx = (contextlib.nullcontext(outer) if outer is not None
               else instrumentation.profile(self.name, mode=mode))
        with ctx as coll:
            if Config.get("resilience.mode") == "degrade":
                result = self._call_degrading(args, kwargs)
            else:
                result = self._run_instrumented(args, kwargs, coll)
        if outer is None:
            self.last_profile = coll.report(device=self.device)
        return result

    def _run_instrumented(self, args, kwargs, coll):
        fallback = self.fallback
        try:
            with coll.region("phase", "compile"):
                compiled = self.compile(*args, instrument=True, **kwargs)
        except UnsupportedFeature as exc:
            if fallback:
                warnings.warn(
                    f"{self.name}: falling back to the Python interpreter "
                    f"({exc})", RuntimeWarning, stacklevel=3)
                with coll.region("phase", "execute"):
                    return self.func(*args, **kwargs)
            raise
        with coll.region("phase", "execute"):
            return compiled(**self._bind_call_kwargs(args, kwargs))

    def _call_degrading(self, args, kwargs):
        """Graceful-degradation execution (``resilience.mode = "degrade"``).

        Fallback chain: compiled/optimized SDFG → unoptimized SDFG on the
        reference interpreter → the original Python function.  Arrays are
        modified in place by the first two stages, so their input contents
        are checkpointed and restored between attempts — a stage that dies
        halfway through must not poison the next stage's inputs.

        Every attempt is timed: ``self.last_attempts`` lists which tiers
        ran and for how long, failed tiers are recorded in
        ``self.failure_report`` with their duration, and an active profile
        collector receives the same attempt records.
        """
        import time

        from .. import instrumentation
        from ..governor import GovernorError
        from ..resilience import ResilienceWarning

        coll = instrumentation.current()
        attempts: list = []
        self.last_attempts = attempts

        checkpoints = [(value, np.copy(value)) for value in
                       list(args) + list(kwargs.values())
                       if isinstance(value, np.ndarray)]

        def restore_inputs() -> None:
            for live, saved in checkpoints:
                np.copyto(live, saved)

        def note(stage: str, ok: bool, seconds: float,
                 exc: Optional[BaseException] = None) -> None:
            error = f"{type(exc).__name__}: {exc}" if exc is not None else ""
            attempts.append({"stage": stage, "ok": ok, "seconds": seconds,
                             "error": error})
            if coll is not None:
                coll.attempt(stage, ok, seconds, error)

        def degrade(stage: str, fallback: str, exc: BaseException,
                    seconds: float) -> None:
            note(stage, False, seconds, exc)
            self.failure_report.record(
                "degradation", self.name, exc, f"fell-back:{fallback}",
                stage=stage, seconds=seconds)
            warnings.warn(
                f"{self.name}: {stage} execution failed "
                f"({type(exc).__name__}: {exc}); degrading to {fallback}",
                ResilienceWarning, stacklevel=3)
            restore_inputs()

        start = time.perf_counter()
        try:
            compiled = self.compile(*args, instrument=coll is not None,
                                    **kwargs)
            result = compiled(**self._bind_call_kwargs(args, kwargs))
        except GovernorError:
            # timeouts/cancellations are deterministic on slower tiers;
            # degrading would re-run past the deadline unguarded
            raise
        except Exception as exc:
            degrade("compiled", "interpreter", exc,
                    time.perf_counter() - start)
        else:
            note("compiled", True, time.perf_counter() - start)
            return result

        start = time.perf_counter()
        try:
            from ..runtime.executor import run_sdfg

            sdfg = self.to_sdfg(*args, **kwargs)
            result = run_sdfg(sdfg, **self._bind_call_kwargs(args, kwargs))
        except GovernorError:
            raise
        except Exception as exc:
            degrade("interpreter", "python", exc,
                    time.perf_counter() - start)
        else:
            note("interpreter", True, time.perf_counter() - start)
            return result

        start = time.perf_counter()
        result = self.func(*args, **kwargs)
        note("python", True, time.perf_counter() - start)
        return result

    def __repr__(self) -> str:
        return f"DaceProgram({self.name})"


def _annotation_to_desc(annotation) -> Any:
    if isinstance(annotation, ArrayAnnotation):
        return Array(annotation.dtype, annotation.shape)
    if isinstance(annotation, typeclass):
        return Scalar(annotation)
    if isinstance(annotation, Symbol):
        return annotation
    raise UnsupportedFeature(
        f"unsupported annotation {annotation!r}; use repro dtypes "
        f"(e.g. repro.float64[N, N])")


def _value_to_desc(value) -> Data:
    if isinstance(value, np.ndarray):
        return Array(dtype_of(value.dtype), value.shape)
    if isinstance(value, (np.generic, int, float, complex, bool)):
        return Scalar(dtype_of(value))
    raise UnsupportedFeature(f"cannot infer descriptor for argument {value!r}")


def program(func: Optional[Callable] = None, *, auto_optimize: bool = False,
            device: str = "CPU", fallback: Optional[bool] = None,
            backend: str = "codegen", instrument: Optional[str] = None,
            sanitize: Optional[str] = None, budget=None):
    """Decorator marking a function as a data-centric program.

    Usable bare (``@repro.program``) or with options
    (``@repro.program(auto_optimize=True, device="GPU")``).
    ``instrument="timers"`` forces profiling for this program;
    ``sanitize="bounds,nan"`` enables runtime guards (bounds/NaN checks in
    both the interpreter and the generated module);
    ``budget=repro.Budget(deadline_s=..., max_bytes=...)`` governs every
    call of this program (deadline + memory admission; DESIGN.md §12).
    Each ``None`` (default) defers to the matching configuration keys
    (``instrument.mode`` / ``sanitize.mode`` / ``governor.*``).  A single
    call can also be governed via the reserved ``__budget`` keyword.
    """
    if func is not None:
        return DaceProgram(func)

    def wrapper(f: Callable) -> DaceProgram:
        return DaceProgram(f, auto_optimize=auto_optimize, device=device,
                           fallback=fallback, backend=backend,
                           instrument=instrument, sanitize=sanitize,
                           budget=budget)

    return wrapper
