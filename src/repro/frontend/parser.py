"""Translation of annotated Python functions to SDFGs (§2.3, Table 1).

The :class:`ProgramVisitor` walks the function AST and emits one state per
elementary operation (the paper's ``-O0`` form); dataflow across statements
is later recovered by the coarsening pass.  Expressions are decomposed
recursively (the paper's SSA-like simplification pass), so

    C[:] = alpha * A @ B + beta * C

becomes four states: two element-wise map operations, a MatMul library node,
and an addition, exactly as in the paper's gemm walkthrough.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dtypes import dtype_of, typeclass
from ..ir.data import Data, Scalar
from ..ir.interstate import InterstateEdge
from ..ir.memlet import Memlet
from ..ir.nodes import AccessNode
from ..ir.sdfg import SDFG
from ..ir.state import SDFGState
from ..symbolic import Expr, Integer, Max, Min, Range, Symbol, definitely_eq, sympify
from .astutils import (
    BINOP_STR,
    CMPOP_STR,
    UNARYOP_STR,
    UnsupportedFeature,
    count_assignments,
    static_eval,
    unparse,
)

__all__ = ["ProgramVisitor", "parse_program", "ArrayOp", "ConstOp", "SymOp"]


class ArrayOp:
    """A data container in the SDFG (array or scalar)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"ArrayOp({self.name})"


class ConstOp:
    """A compile-time Python constant."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self) -> str:
        return f"ConstOp({self.value!r})"


class SymOp:
    """A symbolic integer expression (symbols, shapes, loop variables)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = expr

    def __repr__(self) -> str:
        return f"SymOp({self.expr})"


Operand = Union[ArrayOp, ConstOp, SymOp]


class _DataDependentIndex(Exception):
    """Internal: a subscript index depends on array data (dynamic memlet)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


class ProgramVisitor:
    """Parses one function body into an SDFG."""

    def __init__(self, name: str, global_env: Dict[str, Any]):
        self.sdfg = SDFG(name)
        self.globals = dict(global_env)
        self.symtable: Dict[str, Operand] = {}
        self.last_state: Optional[SDFGState] = None
        self._pending_edge: Optional[InterstateEdge] = None
        self._assign_counts: Dict[str, int] = {}
        self._loop_stack: List[Tuple[SDFGState, SDFGState, Dict[str, str]]] = []
        self._terminated = False
        self._tmp_symbol_counter = 0
        # map parameters of the scope currently being parsed; these take
        # precedence over same-named module globals / symtable constants
        self._scope_params: List[str] = []

    # ------------------------------------------------------------------ setup
    def parse(self, func_ast: ast.FunctionDef,
              arg_descs: Dict[str, Union[Data, Symbol]],
              defaults: Optional[Dict[str, Any]] = None) -> SDFG:
        self._assign_counts = count_assignments(func_ast)
        for arg_name, desc in arg_descs.items():
            if isinstance(desc, Data):
                self.sdfg.add_datadesc(arg_name, desc)
                self.symtable[arg_name] = ArrayOp(arg_name)
                self.sdfg.arg_names.append(arg_name)
            elif isinstance(desc, Symbol):
                self.sdfg.add_symbol(desc.name)
                self.symtable[arg_name] = SymOp(desc)
            else:
                raise UnsupportedFeature(f"cannot handle argument kind {desc!r}")
        for name, value in (defaults or {}).items():
            if name not in self.symtable:
                self.symtable[name] = ConstOp(value)
        self.last_state = self.sdfg.add_state("init", is_start_state=True)
        for stmt in func_ast.body:
            self.visit(stmt)
        if self.sdfg.start_state is None:
            self.sdfg.add_state("empty", is_start_state=True)
        return self.sdfg

    # ------------------------------------------------------------- state plumbing
    def _new_state(self, label: str) -> SDFGState:
        state = self.sdfg.add_state(label)
        if self.last_state is not None and not self._terminated:
            edge = self._pending_edge or InterstateEdge()
            self.sdfg.add_edge(self.last_state, state, edge)
        self._pending_edge = None
        self._terminated = False
        self.last_state = state
        return state

    def _tmp(self, shape, dtype: typeclass) -> str:
        name = self.sdfg.temp_data_name()
        if shape == () or shape is None:
            self.sdfg.add_scalar(name, dtype, transient=True)
        else:
            self.sdfg.add_transient(name, shape, dtype)
        return name

    def _fresh_symbol(self, prefix: str) -> str:
        self._tmp_symbol_counter += 1
        return f"__{prefix}{self._tmp_symbol_counter}"

    # --------------------------------------------------------------- descriptors
    def _desc(self, operand: ArrayOp) -> Data:
        return self.sdfg.arrays[operand.name]

    def _shape_of(self, operand: Operand) -> Tuple[Expr, ...]:
        if isinstance(operand, ArrayOp):
            desc = self._desc(operand)
            if isinstance(desc, Scalar):
                return ()
            return desc.shape
        return ()

    def _dtype_of(self, operand: Operand) -> typeclass:
        if isinstance(operand, ArrayOp):
            return self._desc(operand).dtype
        if isinstance(operand, SymOp):
            return dtype_of(np.int64)
        return dtype_of(operand.value)

    # ================================================================= statements
    def visit(self, node: ast.stmt) -> None:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is None:
            raise UnsupportedFeature(
                f"unsupported statement {type(node).__name__}: {unparse(node)!r}")
        method(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Constant):
            return  # docstring
        if isinstance(node.value, ast.Call):
            self._parse_call(node.value, statement=True)
            return
        raise UnsupportedFeature(f"unsupported expression statement {unparse(node)!r}")

    def visit_Pass(self, node: ast.Pass) -> None:
        return

    def visit_Assert(self, node: ast.Assert) -> None:
        return  # assertions are ignored in the performance subset

    # ------------------------------------------------------------------ assigns
    def visit_Assign(self, node: ast.Assign) -> None:
        value = self._parse_expr(node.value) if not isinstance(node.value, ast.Tuple) \
            else tuple(self._parse_expr(e) for e in node.value.elts)
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                if not isinstance(value, tuple) or len(value) != len(target.elts):
                    raise UnsupportedFeature("tuple assignment arity mismatch")
                for tgt, val in zip(target.elts, value):
                    self._assign_to(tgt, val)
            else:
                if isinstance(value, tuple):
                    raise UnsupportedFeature("cannot bind tuple to single target")
                self._assign_to(target, value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        value = self._parse_expr(node.value)
        self._assign_to(node.target, value)

    def _assign_to(self, target: ast.expr, value: Operand) -> None:
        if isinstance(target, ast.Name):
            self._assign_name(target.id, value)
        elif isinstance(target, ast.Subscript):
            try:
                arr, subset, squeezed = self._parse_subscript(target)
            except _DataDependentIndex:
                self._emit_dynamic_store(target, value)
                return
            self._store_subset(arr, subset, squeezed, value)
        else:
            raise UnsupportedFeature(f"unsupported assignment target {unparse(target)!r}")

    def _assign_name(self, name: str, value: Operand) -> None:
        existing = self.symtable.get(name)
        single_assignment = self._assign_counts.get(name, 0) <= 1

        if isinstance(value, (ConstOp, SymOp)) and single_assignment and existing is None:
            # compile-time binding, usable in shapes and ranges
            self.symtable[name] = value
            return

        if isinstance(value, ArrayOp):
            desc = self._desc(value)
            if existing is None or not isinstance(existing, ArrayOp):
                if desc.transient and single_assignment and value.name.startswith("__tmp"):
                    # adopt the transient under the user-visible name
                    self.sdfg.arrays[name] = self.sdfg.arrays.pop(value.name)
                    self._rename_data(value.name, name)
                    self.symtable[name] = ArrayOp(name)
                else:
                    self.symtable[name] = value
                return
            # overwrite existing container contents
            dst = existing.name
            dst_desc = self._desc(existing)
            if isinstance(dst_desc, Scalar) or all(
                    definitely_eq(a, b) is not False
                    for a, b in zip(dst_desc.shape, desc.shape)):
                self._emit_copy(value.name, None, dst, None)
            else:
                self.symtable[name] = value
            return

        # scalar constant/symbol into a mutable variable -> scalar container
        if existing is not None and isinstance(existing, ArrayOp):
            desc = self._desc(existing)
            subset = (Range.from_string("0") if isinstance(desc, Scalar)
                      else Range.from_shape(desc.shape))
            self._store_subset(existing.name, subset, [], value)
            return
        dtype = self._dtype_of(value)
        container = self._tmp((), dtype)
        self._store_subset(container, Range.from_string("0"), [], value)
        self.symtable[name] = ArrayOp(container)

    def _rename_data(self, old: str, new: str) -> None:
        from ..ir.nodes import CodeNode

        for state in self.sdfg.states():
            for node in state.nodes():
                if isinstance(node, AccessNode) and node.data == old:
                    node.data = new
                    node.label = new
                # scope connectors are named after the container they route
                if isinstance(node, CodeNode):
                    for conns in (node.in_connectors, node.out_connectors):
                        for prefix in ("IN_", "OUT_"):
                            if f"{prefix}{old}" in conns:
                                conns.discard(f"{prefix}{old}")
                                conns.add(f"{prefix}{new}")
            for edge in state.edges():
                if edge.memlet.data == old:
                    edge.memlet.data = new
                changed = False
                src_conn, dst_conn = edge.src_conn, edge.dst_conn
                for prefix in ("IN_", "OUT_"):
                    if src_conn == f"{prefix}{old}":
                        src_conn = f"{prefix}{new}"
                        changed = True
                    if dst_conn == f"{prefix}{old}":
                        dst_conn = f"{prefix}{new}"
                        changed = True
                if changed:
                    state.add_edge(edge.src, src_conn, edge.dst, dst_conn,
                                   edge.memlet)
                    state.remove_edge(edge)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        op = BINOP_STR.get(type(node.op))
        if op is None:
            raise UnsupportedFeature(f"unsupported augmented operator in {unparse(node)!r}")
        value = self._parse_expr(node.value)
        if isinstance(node.target, ast.Name):
            current = self.symtable.get(node.target.id)
            if current is None:
                raise UnsupportedFeature(
                    f"augmented assignment to undefined name {node.target.id!r}")
            if isinstance(current, (ConstOp, SymOp)):
                folded = self._fold_binary(op, current, value)
                if folded is not None:
                    self.symtable[node.target.id] = folded
                    return
                # convert to container semantics, then read-modify-write
                self._force_container(node.target.id)
                current = self.symtable[node.target.id]
            desc = self._desc(current)
            subset = (Range.from_string("0") if isinstance(desc, Scalar)
                      else Range.from_shape(desc.shape))
            self._emit_binary(op, current, value,
                              out=(current.name, subset, []))
            return
        if isinstance(node.target, ast.Subscript):
            try:
                arr, subset, squeezed = self._parse_subscript(node.target)
            except _DataDependentIndex:
                self._emit_dynamic_augassign(node.target, op, value)
                return
            current = self._load_subset(arr, subset, squeezed)
            self._emit_binary(op, current, value, out=(arr, subset, squeezed))
            return
        raise UnsupportedFeature(f"unsupported augmented target {unparse(node.target)!r}")

    def _force_container(self, name: str) -> None:
        """Convert a compile-time binding into a scalar container."""
        operand = self.symtable[name]
        assert isinstance(operand, (ConstOp, SymOp))
        dtype = self._dtype_of(operand)
        container = self._tmp((), dtype)
        self._store_subset(container, Range.from_string("0"), [], operand)
        self.symtable[name] = ArrayOp(container)

    # ------------------------------------------------------------------- control
    def visit_For(self, node: ast.For) -> None:
        if node.orelse:
            raise UnsupportedFeature("for-else is not supported")
        iter_node = node.iter

        if isinstance(iter_node, ast.Subscript):
            ok, value = static_eval(iter_node.value, self.globals)
            if ok and getattr(value, "__is_map_marker__", False):
                self._parse_map_scope(node)
                return

        if isinstance(iter_node, ast.Call):
            ok, func = static_eval(iter_node.func, self.globals)
            if (ok and func is range) or (
                    isinstance(iter_node.func, ast.Name)
                    and iter_node.func.id == "range"):
                self._parse_range_loop(node)
                return

        operand = None
        if isinstance(iter_node, ast.Name):
            operand = self.symtable.get(iter_node.id)
        if isinstance(operand, ArrayOp):
            self._parse_array_iteration(node, operand)
            return
        raise UnsupportedFeature(f"unsupported loop iterator {unparse(iter_node)!r}")

    def _parse_range_loop(self, node: ast.For) -> None:
        if not isinstance(node.target, ast.Name):
            raise UnsupportedFeature("range loop target must be a single name")
        ivar = node.target.id
        args = node.iter.args
        if len(args) == 1:
            start_s, stop_s, step_s = "0", self._runtime_expr_str(args[0]), "1"
        elif len(args) == 2:
            start_s = self._runtime_expr_str(args[0])
            stop_s = self._runtime_expr_str(args[1])
            step_s = "1"
        elif len(args) == 3:
            start_s = self._runtime_expr_str(args[0])
            stop_s = self._runtime_expr_str(args[1])
            step_s = self._runtime_expr_str(args[2])
        else:
            raise UnsupportedFeature("range() requires 1-3 arguments")

        negative_step = step_s.replace("(", "").lstrip().startswith("-")
        cmp = ">" if negative_step else "<"
        inv_cmp = "<=" if negative_step else ">="

        self.sdfg.add_symbol(ivar)
        self._pending_edge = InterstateEdge(assignments={ivar: start_s})
        guard = self._new_state(f"for_{ivar}_guard")

        body_first = self.sdfg.add_state(f"for_{ivar}_body")
        self.sdfg.add_edge(guard, body_first,
                           InterstateEdge(f"({ivar}) {cmp} ({stop_s})"))
        after = self.sdfg.add_state(f"for_{ivar}_end")
        self.sdfg.add_edge(guard, after,
                           InterstateEdge(f"({ivar}) {inv_cmp} ({stop_s})"))

        increment = {ivar: f"({ivar}) + ({step_s})"}
        saved_binding = self.symtable.get(ivar)
        self.symtable[ivar] = SymOp(Symbol(ivar, nonnegative=False))
        self._loop_stack.append((guard, after, increment))
        self.last_state = body_first
        self._terminated = False
        for stmt in node.body:
            self.visit(stmt)
        self._loop_stack.pop()
        if not self._terminated:
            self.sdfg.add_edge(self.last_state, guard,
                               InterstateEdge(assignments=dict(increment)))
        guard.loop_info = {  # type: ignore[attr-defined]
            "ivar": ivar, "start": start_s, "stop": stop_s, "step": step_s,
            "cmp": cmp, "body_first": body_first, "after": after,
        }
        if saved_binding is not None:
            self.symtable[ivar] = saved_binding
        else:
            self.symtable.pop(ivar, None)
        self.last_state = after
        self._terminated = False

    def _parse_array_iteration(self, node: ast.For, operand: ArrayOp) -> None:
        """Desugar ``for x in data:`` into an indexed range loop."""
        desc = self._desc(operand)
        if desc.ndim != 1:
            raise UnsupportedFeature("can only iterate over 1-D arrays")
        if not isinstance(node.target, ast.Name):
            raise UnsupportedFeature("array iteration target must be a name")
        idx = self._fresh_symbol("it")
        elem = node.target.id
        read = ast.parse(f"{elem} = {operand.name}[{idx}]").body[0]
        stop = ast.parse(str(desc.shape[0])).body[0].value
        loop = ast.For(
            target=ast.Name(id=idx, ctx=ast.Store()),
            iter=ast.Call(func=ast.Name(id="range", ctx=ast.Load()),
                          args=[stop], keywords=[]),
            body=[read] + node.body, orelse=[])
        ast.fix_missing_locations(loop)
        self._assign_counts[elem] = self._assign_counts.get(elem, 0) + 2
        self._parse_range_loop(loop)

    def visit_While(self, node: ast.While) -> None:
        if node.orelse:
            raise UnsupportedFeature("while-else is not supported")
        cond = self._runtime_expr_str(node.test)
        guard = self._new_state("while_guard")
        body_first = self.sdfg.add_state("while_body")
        after = self.sdfg.add_state("while_end")
        self.sdfg.add_edge(guard, body_first, InterstateEdge(cond))
        self.sdfg.add_edge(guard, after, InterstateEdge(f"not ({cond})"))
        self._loop_stack.append((guard, after, {}))
        self.last_state = body_first
        self._terminated = False
        for stmt in node.body:
            self.visit(stmt)
        self._loop_stack.pop()
        if not self._terminated:
            self.sdfg.add_edge(self.last_state, guard, InterstateEdge())
        self.last_state = after
        self._terminated = False

    def visit_Break(self, node: ast.Break) -> None:
        if not self._loop_stack:
            raise UnsupportedFeature("break outside of a loop")
        _, after, _ = self._loop_stack[-1]
        self.sdfg.add_edge(self.last_state, after, InterstateEdge())
        self._terminated = True

    def visit_Continue(self, node: ast.Continue) -> None:
        if not self._loop_stack:
            raise UnsupportedFeature("continue outside of a loop")
        guard, _, increment = self._loop_stack[-1]
        self.sdfg.add_edge(self.last_state, guard,
                           InterstateEdge(assignments=dict(increment)))
        self._terminated = True

    def visit_If(self, node: ast.If) -> None:
        cond = self._runtime_expr_str(node.test)
        branch_point = self.last_state
        then_first = self.sdfg.add_state("if_then")
        self.sdfg.add_edge(branch_point, then_first, InterstateEdge(cond))
        after = self.sdfg.add_state("if_end")

        self.last_state = then_first
        self._terminated = False
        for stmt in node.body:
            self.visit(stmt)
        if not self._terminated:
            self.sdfg.add_edge(self.last_state, after, InterstateEdge())

        if node.orelse:
            else_first = self.sdfg.add_state("if_else")
            self.sdfg.add_edge(branch_point, else_first, InterstateEdge(f"not ({cond})"))
            self.last_state = else_first
            self._terminated = False
            for stmt in node.orelse:
                self.visit(stmt)
            if not self._terminated:
                self.sdfg.add_edge(self.last_state, after, InterstateEdge())
        else:
            self.sdfg.add_edge(branch_point, after, InterstateEdge(f"not ({cond})"))

        self.last_state = after
        self._terminated = False

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is None:
            self._terminated = True
            return
        if isinstance(node.value, ast.Tuple):
            values = [self._parse_expr(e) for e in node.value.elts]
            for i, value in enumerate(values):
                self._store_return(value, f"__return_{i}")
        else:
            value = self._parse_expr(node.value)
            self._store_return(value, "__return")
        self._terminated = True

    def _store_return(self, value: Operand, name: str) -> None:
        if isinstance(value, ArrayOp):
            desc = self._desc(value)
            if name not in self.sdfg.arrays:
                if isinstance(desc, Scalar):
                    self.sdfg.add_scalar(name, desc.dtype, transient=True)
                else:
                    self.sdfg.add_transient(name, desc.shape, desc.dtype)
            self._emit_copy(value.name, None, name, None)
        else:
            dtype = self._dtype_of(value)
            if name not in self.sdfg.arrays:
                self.sdfg.add_scalar(name, dtype, transient=True)
            self._store_subset(name, Range.from_string("0"), [], value)

    # ============================================================== expressions
    def _parse_expr(self, node: ast.expr) -> Operand:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (bool, int, float, complex)):
                return ConstOp(node.value)
            raise UnsupportedFeature(f"unsupported constant {node.value!r}")
        if isinstance(node, ast.Name):
            return self._resolve_name(node.id)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.MatMult):
                return self._emit_matmul(self._parse_expr(node.left),
                                         self._parse_expr(node.right))
            op = BINOP_STR.get(type(node.op))
            if op is None:
                raise UnsupportedFeature(f"unsupported operator in {unparse(node)!r}")
            left = self._parse_expr(node.left)
            right = self._parse_expr(node.right)
            folded = self._fold_binary(op, left, right)
            if folded is not None:
                return folded
            return self._emit_binary(op, left, right)
        if isinstance(node, ast.UnaryOp):
            op = UNARYOP_STR.get(type(node.op))
            if op is None:
                raise UnsupportedFeature(f"unsupported unary operator {unparse(node)!r}")
            operand = self._parse_expr(node.operand)
            if isinstance(operand, ConstOp):
                return ConstOp(eval(f"{op}({operand.value!r})"))
            if isinstance(operand, SymOp) and op == "-":
                return SymOp(-operand.expr)
            return self._emit_unary(op, operand)
        if isinstance(node, ast.Compare):
            return self._emit_compare(node)
        if isinstance(node, ast.Subscript):
            try:
                arr, subset, squeezed = self._parse_subscript(node)
            except _DataDependentIndex:
                return self._emit_dynamic_load(node)
            return self._load_subset(arr, subset, squeezed)
        if isinstance(node, ast.Call):
            return self._parse_call(node)
        if isinstance(node, ast.Attribute):
            return self._parse_attribute(node)
        if isinstance(node, ast.IfExp):
            return self._emit_ifexp(node)
        if isinstance(node, ast.Tuple):
            return tuple(self._parse_expr(e) for e in node.elts)  # type: ignore
        raise UnsupportedFeature(f"unsupported expression {unparse(node)!r}")

    def _resolve_name(self, name: str) -> Operand:
        if name in self.symtable:
            return self.symtable[name]
        if name in self.globals:
            value = self.globals[name]
            if isinstance(value, Symbol):
                self.sdfg.add_symbol(value.name)
                return SymOp(value)
            if isinstance(value, (bool, int, float, complex)):
                return ConstOp(value)
            if isinstance(value, np.ndarray):
                raise UnsupportedFeature(
                    f"global array {name!r} must be passed as an argument")
        raise UnsupportedFeature(f"undefined name {name!r}")

    def _fold_binary(self, op: str, left: Operand, right: Operand) -> Optional[Operand]:
        if isinstance(left, ConstOp) and isinstance(right, ConstOp):
            return ConstOp(eval(f"({left.value!r}) {op} ({right.value!r})"))
        if isinstance(left, (ConstOp, SymOp)) and isinstance(right, (ConstOp, SymOp)):
            le = left.expr if isinstance(left, SymOp) else left.value
            re_ = right.expr if isinstance(right, SymOp) else right.value
            if isinstance(le, (float, complex)) or isinstance(re_, (float, complex)):
                return None
            try:
                le = sympify(le) if not isinstance(le, Expr) else le
                re_ = sympify(re_) if not isinstance(re_, Expr) else re_
            except TypeError:
                return None
            if op == "+":
                return SymOp(le + re_)
            if op == "-":
                return SymOp(le - re_)
            if op == "*":
                return SymOp(le * re_)
            if op == "//":
                return SymOp(le // re_)
            if op == "%":
                return SymOp(le % re_)
        return None

    # -------------------------------------------------------------- subscripts
    def _parse_subscript(self, node: ast.Subscript) -> Tuple[str, Range, List[int]]:
        if isinstance(node.value, ast.Name):
            operand = self._resolve_name(node.value.id)
        else:
            operand = self._parse_expr(node.value)
        if not isinstance(operand, ArrayOp):
            raise UnsupportedFeature(
                f"cannot subscript non-array {unparse(node.value)!r}")
        arr = operand.name
        desc = self.sdfg.arrays[arr]
        subset, squeezed = self._subset_from_ast(desc, node.slice)
        return arr, subset, squeezed

    def _subset_from_ast(self, desc: Data, slice_node: ast.expr) -> Tuple[Range, List[int]]:
        if isinstance(slice_node, ast.Tuple):
            elements = list(slice_node.elts)
        else:
            elements = [slice_node]
        while len(elements) < desc.ndim:
            elements.append(ast.Slice(lower=None, upper=None, step=None))
        if len(elements) != desc.ndim:
            raise UnsupportedFeature(
                f"subscript has {len(elements)} dims, container has {desc.ndim}")
        dims = []
        squeezed: List[int] = []
        for axis, (element, size) in enumerate(zip(elements, desc.shape)):
            if isinstance(element, ast.Slice):
                step = (self._index_expr_inner(element.step)
                        if element.step is not None else Integer(1))
                descending = isinstance(step, Integer) and step.value < 0
                if element.lower is not None:
                    begin = self._index_expr(element.lower, size)
                elif descending:
                    begin = size - 1
                else:
                    begin = Integer(0)
                if element.upper is not None:
                    # the exclusive stop becomes inclusive one step inward:
                    # +1 when walking down, -1 when walking up
                    end = self._index_expr(element.upper, size) \
                        + (Integer(1) if descending else Integer(-1))
                elif descending:
                    end = Integer(0)
                else:
                    end = size - 1
                dims.append((begin, end, step))
            else:
                point = self._index_expr(element, size)
                dims.append((point, point, Integer(1)))
                squeezed.append(axis)
        return Range(dims), squeezed

    def _index_expr(self, node: ast.expr, dim_size: Expr) -> Expr:
        expr = self._index_expr_inner(node)
        if isinstance(expr, Integer) and expr.value < 0:
            return dim_size + expr
        return expr

    def _index_expr_inner(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                raise UnsupportedFeature(f"non-integer index {node.value!r}")
            return Integer(node.value)
        if isinstance(node, ast.Name):
            if node.id in self._scope_params:
                # an enclosing map's parameter shadows same-named globals
                # and symtable constants
                return Symbol(node.id, nonnegative=False)
            operand = self.symtable.get(node.id)
            if operand is None:
                value = self.globals.get(node.id)
                if isinstance(value, Symbol):
                    self.sdfg.add_symbol(value.name)
                    return value
                if isinstance(value, (int, np.integer)) \
                        and not isinstance(value, bool):
                    return Integer(int(value))
                # unknown names are map parameters or loop symbols
                return Symbol(node.id, nonnegative=False)
            if isinstance(operand, SymOp):
                return operand.expr
            if isinstance(operand, ConstOp):
                if isinstance(operand.value, (int, np.integer)) \
                        and not isinstance(operand.value, bool):
                    return Integer(int(operand.value))
                raise UnsupportedFeature(f"non-integer constant index {node.id!r}")
            raise _DataDependentIndex(node.id)
        if isinstance(node, ast.BinOp):
            left = self._index_expr_inner(node.left)
            right = self._index_expr_inner(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            raise UnsupportedFeature(f"unsupported index operator {unparse(node)!r}")
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self._index_expr_inner(node.operand)
        if isinstance(node, ast.Call):
            ok, func = static_eval(node.func, self.globals)
            if ok and func in (min, np.minimum):
                return Min.make(*(self._index_expr_inner(a) for a in node.args))
            if ok and func in (max, np.maximum):
                return Max.make(*(self._index_expr_inner(a) for a in node.args))
            if ok and func in (int, np.int32, np.int64):
                return self._index_expr_inner(node.args[0])
            raise _DataDependentIndex(unparse(node))
        if isinstance(node, ast.Subscript):
            raise _DataDependentIndex(unparse(node))
        raise UnsupportedFeature(f"unsupported index expression {unparse(node)!r}")

    def _load_subset(self, arr: str, subset: Range, squeezed: List[int]) -> Operand:
        desc = self.sdfg.arrays[arr]
        if isinstance(desc, Scalar):
            return ArrayOp(arr)
        full = Range.from_shape(desc.shape)
        if subset == full:
            return ArrayOp(arr)
        sizes = subset.size()
        kept = tuple(s for i, s in enumerate(sizes) if i not in squeezed)
        out = self._tmp(kept if kept else (), desc.dtype)
        self._emit_copy(arr, subset, out, None)
        return ArrayOp(out)

    def _store_subset(self, arr: str, subset: Range, squeezed: Sequence[int],
                      value: Operand) -> None:
        """Assign *value* into ``arr[subset]`` (NumPy semantics: dimensions in
        *squeezed* were integer-indexed and do not appear in the value)."""
        desc = self.sdfg.arrays[arr]
        target_shape = tuple(s for i, s in enumerate(subset.size())
                             if i not in squeezed)
        if isinstance(value, ArrayOp):
            src_desc = self._desc(value)
            src_shape = () if isinstance(src_desc, Scalar) else src_desc.shape
            if src_shape and len(src_shape) == len(target_shape) and all(
                    definitely_eq(a, b) is not False
                    for a, b in zip(src_shape, target_shape)):
                # exact-shape store: plain copy edge
                if isinstance(desc, Scalar):
                    self._emit_copy(value.name, None, arr, subset)
                else:
                    self._emit_copy(value.name, None, arr, subset)
                return
        # broadcast / constant store via a map
        params = [f"__i{k}" for k in range(len(target_shape))]
        state = self._new_state("store")
        inputs: Dict[str, Memlet] = {}
        frag = self._operand_code(value, "__in0", inputs, params, target_shape)
        out_memlet = Memlet(arr, self._write_indices(subset, squeezed, params))
        if not target_shape:
            tasklet = state.add_tasklet("store", inputs.keys(), {"__out"},
                                        f"__out = {frag}")
            for conn, memlet in inputs.items():
                state.add_edge(state.add_read(memlet.data), None, tasklet, conn, memlet)
            state.add_edge(tasklet, "__out", state.add_write(arr), None, out_memlet)
            return
        state.add_mapped_tasklet(
            "store",
            {p: (Integer(0), s - 1, Integer(1)) for p, s in zip(params, target_shape)},
            inputs, f"__out = {frag}", {"__out": out_memlet})

    @staticmethod
    def _write_indices(subset: Range, squeezed: Sequence[int],
                       params: Sequence[str]) -> Range:
        """Indices for writing through a subset: squeezed dims are fixed at
        their begin; the k-th non-squeezed dim advances with params[k]."""
        squeezed = set(squeezed)
        indices: List[Expr] = []
        it = iter(params)
        for axis, (begin, _end, step) in enumerate(subset.dims):
            if axis in squeezed:
                indices.append(begin)
            else:
                param = next(it)
                indices.append(begin + Symbol(param, nonnegative=False) * step)
        return Range.from_indices(indices)

    # -------------------------------------------------- dynamic (data-dependent)
    def _dynamic_index_code(self, node: ast.Subscript,
                            inputs: Dict[str, Memlet]) -> Tuple[str, str]:
        """Return (array_connector, index_code) for a data-dependent subscript.

        The full array becomes a connector; index names that are scalar
        containers become scalar connectors.
        """
        if not isinstance(node.value, ast.Name):
            raise UnsupportedFeature("dynamic subscript base must be a name")
        operand = self._resolve_name(node.value.id)
        assert isinstance(operand, ArrayOp)
        arr = operand.name
        desc = self.sdfg.arrays[arr]
        conn = f"__arr_{arr}"
        inputs[conn] = Memlet(arr, Range.from_shape(desc.shape), dynamic=True)

        counter = [0]

        def render(idx_node: ast.expr) -> str:
            if isinstance(idx_node, ast.Constant):
                return repr(idx_node.value)
            if isinstance(idx_node, ast.Name):
                op = self.symtable.get(idx_node.id)
                if op is None:
                    return idx_node.id  # loop symbol
                if isinstance(op, ConstOp):
                    return repr(op.value)
                if isinstance(op, SymOp):
                    return f"({op.expr})"
                # scalar container index -> connector
                sdesc = self._desc(op)
                if not isinstance(sdesc, Scalar):
                    ic = f"__idxarr{counter[0]}"
                    counter[0] += 1
                    inputs[ic] = Memlet(op.name, Range.from_shape(sdesc.shape),
                                        dynamic=True)
                    return ic
                ic = f"__idx{counter[0]}"
                counter[0] += 1
                inputs[ic] = Memlet(op.name, Range.from_string("0"))
                return f"int({ic})"
            if isinstance(idx_node, ast.BinOp):
                op_str = BINOP_STR.get(type(idx_node.op))
                if op_str is None:
                    raise UnsupportedFeature(
                        f"unsupported dynamic index {unparse(idx_node)!r}")
                return f"({render(idx_node.left)}) {op_str} ({render(idx_node.right)})"
            if isinstance(idx_node, ast.UnaryOp) and isinstance(idx_node.op, ast.USub):
                return f"-({render(idx_node.operand)})"
            if isinstance(idx_node, ast.Subscript):
                inner_conn, inner_idx = self._dynamic_index_code(idx_node, inputs)
                return f"{inner_conn}[{inner_idx}]"
            if isinstance(idx_node, ast.Call):
                ok, func = static_eval(idx_node.func, self.globals)
                if ok and func in (int, np.int32, np.int64):
                    return f"int({render(idx_node.args[0])})"
                if ok and func in (min, np.minimum):
                    return f"min({', '.join(render(a) for a in idx_node.args)})"
                if ok and func in (max, np.maximum):
                    return f"max({', '.join(render(a) for a in idx_node.args)})"
            raise UnsupportedFeature(
                f"unsupported dynamic index {unparse(idx_node)!r}")

        if isinstance(node.slice, ast.Tuple):
            index_code = ", ".join(render(e) for e in node.slice.elts)
        else:
            index_code = render(node.slice)
        return conn, index_code

    def _emit_dynamic_load(self, node: ast.Subscript) -> Operand:
        inputs: Dict[str, Memlet] = {}
        conn, index_code = self._dynamic_index_code(node, inputs)
        arr = inputs[conn].data
        dtype = self.sdfg.arrays[arr].dtype
        out = self._tmp((), dtype)
        state = self._new_state("dyn_load")
        tasklet = state.add_tasklet("dyn_load", inputs.keys(), {"__out"},
                                    f"__out = {conn}[{index_code}]")
        for c, memlet in inputs.items():
            state.add_edge(state.add_read(memlet.data), None, tasklet, c, memlet)
        state.add_edge(tasklet, "__out", state.add_write(out), None,
                       Memlet(out, Range.from_string("0")))
        return ArrayOp(out)

    def _emit_dynamic_store(self, node: ast.Subscript, value: Operand) -> None:
        inputs: Dict[str, Memlet] = {}
        conn, index_code = self._dynamic_index_code(node, inputs)
        arr = inputs[conn].data
        frag = self._operand_code(value, "__val", inputs, (), ())
        state = self._new_state("dyn_store")
        code = f"{conn}[{index_code}] = {frag}\n__out = {conn}"
        tasklet = state.add_tasklet("dyn_store", inputs.keys(), {"__out"}, code)
        for c, memlet in inputs.items():
            state.add_edge(state.add_read(memlet.data), None, tasklet, c, memlet)
        desc = self.sdfg.arrays[arr]
        state.add_edge(tasklet, "__out", state.add_write(arr), None,
                       Memlet(arr, Range.from_shape(desc.shape), dynamic=True))

    def _emit_dynamic_augassign(self, node: ast.Subscript, op: str,
                                value: Operand) -> None:
        inputs: Dict[str, Memlet] = {}
        conn, index_code = self._dynamic_index_code(node, inputs)
        arr = inputs[conn].data
        frag = self._operand_code(value, "__val", inputs, (), ())
        state = self._new_state("dyn_aug")
        code = f"{conn}[{index_code}] {op}= {frag}\n__out = {conn}"
        tasklet = state.add_tasklet("dyn_aug", inputs.keys(), {"__out"}, code)
        for c, memlet in inputs.items():
            state.add_edge(state.add_read(memlet.data), None, tasklet, c, memlet)
        desc = self.sdfg.arrays[arr]
        state.add_edge(tasklet, "__out", state.add_write(arr), None,
                       Memlet(arr, Range.from_shape(desc.shape), dynamic=True))

    # ------------------------------------------------------------- attribute / call
    def _parse_attribute(self, node: ast.Attribute) -> Operand:
        if isinstance(node.value, (ast.Name, ast.Subscript, ast.Attribute)):
            base = None
            try:
                base = self._parse_expr(node.value)
            except UnsupportedFeature:
                base = None
            if isinstance(base, ArrayOp):
                if node.attr == "T":
                    return self._emit_transpose(base)
                if node.attr == "dtype":
                    return ConstOp(self._desc(base).dtype.nptype)
                if node.attr == "size":
                    return SymOp(self._desc(base).total_size())
                if node.attr == "shape":
                    return tuple(SymOp(s) for s in self._desc(base).shape)  # type: ignore
                raise UnsupportedFeature(f"unsupported array attribute .{node.attr}")
        ok, value = static_eval(node, self.globals)
        if ok:
            if isinstance(value, (bool, int, float, complex)):
                return ConstOp(value)
            if isinstance(value, Symbol):
                self.sdfg.add_symbol(value.name)
                return SymOp(value)
        raise UnsupportedFeature(f"unsupported attribute {unparse(node)!r}")

    def _parse_call(self, node: ast.Call, statement: bool = False) -> Operand:
        from .replacements import dispatch_call

        return dispatch_call(self, node, statement=statement)

    # ---------------------------------------------------------------- map scopes
    def _parse_map_scope(self, node: ast.For) -> None:
        from .tasklets import TaskletBuilder

        if isinstance(node.target, ast.Tuple):
            params = [t.id for t in node.target.elts]
        elif isinstance(node.target, ast.Name):
            params = [node.target.id]
        else:
            raise UnsupportedFeature("map target must be name(s)")
        slice_node = node.iter.slice
        elements = list(slice_node.elts) if isinstance(slice_node, ast.Tuple) \
            else [slice_node]
        if len(elements) != len(params):
            raise UnsupportedFeature(
                f"map has {len(params)} parameters but {len(elements)} ranges")
        dims = []
        for element in elements:
            if not isinstance(element, ast.Slice):
                raise UnsupportedFeature("map ranges must be slices")
            begin = (self._index_expr_inner(element.lower)
                     if element.lower is not None else Integer(0))
            if element.upper is None:
                raise UnsupportedFeature("map range requires an upper bound")
            end = self._index_expr_inner(element.upper) - 1
            step = (self._index_expr_inner(element.step)
                    if element.step is not None else Integer(1))
            dims.append((begin, end, step))
        rng = Range(dims)

        state = self._new_state("map")
        builder = TaskletBuilder(self, params)
        self._scope_params.extend(params)
        try:
            code, inputs, outputs = builder.build(node.body)
        finally:
            del self._scope_params[-len(params):]
        state.add_mapped_tasklet(
            "map", {p: rng.dims[i] for i, p in enumerate(params)},
            inputs, code, outputs)

    # =============================================================== emitters
    def _operand_code(self, operand: Operand, connector: str,
                      inputs: Dict[str, Memlet], params: Sequence[str],
                      out_shape: Tuple[Expr, ...]) -> str:
        if isinstance(operand, ConstOp):
            return repr(operand.value)
        if isinstance(operand, SymOp):
            return f"({operand.expr})"
        desc = self._desc(operand)
        if isinstance(desc, Scalar):
            inputs[connector] = Memlet(operand.name, Range.from_string("0"))
            return connector
        shape = desc.shape
        offset = len(out_shape) - len(shape)
        indices: List[Expr] = []
        for dim_idx, size in enumerate(shape):
            param_idx = dim_idx + offset
            if definitely_eq(size, 1) is True:
                indices.append(Integer(0))
            else:
                indices.append(Symbol(params[param_idx], nonnegative=False))
        inputs[connector] = Memlet(operand.name, Range.from_indices(indices))
        return connector

    def _broadcast_shape(self, *operands: Operand) -> Tuple[Expr, ...]:
        shapes = [self._shape_of(op) for op in operands]
        ndim = max((len(s) for s in shapes), default=0)
        result: List[Expr] = []
        for i in range(ndim):
            dim: Expr = Integer(1)
            for shape in shapes:
                idx = i - (ndim - len(shape))
                if idx < 0:
                    continue
                size = shape[idx]
                if definitely_eq(size, 1) is True:
                    continue
                if definitely_eq(dim, 1) is True:
                    dim = size
                elif definitely_eq(dim, size) is False:
                    raise UnsupportedFeature(f"cannot broadcast shapes {shapes}")
            result.append(dim)
        return tuple(result)

    def _promote(self, op: str, *operands: Operand) -> typeclass:
        np_types = []
        for operand in operands:
            if isinstance(operand, ConstOp):
                value = operand.value
                if isinstance(value, bool):
                    np_types.append(np.dtype(np.bool_))
                elif isinstance(value, int):
                    np_types.append(np.dtype(np.int64))
                elif isinstance(value, float):
                    np_types.append(np.dtype(np.float64))
                else:
                    np_types.append(np.dtype(np.complex128))
            elif isinstance(operand, SymOp):
                np_types.append(np.dtype(np.int64))
            else:
                np_types.append(self._dtype_of(operand).nptype)
        # NumPy value-based promotion: python scalars do not widen arrays
        array_types = [t for op_, t in zip(operands, np_types)
                       if isinstance(op_, ArrayOp)]
        if array_types and any(np.issubdtype(t, np.floating) for t in array_types):
            np_types = [t if isinstance(op_, ArrayOp) else np.dtype(np.float64)
                        for op_, t in zip(operands, np_types)]
            result = np.result_type(*array_types)
        else:
            result = np.result_type(*np_types)
        if op == "/" and not np.issubdtype(result, np.floating) \
                and not np.issubdtype(result, np.complexfloating):
            result = np.dtype(np.float64)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            result = np.dtype(np.bool_)
        return dtype_of(result)

    def _emit_map_op(self, code_template: str, operands: Sequence[Operand],
                     out_dtype: typeclass,
                     out: Optional[Tuple[str, Range, Sequence[int]]] = None,
                     label: str = "elementwise") -> Operand:
        out_shape = self._broadcast_shape(*operands)
        if out is None:
            out_name = self._tmp(out_shape if out_shape else (), out_dtype)
            out_subset = None
            squeezed: Sequence[int] = ()
        else:
            out_name, out_subset, squeezed = out
        out_desc = self.sdfg.arrays[out_name]
        state = self._new_state(label)

        if not out_shape:
            inputs: Dict[str, Memlet] = {}
            frags = [self._operand_code(op, f"__in{i}", inputs, (), ())
                     for i, op in enumerate(operands)]
            code = f"__out = {code_template.format(*frags)}"
            tasklet = state.add_tasklet(label, inputs.keys(), {"__out"}, code)
            for conn, memlet in inputs.items():
                state.add_edge(state.add_read(memlet.data), None, tasklet, conn, memlet)
            if out_subset is not None and not isinstance(out_desc, Scalar):
                om = Memlet(out_name, self._write_indices(out_subset, squeezed, ()))
            elif isinstance(out_desc, Scalar):
                om = Memlet(out_name, Range.from_string("0"))
            else:
                om = Memlet.from_array(out_name, out_desc)
            state.add_edge(tasklet, "__out", state.add_write(out_name), None, om)
            return ArrayOp(out_name)

        params = [f"__i{k}" for k in range(len(out_shape))]
        inputs = {}
        frags = [self._operand_code(op, f"__in{i}", inputs, params, out_shape)
                 for i, op in enumerate(operands)]
        code = f"__out = {code_template.format(*frags)}"
        if out_subset is not None:
            out_memlet = Memlet(out_name,
                                self._write_indices(out_subset, squeezed, params))
        else:
            out_memlet = Memlet(out_name, Range.from_indices(
                [Symbol(p, nonnegative=False) for p in params]))
        state.add_mapped_tasklet(
            label,
            {p: (Integer(0), s - 1, Integer(1)) for p, s in zip(params, out_shape)},
            inputs, code, {"__out": out_memlet})
        return ArrayOp(out_name)

    def _emit_binary(self, op: str, left: Operand, right: Operand,
                     out: Optional[Tuple[str, Range, Sequence[int]]] = None) -> Operand:
        dtype = self._promote(op, left, right)
        return self._emit_map_op(f"({{0}}) {op} ({{1}})", [left, right], dtype,
                                 out=out, label=f"binop_{_op_label(op)}")

    def _emit_unary(self, op: str, operand: Operand,
                    out: Optional[Tuple[str, Range, Sequence[int]]] = None) -> Operand:
        dtype = self._dtype_of(operand)
        return self._emit_map_op(f"{op}({{0}})", [operand], dtype, out=out,
                                 label="unop")

    def _emit_compare(self, node: ast.Compare) -> Operand:
        if len(node.ops) != 1:
            raise UnsupportedFeature("chained comparisons are not supported")
        op = CMPOP_STR.get(type(node.ops[0]))
        if op is None:
            raise UnsupportedFeature(f"unsupported comparison {unparse(node)!r}")
        left = self._parse_expr(node.left)
        right = self._parse_expr(node.comparators[0])
        if isinstance(left, ConstOp) and isinstance(right, ConstOp):
            return ConstOp(eval(f"({left.value!r}) {op} ({right.value!r})"))
        dtype = self._promote(op, left, right)
        return self._emit_map_op(f"({{0}}) {op} ({{1}})", [left, right], dtype,
                                 label="compare")

    def _emit_ifexp(self, node: ast.IfExp) -> Operand:
        test = self._parse_expr(node.test)
        body = self._parse_expr(node.body)
        orelse = self._parse_expr(node.orelse)
        if isinstance(test, ConstOp):
            return body if test.value else orelse
        dtype = self._promote("+", body, orelse)
        return self._emit_map_op("({1}) if ({0}) else ({2})",
                                 [test, body, orelse], dtype, label="select")

    def _emit_transpose(self, operand: ArrayOp) -> Operand:
        desc = self._desc(operand)
        if desc.ndim <= 1:
            return operand
        if desc.ndim != 2:
            raise UnsupportedFeature(".T is only supported for 2-D arrays")
        m, n = desc.shape
        out = self._tmp((n, m), desc.dtype)
        state = self._new_state("transpose")
        state.add_mapped_tasklet(
            "transpose",
            {"__i": (Integer(0), n - 1, Integer(1)),
             "__j": (Integer(0), m - 1, Integer(1))},
            {"__in": Memlet(operand.name, Range.from_string("__j, __i"))},
            "__out = __in",
            {"__out": Memlet(out, Range.from_string("__i, __j"))})
        return ArrayOp(out)

    def _emit_matmul(self, left: Operand, right: Operand) -> Operand:
        from ..library.blas import MatMul

        if not isinstance(left, ArrayOp) or not isinstance(right, ArrayOp):
            raise UnsupportedFeature("@ requires array operands")
        a_desc = self._desc(left)
        b_desc = self._desc(right)
        if a_desc.ndim == 2 and b_desc.ndim == 2:
            out_shape: Tuple[Expr, ...] = (a_desc.shape[0], b_desc.shape[1])
        elif a_desc.ndim == 2 and b_desc.ndim == 1:
            out_shape = (a_desc.shape[0],)
        elif a_desc.ndim == 1 and b_desc.ndim == 2:
            out_shape = (b_desc.shape[1],)
        elif a_desc.ndim == 1 and b_desc.ndim == 1:
            out_shape = ()
        else:
            raise UnsupportedFeature("@ supports 1-D/2-D operands only")
        dtype = self._promote("*", left, right)
        out = self._tmp(out_shape if out_shape else (), dtype)
        state = self._new_state("matmul")
        node = MatMul()
        state.add_node(node)
        a_acc = state.add_read(left.name)
        b_acc = state.add_read(right.name)
        c_acc = state.add_write(out)
        state.add_edge(a_acc, None, node, "_a", Memlet.from_array(left.name, a_desc))
        state.add_edge(b_acc, None, node, "_b", Memlet.from_array(right.name, b_desc))
        out_desc = self.sdfg.arrays[out]
        if isinstance(out_desc, Scalar):
            state.add_edge(node, "_c", c_acc, None, Memlet(out, Range.from_string("0")))
        else:
            state.add_edge(node, "_c", c_acc, None, Memlet.from_array(out, out_desc))
        return ArrayOp(out)

    def _emit_copy(self, src: str, src_subset: Optional[Range],
                   dst: str, dst_subset: Optional[Range]) -> None:
        state = self._new_state("copy")
        src_desc = self.sdfg.arrays[src]
        dst_desc = self.sdfg.arrays[dst]
        if src_subset is None:
            src_subset = (Range.from_string("0") if isinstance(src_desc, Scalar)
                          else Range.from_shape(src_desc.shape))
        if dst_subset is None:
            dst_subset = (Range.from_string("0") if isinstance(dst_desc, Scalar)
                          else Range.from_shape(dst_desc.shape))
        read = state.add_read(src)
        write = state.add_write(dst)
        state.add_nedge(read, write, Memlet(src, src_subset, other_subset=dst_subset))

    # ------------------------------------------------------- runtime expressions
    def _runtime_expr_str(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            return repr(node.value)
        if isinstance(node, ast.Name):
            operand = self.symtable.get(node.id)
            if operand is None:
                if node.id in self.globals:
                    resolved = self._resolve_name(node.id)
                    if isinstance(resolved, ConstOp):
                        return repr(resolved.value)
                    if isinstance(resolved, SymOp):
                        return f"({resolved.expr})"
                return node.id  # loop symbol
            if isinstance(operand, ConstOp):
                return repr(operand.value)
            if isinstance(operand, SymOp):
                return f"({operand.expr})"
            return operand.name  # container value, resolved at runtime
        if isinstance(node, ast.BinOp):
            op = BINOP_STR.get(type(node.op))
            if op is None:
                raise UnsupportedFeature(
                    f"unsupported operator in condition {unparse(node)!r}")
            return (f"({self._runtime_expr_str(node.left)}) {op} "
                    f"({self._runtime_expr_str(node.right)})")
        if isinstance(node, ast.UnaryOp):
            op = UNARYOP_STR.get(type(node.op))
            if op is None:
                raise UnsupportedFeature(
                    f"unsupported unary in condition {unparse(node)!r}")
            return f"{op}({self._runtime_expr_str(node.operand)})"
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise UnsupportedFeature("chained comparisons in conditions")
            op = CMPOP_STR.get(type(node.ops[0]))
            if op is None:
                raise UnsupportedFeature(f"unsupported comparison {unparse(node)!r}")
            return (f"({self._runtime_expr_str(node.left)}) {op} "
                    f"({self._runtime_expr_str(node.comparators[0])})")
        if isinstance(node, ast.BoolOp):
            joiner = " and " if isinstance(node.op, ast.And) else " or "
            return joiner.join(f"({self._runtime_expr_str(v)})" for v in node.values)
        if isinstance(node, ast.Subscript):
            if not isinstance(node.value, ast.Name):
                raise UnsupportedFeature(
                    f"unsupported condition subscript {unparse(node)!r}")
            operand = self._resolve_name(node.value.id)
            if not isinstance(operand, ArrayOp):
                raise UnsupportedFeature(
                    f"cannot subscript non-array in condition {unparse(node)!r}")
            elements = (list(node.slice.elts) if isinstance(node.slice, ast.Tuple)
                        else [node.slice])
            indices = ", ".join(self._runtime_expr_str(e) for e in elements)
            return f"{operand.name}[{indices}]"
        if isinstance(node, ast.Call):
            ok, func = static_eval(node.func, self.globals)
            if ok and func is len:
                operand = self._parse_expr(node.args[0])
                if isinstance(operand, ArrayOp):
                    return f"({self._desc(operand).shape[0]})"
            if ok and func in (min, max):
                name = "min" if func is min else "max"
                args = ", ".join(self._runtime_expr_str(a) for a in node.args)
                return f"{name}({args})"
            if ok and func in (int, float, bool, abs):
                return f"{func.__name__}({self._runtime_expr_str(node.args[0])})"
        raise UnsupportedFeature(f"unsupported runtime expression {unparse(node)!r}")


def _op_label(op: str) -> str:
    return {"+": "add", "-": "sub", "*": "mul", "/": "div", "//": "floordiv",
            "%": "mod", "**": "pow", "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "shr"}.get(op, "op")


def parse_program(func, arg_descs: Dict[str, Union[Data, Symbol]],
                  global_env: Dict[str, Any], name: Optional[str] = None,
                  defaults: Optional[Dict[str, Any]] = None) -> SDFG:
    """Parse *func* (a Python function) into an SDFG using the given argument
    descriptors."""
    from .astutils import function_ast

    func_ast, _source = function_ast(func)
    visitor = ProgramVisitor(name or func.__name__, global_env)
    sdfg = visitor.parse(func_ast, arg_descs, defaults)
    sdfg.validate()
    return sdfg
