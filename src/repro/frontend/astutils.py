"""AST helpers for the data-centric Python frontend."""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "UnsupportedFeature",
    "function_ast",
    "static_eval",
    "unparse",
    "count_assignments",
    "BINOP_STR",
    "CMPOP_STR",
    "UNARYOP_STR",
]


class UnsupportedFeature(NotImplementedError):
    """Raised when a Python feature is outside the high-performance subset
    (§2.5); the decorator may fall back to the interpreter."""


def function_ast(func: Callable) -> Tuple[ast.FunctionDef, str]:
    """Return the (dedented) FunctionDef AST and source of *func*."""
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise UnsupportedFeature(f"cannot retrieve source of {func!r}") from exc
    source = textwrap.dedent(source)
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node, source
    raise UnsupportedFeature(f"no function definition found in source of {func!r}")


def unparse(node: ast.AST) -> str:
    return ast.unparse(node)


def static_eval(node: ast.AST, env: Dict[str, Any]) -> Tuple[bool, Any]:
    """Try evaluating an AST expression against a static environment.

    Returns ``(True, value)`` on success, ``(False, None)`` otherwise.  Used
    to resolve module attributes (``np.zeros``), dtype arguments, and
    compile-time constants.
    """
    try:
        code = compile(ast.Expression(body=_strip_ctx(node)), "<static>", "eval")
        merged = dict(_STATIC_BUILTINS)
        merged.update(env)
        return True, eval(code, {"__builtins__": {}}, merged)
    except Exception:
        return False, None


#: builtins resolvable during static evaluation (so ``max(...)`` and friends
#: dispatch to their registered replacements)
_STATIC_BUILTINS = {
    "min": min, "max": max, "abs": abs, "len": len, "range": range,
    "int": int, "float": float, "bool": bool, "sum": sum,
}


def _strip_ctx(node: ast.AST) -> ast.AST:
    """Deep-copy with Load contexts (so Store targets can be evaluated)."""
    import copy

    node = copy.deepcopy(node)
    for sub in ast.walk(node):
        if hasattr(sub, "ctx"):
            sub.ctx = ast.Load()
    ast.fix_missing_locations(node)
    return node


def count_assignments(func_ast: ast.FunctionDef) -> Dict[str, int]:
    """Number of times each plain name is assigned in the function body."""
    counts: Dict[str, int] = {}

    class Counter(ast.NodeVisitor):
        def visit_Name(self, node: ast.Name):
            if isinstance(node.ctx, (ast.Store, ast.AugStore)) if hasattr(ast, "AugStore") \
                    else isinstance(node.ctx, ast.Store):
                counts[node.id] = counts.get(node.id, 0) + 1

        def visit_AugAssign(self, node: ast.AugAssign):
            if isinstance(node.target, ast.Name):
                counts[node.target.id] = counts.get(node.target.id, 0) + 1
            self.generic_visit(node)

        def visit_For(self, node: ast.For):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    counts[target.id] = counts.get(target.id, 0) + 1
            for stmt in node.body + node.orelse:
                self.visit(stmt)
            self.visit(node.iter)

    Counter().visit(func_ast)
    return counts


BINOP_STR = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.LShift: "<<",
    ast.RShift: ">>",
}

CMPOP_STR = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}

UNARYOP_STR = {
    ast.USub: "-",
    ast.UAdd: "+",
    ast.Invert: "~",
    ast.Not: "not ",
}

#: AugAssign operators that map onto WCR functions when racy
AUG_TO_WCR = {
    ast.Add: "sum",
    ast.Mult: "prod",
    ast.BitAnd: "logical_and",
    ast.BitOr: "logical_or",
}
