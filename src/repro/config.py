"""Global configuration for the data-centric toolbox.

A tiny hierarchical key-value store, with context-manager overrides so tests
and benchmarks can toggle behaviour (e.g. auto-optimization passes or device
model parameters) without mutating global state permanently.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator

_DEFAULTS: Dict[str, Any] = {
    # Frontend / optimizer behaviour
    "optimizer.simplify": True,              # run dataflow coarsening after parse
    "optimizer.autooptimize": False,         # run -O3 heuristics by default
    "optimizer.tile_size": 64,               # WCR map tile size (paper §3.1 (3))
    "optimizer.stack_array_limit": 64,       # elements; below -> "stack" storage
    # Instrumentation (see repro.instrumentation)
    "instrument.mode": "off",                # "off" | "timers"
    # Multicore CPU backend (see repro.runtime.parallel and DESIGN.md §11)
    "device.cpu_threads": 0,                 # worker count; 0 -> $REPRO_CPU_THREADS
                                             # -> os.cpu_count()
    "parallel.min_work": 65536,              # est. flops below which a map
                                             # stays serial (pool dispatch
                                             # costs more than it saves)
    # Compilation cache (see repro.cache and DESIGN.md §9)
    "cache.enabled": True,                   # content-addressed compile cache
    "cache.dir": "",                         # "" -> $REPRO_CACHE_DIR -> ~/.cache/repro
    "cache.max_bytes": 256 * 1024 * 1024,    # on-disk LRU budget
    "cache.memory_entries": 128,             # in-memory LRU entry cap
    # Sanitizer (see repro.sanitizer and DESIGN.md §8)
    "sanitize.mode": "off",                  # "off" | "bounds" | "nan" | "bounds,nan"
    "sanitize.check_transforms": True,       # static race/bounds gate on passes
    # Validation
    "validate.after_transform": True,
    "validate.before_execute": True,         # run ir.validation before run_sdfg
    # Resilience (see repro.resilience and DESIGN.md)
    "resilience.mode": "strict",             # "strict" raises, "degrade" falls back
    "resilience.transactional": True,        # snapshot/rollback around passes
    "resilience.quarantine_threshold": 3,    # failures before a pass is skipped
    "resilience.max_pass_applications": 10000,  # fixed-point application cap
    # Fault injection / communication resilience (repro.simmpi)
    "resilience.send_retries": 3,            # eager-send retransmissions
    "resilience.retry_backoff_us": 10.0,     # virtual-clock backoff per retry
    "resilience.comm_timeout_s": 60.0,       # blocking-op deadlock timeout
    # Distributed checkpoint/restart (repro.resilience.distributed, §10)
    "resilience.ckpt_interval": 0,           # checkpoint every N state
                                             # transitions (0 = off)
    "resilience.ckpt_comm_ops": 0,           # ... or every K comm ops (0 = off)
    "resilience.max_restarts": 3,            # supervised restart budget
    "resilience.ckpt_dir": "",               # spill dir; "" -> $REPRO_CKPT_DIR
                                             # -> in-memory only
    # Execution governor (see repro.governor and DESIGN.md §12)
    "governor.deadline_s": 0.0,              # ambient wall-clock budget per
                                             # run (0 = off)
    "governor.max_bytes": 0,                 # admission-control memory
                                             # budget (0 = off)
    "governor.admission": "degrade",         # "degrade" tries the serial
                                             # tier before rejecting;
                                             # "strict" always rejects
    "governor.breaker_threshold": 3,         # consecutive failures that
                                             # open a program's circuit
                                             # (0 = breaker off)
    "governor.cooldown_s": 30.0,             # open -> half-open probe delay
    # Simulated device parameters (see repro.runtime.perfmodel)
    "gpu.kernel_launch_us": 6.0,
    "gpu.bandwidth_gbs": 790.0,              # V100-class HBM2
    "gpu.pcie_gbs": 12.0,
    "gpu.atomic_penalty": 12.0,
    "gpu.flops_gflops": 6100.0,              # FP64 ceiling, V100-class
    "cpu.bandwidth_gbs": 180.0,              # 2-socket Xeon-class
    "cpu.flops_gflops": 1300.0,
    "cpu.mkl_gemm_efficiency": 0.85,
    # Simulated network (Piz Daint Aries-like; LogGP)
    "net.latency_us": 1.2,
    "net.bandwidth_gbs": 9.0,
    "net.per_message_overhead_us": 0.6,
    # Communication optimizer (repro.distributed.commopt, DESIGN.md §13)
    "commopt.enabled": False,                # apply optimize_comm in
                                             # run_distributed (or set
                                             # $REPRO_COMM_OPT=1)
    "commopt.overlap": True,                 # halo-exchange interior/boundary
                                             # overlap rewrite
    "commopt.dedup": True,                   # loop-invariant collective dedup
    "commopt.coalesce_max_bytes": 4096,      # fuse same-peer messages at or
                                             # below this size (0 = off)
    "commopt.stencil_gflops": 0.0,           # stencil compute rate for the
                                             # overlap clock credit;
                                             # 0.0 -> cpu.flops_gflops
}

_config: Dict[str, Any] = dict(_DEFAULTS)


class Config:
    """Namespace wrapper around the process-wide configuration."""

    @staticmethod
    def get(key: str) -> Any:
        try:
            return _config[key]
        except KeyError:
            raise KeyError(f"unknown configuration key {key!r}") from None

    @staticmethod
    def set(key: str, value: Any) -> None:
        if key not in _config:
            raise KeyError(f"unknown configuration key {key!r}")
        _config[key] = value

    @staticmethod
    def keys():
        return _config.keys()

    @staticmethod
    def reset() -> None:
        _config.clear()
        _config.update(_DEFAULTS)

    @staticmethod
    @contextlib.contextmanager
    def override(**pairs: Any) -> Iterator[None]:
        """Temporarily override dotted keys (dots written as ``__``)."""
        keys = {k.replace("__", "."): v for k, v in pairs.items()}
        saved = {k: Config.get(k) for k in keys}
        try:
            for k, v in keys.items():
                Config.set(k, v)
            yield
        finally:
            for k, v in saved.items():
                Config.set(k, v)
