"""``sdfgcc``: command-line AOT compiler for serialized SDFGs (§3.3).

Loads an SDFG JSON file, optionally auto-optimizes it for a device, and
writes the generated specialized Python module next to it.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="sdfgcc", description="Compile a serialized SDFG to a module")
    parser.add_argument("input", help="SDFG JSON file")
    parser.add_argument("-o", "--output", help="output module path")
    parser.add_argument("--device", default="CPU",
                        choices=["CPU", "GPU", "FPGA"])
    parser.add_argument("--auto-optimize", action="store_true")
    args = parser.parse_args(argv)

    from ..ir.serialize import sdfg_from_json

    with open(args.input) as fh:
        sdfg = sdfg_from_json(json.load(fh))
    if args.auto_optimize:
        sdfg.auto_optimize(device=args.device)
    compiled = sdfg.compile(device=args.device)
    output = args.output or (args.input.rsplit(".", 1)[0] + "_gen.py")
    compiled.save_source(output)
    print(f"sdfgcc: wrote {output} "
          f"(codegen {compiled.codegen_seconds * 1e3:.1f} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
