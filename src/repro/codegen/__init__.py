"""Code generation: SDFG -> specialized executable modules (§3.3)."""

from .compiled import CompiledSDFG, compile_sdfg
from .pygen import generate_module

__all__ = ["CompiledSDFG", "compile_sdfg", "generate_module"]
