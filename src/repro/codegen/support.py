"""Runtime helpers imported by generated modules.

Generated code turns symbolic memlets into NumPy views at runtime; these
helpers build slices from affine index maps and align view axes with the
map-parameter space so fused scopes evaluate as single vectorized
expressions.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["make_slice", "align_axes", "dim_length", "Min", "Max", "reduce_ufunc"]


def Min(*args):
    """Elementwise minimum, scalar-safe.

    Symbolic ``Min``/``Max`` atoms print into generated code; when a
    vectorized scope evaluates them the arguments may be NumPy views, where
    Python's ``min`` raises "truth value of an array is ambiguous".  A
    ``np.minimum`` reduction handles both scalars and arrays.
    """
    result = args[0]
    for arg in args[1:]:
        result = np.minimum(result, arg)
    return result


def Max(*args):
    """Elementwise maximum, scalar-safe (see :func:`Min`)."""
    result = args[0]
    for arg in args[1:]:
        result = np.maximum(result, arg)
    return result


def make_slice(a: int, c: int, lo: int, hi: int, st: int) -> slice:
    """Slice for the affine index ``a*p + c`` as ``p`` ranges over
    ``lo..hi`` (inclusive) with step ``st``.

    Indices are domain coordinates (nonnegative); an inclusive range whose
    end lies before its start — e.g. a triangular map dimension ``0:i`` at
    ``i == 0``, which arrives here as ``lo=0, hi=-1`` — is *empty*.  The
    inclusive→exclusive stop conversion must not let a boundary cross zero,
    where NumPy reinterprets it as a from-the-end index:

    * empty range: return an explicitly empty slice — naively converting
      ``hi=-2`` gives ``slice(0, -1)``, which selects almost everything;
    * descending to index 0: the exclusive stop of inclusive 0 is ``-1``,
      which wraps to the array's end — use ``None``.
    """
    start = a * lo + c
    stop = a * hi + c
    step = a * st
    if step > 0:
        if stop < start:
            return slice(0, 0, 1)
        return slice(start, stop + 1, step)
    if stop > start:
        return slice(0, 0, 1)
    return slice(start, None if stop == 0 else stop - 1, step)


def dim_length(lo: int, hi: int, st: int) -> int:
    """Number of iterations of an inclusive symbolic range.

    Zero-trip ranges (e.g. a triangular dimension ``0:i`` at ``i == 0``,
    arriving as ``lo=0, hi=-1``) must clamp to 0: the raw formula goes
    negative, and a negative extent poisons downstream broadcast shapes.
    """
    return max(0, (hi - lo) // st + 1)


def align_axes(view: np.ndarray, axes: Sequence[int], k: int) -> np.ndarray:
    """Align *view*, whose dimensions correspond to map parameters ``axes``
    (in that order), to the canonical k-axis parameter space.

    Missing parameters become broadcast (size-1) axes.
    """
    axes = list(axes)
    if len(axes) != view.ndim:
        raise ValueError(
            f"axis mapping {axes} does not match view rank {view.ndim}")
    order = sorted(range(len(axes)), key=lambda i: axes[i])
    if order != list(range(len(axes))):
        view = view.transpose(order)
        axes = [axes[i] for i in order]
    indexer: list = []
    pos = 0
    for axis in range(k):
        if pos < len(axes) and axes[pos] == axis:
            indexer.append(slice(None))
            pos += 1
        else:
            indexer.append(None)
    return view[tuple(indexer)]


def reduce_ufunc(wcr: str) -> np.ufunc:
    from ..runtime.wcr import WCR_UFUNC

    return WCR_UFUNC[wcr]


def store_aligned(dst: np.ndarray, idx: Tuple, value: np.ndarray,
                  axes: Sequence[int], shape: Tuple[int, ...]) -> None:
    """Store a canonical-param-space value into ``dst[idx]`` whose
    non-constant output dims correspond to parameters *axes* in order."""
    value = np.broadcast_to(value, shape)
    perm = list(axes)
    if perm != sorted(perm):
        # canonical -> output order
        value = value.transpose(perm)
    target = dst[idx]
    if value.shape != target.shape:
        if value.size != target.size:
            raise ValueError(
                f"store_aligned: value shape {value.shape} incompatible "
                f"with target shape {target.shape} (axes={perm})")
        value = value.reshape(target.shape)
    dst[idx] = value


def _inverse_to(axes: Sequence[int]) -> Sequence[int]:
    """Permutation taking canonical (sorted) axis order to *axes* order."""
    sorted_axes = sorted(axes)
    return [sorted_axes.index(a) for a in axes]


def wcr_store(dst: np.ndarray, idx: Tuple, value: np.ndarray, wcr: str,
              out_axes: Sequence[int], shape: Tuple[int, ...]) -> None:
    """Reduce a canonical-param-space value over the axes absent from
    ``out_axes`` and combine into ``dst[idx]`` with the WCR function."""
    k = len(shape)
    value = np.broadcast_to(value, shape)
    missing = tuple(a for a in range(k) if a not in out_axes)
    ufunc = reduce_ufunc(wcr)
    reduced = value
    for axis in sorted(missing, reverse=True):
        reduced = ufunc.reduce(reduced, axis=axis)
    if list(out_axes) != sorted(out_axes):
        reduced = reduced.transpose(_inverse_to(list(out_axes)))
    target = dst[idx]
    if hasattr(target, "shape") and hasattr(reduced, "shape") \
            and reduced.shape != target.shape:
        reduced = reduced.reshape(target.shape)
    dst[idx] = ufunc(target, reduced)
