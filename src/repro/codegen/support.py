"""Runtime helpers imported by generated modules.

Generated code turns symbolic memlets into NumPy views at runtime; these
helpers build slices from affine index maps and align view axes with the
map-parameter space so fused scopes evaluate as single vectorized
expressions.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["make_slice", "align_axes", "dim_length", "Min", "Max", "reduce_ufunc"]


def Min(*args):
    return min(args)


def Max(*args):
    return max(args)


def make_slice(a: int, c: int, lo: int, hi: int, st: int) -> slice:
    """Slice for the affine index ``a*p + c`` as ``p`` ranges over
    ``lo..hi`` (inclusive) with step ``st``."""
    start = a * lo + c
    stop = a * hi + c
    step = a * st
    if step > 0:
        return slice(start, stop + 1, step)
    return slice(start, stop - 1 if stop > 0 else None, step)


def dim_length(lo: int, hi: int, st: int) -> int:
    """Number of iterations of an inclusive symbolic range."""
    return (hi - lo) // st + 1


def align_axes(view: np.ndarray, axes: Sequence[int], k: int) -> np.ndarray:
    """Align *view*, whose dimensions correspond to map parameters ``axes``
    (in that order), to the canonical k-axis parameter space.

    Missing parameters become broadcast (size-1) axes.
    """
    axes = list(axes)
    if len(axes) != view.ndim:
        raise ValueError(
            f"axis mapping {axes} does not match view rank {view.ndim}")
    order = sorted(range(len(axes)), key=lambda i: axes[i])
    if order != list(range(len(axes))):
        view = view.transpose(order)
        axes = [axes[i] for i in order]
    indexer: list = []
    pos = 0
    for axis in range(k):
        if pos < len(axes) and axes[pos] == axis:
            indexer.append(slice(None))
            pos += 1
        else:
            indexer.append(None)
    return view[tuple(indexer)]


def reduce_ufunc(wcr: str) -> np.ufunc:
    from ..runtime.wcr import WCR_UFUNC

    return WCR_UFUNC[wcr]


def store_aligned(dst: np.ndarray, idx: Tuple, value: np.ndarray,
                  axes: Sequence[int], shape: Tuple[int, ...]) -> None:
    """Store a canonical-param-space value into ``dst[idx]`` whose
    non-constant output dims correspond to parameters *axes* in order."""
    value = np.broadcast_to(value, shape)
    perm = list(axes)
    if perm != sorted(perm):
        # canonical -> output order
        value = value.transpose(_inverse_to(perm))
    elif value.ndim != len(perm):
        pass
    target = dst[idx]
    if value.shape != target.shape:
        value = value.reshape(target.shape)
    dst[idx] = value


def _inverse_to(axes: Sequence[int]) -> Sequence[int]:
    """Permutation taking canonical (sorted) axis order to *axes* order."""
    sorted_axes = sorted(axes)
    return [sorted_axes.index(a) for a in axes]


def wcr_store(dst: np.ndarray, idx: Tuple, value: np.ndarray, wcr: str,
              out_axes: Sequence[int], shape: Tuple[int, ...]) -> None:
    """Reduce a canonical-param-space value over the axes absent from
    ``out_axes`` and combine into ``dst[idx]`` with the WCR function."""
    k = len(shape)
    value = np.broadcast_to(value, shape)
    missing = tuple(a for a in range(k) if a not in out_axes)
    ufunc = reduce_ufunc(wcr)
    reduced = value
    for axis in sorted(missing, reverse=True):
        reduced = ufunc.reduce(reduced, axis=axis)
    if list(out_axes) != sorted(out_axes):
        reduced = reduced.transpose(_inverse_to(list(out_axes)))
    target = dst[idx]
    if hasattr(target, "shape") and hasattr(reduced, "shape") \
            and reduced.shape != target.shape:
        reduced = reduced.reshape(target.shape)
    dst[idx] = ufunc(target, reduced)
