"""SDFG -> specialized Python module generation (the CPU backend, §3.3).

Where the paper's CPU backend emits C++, this backend emits a specialized
Python module: map scopes whose memlets are affine in the map parameters
become *vectorized NumPy expressions over views* (so fused scopes execute as
single array statements with no interpreter-per-element overhead), and
everything else falls back to the reference interpreter at node granularity.

The generated source is kept on the CompiledSDFG for inspection — it plays
the role of the generated .cpp file.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..ir.data import Array, Scalar, Stream
from ..ir.memlet import Memlet
from ..ir.nodes import (
    AccessNode,
    LibraryNode,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    ScheduleType,
    Tasklet,
)
from ..symbolic import Expr, Integer, Range, definitely_eq
from .support import (Max, Min, align_axes, dim_length, make_slice,
                      store_aligned, wcr_store)

__all__ = ["generate_module", "generate_payload", "rehydrate_module",
           "affine_decompose"]


def affine_decompose(expr: Expr, params: Sequence[str]):
    """Decompose an index expression as ``a * p + c`` for a single map
    parameter ``p``.

    Returns ``(None, None, expr)`` for parameter-free expressions,
    ``(p, a, c)`` for affine single-parameter expressions, and None when the
    expression is not affine in exactly one parameter.
    """
    from ..symbolic import Symbol, sympify

    free = {s.name for s in expr.free_symbols} & set(params)
    if not free:
        return (None, None, expr)
    if len(free) > 1:
        return None
    param = next(iter(free))
    c = expr.subs({param: 0})
    a = expr.subs({param: 1}) - c
    # linearity check by reconstruction
    reconstructed = a * Symbol(param, nonnegative=False) + c
    if reconstructed != expr:
        return None
    if a.free_symbols & {Symbol(p, nonnegative=False) for p in params}:
        return None
    if c.free_symbols & {Symbol(p, nonnegative=False) for p in params}:
        return None
    return (param, a, c)


# ---------------------------------------------------------------------------
# Tasklet code analysis / rewriting
# ---------------------------------------------------------------------------

_VECTOR_OK_NODES = (
    ast.Module, ast.Assign, ast.Expr, ast.Name, ast.Constant, ast.BinOp,
    ast.UnaryOp, ast.Compare, ast.BoolOp, ast.IfExp, ast.Call, ast.Attribute,
    ast.Load, ast.Store, ast.Tuple,
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.BitAnd, ast.BitOr, ast.BitXor, ast.LShift, ast.RShift,
    ast.USub, ast.UAdd, ast.Invert, ast.Not,
    ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq, ast.And, ast.Or,
)


def _vectorizable_code(code: str) -> Optional[ast.Module]:
    """Parse tasklet code; return the AST if every statement is a simple
    assignment of a vectorizable expression."""
    try:
        tree = ast.parse(code)
    except SyntaxError:
        return None
    for node in ast.walk(tree):
        if not isinstance(node, _VECTOR_OK_NODES):
            return None
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                return None
        if isinstance(node, ast.Attribute):
            # only module-attribute function references (np.xxx)
            if not isinstance(node.value, ast.Name):
                return None
    return tree


class _VectorRewrite(ast.NodeTransformer):
    """Rename connectors/locals and map scalar constructs to NumPy ones."""

    def __init__(self, rename: Dict[str, str]):
        self.rename = rename

    def visit_Name(self, node: ast.Name):
        if node.id in self.rename:
            return ast.copy_location(
                ast.Name(id=self.rename[node.id], ctx=node.ctx), node)
        return node

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if isinstance(node.func, ast.Name):
            if node.func.id == "min":
                return _nest_binary("np.minimum", node.args, node)
            if node.func.id == "max":
                return _nest_binary("np.maximum", node.args, node)
            if node.func.id == "abs":
                node.func = _dotted("np.abs")
        return node

    def visit_IfExp(self, node: ast.IfExp):
        self.generic_visit(node)
        return ast.copy_location(
            ast.Call(func=_dotted("np.where"),
                     args=[node.test, node.body, node.orelse], keywords=[]),
            node)

    def visit_BoolOp(self, node: ast.BoolOp):
        self.generic_visit(node)
        func = "np.logical_and" if isinstance(node.op, ast.And) else "np.logical_or"
        return _nest_binary(func, node.values, node)

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not):
            return ast.copy_location(
                ast.Call(func=_dotted("np.logical_not"), args=[node.operand],
                         keywords=[]), node)
        return node


def _dotted(path: str) -> ast.expr:
    parts = path.split(".")
    node: ast.expr = ast.Name(id=parts[0], ctx=ast.Load())
    for attr in parts[1:]:
        node = ast.Attribute(value=node, attr=attr, ctx=ast.Load())
    return node


def _nest_binary(func: str, args: List[ast.expr], origin) -> ast.expr:
    result = args[0]
    for arg in args[1:]:
        result = ast.Call(func=_dotted(func), args=[result, arg], keywords=[])
    return ast.copy_location(result, origin)


class _ScalarRewrite(ast.NodeTransformer):
    """Rename connectors/locals in scalar (inline) tasklet code."""

    def __init__(self, rename: Dict[str, str]):
        self.rename = rename

    def visit_Name(self, node: ast.Name):
        if node.id in self.rename:
            return ast.copy_location(
                ast.Name(id=self.rename[node.id], ctx=node.ctx), node)
        return node


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------

class _Generator:
    def __init__(self, sdfg, instrument: bool = False, sanitize: bool = False):
        self.sdfg = sdfg
        self.instrument = instrument
        self.sanitize = sanitize
        self.lines: List[str] = []
        self.closures: Dict[str, object] = {}
        #: closure name -> (state, node) behind each interpreter-fallback
        #: runner, so a cached module can rebuild them after rehydration
        self.closure_nodes: Dict[str, tuple] = {}
        self._uid = 0
        self._indent = 2

    def uid(self) -> int:
        self._uid += 1
        return self._uid

    def emit(self, text: str) -> None:
        self.lines.append("    " * self._indent + text)

    # ------------------------------------------------------------ helpers
    def expr_code(self, expr: Expr) -> str:
        return f"({expr})"

    def subset_slices_code(self, subset: Range, desc) -> str:
        """Python tuple-of-slices code for a symbolic subset."""
        if isinstance(desc, Scalar):
            return "(slice(0, 1, 1),)"
        dims = []
        for begin, end, step in subset.dims:
            if all(isinstance(x, Integer) for x in (begin, end, step)):
                # constant dims: bake the slice (make_slice handles empty
                # ranges and descending steps; a naive `end + 1` stop is
                # wrong for both)
                s = make_slice(1, 0, begin.value, end.value, step.value)
                dims.append(f"slice({s.start}, {s.stop}, {s.step})")
            else:
                dims.append(f"make_slice(1, 0, ({begin}), ({end}), ({step}))")
        return "(" + ", ".join(dims) + ("," if len(dims) == 1 else "") + ")"

    def _memlet_index_code(self, memlet: Memlet) -> str:
        desc = self.sdfg.arrays[memlet.data]
        if isinstance(desc, Scalar):
            return "(0,)"
        return self.subset_slices_code(memlet.subset, desc)

    def emit_read_guard(self, memlet: Memlet) -> None:
        """Sanitizer bounds check before a top-level memlet read."""
        if not self.sanitize or memlet.subset is None:
            return
        if isinstance(self.sdfg.arrays.get(memlet.data), (Scalar, Stream)):
            return
        self.emit(f"__guard_read({memlet.data!r}, {memlet.data}, "
                  f"{self._memlet_index_code(memlet)})")

    def emit_write_guard(self, memlet: Memlet, value_code: str) -> None:
        """Sanitizer bounds + NaN/Inf check before a top-level memlet write."""
        if not self.sanitize:
            return
        desc = self.sdfg.arrays.get(memlet.data)
        if desc is None or isinstance(desc, Stream):
            return
        if memlet.subset is None and not isinstance(desc, Scalar):
            return
        self.emit(f"__guard_write({memlet.data!r}, {memlet.data}, "
                  f"{self._memlet_index_code(memlet)}, {value_code})")

    def read_code(self, memlet: Memlet) -> str:
        """Expression reading a memlet in scalar (top-level) context."""
        desc = self.sdfg.arrays[memlet.data]
        if isinstance(desc, Scalar):
            return f"{memlet.data}[0]"
        if memlet.subset.is_point() is True and not memlet.dynamic:
            idx = ", ".join(f"({b})" for b, _e, _s in memlet.subset.dims)
            return f"{memlet.data}[{idx}]"
        if memlet.subset == Range.from_shape(desc.shape) and not memlet.squeeze:
            return memlet.data
        view = f"{memlet.data}[{self.subset_slices_code(memlet.subset, desc)}]"
        if memlet.squeeze:
            view = f"np.squeeze({view}, axis={memlet.squeeze})"
        return view

    def write_stmt(self, memlet: Memlet, value_code: str) -> str:
        desc = self.sdfg.arrays[memlet.data]
        if isinstance(desc, Scalar):
            target = f"{memlet.data}[0]"
        elif memlet.subset.is_point() is True and not memlet.dynamic:
            idx = ", ".join(f"({b})" for b, _e, _s in memlet.subset.dims)
            target = f"{memlet.data}[{idx}]"
        elif memlet.subset == Range.from_shape(desc.shape) and memlet.dynamic:
            # dynamic whole-array connector: code mutated the view in place
            return f"pass  # dynamic write-back of {memlet.data}"
        else:
            target = f"{memlet.data}[{self.subset_slices_code(memlet.subset, desc)}]"
        if memlet.wcr == "sum":
            return f"{target} += {value_code}"
        if memlet.wcr == "prod":
            return f"{target} *= {value_code}"
        if memlet.wcr == "min":
            return f"{target} = min({target}, {value_code})"
        if memlet.wcr == "max":
            return f"{target} = max({target}, {value_code})"
        if memlet.wcr:
            return f"{target} = ({target}) and ({value_code})" \
                if memlet.wcr == "logical_and" \
                else f"{target} = ({target}) or ({value_code})"
        return f"{target} = {value_code}"

    # ------------------------------------------------------ fallback closures
    def node_fallback(self, state, node) -> None:
        """Emit a call into the reference interpreter for one node."""
        name = f"__node{self.uid()}"
        self.closures[name] = _make_node_runner(self.sdfg, state, node)
        self.closure_nodes[name] = (state, node)
        self.emit(f"{name}(__c, locals())")

    # ------------------------------------------------------------ tasklets
    def emit_tasklet_inline(self, state, node: Tasklet) -> None:
        tid = self.uid()
        rename: Dict[str, str] = {}
        for edge in state.in_edges(node):
            if edge.memlet.is_empty() or edge.dst_conn is None:
                continue
            var = f"__t{tid}_{edge.dst_conn}"
            rename[edge.dst_conn] = var
            self.emit_read_guard(edge.memlet)
            self.emit(f"{var} = {self.read_code(edge.memlet)}")
        out_vars = {}
        for edge in state.out_edges(node):
            if edge.memlet.is_empty() or edge.src_conn is None:
                continue
            var = f"__t{tid}_{edge.src_conn}"
            rename.setdefault(edge.src_conn, var)
            out_vars[edge.src_conn] = rename[edge.src_conn]
        # rename locals too (avoid collisions across tasklets)
        tree = ast.parse(node.code)
        local_names = set()
        for sub in ast.walk(tree):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                local_names.add(sub.id)
            if isinstance(sub, ast.For):
                for t in ast.walk(sub.target):
                    if isinstance(t, ast.Name):
                        local_names.add(t.id)
        for name in local_names:
            rename.setdefault(name, f"__t{tid}_{name}")
        tree = _ScalarRewrite(rename).visit(tree)
        ast.fix_missing_locations(tree)
        for stmt in tree.body:
            for line in ast.unparse(stmt).splitlines():
                self.emit(line)
        for edge in state.out_edges(node):
            if edge.memlet.is_empty() or edge.src_conn is None:
                continue
            self.emit_write_guard(edge.memlet, out_vars[edge.src_conn])
            self.emit(self.write_stmt(edge.memlet, out_vars[edge.src_conn]))

    def _tasklet_inlineable(self, state, node: Tasklet) -> bool:
        for edge in list(state.in_edges(node)) + list(state.out_edges(node)):
            if edge.memlet.is_empty():
                continue
            desc = self.sdfg.arrays.get(edge.memlet.data)
            if desc is None or isinstance(desc, Stream):
                return False
            if edge.memlet.subset is not None \
                    and any(s.name.startswith("__")
                            and s.name not in self.sdfg.symbols
                            for s in edge.memlet.free_symbols):
                # references map parameters: not a top-level tasklet
                return False
        try:
            ast.parse(node.code)
        except SyntaxError:
            return False
        return True

    # ------------------------------------------------------------ map scopes
    def emit_scope(self, state, entry: MapEntry) -> None:
        if self.instrument:
            # only the vectorized path gets a generated timer: the fallback
            # path runs through the interpreter, whose own map hook records
            # the scope (avoiding a double count)
            uid = self.uid()
            name = entry.map.label or ",".join(entry.map.params)
            self.emit(f"__mt{uid} = __prof_now()")
            if self._try_vector_scope(state, entry):
                self.emit(f"__prof_add('map', {name!r}, "
                          f"__prof_now() - __mt{uid})")
            else:
                self.lines.pop()  # drop the unused timer start
                self.node_fallback(state, entry)
            return
        if not self._try_vector_scope(state, entry):
            self.node_fallback(state, entry)

    def _try_vector_scope(self, state, entry: MapEntry) -> bool:
        params = list(entry.map.params)
        k = len(params)
        exit_ = entry.exit_node
        body = [n for n in state.scope_children(entry) if n is not exit_]
        for node in body:
            if isinstance(node, Tasklet):
                continue
            if isinstance(node, AccessNode):
                desc = self.sdfg.arrays.get(node.data)
                if desc is None or not desc.transient or isinstance(desc, Stream):
                    return False
                continue
            return False  # nested maps, libraries, nested SDFGs

    # analysis of all scope memlets ------------------------------------
        plans: Dict[int, Dict] = {}
        for node in body:
            if not isinstance(node, Tasklet):
                continue
            tree = _vectorizable_code(node.code)
            if tree is None:
                return False
            # code referencing map parameters by name (e.g. index-dependent
            # arithmetic) cannot become a closed-form view expression
            code_names = {n.id for n in ast.walk(tree)
                          if isinstance(n, ast.Name)}
            if code_names & set(params):
                return False
            in_plan = {}
            for edge in state.in_edges(node):
                if edge.memlet.is_empty():
                    continue
                if edge.dst_conn is None:
                    return False
                src = edge.src
                if src is entry:
                    plan = self._view_plan(edge.memlet, params)
                    if plan is None:
                        return False
                    in_plan[edge.dst_conn] = ("view", plan)
                elif isinstance(src, AccessNode):
                    in_plan[edge.dst_conn] = ("local", src.data)
                elif isinstance(src, Tasklet):
                    in_plan[edge.dst_conn] = ("wire", (src, edge.src_conn))
                else:
                    return False
            out_plan = {}
            for edge in state.out_edges(node):
                if edge.memlet.is_empty():
                    continue
                if edge.src_conn is None:
                    return False
                dst = edge.dst
                if dst is exit_:
                    plan = self._store_plan(edge.memlet, params)
                    if plan is None:
                        return False
                    out_plan.setdefault(edge.src_conn, []).append(("store", plan))
                elif isinstance(dst, AccessNode):
                    out_plan.setdefault(edge.src_conn, []).append(("local", dst.data))
                elif isinstance(dst, Tasklet):
                    out_plan.setdefault(edge.src_conn, []).append(("wire", None))
                else:
                    return False
            plans[id(node)] = {"tree": tree, "in": in_plan, "out": out_plan}
        # access-node pass-throughs inside the scope must be point-like
        for node in body:
            if isinstance(node, AccessNode):
                for edge in list(state.in_edges(node)) + list(state.out_edges(node)):
                    if edge.memlet.is_empty():
                        continue
                    if edge.memlet.dynamic:
                        return False

        # cross-store alias analysis: several stores into the same container
        # (through different connectors or tasklets) are only vectorizable
        # when element-wise execution order cannot matter.  The serial
        # semantics interleave the stores per iteration; the vectorized form
        # runs each store over the whole range, so aliasing subsets (e.g.
        # A[i] and A[i+1]) would become last-writer-wins.
        stores_by_data: Dict[str, List] = {}
        for plan in plans.values():
            for actions in plan["out"].values():
                for kind, payload in actions:
                    if kind == "store":
                        stores_by_data.setdefault(payload[0], []).append(payload)
        for data, plist in stores_by_data.items():
            if len(plist) < 2:
                continue
            wcrs = {p[4] for p in plist}
            if None not in wcrs and len(wcrs) == 1:
                continue  # all the same commutative WCR: order-free
            shapes = {(p[1], str(p[2]), tuple(p[3])) for p in plist}
            if len(shapes) == 1 and len(plist[0][3]) == k:
                # identical full-rank subsets: each element is touched by
                # exactly one iteration per store, in emission (= serial)
                # order — no cross-iteration aliasing possible
                continue
            return False

        # conflicted WCR stores under a CPU_Multicore schedule: the store
        # subset does not partition with the outermost parameter (scalar
        # accumulators, reductions over axis 0), so concurrent chunks must
        # accumulate into private identity-initialized buffers merged after
        # the join (see runtime.parallel).  Everything else writes the real
        # containers: race-free scheduling makes chunk writes disjoint.
        parallel = (entry.map.schedule == ScheduleType.CPU_Multicore
                    and k >= 1)
        conflicted: Dict[str, str] = {}
        if parallel:
            for data, plist in stores_by_data.items():
                for p in plist:
                    if p[4] is not None and (p[1] == "scalar" or 0 not in p[3]):
                        conflicted[data] = p[4]

        # ------------------------------------------------------- emission
        sid = self.uid()
        for i, (b, e, s) in enumerate(entry.map.range.dims):
            self.emit(f"__b{i}_{sid} = ({b}); __e{i}_{sid} = ({e}); "
                      f"__s{i}_{sid} = ({s})")
        target_map: Dict[str, str] = {}
        if parallel:
            # the scope body becomes a chunk function: the outermost bounds
            # are parameters (shadowing the outer names, so every make_slice
            # on axis 0 selects the chunk's span) and conflicted WCR stores
            # retarget to the per-chunk accumulator dict
            acc_var = f"__par_acc{sid}"
            target_map = {data: f"{acc_var}[{data!r}]" for data in conflicted}
            self.emit(f"def __par_body{sid}(__b0_{sid}, __e0_{sid}, "
                      f"{acc_var}):")
            self._indent += 1
        shape_var = f"__shape{sid}"
        dims = ", ".join(f"dim_length(__b{i}_{sid}, __e{i}_{sid}, __s{i}_{sid})"
                         for i in range(k))
        self.emit(f"{shape_var} = ({dims}{',' if k == 1 else ''})")
        # guard: empty iteration spaces skip the whole scope
        self.emit(f"if 0 not in {shape_var}:")
        self._indent += 1

        local_vars: Dict[str, str] = {}    # scope transient -> value var
        wire_vars: Dict[Tuple[int, str], str] = {}

        for node in self._scope_topo(state, entry, body):
            if isinstance(node, AccessNode):
                continue
            plan = plans[id(node)]
            tid = self.uid()
            rename: Dict[str, str] = {}
            for conn, (kind, payload) in plan["in"].items():
                var = f"__v{tid}_{conn}"
                if kind == "view":
                    if self.sanitize and payload[1] != "scalar":
                        self.emit(f"__guard_read({payload[0]!r}, {payload[0]}, "
                                  f"{self._plan_index_code(payload, sid)})")
                    self.emit(f"{var} = {self._view_code(payload, sid, k)}")
                elif kind == "local":
                    src_var = local_vars.get(payload)
                    if src_var is None:
                        self.emit(f"pass  # uninitialized scope transient {payload}")
                        src_var = "0"
                    var = src_var
                else:  # wire
                    var = wire_vars[(id(payload[0]), payload[1])]
                rename[conn] = var
            out_names = {}
            for conn in plan["out"]:
                out_var = f"__o{tid}_{conn}"
                rename[conn] = out_var
                out_names[conn] = out_var
            # locals
            tree = ast.parse(ast.unparse(plan["tree"]))
            for sub in ast.walk(tree):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store) \
                        and sub.id not in rename:
                    rename[sub.id] = f"__l{tid}_{sub.id}"
            tree = _VectorRewrite(rename).visit(tree)
            ast.fix_missing_locations(tree)
            for stmt in tree.body:
                self.emit(ast.unparse(stmt))
            for conn, actions in plan["out"].items():
                for kind, payload in actions:
                    if kind == "store":
                        if self.sanitize:
                            self.emit(f"__guard_write({payload[0]!r}, "
                                      f"{payload[0]}, "
                                      f"{self._plan_index_code(payload, sid)}, "
                                      f"{out_names[conn]})")
                        self.emit(self._store_code(
                            payload, out_names[conn], sid, k, shape_var,
                            target=target_map.get(payload[0])))
                    elif kind == "local":
                        local_vars[payload] = out_names[conn]
                    # wires resolved by consumers
            for conn in plan["out"]:
                wire_vars[(id(node), conn)] = out_names[conn]

        self._indent -= 1
        if parallel:
            self._indent -= 1  # close the chunk-function def
            from ..runtime.perfmodel import tasklet_flops

            flops = sum(tasklet_flops(n.code) for n in body
                        if isinstance(n, Tasklet)) or 1
            inner = " * ".join(
                f"dim_length(__b{i}_{sid}, __e{i}_{sid}, __s{i}_{sid})"
                for i in range(1, k)) or "1"
            spec = "{" + ", ".join(f"{d!r}: ({d}, {w!r})"
                                   for d, w in sorted(conflicted.items())) + "}"
            label = entry.map.label or ",".join(params)
            self.emit(f"__par_map(__par_body{sid}, __b0_{sid}, __e0_{sid}, "
                      f"__s0_{sid}, ({flops}) * ({inner}), {spec}, {label!r})")
        return True

    def _scope_topo(self, state, entry, body) -> List[Node]:
        order = []
        body_set = set(body)
        for node in state.topological_nodes():
            if node in body_set:
                order.append(node)
        return order

    def _view_plan(self, memlet: Memlet, params: List[str]):
        if memlet.dynamic:
            return None
        desc = self.sdfg.arrays[memlet.data]
        if isinstance(desc, Stream):
            return None
        if isinstance(desc, Scalar):
            return (memlet.data, "scalar", [], [])
        dim_plans = []
        axes = []
        seen_params = set()
        for begin, end, step in memlet.subset.dims:
            if definitely_eq(begin, end) is True:
                dec = affine_decompose(begin, params)
                if dec is None:
                    return None
                param, a, c = dec
                if param is None:
                    dim_plans.append(("const", begin))
                else:
                    if param in seen_params:
                        return None
                    seen_params.add(param)
                    dim_plans.append(("affine", param, a, c))
                    axes.append(params.index(param))
            else:
                # range dims (array-valued connector): not vectorizable here
                return None
        return (memlet.data, "array", dim_plans, axes)

    def _plan_parts(self, dim_plans, axes, sid: int) -> List[str]:
        """Per-dimension index expressions shared by views, stores, and the
        sanitizer guards.  ``axes[i]`` is the canonical parameter index of
        the i-th affine dim."""
        parts = []
        affine_i = 0
        for dp in dim_plans:
            if dp[0] == "const":
                parts.append(f"({dp[1]})")
            else:
                _, param, a, c = dp
                j = axes[affine_i]
                affine_i += 1
                parts.append(f"make_slice(({a}), ({c}), __b{j}_{sid}, "
                             f"__e{j}_{sid}, __s{j}_{sid})")
        return parts

    def _plan_index_code(self, plan, sid: int) -> str:
        dim_plans, axes = plan[2], plan[3]
        if plan[1] == "scalar":
            return "(0,)"
        parts = self._plan_parts(dim_plans, axes, sid)
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    def _view_code(self, plan, sid: int, k: int) -> str:
        data, kind, dim_plans, axes = plan
        if kind == "scalar":
            return f"{data}[0]"
        parts = self._plan_parts(dim_plans, axes, sid)
        view = f"{data}[{', '.join(parts)}{',' if len(parts) == 1 else ''}]" \
            if parts else data
        if axes == list(range(k)):
            return view
        return f"align_axes({view}, {tuple(axes)}, {k})"

    def _store_plan(self, memlet: Memlet, params: List[str]):
        if memlet.dynamic:
            return None
        desc = self.sdfg.arrays[memlet.data]
        if isinstance(desc, Stream):
            return None
        if isinstance(desc, Scalar):
            if memlet.wcr is None and params:
                return None  # every iteration overwrites a scalar: race
            return (memlet.data, "scalar", [], [], memlet.wcr)
        dim_plans = []
        axes = []
        seen = set()
        for begin, end, step in memlet.subset.dims:
            if definitely_eq(begin, end) is not True:
                return None
            dec = affine_decompose(begin, params)
            if dec is None:
                return None
            param, a, c = dec
            if param is None:
                dim_plans.append(("const", begin))
            else:
                if param in seen:
                    return None
                seen.add(param)
                dim_plans.append(("affine", param, a, c))
                axes.append(params.index(param))
        if memlet.wcr is None and len(axes) != len(params):
            return None  # overwrite race on missing parameters
        return (memlet.data, "array", dim_plans, axes, memlet.wcr)

    def _store_code(self, plan, value_var: str, sid: int, k: int,
                    shape_var: str, target: Optional[str] = None) -> str:
        data, kind, dim_plans, axes, wcr = plan
        dst = target or data
        if kind == "scalar":
            idx = "(0,)"
            if wcr is None:
                return f"{dst}[0] = np.broadcast_to({value_var}, ()).item() " \
                       f"if np.ndim({value_var}) else {value_var}"
            return (f"wcr_store({dst}, {idx}, {value_var}, {wcr!r}, (), "
                    f"{shape_var})")
        parts = self._plan_parts(dim_plans, axes, sid)
        idx = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
        if wcr is None:
            return (f"store_aligned({dst}, {idx}, {value_var}, {tuple(axes)}, "
                    f"{shape_var})")
        return (f"wcr_store({dst}, {idx}, {value_var}, {wcr!r}, {tuple(axes)}, "
                f"{shape_var})")

    # ------------------------------------------------------------- copies
    def emit_copy(self, state, edge) -> None:
        src_desc = self.sdfg.arrays[edge.src.data]
        dst_desc = self.sdfg.arrays[edge.dst.data]
        if isinstance(src_desc, Stream) or isinstance(dst_desc, Stream):
            self.node_fallback(state, edge.dst)
            return
        memlet = edge.memlet
        if memlet.data == edge.src.data:
            src_subset, dst_subset = memlet.subset, memlet.other_subset
        else:
            src_subset, dst_subset = memlet.other_subset, memlet.subset
        src_code = (f"{edge.src.data}[{self.subset_slices_code(src_subset, src_desc)}]"
                    if src_subset is not None else edge.src.data)
        dst_code = (f"{edge.dst.data}[{self.subset_slices_code(dst_subset, dst_desc)}]"
                    if dst_subset is not None else edge.dst.data)
        uid = self.uid()
        if self.sanitize:
            if src_subset is not None and not isinstance(src_desc, Scalar):
                self.emit(f"__guard_read({edge.src.data!r}, {edge.src.data}, "
                          f"{self.subset_slices_code(src_subset, src_desc)})")
            if dst_subset is not None and not isinstance(dst_desc, Scalar):
                self.emit(f"__guard_read({edge.dst.data!r}, {edge.dst.data}, "
                          f"{self.subset_slices_code(dst_subset, dst_desc)})")
        self.emit(f"__cp{uid} = np.asarray({src_code})")
        target = f"__dst{uid}"
        self.emit(f"{target} = {dst_code}")
        if memlet.wcr == "sum":
            self.emit(f"{dst_code} = {target} + __cp{uid}.reshape({target}.shape)")
        elif memlet.wcr:
            self.emit(f"{dst_code} = np.{ {'prod': 'multiply', 'min': 'minimum', 'max': 'maximum'}.get(memlet.wcr, 'add') }"
                      f"({target}, __cp{uid}.reshape({target}.shape))")
        else:
            self.emit(f"{dst_code} = __cp{uid}.reshape({target}.shape)")

    # ------------------------------------------------------------- states
    def emit_state(self, state) -> None:
        scope = state.scope_dict()
        for node in state.topological_nodes():
            if scope.get(node) is not None:
                continue  # handled by its scope
            if isinstance(node, MapExit):
                continue
            if isinstance(node, AccessNode):
                for edge in state.in_edges(node):
                    if isinstance(edge.src, AccessNode) and not edge.memlet.is_empty():
                        self.emit_copy(state, edge)
                continue
            if isinstance(node, Tasklet):
                if self._tasklet_inlineable(state, node):
                    self.emit_tasklet_inline(state, node)
                else:
                    self.node_fallback(state, node)
                continue
            if isinstance(node, MapEntry):
                self.emit_scope(state, node)
                continue
            if isinstance(node, (LibraryNode, NestedSDFG)):
                self.node_fallback(state, node)
                continue
            self.node_fallback(state, node)



def _deref_scalars(expression: str, sdfg) -> str:
    """Scalar containers referenced in interstate expressions read their
    single element (matching the interpreter's condition environment)."""
    import re as _re

    for name, desc in sdfg.arrays.items():
        if isinstance(desc, Scalar) and _re.search(rf"\b{_re.escape(name)}\b",
                                                   expression):
            expression = _re.sub(rf"\b{_re.escape(name)}\b(?!\[)",
                                 f"{name}[0]", expression)
    return expression


def _containers_in_state(state) -> set:
    names = set()
    for node in state.data_nodes():
        names.add(node.data)
    for edge in state.edges():
        if not edge.memlet.is_empty():
            names.add(edge.memlet.data)
    return names


def _build_scope_order(state):
    scope = state.scope_dict()
    order: Dict[Optional[MapEntry], List[Node]] = {}
    for node in state.topological_nodes():
        if isinstance(node, MapExit):
            continue
        order.setdefault(scope.get(node), []).append(node)
    return order


# ---------------------------------------------------------------------------
# Module assembly
# ---------------------------------------------------------------------------

def generate_payload(sdfg, instrument: bool = False, sanitize: bool = False,
                     govern: bool = False
                     ) -> Tuple[object, str, Dict[str, Tuple[int, int]]]:
    """Generate the specialized module for an SDFG.

    Returns ``(run_callable, source, closure_specs)``: the callable takes
    ``(containers, symbols)`` and executes the program; *closure_specs* maps
    interpreter-fallback closure names to positional ``(state, node)``
    indices so :func:`rehydrate_module` can rebuild the callable from cached
    source without re-generating it.

    With ``instrument=True`` the module carries per-state and per-map-scope
    timing hooks that report to :mod:`repro.instrumentation`; with
    ``sanitize=True`` it carries index-bounds and NaN/Inf guard calls that
    report to :mod:`repro.sanitizer.guards`; with ``govern=True`` it calls
    the governor's cooperative-cancellation ``__tick`` at every state
    boundary (deadline/cancel checks; :mod:`repro.governor.budget`).
    Without the flags the generated source is hook-free (the
    zero-overhead-when-off guarantee).
    """
    gen = _Generator(sdfg, instrument=instrument, sanitize=sanitize)
    states = sdfg.topological_states()
    index = {s: i for i, s in enumerate(states)}

    lines = gen.lines
    lines.append("def __run(__c, __s, __visits=None, __start=None):")
    lines.append("    if __visits is None: __visits = {}")
    # containers: transients with entry-known shapes allocate up front;
    # loop-symbol-dependent shapes (re)allocate in the states that use them.
    # A checkpoint resume passes pre-populated transients in __c — reuse
    # them instead of zero-allocating.
    dynamic_transients = set()
    entry_syms = set(sdfg.free_symbols)
    for name, desc in sdfg.arrays.items():
        if desc.transient:
            shape_syms = {s.name for s in desc.free_symbols}
            if shape_syms <= entry_syms:
                lines.append(
                    f"    {name} = __c[{name!r}] = ("
                    f"__c[{name!r}] if {name!r} in __c "
                    f"else __alloc({name!r}, __s))")
            else:
                dynamic_transients.add(name)
    for name, desc in sdfg.arrays.items():
        if not desc.transient:
            lines.append(f"    {name} = __c[{name!r}]")
    # registered symbols plus free ones that only appear in map ranges or
    # memlet subsets (never registered through a shape)
    for sym in sorted(set(sdfg.symbols) | set(sdfg.free_symbols)):
        lines.append(f"    if {sym!r} in __s: {sym} = __s[{sym!r}]")
    for name, value in sdfg.constants.items():
        lines.append(f"    {name} = __const[{name!r}]")

    lines.append(f"    __state = {index.get(sdfg.start_state, 0)} "
                 "if __start is None else __start")
    lines.append("    while __state >= 0:")
    # checkpoint/abort hook at every state boundary (a thread-local read
    # when no distributed checkpointer is installed; see resilience.hooks)
    lines.append("        __ckpt(__state, __c, __s)")
    if govern:
        # cooperative cancellation: deadline/cancel check per transition
        lines.append("        __tick(__state)")
    lines.append("        __visits[__state] = __visits.get(__state, 0) + 1")
    for state in states:
        si = index[state]
        lines.append(f"        if __state == {si}:  # {state.label}")
        gen._indent = 3
        if instrument:
            gen.emit(f"__st{si} = __prof_now()")
        start = len(lines)
        for name in sorted(_containers_in_state(state) & dynamic_transients):
            shape = ", ".join(f"({s})" for s in sdfg.arrays[name].shape)
            gen.emit(f"{name} = __c[{name!r}] = __alloc_shaped("
                     f"{name!r}, ({shape},))")
        gen.emit_state(state)
        if len(lines) == start:
            lines.append("            pass")
        if instrument:
            gen.emit(f"__prof_add('state', {state.label!r}, "
                     f"__prof_now() - __st{si})")
        # transitions (scalar containers are dereferenced to their value)
        out = sdfg.out_edges(state)
        out.sort(key=lambda e: e.data.is_unconditional())
        for isedge in out:
            cond = _deref_scalars(isedge.data.condition or "True", sdfg)
            lines.append(f"            if ({cond}):")
            for i, (k_, v_) in enumerate(isedge.data.assignments.items()):
                lines.append(
                    f"                __a{i} = ({_deref_scalars(v_, sdfg)})")
            for i, (k_, v_) in enumerate(isedge.data.assignments.items()):
                # write-through to the symbols dict keeps __s a faithful
                # image of the live loop symbols (checkpoint capture/resume)
                lines.append(f"                {k_} = __s[{k_!r}] = __a{i}")
            lines.append(f"                __state = {index[isedge.dst]}; continue")
        lines.append("            __state = -1; continue")

    source = "\n".join(lines) + "\n"
    run = _exec_module(sdfg, source, gen.closures, instrument=instrument,
                       sanitize=sanitize, govern=govern)
    return run, source, _closure_specs(sdfg, gen.closure_nodes)


def generate_module(sdfg, instrument: bool = False,
                    sanitize: bool = False,
                    govern: bool = False) -> Tuple[object, str]:
    """Generate the specialized module for an SDFG.

    Returns ``(run_callable, source)``; see :func:`generate_payload` for the
    variant that also reports the closure specification needed to cache the
    module on disk.
    """
    run, source, _ = generate_payload(sdfg, instrument=instrument,
                                      sanitize=sanitize, govern=govern)
    return run, source


def rehydrate_module(sdfg, source: str, closure_specs: Dict[str, Sequence[int]],
                     instrument: bool = False, sanitize: bool = False,
                     govern: bool = False):
    """Rebuild a module's ``run`` callable from cached *source* without
    re-running code generation.

    *sdfg* must be (a deserialized copy of) the SDFG the source was generated
    from; *closure_specs* maps interpreter-fallback closure names to
    ``(state_index, node_index)`` pairs (indices into ``sdfg.states()`` /
    ``state.nodes()``) recorded by :func:`generate_payload`.
    """
    closures: Dict[str, object] = {}
    states = sdfg.states()
    for name, (state_idx, node_idx) in (closure_specs or {}).items():
        state = states[state_idx]
        node = state.nodes()[node_idx]
        closures[name] = _make_node_runner(sdfg, state, node)
    return _exec_module(sdfg, source, closures, instrument=instrument,
                        sanitize=sanitize, govern=govern)


def _make_node_runner(sdfg, state, node):
    """An interpreter-fallback runner executing one node of one state."""
    from ..runtime import executor as ex

    def runner(containers, env, _state=state, _node=node):
        symbols = {k: v for k, v in env.items()
                   if isinstance(v, (int, np.integer)) and k not in sdfg.arrays}
        ctx = ex._Context(sdfg, containers, symbols)
        order = _build_scope_order(_state)
        ex._execute_level(ctx, _state, [_node], dict(symbols), order)

    return runner


def _closure_specs(sdfg, closure_nodes: Dict[str, tuple]) -> Dict[str, Tuple[int, int]]:
    """Positional (state_index, node_index) form of the fallback closures,
    stable across serialize/deserialize round-trips."""
    states = sdfg.states()
    state_index = {s: i for i, s in enumerate(states)}
    specs: Dict[str, Tuple[int, int]] = {}
    for name, (state, node) in closure_nodes.items():
        specs[name] = (state_index[state], state.nodes().index(node))
    return specs


def _exec_module(sdfg, source: str, closures: Dict[str, object],
                 instrument: bool, sanitize: bool, govern: bool = False):
    """Exec generated *source* in its execution namespace; return ``__run``."""
    import math as _math

    from ..resilience.hooks import state_boundary
    from ..runtime.executor import allocate_container
    from ..runtime.parallel import parallel_map

    namespace: Dict[str, object] = {
        "__ckpt": state_boundary,
        "__par_map": parallel_map,
        "np": np,
        "math": _math,
        "make_slice": make_slice,
        "align_axes": align_axes,
        "dim_length": dim_length,
        "store_aligned": store_aligned,
        "wcr_store": wcr_store,
        "Min": Min,
        "Max": Max,
        "__const": dict(sdfg.constants),
        "abs": abs, "min": min, "max": max, "int": int, "float": float,
        "bool": bool, "len": len, "range": range, "slice": slice,
    }
    namespace.update(closures)

    if instrument:
        import time as _time

        from .. import instrumentation as _instr

        def _prof_add(category, name, seconds):
            coll = _instr._ACTIVE
            if coll is not None:
                coll.add(category, name, seconds)

        namespace["__prof_now"] = _time.perf_counter
        namespace["__prof_add"] = _prof_add

    if sanitize:
        from ..sanitizer import guards as _sg

        namespace["__guard_read"] = _sg.guard_read
        namespace["__guard_write"] = _sg.guard_write

    if govern:
        from ..governor import budget as _gb

        labels = [s.label for s in sdfg.topological_states()]

        def _tick(i, _labels=labels):
            a = _gb.current()
            if a is not None:
                a.boundary(_labels[i] if 0 <= i < len(_labels)
                           else f"state{i}")

        namespace["__tick"] = _tick

    namespace["__alloc"] = lambda name, symbols: allocate_container(
        sdfg.arrays[name], symbols)

    def _alloc_shaped(name, shape):
        import numpy as _np

        desc = sdfg.arrays[name]
        return _np.zeros(tuple(int(s) for s in shape), dtype=desc.dtype.nptype)

    namespace["__alloc_shaped"] = _alloc_shaped
    compiled = compile(source, f"<sdfg {sdfg.name}>", "exec")
    exec(compiled, namespace)
    return namespace["__run"]
