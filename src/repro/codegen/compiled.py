"""Compiled SDFG artifacts (AOT compilation, §3.3).

A :class:`CompiledSDFG` bundles the generated specialized module with the
calling convention.  Compilation time (frontend + optimization already done
by the caller + module generation + ``compile()``) is recorded for the
paper's Fig. 6 experiment.

Construction has two paths: the cold path validates the SDFG and generates
the module, while :meth:`CompiledSDFG.from_cached` rehydrates ``_run`` from
cached source (see :mod:`repro.cache`) and skips both validation and code
generation — the graph was validated when the entry was created.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from .. import instrumentation
from ..runtime.executor import collect_return, prepare_arguments

__all__ = ["CompiledSDFG", "compile_sdfg"]


class CompiledSDFG:
    """An executable, specialized program generated from an SDFG.

    With ``instrument=True`` the generated module carries per-state and
    per-map timing hooks (reporting to :mod:`repro.instrumentation`); with
    ``sanitize=True`` it carries bounds/NaN guard calls (reporting to
    :mod:`repro.sanitizer.guards`); the default emits the unchanged
    hook-free module.
    """

    def __init__(self, sdfg, device: str = "CPU", instrument: bool = False,
                 sanitize: bool = False, govern: bool = False,
                 validate: bool = True):
        from .pygen import generate_payload

        self.sdfg = sdfg
        self.device = device
        self.instrumented = instrument
        self.sanitized = sanitize
        self.governed = govern
        #: True when rehydrated from the compilation cache
        self.from_cache = False
        coll = instrumentation._ACTIVE
        self.validate_seconds = 0.0
        if validate:
            start = time.perf_counter()
            sdfg.validate()
            self.validate_seconds = time.perf_counter() - start
            if coll is not None:
                coll.add("phase", "validate", self.validate_seconds)
        start = time.perf_counter()
        self._run, self.source, self.closure_specs = generate_payload(
            sdfg, instrument=instrument, sanitize=sanitize, govern=govern)
        self.codegen_seconds = time.perf_counter() - start
        if coll is not None:
            coll.add("phase", "codegen", self.codegen_seconds)
        #: state-index -> visit count from the most recent execution
        #: (consumed by the device performance models)
        self.last_state_visits: Dict[int, int] = {}
        self.last_symbols: Dict[str, int] = {}

    @classmethod
    def from_cached(cls, sdfg, run, source: str,
                    closure_specs: Optional[Dict[str, Tuple[int, int]]] = None,
                    device: str = "CPU", instrument: bool = False,
                    sanitize: bool = False,
                    govern: bool = False) -> "CompiledSDFG":
        """Wrap an already-rehydrated module (cache hit): no validation, no
        code generation."""
        obj = cls.__new__(cls)
        obj.sdfg = sdfg
        obj.device = device
        obj.instrumented = instrument
        obj.sanitized = sanitize
        obj.governed = govern
        obj.from_cache = True
        obj.validate_seconds = 0.0
        obj._run = run
        obj.source = source
        obj.closure_specs = dict(closure_specs or {})
        obj.codegen_seconds = 0.0
        obj.last_state_visits = {}
        obj.last_symbols = {}
        return obj

    def __call__(self, *args, **kwargs):
        containers, symbols = prepare_arguments(self.sdfg, args, kwargs)
        return self.run_prepared(containers, symbols)

    def run_prepared(self, containers: Dict, symbols: Dict,
                     start_state: Optional[int] = None):
        """Execute with already-bound containers/symbols, optionally resuming
        at a state-machine index (checkpoint/restart, DESIGN.md §10).

        ``start_state`` is an index into ``sdfg.topological_states()`` — the
        numbering the generated module and the distributed checkpointer
        share.  Containers may include pre-populated transients (restored
        from a snapshot); they are reused instead of zero-allocated.
        """
        visits: Dict[int, int] = {}
        self._run(containers, symbols, visits, start_state)
        self.last_state_visits = visits
        self.last_symbols = dict(symbols)
        return collect_return(self.sdfg, containers)

    def save_source(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.source)

    def __repr__(self) -> str:
        return f"CompiledSDFG({self.sdfg.name!r}, device={self.device})"


def compile_sdfg(sdfg, device: str = "CPU", instrument: bool = False,
                 sanitize: bool = False, govern: bool = False,
                 cache: Optional[bool] = None) -> CompiledSDFG:
    """Compile an SDFG into an executable specialized module.

    When the compilation cache is enabled (``cache.enabled``; override with
    the *cache* argument) the content-addressed cache is consulted first and
    a hit rehydrates the module from cached source instead of re-generating
    it (see :mod:`repro.cache`).
    """
    if cache is None:
        from ..config import Config

        cache = bool(Config.get("cache.enabled"))
    if cache:
        from ..cache import cached_compile

        return cached_compile(sdfg, device=device, instrument=instrument,
                              sanitize=sanitize, govern=govern)
    return CompiledSDFG(sdfg, device=device, instrument=instrument,
                        sanitize=sanitize, govern=govern)
