"""Compiled SDFG artifacts (AOT compilation, §3.3).

A :class:`CompiledSDFG` bundles the generated specialized module with the
calling convention.  Compilation time (frontend + optimization already done
by the caller + module generation + ``compile()``) is recorded for the
paper's Fig. 6 experiment.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .. import instrumentation
from ..runtime.executor import collect_return, prepare_arguments

__all__ = ["CompiledSDFG", "compile_sdfg"]


class CompiledSDFG:
    """An executable, specialized program generated from an SDFG.

    With ``instrument=True`` the generated module carries per-state and
    per-map timing hooks (reporting to :mod:`repro.instrumentation`); with
    ``sanitize=True`` it carries bounds/NaN guard calls (reporting to
    :mod:`repro.sanitizer.guards`); the default emits the unchanged
    hook-free module.
    """

    def __init__(self, sdfg, device: str = "CPU", instrument: bool = False,
                 sanitize: bool = False):
        from .pygen import generate_module

        self.sdfg = sdfg
        self.device = device
        self.instrumented = instrument
        self.sanitized = sanitize
        start = time.perf_counter()
        sdfg.validate()
        self._run, self.source = generate_module(sdfg, instrument=instrument,
                                                 sanitize=sanitize)
        self.codegen_seconds = time.perf_counter() - start
        coll = instrumentation._ACTIVE
        if coll is not None:
            coll.add("phase", "codegen", self.codegen_seconds)
        #: state-index -> visit count from the most recent execution
        #: (consumed by the device performance models)
        self.last_state_visits: Dict[int, int] = {}
        self.last_symbols: Dict[str, int] = {}

    def __call__(self, *args, **kwargs):
        containers, symbols = prepare_arguments(self.sdfg, args, kwargs)
        visits: Dict[int, int] = {}
        self._run(containers, symbols, visits)
        self.last_state_visits = visits
        self.last_symbols = dict(symbols)
        return collect_return(self.sdfg, containers)

    def save_source(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.source)

    def __repr__(self) -> str:
        return f"CompiledSDFG({self.sdfg.name!r}, device={self.device})"


def compile_sdfg(sdfg, device: str = "CPU", instrument: bool = False,
                 sanitize: bool = False) -> CompiledSDFG:
    """Compile an SDFG into an executable specialized module."""
    return CompiledSDFG(sdfg, device=device, instrument=instrument,
                        sanitize=sanitize)
