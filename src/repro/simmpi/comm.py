"""Simulated MPI: rank-per-thread SPMD execution with virtual clocks.

Functionally, ranks run concurrently in threads and exchange real NumPy
data through matched mailboxes (eager protocol).  For *timing*, every rank
carries a virtual clock advanced by the LogGP network model on communication
and by explicitly-reported compute time — so modeled end-to-end runtimes are
deterministic and independent of host scheduling, while numerics are real.

API mirrors mpi4py conventions: uppercase methods move NumPy buffers,
collectives take root ranks, ``Isend/Irecv`` return requests with ``wait``.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .netmodel import NetModel

__all__ = ["Comm", "Request", "VectorType", "run_spmd", "SimMPIError"]


class SimMPIError(RuntimeError):
    """Error inside the simulated MPI runtime."""


class VectorType:
    """MPI_Type_vector analogue: count blocks of blocklength elements with a
    stride (in elements) between block starts.

    Mirrors the paper's derived-datatype halo exchange (§4.3): sending a
    strided column without an intermediate copy.  The simulator packs and
    unpacks through NumPy striding.
    """

    def __init__(self, count: int, blocklength: int, stride: int, dtype):
        self.count = int(count)
        self.blocklength = int(blocklength)
        self.stride = int(stride)
        self.dtype = np.dtype(dtype)
        self._committed = False

    def Commit(self) -> "VectorType":
        self._committed = True
        return self

    def Free(self) -> None:
        self._committed = False

    @property
    def extent_elements(self) -> int:
        return self.count * self.blocklength

    def pack(self, flat: np.ndarray) -> np.ndarray:
        """Gather the typed elements from a flat element buffer."""
        out = np.empty(self.extent_elements, dtype=self.dtype)
        for i in range(self.count):
            start = i * self.stride
            out[i * self.blocklength:(i + 1) * self.blocklength] = \
                flat[start:start + self.blocklength]
        return out

    def unpack(self, flat: np.ndarray, data: np.ndarray) -> None:
        data = data.reshape(-1)
        for i in range(self.count):
            start = i * self.stride
            flat[start:start + self.blocklength] = \
                data[i * self.blocklength:(i + 1) * self.blocklength]


class Request:
    """A pending nonblocking operation."""

    def __init__(self, complete: Callable[[], None]):
        self._complete = complete
        self._done = False

    def wait(self) -> None:
        if not self._done:
            self._complete()
            self._done = True

    Wait = wait

    def test(self) -> bool:
        return self._done

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> None:
        for req in requests:
            if req is not None:
                req.wait()


class _World:
    """Shared state of one SPMD execution."""

    def __init__(self, size: int, net: NetModel):
        self.size = size
        self.net = net
        self.clocks = [0.0] * size
        self.mailboxes: Dict[Tuple[int, int, int], "queue.Queue"] = {}
        self._mail_lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.coll_slots: List[Any] = [None] * size
        self.comm_stats = {"messages": 0, "bytes": 0}
        self._stats_lock = threading.Lock()
        self.failed: Optional[BaseException] = None

    def mailbox(self, src: int, dst: int, tag: int) -> "queue.Queue":
        key = (src, dst, tag)
        with self._mail_lock:
            box = self.mailboxes.get(key)
            if box is None:
                box = self.mailboxes[key] = queue.Queue()
            return box

    def record(self, nbytes: int) -> None:
        with self._stats_lock:
            self.comm_stats["messages"] += 1
            self.comm_stats["bytes"] += nbytes


class Comm:
    """Per-rank communicator handle."""

    def __init__(self, world: _World, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- introspection -----------------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    @property
    def clock(self) -> float:
        return self._world.clocks[self.rank]

    def advance(self, seconds: float) -> None:
        """Account local compute time on this rank's virtual clock."""
        self._world.clocks[self.rank] += seconds

    # -- point-to-point -----------------------------------------------------
    def _payload(self, buf, datatype: Optional[VectorType]):
        arr = np.asarray(buf)
        if datatype is not None:
            data = datatype.pack(arr.reshape(-1))
        else:
            data = np.copy(arr)
        return data, data.nbytes

    def Send(self, buf, dest: int, tag: int = 0,
             datatype: Optional[VectorType] = None) -> None:
        data, nbytes = self._payload(buf, datatype)
        net = self._world.net
        self._world.clocks[self.rank] += net.send_overhead(nbytes)
        self._world.record(nbytes)
        self._world.mailbox(self.rank, dest, tag).put(
            (data, self._world.clocks[self.rank], nbytes))

    def Recv(self, buf, source: int, tag: int = 0,
             datatype: Optional[VectorType] = None):
        data, sent_at, nbytes = self._world.mailbox(source, self.rank, tag).get()
        arrival = sent_at + self._world.net.transit(nbytes) \
            - self._world.net.send_overhead(nbytes)
        self._world.clocks[self.rank] = max(self._world.clocks[self.rank],
                                            sent_at + self._world.net.latency_s)
        del arrival
        target = np.asarray(buf)
        if datatype is not None:
            datatype.unpack(target.reshape(-1), data)
        else:
            np.copyto(target, data.reshape(target.shape))
        return target

    def Isend(self, buf, dest: int, tag: int = 0,
              datatype: Optional[VectorType] = None) -> Request:
        self.Send(buf, dest, tag, datatype)  # eager protocol
        request = Request(lambda: None)
        request._done = True
        return request

    def Irecv(self, buf, source: int, tag: int = 0,
              datatype: Optional[VectorType] = None) -> Request:
        def complete():
            self.Recv(buf, source, tag, datatype)

        return Request(complete)

    def Waitall(self, requests: Sequence[Request]) -> None:
        Request.waitall(requests)

    def Sendrecv(self, sendbuf, dest: int, recvbuf, source: int,
                 tag: int = 0) -> None:
        req = self.Irecv(recvbuf, source, tag)
        self.Send(sendbuf, dest, tag)
        req.wait()

    # -- collectives ----------------------------------------------------------
    def _exchange(self, value):
        """All ranks deposit a value; returns the full slot list."""
        world = self._world
        world.coll_slots[self.rank] = value
        world.barrier.wait()
        slots = list(world.coll_slots)
        world.barrier.wait()
        return slots

    def _sync_clocks(self, cost: float) -> None:
        """Collectives synchronize: all clocks advance to max + cost."""
        world = self._world
        world.coll_slots[self.rank] = world.clocks[self.rank]
        world.barrier.wait()
        peak = max(world.coll_slots)
        world.barrier.wait()
        world.clocks[self.rank] = peak + cost

    def Barrier(self) -> None:
        self._sync_clocks(self._world.net.barrier(self.size))

    def Bcast(self, buf, root: int = 0):
        arr = np.asarray(buf)
        slots = self._exchange(np.copy(arr) if self.rank == root else None)
        if self.rank != root:
            np.copyto(arr, slots[root].reshape(arr.shape))
        self._sync_clocks(self._world.net.bcast(arr.nbytes, self.size))
        self._world.record(arr.nbytes * (self.size - 1))
        return arr

    def bcast(self, obj, root: int = 0):
        slots = self._exchange(obj if self.rank == root else None)
        nbytes = getattr(slots[root], "nbytes", 64)
        self._sync_clocks(self._world.net.bcast(int(nbytes), self.size))
        return slots[root]

    def Scatter(self, sendbuf, recvbuf, root: int = 0):
        recv = np.asarray(recvbuf)
        slots = self._exchange(np.copy(np.asarray(sendbuf))
                               if self.rank == root else None)
        chunks = slots[root].reshape((self.size,) + recv.shape)
        np.copyto(recv, chunks[self.rank])
        total = int(chunks.nbytes)
        self._sync_clocks(self._world.net.scatter(total, self.size))
        self._world.record(total)
        return recv

    def Gather(self, sendbuf, recvbuf, root: int = 0):
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send)
        if self.rank == root and recvbuf is not None:
            recv = np.asarray(recvbuf)
            stacked = np.stack([s.reshape(send.shape) for s in slots])
            np.copyto(recv, stacked.reshape(recv.shape))
        total = send.nbytes * self.size
        self._sync_clocks(self._world.net.gather(total, self.size))
        self._world.record(total)
        return recvbuf

    def Allgather(self, sendbuf, recvbuf):
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send)
        recv = np.asarray(recvbuf)
        stacked = np.stack([s.reshape(send.shape) for s in slots])
        np.copyto(recv, stacked.reshape(recv.shape))
        self._sync_clocks(self._world.net.allgather(send.nbytes, self.size))
        self._world.record(send.nbytes * (self.size - 1))
        return recv

    def Allreduce(self, sendbuf, recvbuf, op: str = "sum"):
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send)
        from ..runtime.wcr import WCR_UFUNC

        ufunc = WCR_UFUNC[op]
        total = slots[0].astype(np.result_type(slots[0]))
        for s in slots[1:]:
            total = ufunc(total, s)
        recv = np.asarray(recvbuf)
        np.copyto(recv, total.reshape(recv.shape))
        self._sync_clocks(self._world.net.allreduce(send.nbytes, self.size))
        self._world.record(send.nbytes * (self.size - 1))
        return recv

    def Reduce(self, sendbuf, recvbuf, op: str = "sum", root: int = 0):
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send)
        if self.rank == root and recvbuf is not None:
            from ..runtime.wcr import WCR_UFUNC

            ufunc = WCR_UFUNC[op]
            total = slots[0].astype(np.result_type(slots[0]))
            for s in slots[1:]:
                total = ufunc(total, s)
            recv = np.asarray(recvbuf)
            np.copyto(recv, total.reshape(recv.shape))
        self._sync_clocks(self._world.net.reduce(send.nbytes, self.size))
        self._world.record(send.nbytes * (self.size - 1))
        return recvbuf

    def Alltoall(self, sendbuf, recvbuf):
        send = np.copy(np.asarray(sendbuf)).reshape((self.size, -1))
        slots = self._exchange(send)
        recv = np.asarray(recvbuf).reshape((self.size, -1))
        for src in range(self.size):
            recv[src] = slots[src][self.rank]
        self._sync_clocks(self._world.net.alltoall(send[0].nbytes, self.size))
        self._world.record(send.nbytes)
        return recvbuf


def run_spmd(func: Callable[[Comm], Any], size: int,
             net: Optional[NetModel] = None) -> Tuple[List[Any], List[float], Dict]:
    """Run ``func(comm)`` on *size* simulated ranks.

    Returns (per-rank results, per-rank virtual clocks, communication stats).
    Exceptions on any rank abort the execution and re-raise.
    """
    world = _World(size, net or NetModel.from_config())
    results: List[Any] = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = func(Comm(world, rank))
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            world.failed = exc
            world.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if world.failed is not None:
        raise SimMPIError(f"rank failure: {world.failed}") from world.failed
    return results, world.clocks, world.comm_stats
