"""Simulated MPI: rank-per-thread SPMD execution with virtual clocks.

Functionally, ranks run concurrently in threads and exchange real NumPy
data through matched mailboxes (eager protocol).  For *timing*, every rank
carries a virtual clock advanced by the LogGP network model on communication
and by explicitly-reported compute time — so modeled end-to-end runtimes are
deterministic and independent of host scheduling, while numerics are real.

API mirrors mpi4py conventions: uppercase methods move NumPy buffers,
collectives take root ranks, ``Isend/Irecv`` return requests with ``wait``.

Resilience (see DESIGN.md): every blocking operation carries a timeout
(``resilience.comm_timeout_s``) and, on expiry, raises a
:class:`DeadlockError` listing every rank's pending operation instead of
hanging the process.  A :class:`~repro.simmpi.netmodel.FaultPlan` injects
message drops (survived through bounded retransmission with virtual-clock
backoff), delays, duplicates (suppressed via per-channel sequence numbers),
and mid-run rank crashes.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import instrumentation as _instrumentation
from ..config import Config
from ..governor.budget import tick as _governor_tick
from .netmodel import FaultPlan, NetModel

__all__ = ["Comm", "Request", "VectorType", "run_spmd", "SimMPIError",
           "DeadlockError", "InjectedCrash", "FaultPlan"]

#: polling granularity (wall-clock seconds) for blocking receives
_POLL_S = 0.02


class SimMPIError(RuntimeError):
    """Error inside the simulated MPI runtime."""


class DeadlockError(SimMPIError):
    """A blocking operation timed out; carries the who-waits-on-whom dump."""


class InjectedCrash(SimMPIError):
    """A rank crash injected by a :class:`FaultPlan` (transient fault; the
    checkpoint/restart supervisor classifies it as recoverable)."""


class _AbortedByPeer(SimMPIError):
    """Secondary error: this rank unwound because *another* rank failed.
    Filtered out of failure reports — the peer's exception is the cause."""


class VectorType:
    """MPI_Type_vector analogue: count blocks of blocklength elements with a
    stride (in elements) between block starts.

    Mirrors the paper's derived-datatype halo exchange (§4.3): sending a
    strided column without an intermediate copy.  The simulator packs and
    unpacks through NumPy striding.
    """

    def __init__(self, count: int, blocklength: int, stride: int, dtype):
        self.count = int(count)
        self.blocklength = int(blocklength)
        self.stride = int(stride)
        self.dtype = np.dtype(dtype)
        self._committed = False

    def Commit(self) -> "VectorType":
        self._committed = True
        return self

    def Free(self) -> None:
        self._committed = False

    @property
    def extent_elements(self) -> int:
        return self.count * self.blocklength

    def pack(self, flat: np.ndarray) -> np.ndarray:
        """Gather the typed elements from a flat element buffer."""
        out = np.empty(self.extent_elements, dtype=self.dtype)
        for i in range(self.count):
            start = i * self.stride
            out[i * self.blocklength:(i + 1) * self.blocklength] = \
                flat[start:start + self.blocklength]
        return out

    def unpack(self, flat: np.ndarray, data: np.ndarray) -> None:
        data = data.reshape(-1)
        for i in range(self.count):
            start = i * self.stride
            flat[start:start + self.blocklength] = \
                data[i * self.blocklength:(i + 1) * self.blocklength]


class Request:
    """A pending nonblocking operation."""

    def __init__(self, complete: Callable[[], None],
                 try_complete: Optional[Callable[[], bool]] = None,
                 poll: Optional[Callable[[], None]] = None):
        self._complete = complete
        self._try_complete = try_complete
        self._poll = poll
        self._done = False

    def wait(self) -> None:
        if not self._done:
            self._complete()
            self._done = True

    Wait = wait

    def test(self) -> bool:
        """Attempt completion without blocking (mpi4py ``Test`` semantics):
        completes the operation if it can finish now, else returns False.

        A request that can *never* complete (e.g. polling for a message that
        was dropped or whose sender crashed) does not return False forever:
        the poll callback raises :class:`DeadlockError` once the request's
        deadline — started at ``Irecv`` time — expires, and aborts early when
        a peer rank has already failed."""
        if self._done:
            return True
        if self._try_complete is not None and self._try_complete():
            self._complete()
            self._done = True
            return True
        if self._poll is not None:
            self._poll()
        return self._done

    Test = test

    @staticmethod
    def waitall(requests: Sequence["Request"]) -> None:
        for req in requests:
            if req is not None:
                req.wait()

    #: mpi4py API-parity alias (``Request.Waitall(reqs)``)
    Waitall = waitall


class _World:
    """Shared state of one SPMD execution."""

    def __init__(self, size: int, net: NetModel,
                 fault_plan: Optional[FaultPlan] = None,
                 timeout_s: Optional[float] = None, epoch: int = 0):
        self.size = size
        self.net = net
        self.fault_plan = fault_plan
        self.timeout_s = (timeout_s if timeout_s is not None
                          else Config.get("resilience.comm_timeout_s"))
        #: checkpoint epoch: bumped on every supervised restart; message
        #: envelopes carry it so receivers can drain stale in-flight traffic
        self.epoch = epoch
        self.clocks = [0.0] * size
        self.mailboxes: Dict[Tuple[int, int, int], "queue.Queue"] = {}
        self._mail_lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.coll_slots: List[Any] = [None] * size
        self.comm_stats = {"messages": 0, "bytes": 0, "retransmissions": 0,
                           "duplicates_suppressed": 0, "stale_discarded": 0}
        #: per-operation counters (DESIGN.md §13): op name -> count / bytes
        #: on the wire / virtual seconds spent blocked waiting for the op
        self.op_stats: Dict[str, Dict[str, float]] = {}
        #: communication-optimizer effect counters (repro.distributed.commopt)
        self.commopt_stats: Dict[str, float] = {
            "dedup_hits": 0, "dedup_bytes_saved": 0,
            "coalesced_messages": 0, "overlap_credit_s": 0.0,
        }
        self._stats_lock = threading.Lock()
        #: rank -> first exception raised on that rank
        self.failures: Dict[int, BaseException] = {}
        self._failed_lock = threading.Lock()
        #: auxiliary barriers (checkpoint rendezvous) broken on failure so
        #: no rank is left waiting for a dead peer
        self._extra_barriers: List[threading.Barrier] = []
        #: what each rank is currently blocked on (deadlock diagnostics)
        self.pending: List[Optional[str]] = [None] * size
        #: per-rank count of communication operations (crash injection)
        self.op_counts = [0] * size
        #: per-channel send sequence numbers and delivered-seq sets
        self._seq: Dict[Tuple[int, int, int], int] = {}
        self._seq_lock = threading.Lock()
        self.delivered: Dict[Tuple[int, int, int], Set[int]] = {}

    @property
    def failed(self) -> Optional[BaseException]:
        """The first recorded failure, or None (legacy single-failure view)."""
        for exc in self.failures.values():
            return exc
        return None

    def mailbox(self, src: int, dst: int, tag: int) -> "queue.Queue":
        key = (src, dst, tag)
        with self._mail_lock:
            box = self.mailboxes.get(key)
            if box is None:
                box = self.mailboxes[key] = queue.Queue()
            return box

    def next_seq(self, src: int, dst: int, tag: int) -> int:
        key = (src, dst, tag)
        with self._seq_lock:
            seq = self._seq.get(key, 0)
            self._seq[key] = seq + 1
            return seq

    def record(self, nbytes: int, stat: str = "messages") -> None:
        with self._stats_lock:
            self.comm_stats[stat] += 1
            if stat == "messages":
                self.comm_stats["bytes"] += nbytes

    def account(self, op: str, count: int = 0, nbytes: int = 0,
                wait_s: float = 0.0) -> None:
        """Attribute communication to a named operation.

        ``count``/``nbytes`` are incremented at the op's primary call site;
        ``wait_s`` is the *virtual* time the calling rank spent blocked (the
        receive-side arrival gap or the collective synchronization gap), the
        quantity the overlap optimizer drives down.  Surfaces as the ``comm``
        instrumentation category when a profile collector is active.
        """
        with self._stats_lock:
            st = self.op_stats.setdefault(
                op, {"count": 0, "bytes": 0, "wait_s": 0.0})
            st["count"] += count
            st["bytes"] += nbytes
            st["wait_s"] += wait_s
        coll = _instrumentation._ACTIVE
        if coll is not None:
            coll.add("comm", op, wait_s)

    def commopt_note(self, stat: str, value: float = 1) -> None:
        """Bump a communication-optimizer effect counter (dedup/coalesce/
        overlap); keyed into :class:`~repro.distributed.commopt.CommReport`."""
        with self._stats_lock:
            self.commopt_stats[stat] = self.commopt_stats.get(stat, 0) + value

    def fail(self, exc: BaseException, rank: int = -1) -> None:
        """Record a rank failure and break everyone out of barriers.

        Every failing rank is recorded (first exception per rank wins) so
        :func:`run_spmd` can name them all; collective and checkpoint
        barriers are aborted so surviving ranks unwind instead of waiting
        for a dead peer."""
        with self._failed_lock:
            self.failures.setdefault(rank, exc)
            extra = list(self._extra_barriers)
        self.barrier.abort()
        for barrier in extra:
            barrier.abort()

    def register_barrier(self, barrier: "threading.Barrier") -> None:
        """Register an auxiliary barrier to be aborted on any rank failure."""
        with self._failed_lock:
            self._extra_barriers.append(barrier)
            already_failed = bool(self.failures)
        if already_failed:
            barrier.abort()

    # -- checkpoint support -------------------------------------------------
    def snapshot_comm(self) -> Dict[str, Any]:
        """Capture communication state at a quiescent point (all ranks at a
        checkpoint barrier): clocks, op counts, per-channel sequence state,
        and in-flight mailbox messages.  Consumed by
        :class:`repro.resilience.distributed.WorldCheckpoint`."""
        with self._mail_lock:
            boxes = {key: list(box.queue)
                     for key, box in self.mailboxes.items()}
        with self._seq_lock:
            seq = dict(self._seq)
        with self._stats_lock:
            stats = dict(self.comm_stats)
            op_stats = {op: dict(st) for op, st in self.op_stats.items()}
            commopt_stats = dict(self.commopt_stats)
        return {
            "clocks": list(self.clocks),
            "op_counts": list(self.op_counts),
            "seq": seq,
            "delivered": {k: set(v) for k, v in self.delivered.items()},
            "mailboxes": boxes,
            "comm_stats": stats,
            "op_stats": op_stats,
            "commopt_stats": commopt_stats,
        }

    def restore_comm(self, snap: Dict[str, Any]) -> None:
        """Rebuild communication state from a checkpoint snapshot.

        In-flight messages captured under the old epoch are retagged to this
        world's epoch — they were legitimately sent before the cut and must
        be deliverable after the restart; anything sent *after* the cut died
        with the old world and never reappears."""
        self.clocks[:] = snap["clocks"]
        self.op_counts[:] = snap["op_counts"]
        with self._seq_lock:
            self._seq = dict(snap["seq"])
        self.delivered = {k: set(v) for k, v in snap["delivered"].items()}
        with self._stats_lock:
            self.comm_stats.update(snap["comm_stats"])
            # pre-epoch checkpoints (or hand-built snapshots) may predate
            # the per-op counters; restore what is present
            for op, st in snap.get("op_stats", {}).items():
                self.op_stats[op] = dict(st)
            self.commopt_stats.update(snap.get("commopt_stats", {}))
        for key, msgs in snap["mailboxes"].items():
            box = self.mailbox(*key)
            for (_epoch, seqno, data, sent_at, nbytes) in msgs:
                box.put((self.epoch, seqno, data, sent_at, nbytes))

    def deadlock_dump(self, rank: int, desc: str) -> str:
        lines = [
            f"deadlock: rank {rank} timed out in {desc} after "
            f"{self.timeout_s:g}s; pending operations:"
        ]
        for r, op in enumerate(self.pending):
            lines.append(f"  rank {r}: {op or '<not blocked in communication>'}")
        return "\n".join(lines)


class Comm:
    """Per-rank communicator handle."""

    def __init__(self, world: _World, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size

    # -- introspection -----------------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    @property
    def clock(self) -> float:
        return self._world.clocks[self.rank]

    def advance(self, seconds: float) -> None:
        """Account local compute time on this rank's virtual clock."""
        self._world.clocks[self.rank] += seconds

    # -- fault hooks -------------------------------------------------------
    def _op(self, desc: str) -> None:
        """Count a communication operation; fire an injected rank crash.

        Also the abort poll point for compute-bound survivors: once any
        peer has failed, the next communication operation on this rank
        unwinds instead of feeding a doomed execution."""
        self._check_aborted()
        # communication ops are the governor's cooperative check sites in
        # SPMD code (a rank blocked in comm has no state boundaries)
        _governor_tick()
        world = self._world
        world.op_counts[self.rank] += 1
        plan = world.fault_plan
        if plan is not None and \
                plan.should_crash(self.rank, world.op_counts[self.rank]):
            raise InjectedCrash(
                f"injected crash on rank {self.rank} during {desc} "
                f"(operation #{world.op_counts[self.rank]})")

    def _check_aborted(self) -> None:
        world = self._world
        if world.failures:
            with world._failed_lock:
                items = sorted(world.failures.items())
            first = items[0][1]
            names = ", ".join(f"rank {r}" for r, _ in items)
            raise _AbortedByPeer(
                f"rank {self.rank} aborted: peer failure on {names} "
                f"({first})") from first

    # -- point-to-point -----------------------------------------------------
    def _payload(self, buf, datatype: Optional[VectorType]):
        arr = np.asarray(buf)
        if datatype is not None:
            data = datatype.pack(arr.reshape(-1))
        else:
            data = np.copy(arr)
        return data, data.nbytes

    def Send(self, buf, dest: int, tag: int = 0,
             datatype: Optional[VectorType] = None) -> None:
        self._op(f"Send(dest={dest}, tag={tag})")
        data, nbytes = self._payload(buf, datatype)
        world = self._world
        net = world.net
        plan = world.fault_plan
        channel = (self.rank, dest, tag)
        seq = world.next_seq(self.rank, dest, tag)
        retries = Config.get("resilience.send_retries")
        backoff = Config.get("resilience.retry_backoff_us") * 1e-6
        attempt = 0
        while True:
            world.clocks[self.rank] += net.send_overhead(nbytes)
            world.record(nbytes)
            world.account("Send", count=1, nbytes=nbytes)
            if plan is not None and plan.drop(channel):
                attempt += 1
                if attempt > retries:
                    raise SimMPIError(
                        f"message rank {self.rank} -> rank {dest} (tag={tag}, "
                        f"seq={seq}) lost: dropped on all "
                        f"{attempt} attempts ({retries} retransmissions)")
                # retransmission: exponential-ish backoff on the virtual clock
                world.clocks[self.rank] += backoff * attempt
                world.record(nbytes, stat="retransmissions")
                continue
            delay = plan.delay(channel) if plan is not None else 0.0
            box = world.mailbox(self.rank, dest, tag)
            envelope = (world.epoch, seq, data,
                        world.clocks[self.rank] + delay, nbytes)
            box.put(envelope)
            if plan is not None and plan.duplicate(channel):
                box.put(envelope)
            return

    def Recv(self, buf, source: int, tag: int = 0,
             datatype: Optional[VectorType] = None):
        desc = f"Recv(source={source}, tag={tag})"
        self._op(desc)
        world = self._world
        clock_before = world.clocks[self.rank]
        box = world.mailbox(source, self.rank, tag)
        delivered = world.delivered.setdefault((source, self.rank, tag), set())
        world.pending[self.rank] = desc
        deadline = time.monotonic() + world.timeout_s
        try:
            while True:
                self._check_aborted()
                _governor_tick()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(world.deadlock_dump(self.rank, desc))
                try:
                    epoch, seq, data, sent_at, nbytes = box.get(
                        timeout=min(remaining, _POLL_S))
                except queue.Empty:
                    continue
                if epoch < world.epoch:
                    # in-flight message from a pre-restart epoch: stale
                    world.record(nbytes, stat="stale_discarded")
                    continue
                if seq in delivered:
                    # duplicate injected by the fault plan: suppress
                    world.record(nbytes, stat="duplicates_suppressed")
                    continue
                delivered.add(seq)
                break
        finally:
            world.pending[self.rank] = None
        # virtual wait: how long this rank's clock stalls for the arrival
        # (zero when computation already advanced the clock past it — the
        # quantity the overlap optimizer removes from the critical path)
        arrival = sent_at + world.net.latency_s
        world.account("Recv", count=1,
                      wait_s=max(0.0, arrival - clock_before))
        world.clocks[self.rank] = max(world.clocks[self.rank], arrival)
        target = np.asarray(buf)
        if datatype is not None:
            datatype.unpack(target.reshape(-1), data)
        else:
            np.copyto(target, data.reshape(target.shape))
        return target

    def Isend(self, buf, dest: int, tag: int = 0,
              datatype: Optional[VectorType] = None) -> Request:
        self.Send(buf, dest, tag, datatype)  # eager protocol
        request = Request(lambda: None)
        request._done = True
        return request

    def Irecv(self, buf, source: int, tag: int = 0,
              datatype: Optional[VectorType] = None) -> Request:
        world = self._world
        box = world.mailbox(source, self.rank, tag)
        desc = f"Irecv(source={source}, tag={tag})"
        deadline = time.monotonic() + world.timeout_s

        def complete():
            self.Recv(buf, source, tag, datatype)

        def poll():
            # called from Request.test when the message has not arrived:
            # abort on peer failure, raise once the deadline (started at
            # request creation) expires — a dropped message must not keep
            # a test() loop spinning forever
            self._check_aborted()
            _governor_tick()
            if time.monotonic() >= deadline:
                raise DeadlockError(world.deadlock_dump(self.rank, desc))

        return Request(complete, try_complete=lambda: not box.empty(),
                       poll=poll)

    def Waitall(self, requests: Sequence[Request]) -> None:
        Request.waitall(requests)

    def Sendrecv(self, sendbuf, dest: int, recvbuf, source: int,
                 tag: int = 0) -> None:
        req = self.Irecv(recvbuf, source, tag)
        self.Send(sendbuf, dest, tag)
        req.wait()

    # -- collectives ----------------------------------------------------------
    def _barrier_wait(self, desc: str) -> None:
        """One synchronization point with deadlock/abort diagnostics."""
        world = self._world
        world.pending[self.rank] = desc
        try:
            world.barrier.wait(timeout=world.timeout_s)
        except threading.BrokenBarrierError:
            self._check_aborted()
            raise DeadlockError(world.deadlock_dump(self.rank, desc)) from None
        finally:
            world.pending[self.rank] = None

    def _exchange(self, value, desc: str = "collective"):
        """All ranks deposit a value; returns the full slot list."""
        world = self._world
        world.coll_slots[self.rank] = value
        self._barrier_wait(desc)
        slots = list(world.coll_slots)
        self._barrier_wait(desc)
        return slots

    def _sync_clocks(self, cost: float, desc: str = "collective") -> None:
        """Collectives synchronize: all clocks advance to max + cost."""
        world = self._world
        before = world.clocks[self.rank]
        world.coll_slots[self.rank] = before
        self._barrier_wait(desc)
        peak = max(world.coll_slots)
        self._barrier_wait(desc)
        # wait = how long this rank idles for the slowest participant
        world.account(desc.split("(", 1)[0],
                      wait_s=max(0.0, peak - before))
        world.clocks[self.rank] = peak + cost

    def Barrier(self) -> None:
        self._op("Barrier()")
        self._world.account("Barrier", count=1)
        self._sync_clocks(self._world.net.barrier(self.size), "Barrier()")

    def Bcast(self, buf, root: int = 0):
        self._op(f"Bcast(root={root})")
        arr = np.asarray(buf)
        desc = f"Bcast(root={root})"
        slots = self._exchange(np.copy(arr) if self.rank == root else None, desc)
        if self.rank != root:
            np.copyto(arr, slots[root].reshape(arr.shape))
        self._sync_clocks(self._world.net.bcast(arr.nbytes, self.size), desc)
        self._world.record(arr.nbytes * (self.size - 1))
        self._world.account("Bcast", count=1,
                            nbytes=arr.nbytes * (self.size - 1))
        return arr

    def bcast(self, obj, root: int = 0):
        self._op(f"bcast(root={root})")
        desc = f"bcast(root={root})"
        slots = self._exchange(obj if self.rank == root else None, desc)
        nbytes = getattr(slots[root], "nbytes", 64)
        self._world.account("bcast", count=1, nbytes=int(nbytes))
        self._sync_clocks(self._world.net.bcast(int(nbytes), self.size), desc)
        return slots[root]

    def Scatter(self, sendbuf, recvbuf, root: int = 0):
        self._op(f"Scatter(root={root})")
        desc = f"Scatter(root={root})"
        recv = np.asarray(recvbuf)
        slots = self._exchange(np.copy(np.asarray(sendbuf))
                               if self.rank == root else None, desc)
        chunks = slots[root].reshape((self.size,) + recv.shape)
        np.copyto(recv, chunks[self.rank])
        total = int(chunks.nbytes)
        self._sync_clocks(self._world.net.scatter(total, self.size), desc)
        self._world.record(total)
        self._world.account("Scatter", count=1, nbytes=total)
        return recv

    def Gather(self, sendbuf, recvbuf, root: int = 0):
        self._op(f"Gather(root={root})")
        desc = f"Gather(root={root})"
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send, desc)
        if self.rank == root and recvbuf is not None:
            recv = np.asarray(recvbuf)
            stacked = np.stack([s.reshape(send.shape) for s in slots])
            np.copyto(recv, stacked.reshape(recv.shape))
        total = send.nbytes * self.size
        self._sync_clocks(self._world.net.gather(total, self.size), desc)
        self._world.record(total)
        self._world.account("Gather", count=1, nbytes=total)
        return recvbuf

    def Allgather(self, sendbuf, recvbuf):
        self._op("Allgather()")
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send, "Allgather()")
        recv = np.asarray(recvbuf)
        stacked = np.stack([s.reshape(send.shape) for s in slots])
        np.copyto(recv, stacked.reshape(recv.shape))
        self._sync_clocks(self._world.net.allgather(send.nbytes, self.size),
                          "Allgather()")
        self._world.record(send.nbytes * (self.size - 1))
        self._world.account("Allgather", count=1,
                            nbytes=send.nbytes * (self.size - 1))
        return recv

    def Allreduce(self, sendbuf, recvbuf, op: str = "sum"):
        self._op(f"Allreduce(op={op!r})")
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send, f"Allreduce(op={op!r})")
        from ..runtime.wcr import WCR_UFUNC

        ufunc = WCR_UFUNC[op]
        total = slots[0].astype(np.result_type(slots[0]))
        for s in slots[1:]:
            total = ufunc(total, s)
        recv = np.asarray(recvbuf)
        np.copyto(recv, total.reshape(recv.shape))
        self._sync_clocks(self._world.net.allreduce(send.nbytes, self.size),
                          f"Allreduce(op={op!r})")
        self._world.record(send.nbytes * (self.size - 1))
        self._world.account("Allreduce", count=1,
                            nbytes=send.nbytes * (self.size - 1))
        return recv

    def Reduce(self, sendbuf, recvbuf, op: str = "sum", root: int = 0):
        self._op(f"Reduce(op={op!r}, root={root})")
        desc = f"Reduce(op={op!r}, root={root})"
        send = np.copy(np.asarray(sendbuf))
        slots = self._exchange(send, desc)
        if self.rank == root and recvbuf is not None:
            from ..runtime.wcr import WCR_UFUNC

            ufunc = WCR_UFUNC[op]
            total = slots[0].astype(np.result_type(slots[0]))
            for s in slots[1:]:
                total = ufunc(total, s)
            recv = np.asarray(recvbuf)
            np.copyto(recv, total.reshape(recv.shape))
        self._sync_clocks(self._world.net.reduce(send.nbytes, self.size), desc)
        self._world.record(send.nbytes * (self.size - 1))
        self._world.account("Reduce", count=1,
                            nbytes=send.nbytes * (self.size - 1))
        return recvbuf

    def Alltoall(self, sendbuf, recvbuf):
        self._op("Alltoall()")
        send = np.copy(np.asarray(sendbuf)).reshape((self.size, -1))
        slots = self._exchange(send, "Alltoall()")
        recv = np.asarray(recvbuf).reshape((self.size, -1))
        for src in range(self.size):
            recv[src] = slots[src][self.rank]
        self._sync_clocks(self._world.net.alltoall(send[0].nbytes, self.size),
                          "Alltoall()")
        self._world.record(send.nbytes)
        self._world.account("Alltoall", count=1, nbytes=send.nbytes)
        return recvbuf


def run_spmd(func: Callable[[Comm], Any], size: int,
             net: Optional[NetModel] = None,
             fault_plan: Optional[FaultPlan] = None,
             timeout_s: Optional[float] = None) -> Tuple[List[Any], List[float], Dict]:
    """Run ``func(comm)`` on *size* simulated ranks.

    Returns (per-rank results, per-rank virtual clocks, communication stats).
    Exceptions on any rank abort the execution and re-raise; a
    :class:`DeadlockError` (blocking operation exceeding *timeout_s*,
    default ``resilience.comm_timeout_s``) re-raises with the full
    per-rank pending-operation dump.  *fault_plan* optionally injects
    message drops, delays, duplicates, and rank crashes.
    """
    world = _World(size, net or NetModel.from_config(),
                   fault_plan=fault_plan, timeout_s=timeout_s)
    results = _launch(func, world)
    _raise_failures(world)
    return results, world.clocks, world.comm_stats


def _launch(func: Callable[[Comm], Any], world: _World) -> List[Any]:
    """Run one epoch of SPMD threads to completion without raising.

    Failures land in ``world.failures`` keyed by rank; the supervisor
    (:mod:`repro.resilience.distributed`) inspects them to decide between
    restart and re-raise, while :func:`run_spmd` always re-raises."""
    results: List[Any] = [None] * world.size

    def runner(rank: int) -> None:
        try:
            results[rank] = func(Comm(world, rank))
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            world.fail(exc, rank)
        finally:
            world.pending[rank] = "<finished>"

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(world.size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def primary_failures(world: _World) -> Dict[int, BaseException]:
    """Rank failures that *caused* the abort, in rank order.

    :class:`_AbortedByPeer` unwinds are secondary casualties — survivors
    kicked out of barriers/receives after someone else died — and are
    excluded unless they are all that happened."""
    primaries = {r: e for r, e in sorted(world.failures.items())
                 if not isinstance(e, _AbortedByPeer)}
    return primaries or dict(sorted(world.failures.items()))


def _raise_failures(world: _World) -> None:
    if not world.failures:
        return
    primaries = primary_failures(world)
    first = next(iter(primaries.values()))
    if all(isinstance(e, DeadlockError) for e in primaries.values()):
        # the dump already names every rank's pending operation
        raise first
    if len(primaries) == 1:
        rank, exc = next(iter(primaries.items()))
        raise SimMPIError(f"rank {rank} failed: {exc}") from exc
    lines = [f"{len(primaries)} ranks failed:"]
    for rank, exc in primaries.items():
        lines.append(f"  rank {rank}: {type(exc).__name__}: {exc}")
    raise SimMPIError("\n".join(lines)) from first
