"""Cartesian process grids (BLACS analogue, §4.1).

The PBLAS library environment sets up near-square 2-D grids automatically;
grid parameters are free symbols that users may also choose.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

__all__ = ["ProcessGrid", "balanced_dims"]


def balanced_dims(size: int, ndims: int = 2) -> Tuple[int, ...]:
    """Near-square factorization of *size* into *ndims* factors
    (MPI_Dims_create analogue)."""
    dims = [1] * ndims
    remaining = size
    # assign prime factors largest-first to the currently-smallest dim
    factors: List[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        smallest = dims.index(min(dims))
        dims[smallest] *= factor
    return tuple(sorted(dims, reverse=True))


class ProcessGrid:
    """A 2-D (or N-D) Cartesian arrangement of ranks, row-major."""

    def __init__(self, size: int, dims: Optional[Tuple[int, ...]] = None,
                 ndims: int = 2):
        if dims is None:
            dims = balanced_dims(size, ndims)
        if math.prod(dims) != size:
            raise ValueError(f"grid {dims} does not cover {size} ranks")
        self.size = size
        self.dims = tuple(dims)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> Tuple[int, ...]:
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank_of(self, coords: Tuple[int, ...]) -> int:
        rank = 0
        for coord, extent in zip(coords, self.dims, strict=True):
            if not (0 <= coord < extent):
                return -1
            rank = rank * extent + coord
        return rank

    def shift(self, rank: int, dim: int, displacement: int) -> int:
        """Neighbor rank along a dimension; -1 outside the grid."""
        coords = list(self.coords(rank))
        coords[dim] += displacement
        return self.rank_of(tuple(coords))

    def neighbors(self, rank: int) -> dict:
        """N/S/W/E neighbors on a 2-D grid (-1 at boundaries)."""
        if self.ndims != 2:
            raise ValueError("neighbors() requires a 2-D grid")
        return {
            "north": self.shift(rank, 0, -1),
            "south": self.shift(rank, 0, +1),
            "west": self.shift(rank, 1, -1),
            "east": self.shift(rank, 1, +1),
        }

    def __repr__(self) -> str:
        return f"ProcessGrid({'x'.join(map(str, self.dims))})"
