"""Simulated MPI: SPMD threads, mpi4py-style API, LogGP virtual clocks."""

from .comm import Comm, Request, SimMPIError, VectorType, run_spmd
from .grid import ProcessGrid, balanced_dims
from .netmodel import NetModel

__all__ = ["Comm", "Request", "VectorType", "run_spmd", "SimMPIError",
           "ProcessGrid", "balanced_dims", "NetModel"]
