"""Simulated MPI: SPMD threads, mpi4py-style API, LogGP virtual clocks,
fault injection, and deadlock diagnostics."""

from .comm import (Comm, DeadlockError, InjectedCrash, Request, SimMPIError,
                   VectorType, run_spmd)
from .grid import ProcessGrid, balanced_dims
from .netmodel import FaultPlan, NetModel

__all__ = ["Comm", "Request", "VectorType", "run_spmd", "SimMPIError",
           "DeadlockError", "InjectedCrash", "FaultPlan", "ProcessGrid",
           "balanced_dims", "NetModel"]
