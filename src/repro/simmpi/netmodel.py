"""LogGP-style network cost model for the simulated interconnect.

Parameters default to a Piz-Daint-like Aries dragonfly (per-message overhead
``o``, latency ``L``, inverse bandwidth ``G``).  All simulated communication
advances per-rank *virtual clocks* using these costs; collectives use
tree/butterfly schedules expressed in terms of point-to-point costs, so the
model composes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import Config

__all__ = ["NetModel"]


@dataclass
class NetModel:
    """Point-to-point and collective communication costs in seconds."""

    latency_s: float
    overhead_s: float
    inv_bandwidth_s_per_byte: float

    @classmethod
    def from_config(cls) -> "NetModel":
        return cls(
            latency_s=Config.get("net.latency_us") * 1e-6,
            overhead_s=Config.get("net.per_message_overhead_us") * 1e-6,
            inv_bandwidth_s_per_byte=1.0 / (Config.get("net.bandwidth_gbs") * 1e9),
        )

    # -- point to point ---------------------------------------------------
    def send_overhead(self, nbytes: int) -> float:
        """Sender-side cost of injecting a message."""
        return self.overhead_s + nbytes * self.inv_bandwidth_s_per_byte

    def transit(self, nbytes: int) -> float:
        """Wire time until the last byte arrives at the receiver."""
        return self.latency_s + nbytes * self.inv_bandwidth_s_per_byte

    def ptp(self, nbytes: int) -> float:
        return self.send_overhead(nbytes) + self.latency_s

    # -- collectives --------------------------------------------------------
    def bcast(self, nbytes: int, size: int) -> float:
        """Binomial-tree broadcast."""
        if size <= 1:
            return 0.0
        return math.ceil(math.log2(size)) * self.ptp(nbytes)

    def reduce(self, nbytes: int, size: int) -> float:
        return self.bcast(nbytes, size)

    def allreduce(self, nbytes: int, size: int) -> float:
        """Recursive doubling."""
        if size <= 1:
            return 0.0
        return math.ceil(math.log2(size)) * self.ptp(nbytes)

    def scatter(self, total_bytes: int, size: int) -> float:
        """Binomial scatter: each tree level forwards half the payload."""
        if size <= 1:
            return 0.0
        levels = math.ceil(math.log2(size))
        time = 0.0
        remaining = total_bytes
        for _ in range(levels):
            remaining /= 2
            time += self.ptp(int(remaining))
        return time

    def gather(self, total_bytes: int, size: int) -> float:
        return self.scatter(total_bytes, size)

    def allgather(self, bytes_per_rank: int, size: int) -> float:
        """Ring allgather: (P-1) steps of the per-rank block."""
        if size <= 1:
            return 0.0
        return (size - 1) * self.ptp(bytes_per_rank)

    def alltoall(self, bytes_per_pair: int, size: int) -> float:
        if size <= 1:
            return 0.0
        return (size - 1) * self.ptp(bytes_per_pair)

    def barrier(self, size: int) -> float:
        return self.allreduce(8, size)
