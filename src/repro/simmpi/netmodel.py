"""LogGP-style network cost model for the simulated interconnect.

Parameters default to a Piz-Daint-like Aries dragonfly (per-message overhead
``o``, latency ``L``, inverse bandwidth ``G``).  All simulated communication
advances per-rank *virtual clocks* using these costs; collectives use
tree/butterfly schedules expressed in terms of point-to-point costs, so the
model composes.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..config import Config

__all__ = ["NetModel", "FaultPlan"]


@dataclass
class NetModel:
    """Point-to-point and collective communication costs in seconds."""

    latency_s: float
    overhead_s: float
    inv_bandwidth_s_per_byte: float

    @classmethod
    def from_config(cls) -> "NetModel":
        return cls(
            latency_s=Config.get("net.latency_us") * 1e-6,
            overhead_s=Config.get("net.per_message_overhead_us") * 1e-6,
            inv_bandwidth_s_per_byte=1.0 / (Config.get("net.bandwidth_gbs") * 1e9),
        )

    # -- point to point ---------------------------------------------------
    def send_overhead(self, nbytes: int) -> float:
        """Sender-side cost of injecting a message."""
        return self.overhead_s + nbytes * self.inv_bandwidth_s_per_byte

    def transit(self, nbytes: int) -> float:
        """Wire time until the last byte arrives at the receiver."""
        return self.latency_s + nbytes * self.inv_bandwidth_s_per_byte

    def ptp(self, nbytes: int) -> float:
        return self.send_overhead(nbytes) + self.latency_s

    # -- collectives --------------------------------------------------------
    def bcast(self, nbytes: int, size: int) -> float:
        """Binomial-tree broadcast."""
        if size <= 1:
            return 0.0
        return math.ceil(math.log2(size)) * self.ptp(nbytes)

    def reduce(self, nbytes: int, size: int) -> float:
        return self.bcast(nbytes, size)

    def allreduce(self, nbytes: int, size: int) -> float:
        """Recursive doubling."""
        if size <= 1:
            return 0.0
        return math.ceil(math.log2(size)) * self.ptp(nbytes)

    def scatter(self, total_bytes: int, size: int) -> float:
        """Binomial scatter: each tree level forwards half the payload."""
        if size <= 1:
            return 0.0
        levels = math.ceil(math.log2(size))
        time = 0.0
        remaining = total_bytes
        for _ in range(levels):
            remaining /= 2
            time += self.ptp(int(remaining))
        return time

    def gather(self, total_bytes: int, size: int) -> float:
        return self.scatter(total_bytes, size)

    def allgather(self, bytes_per_rank: int, size: int) -> float:
        """Ring allgather: (P-1) steps of the per-rank block."""
        if size <= 1:
            return 0.0
        return (size - 1) * self.ptp(bytes_per_rank)

    def alltoall(self, bytes_per_pair: int, size: int) -> float:
        if size <= 1:
            return 0.0
        return (size - 1) * self.ptp(bytes_per_pair)

    def barrier(self, size: int) -> float:
        return self.allreduce(8, size)


@dataclass
class FaultPlan:
    """A seeded fault-injection plan for the simulated network.

    Injected faults model real-world communication hiccups: message *drops*
    (the eager protocol retransmits with backoff, see ``Comm.Send``),
    *delays* (extra wire latency on the virtual clock), *duplicates*
    (suppressed at the receiver through per-channel sequence numbers), and
    *rank crashes* after a given number of communication operations.

    Decisions draw from one ``random.Random(seed)`` stream.  With
    probabilities of 0 or 1 (optionally bounded by ``max_drops`` /
    ``max_duplicates``) plans are fully deterministic; fractional
    probabilities are deterministic per-draw but the draw order depends on
    thread interleaving across ranks.
    """

    seed: int = 0
    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.0
    duplicate_prob: float = 0.0
    crash_rank: Optional[int] = None
    crash_after_ops: int = 1
    #: additional crash sites as ``[(rank, after_ops), ...]``; combined with
    #: the legacy ``crash_rank``/``crash_after_ops`` pair.  Each site fires
    #: at most once — the fault is transient, so a supervised restart from a
    #: checkpoint does not re-kill the respawned rank.
    crashes: Optional[List[Tuple[int, int]]] = None
    max_drops: Optional[int] = None
    max_duplicates: Optional[int] = None
    injected: dict = field(default_factory=lambda: {
        "drops": 0, "delays": 0, "duplicates": 0, "crashes": 0})

    def __post_init__(self):
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._crash_sites: List[Tuple[int, int]] = []
        if self.crash_rank is not None:
            self._crash_sites.append((self.crash_rank, self.crash_after_ops))
        for rank, after_ops in (self.crashes or []):
            self._crash_sites.append((int(rank), int(after_ops)))
        self._fired_sites: set = set()

    @property
    def crash_sites(self) -> List[Tuple[int, int]]:
        """All configured crash sites (legacy pair + ``crashes`` list)."""
        return list(self._crash_sites)

    @property
    def pending_crash_sites(self) -> List[Tuple[int, int]]:
        """Sites that have not fired yet."""
        return [site for i, site in enumerate(self._crash_sites)
                if i not in self._fired_sites]

    def _roll(self, prob: float) -> bool:
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True
        return self._rng.random() < prob

    # -- per-event decisions (channel = (src, dst, tag)) -------------------
    def drop(self, channel: Tuple[int, int, int]) -> bool:
        with self._lock:
            if self.max_drops is not None and \
                    self.injected["drops"] >= self.max_drops:
                return False
            if self._roll(self.drop_prob):
                self.injected["drops"] += 1
                return True
            return False

    def delay(self, channel: Tuple[int, int, int]) -> float:
        with self._lock:
            if self._roll(self.delay_prob):
                self.injected["delays"] += 1
                return self.delay_s
            return 0.0

    def duplicate(self, channel: Tuple[int, int, int]) -> bool:
        with self._lock:
            if self.max_duplicates is not None and \
                    self.injected["duplicates"] >= self.max_duplicates:
                return False
            if self._roll(self.duplicate_prob):
                self.injected["duplicates"] += 1
                return True
            return False

    def should_crash(self, rank: int, ops_completed: int) -> bool:
        with self._lock:
            for i, (site_rank, after_ops) in enumerate(self._crash_sites):
                if i in self._fired_sites or site_rank != rank:
                    continue
                if ops_completed >= after_ops:
                    self._fired_sites.add(i)
                    self.injected["crashes"] += 1
                    return True
            return False
