"""Two-tier compilation-artifact store: in-memory LRU over an on-disk,
content-addressed entry directory.

Disk entries are single JSON files holding the generated module source, the
serialized (post-optimization) SDFG, the interpreter-fallback closure
specification, and a payload checksum.  Writes are crash-safe (temp file +
atomic rename, so concurrent writers race benignly — last writer wins with
an identical payload); reads verify the checksum and evict corrupted
entries.  The disk tier is LRU via entry-file mtimes and size-bounded by
``cache.max_bytes``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["CacheEntry", "CacheStore", "CacheStats", "stats", "reset_stats"]

ENTRY_SCHEMA = "repro-cache-entry/1"


# ---------------------------------------------------------------------------
# process-wide accounting
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class CacheStats:
    """Process-wide cache event counters (mutate through :meth:`bump` —
    bare ``+=`` on a shared counter loses increments under the multicore
    execution backend's worker threads)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0      # corrupted/unreadable entries evicted
    evictions: int = 0          # LRU size-budget evictions

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, counter: str, n: int = 1) -> None:
        """Atomically increment one of the counter fields."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["hits"] = self.hits
        d["hit_rate"] = self.hit_rate
        return d


_STATS = CacheStats()


def stats() -> CacheStats:
    """The process-wide counter object (mutated in place by the cache)."""
    return _STATS


def reset_stats() -> None:
    global _STATS
    _STATS = CacheStats()


# ---------------------------------------------------------------------------
# entries
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class CacheEntry:
    """One persisted compilation artifact."""

    key: str
    program: str
    source: str
    sdfg_json: Dict[str, Any]
    closure_specs: Dict[str, Tuple[int, int]]
    device: str = "CPU"
    instrument: bool = False
    sanitize: bool = False
    govern: bool = False
    optimize: str = ""
    created_utc: str = ""
    checksum: str = ""

    def payload_checksum(self) -> str:
        blob = json.dumps(
            {"source": self.source, "sdfg": self.sdfg_json,
             "closures": {k: list(v) for k, v in
                          sorted(self.closure_specs.items())}},
            sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": ENTRY_SCHEMA,
            "key": self.key,
            "program": self.program,
            "source": self.source,
            "sdfg_json": self.sdfg_json,
            "closure_specs": {k: list(v) for k, v in self.closure_specs.items()},
            "device": self.device,
            "instrument": self.instrument,
            "sanitize": self.sanitize,
            "govern": self.govern,
            "optimize": self.optimize,
            "created_utc": self.created_utc,
            "checksum": self.checksum,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CacheEntry":
        if d.get("schema") != ENTRY_SCHEMA:
            raise ValueError(f"unknown cache entry schema {d.get('schema')!r}")
        return cls(
            key=d["key"],
            program=d.get("program", ""),
            source=d["source"],
            sdfg_json=d["sdfg_json"],
            closure_specs={k: (int(v[0]), int(v[1]))
                           for k, v in d.get("closure_specs", {}).items()},
            device=d.get("device", "CPU"),
            instrument=bool(d.get("instrument", False)),
            sanitize=bool(d.get("sanitize", False)),
            govern=bool(d.get("govern", False)),
            optimize=d.get("optimize", ""),
            created_utc=d.get("created_utc", ""),
            checksum=d.get("checksum", ""),
        )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

def default_directory() -> str:
    """Resolve the cache directory: ``cache.dir`` config key, then the
    ``REPRO_CACHE_DIR`` environment variable, then ``~/.cache/repro``."""
    from ..config import Config

    configured = Config.get("cache.dir")
    if configured:
        return os.path.expanduser(str(configured))
    env = os.environ.get("REPRO_CACHE_DIR", "")
    if env:
        return os.path.expanduser(env)
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


class CacheStore:
    """In-memory LRU of live compiled modules in front of the disk tier."""

    def __init__(self, directory: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 memory_entries: Optional[int] = None):
        from ..config import Config

        self.directory = directory or default_directory()
        self.max_bytes = (max_bytes if max_bytes is not None
                          else int(Config.get("cache.max_bytes")))
        self.memory_entries = (memory_entries if memory_entries is not None
                               else int(Config.get("cache.memory_entries")))
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------- memory tier
    def get_memory(self, key: str):
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self._memory.move_to_end(key)
            return value

    def put_memory(self, key: str, value) -> None:
        with self._lock:
            self._memory[key] = value
            self._memory.move_to_end(key)
            while len(self._memory) > max(1, self.memory_entries):
                self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        with self._lock:
            self._memory.clear()

    @property
    def memory_size(self) -> int:
        with self._lock:
            return len(self._memory)

    # --------------------------------------------------------------- disk tier
    def entry_path(self, key: str) -> str:
        return os.path.join(self.directory, "entries", key[:2], f"{key}.json")

    def load_disk(self, key: str) -> Optional[CacheEntry]:
        """Load and checksum-verify a disk entry; evict it if corrupted."""
        path = self.entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = CacheEntry.from_dict(json.load(fh))
            if entry.key != key or entry.checksum != entry.payload_checksum():
                raise ValueError("checksum mismatch")
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.invalidate(key)
            return None
        try:
            os.utime(path)          # bump LRU recency
        except OSError:
            pass
        return entry

    def write_disk(self, entry: CacheEntry) -> bool:
        """Crash-safe write: temp file in the same directory + atomic rename.

        Concurrent writers of the same key are benign: both temp files hold
        the same content-addressed payload and ``os.replace`` is atomic.
        """
        path = self.entry_path(entry.key)
        entry.checksum = entry.payload_checksum()
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       prefix=f".{entry.key[:8]}-",
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry.to_dict(), fh, sort_keys=True, default=str)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        _STATS.bump("stores")
        self.evict_to_budget()
        return True

    def invalidate(self, key: str) -> bool:
        """Drop a (corrupted or stale) entry from both tiers."""
        with self._lock:
            self._memory.pop(key, None)
        try:
            os.unlink(self.entry_path(key))
        except OSError:
            return False
        _STATS.bump("invalidations")
        return True

    def iter_entry_files(self) -> Iterator[str]:
        root = os.path.join(self.directory, "entries")
        if not os.path.isdir(root):
            return
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                if name.endswith(".json"):
                    yield os.path.join(dirpath, name)

    def evict_to_budget(self) -> int:
        """Delete least-recently-used entries until under ``max_bytes``."""
        files: List[Tuple[float, int, str]] = []
        total = 0
        for path in self.iter_entry_files():
            try:
                st = os.stat(path)
            except OSError:
                continue
            files.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        evicted = 0
        if total <= self.max_bytes:
            return 0
        files.sort()                # oldest mtime first
        for _mtime, size, path in files:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
            _STATS.bump("evictions")
        return evicted

    # ------------------------------------------------------------ maintenance
    def clear(self) -> int:
        """Remove every entry (both tiers); returns entries removed."""
        self.clear_memory()
        removed = 0
        for path in list(self.iter_entry_files()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def disk_stats(self) -> Dict[str, Any]:
        entries = 0
        total = 0
        for path in self.iter_entry_files():
            try:
                total += os.stat(path).st_size
            except OSError:
                continue
            entries += 1
        return {"directory": self.directory, "entries": entries,
                "bytes": total, "max_bytes": self.max_bytes,
                "memory_entries": self.memory_size}

    def verify(self, evict: bool = False) -> Tuple[int, List[str]]:
        """Checksum-verify every disk entry; returns (ok_count, corrupted).

        With ``evict=True`` corrupted entries are deleted.
        """
        ok = 0
        corrupted: List[str] = []
        for path in list(self.iter_entry_files()):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = CacheEntry.from_dict(json.load(fh))
                if entry.checksum != entry.payload_checksum():
                    raise ValueError("checksum mismatch")
            except (OSError, ValueError, KeyError, TypeError):
                corrupted.append(path)
                if evict:
                    try:
                        os.unlink(path)
                        _STATS.bump("invalidations")
                    except OSError:
                        pass
                continue
            ok += 1
        return ok, corrupted
