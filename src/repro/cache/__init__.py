"""Persistent, content-addressed compilation cache (DESIGN.md §9).

Every process used to re-parse, re-optimize, and re-generate every SDFG from
scratch; DaCe itself ships a persistent ``.dacecache`` keyed on SDFG content
(Ben-Nun et al., SC'19).  This package is the analogous layer for the
reproduction:

* :func:`fingerprint` — canonical, stable content hash of an SDFG via the
  IR serialization layer.
* :func:`cache_key` — fingerprint + device + instrument/sanitize variants +
  optimization level + compilation-relevant config + code-version salt.
* :class:`CacheStore` — in-memory LRU over a crash-safe, checksummed,
  size-bounded on-disk entry directory (``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro``).
* :func:`cached_compile` — the compile front door: on a hit, rehydrate the
  generated module from cached source (skipping auto-optimization,
  validation, and code generation); on a miss, compile and persist.
* :func:`warm_corpus` (``python -m repro.cache warm``) — parallel corpus
  warm-up over a process pool, reused by the bench and sanitizer sweeps.

Cache events (hits/misses and lookup latency) flow into the active
:class:`repro.instrumentation.ProfileCollector` under the ``cache`` category
and into the process-wide :func:`stats` counters.
"""

from __future__ import annotations

import datetime
import time
from typing import Optional

from ..config import Config
from .fingerprint import cache_key, code_version, config_digest, fingerprint
from .store import (CacheEntry, CacheStats, CacheStore, default_directory,
                    reset_stats, stats)

__all__ = [
    "fingerprint", "cache_key", "code_version", "config_digest",
    "CacheEntry", "CacheStats", "CacheStore",
    "cached_compile", "get_store", "set_store", "stats", "reset_stats",
    "warm_corpus", "default_directory",
]

_STORE: Optional[CacheStore] = None


def get_store() -> CacheStore:
    """The process-wide store, rebuilt if the configured directory moved."""
    global _STORE
    directory = default_directory()
    if _STORE is None or _STORE.directory != directory:
        _STORE = CacheStore(directory=directory)
    # budget knobs are cheap to refresh (tests override them via Config)
    _STORE.max_bytes = int(Config.get("cache.max_bytes"))
    _STORE.memory_entries = int(Config.get("cache.memory_entries"))
    return _STORE


def set_store(store: Optional[CacheStore]) -> None:
    """Replace the process-wide store (tests)."""
    global _STORE
    _STORE = store


# ---------------------------------------------------------------------------
# the compile front door
# ---------------------------------------------------------------------------

def cached_compile(sdfg, device: str = "CPU", instrument: bool = False,
                   sanitize: bool = False, govern: bool = False,
                   optimize: Optional[str] = None,
                   store: Optional[CacheStore] = None):
    """Compile *sdfg* through the content-addressed cache.

    *optimize* names a device whose ``auto_optimize`` pipeline runs on a
    clone of the graph before code generation (``None`` compiles as-is).
    Because the key covers the *input* graph plus the optimization level, a
    hit skips auto-optimization, validation, and code generation in one go.

    Returns a :class:`repro.codegen.CompiledSDFG`; its ``from_cache``
    attribute tells the two paths apart.
    """
    from .. import instrumentation

    coll = instrumentation.current()
    if not Config.get("cache.enabled"):
        return _compile_full(sdfg, device, instrument, sanitize, govern,
                             optimize, coll)
    store = store or get_store()
    start = time.perf_counter()
    key = cache_key(sdfg, device=device, instrument=instrument,
                    sanitize=sanitize, govern=govern, optimize=optimize)

    compiled = store.get_memory(key)
    if compiled is not None:
        stats().bump("memory_hits")
        if coll is not None:
            coll.add("cache", "hit-memory", time.perf_counter() - start)
        return compiled

    entry = store.load_disk(key)
    if entry is not None:
        try:
            compiled = _rehydrate(entry, device=device, instrument=instrument,
                                  sanitize=sanitize, govern=govern)
        except Exception:
            # a structurally unusable entry is as good as a corrupted one
            store.invalidate(key)
        else:
            stats().bump("disk_hits")
            if coll is not None:
                coll.add("cache", "hit-disk", time.perf_counter() - start)
            store.put_memory(key, compiled)
            return compiled

    stats().bump("misses")
    if coll is not None:
        coll.add("cache", "miss", time.perf_counter() - start)
    compiled = _compile_full(sdfg, device, instrument, sanitize, govern,
                             optimize, coll)
    entry = _make_entry(key, compiled, optimize)
    if entry is not None:
        store.write_disk(entry)
    store.put_memory(key, compiled)
    return compiled


def _compile_full(sdfg, device, instrument, sanitize, govern, optimize, coll):
    from ..codegen.compiled import CompiledSDFG

    work = sdfg
    if optimize:
        work = sdfg.clone()
        if coll is not None:
            with coll.region("phase", "autoopt"):
                work.auto_optimize(device=optimize)
        else:
            work.auto_optimize(device=optimize)
    return CompiledSDFG(work, device=device, instrument=instrument,
                        sanitize=sanitize, govern=govern)


def _rehydrate(entry: CacheEntry, device: str, instrument: bool,
               sanitize: bool, govern: bool = False):
    """Rebuild a CompiledSDFG from a disk entry without code generation."""
    from ..codegen.compiled import CompiledSDFG
    from ..codegen.pygen import rehydrate_module
    from ..ir.serialize import sdfg_from_json

    sdfg = sdfg_from_json(entry.sdfg_json)
    run = rehydrate_module(sdfg, entry.source, entry.closure_specs,
                           instrument=instrument, sanitize=sanitize,
                           govern=govern)
    return CompiledSDFG.from_cached(sdfg, run, entry.source,
                                    closure_specs=entry.closure_specs,
                                    device=device, instrument=instrument,
                                    sanitize=sanitize, govern=govern)


def _make_entry(key: str, compiled, optimize: Optional[str]
                ) -> Optional[CacheEntry]:
    """Build a disk entry from a fresh compilation, or None when the
    artifact cannot be persisted (graphs that do not survive a
    serialization round trip, e.g. unexpanded library nodes, or modules
    bound to runtime constants)."""
    from ..ir.serialize import sdfg_from_json

    sdfg = compiled.sdfg
    if getattr(sdfg, "constants", None):
        return None
    try:
        sdfg_json = sdfg.to_json()
        # prove the entry rehydratable before persisting it: the round-trip
        # parse is cheap next to the compilation we just paid for
        restored = sdfg_from_json(sdfg_json)
        states = restored.states()
        for state_idx, node_idx in compiled.closure_specs.values():
            states[state_idx].nodes()[node_idx]
    except Exception:
        return None
    return CacheEntry(
        key=key,
        program=sdfg.name,
        source=compiled.source,
        sdfg_json=sdfg_json,
        closure_specs=dict(compiled.closure_specs),
        device=compiled.device,
        instrument=compiled.instrumented,
        sanitize=compiled.sanitized,
        govern=compiled.governed,
        optimize=optimize or "",
        created_utc=datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
    )


def warm_corpus(*args, **kwargs):
    """Parallel corpus warm-up; see :func:`repro.cache.warm.warm_corpus`."""
    from .warm import warm_corpus as _warm

    return _warm(*args, **kwargs)
