"""Canonical, stable SDFG content hashing and cache-key derivation.

The fingerprint covers everything that determines the generated module:
states, nodes, edges, memlets, interstate control flow, data descriptors,
symbols and the calling convention — all via the IR's own canonical JSON
serialization (``SDFG.to_json``), so two structurally identical graphs hash
equal regardless of object identity, and a serialize/deserialize round trip
is fingerprint-stable.

The cache *key* extends the fingerprint with everything else that changes
the artifact: target device, instrumentation/sanitizer variants, the
requested optimization level, the compilation-relevant configuration keys,
and a repo code-version salt (a digest of the compiler's own sources) so
stale entries die automatically when the toolchain changes.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

__all__ = ["fingerprint", "cache_key", "code_version", "config_digest"]

#: package subtrees whose sources determine generated-module behaviour;
#: editing any of them invalidates every cache entry (the version salt)
_SALT_SUBTREES = ("ir", "frontend", "codegen", "transformations", "symbolic",
                  "library", "runtime", "sanitizer", "governor")
_SALT_FILES = ("autoopt.py", "dtypes.py", "config.py")

_code_version: Optional[str] = None


def fingerprint(sdfg) -> str:
    """Content hash of an SDFG (hex sha256 over its canonical JSON form)."""
    blob = json.dumps(sdfg.to_json(), sort_keys=True,
                      separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def code_version() -> str:
    """Digest of the compilation-relevant repro sources (memoized).

    Any edit to the frontend, IR, optimizer, or backend yields a new salt,
    invalidating every previously cached artifact.
    """
    global _code_version
    if _code_version is not None:
        return _code_version
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    paths = []
    for subtree in _SALT_SUBTREES:
        root = os.path.join(package_root, subtree)
        for dirpath, _dirnames, filenames in os.walk(root):
            paths.extend(os.path.join(dirpath, f)
                         for f in filenames if f.endswith(".py"))
    paths.extend(os.path.join(package_root, f) for f in _SALT_FILES)
    for path in sorted(paths):
        digest.update(os.path.relpath(path, package_root).encode())
        try:
            with open(path, "rb") as fh:
                digest.update(fh.read())
        except OSError:
            continue
    _code_version = digest.hexdigest()
    return _code_version


def config_digest() -> str:
    """Digest of configuration keys that influence compilation output.

    ``device.*`` / ``parallel.*`` keys and the *resolved* worker count are
    included so serial and multicore thread-variants of the same graph get
    distinct cache keys: the generated parallel dispatch differs per
    schedule, and the resolved count covers ``$REPRO_CPU_THREADS``.
    """
    from ..config import Config
    from ..runtime.parallel import configured_threads

    relevant = {}
    for key in sorted(Config.keys()):
        if key.startswith(("optimizer.", "device.", "parallel.")) or key in (
                "sanitize.check_transforms", "validate.after_transform"):
            relevant[key] = Config.get(key)
    relevant["resolved.cpu_threads"] = configured_threads()
    blob = json.dumps(relevant, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(sdfg, device: str = "CPU", instrument: bool = False,
              sanitize: bool = False, govern: bool = False,
              optimize: Optional[str] = None) -> str:
    """Full content-addressed cache key (hex sha256).

    *optimize* names the device whose ``auto_optimize`` pipeline will run on
    the graph before code generation (None compiles the graph as-is); it is
    part of the key because the same input graph yields different artifacts
    per optimization level.
    """
    payload = "|".join([
        fingerprint(sdfg),
        str(device),
        f"instrument={int(bool(instrument))}",
        f"sanitize={int(bool(sanitize))}",
        f"govern={int(bool(govern))}",
        f"optimize={optimize or ''}",
        config_digest(),
        code_version(),
    ])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
