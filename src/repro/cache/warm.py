"""Parallel corpus warm-up: pre-populate the compilation cache.

Each benchmark is parsed and compiled twice — once as-is and once through
the ``auto_optimize`` pipeline — so every consumer of the corpus (the bench
harness, the sanitizer sweep, plain ``@repro.program`` calls) starts warm.
Workers run in a ``concurrent.futures`` process pool; the on-disk store's
atomic-rename writes make concurrent workers safe, and each worker's
hit/miss counters are folded into the returned summary.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Optional

__all__ = ["warm_corpus", "warm_one"]


def warm_one(name: str, size: str = "test", device: str = "CPU",
             cache_dir: str = "") -> Dict[str, object]:
    """Warm both cache entries (plain + auto-optimized) of one benchmark.

    Top-level so it pickles into process-pool workers; returns a result
    record instead of raising (one bad benchmark must not kill the sweep).
    """
    from . import cached_compile, reset_stats, stats
    from ..bench import registry
    from ..config import Config

    if cache_dir:
        Config.set("cache.dir", cache_dir)
    reset_stats()
    start = time.perf_counter()
    try:
        bench = registry.get(name)
        if bench.program._annotation_descs() is None:
            sdfg = bench.program.to_sdfg(**bench.arguments(size))
        else:
            sdfg = bench.program.to_sdfg()
        cached_compile(sdfg, device=device)
        cached_compile(sdfg, device=device, optimize=device)
    except Exception as exc:
        return {"name": name, "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "seconds": time.perf_counter() - start,
                "hits": 0, "misses": 0, "stores": 0}
    s = stats()
    return {"name": name, "ok": True, "error": "",
            "seconds": time.perf_counter() - start,
            "hits": s.hits, "misses": s.misses, "stores": s.stores}


def warm_corpus(names: Optional[List[str]] = None, size: str = "test",
                device: str = "CPU", jobs: Optional[int] = None,
                verbose: bool = False) -> Dict[str, object]:
    """Compile the benchmark corpus into the cache, in parallel.

    *jobs* defaults to the CPU count (capped at the corpus size); ``jobs=1``
    warms serially in-process.  Returns a summary dictionary with per-name
    results and aggregate hit/miss counts.
    """
    from . import default_directory
    from ..bench import registry

    if names is None:
        names = registry.names()
    jobs = jobs or min(len(names) or 1, os.cpu_count() or 1)
    cache_dir = default_directory()

    start = time.perf_counter()
    results: List[Dict[str, object]] = []
    if jobs <= 1 or len(names) <= 1:
        for name in names:
            results.append(warm_one(name, size=size, device=device,
                                    cache_dir=cache_dir))
    else:
        import concurrent.futures as cf

        try:
            with cf.ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {pool.submit(warm_one, name, size, device,
                                       cache_dir): name for name in names}
                for future in cf.as_completed(futures):
                    try:
                        results.append(future.result())
                    except Exception as exc:      # worker died (e.g. OOM)
                        results.append({
                            "name": futures[future], "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "seconds": 0.0, "hits": 0, "misses": 0,
                            "stores": 0})
        except (OSError, PermissionError):
            # no process pool available (restricted sandbox): warm serially
            results = [warm_one(name, size=size, device=device,
                                cache_dir=cache_dir) for name in names]
    results.sort(key=lambda r: r["name"])

    summary = {
        "size": size,
        "device": device,
        "jobs": jobs,
        "cache_dir": cache_dir,
        "wall_seconds": time.perf_counter() - start,
        "warmed": sum(1 for r in results if r["ok"]),
        "failed": sum(1 for r in results if not r["ok"]),
        "hits": sum(int(r["hits"]) for r in results),
        "misses": sum(int(r["misses"]) for r in results),
        "stores": sum(int(r["stores"]) for r in results),
        "results": results,
    }
    if verbose:
        for r in results:
            status = "ok" if r["ok"] else f"FAILED ({r['error']})"
            print(f"  warm {r['name']:<20} {r['seconds']:7.3f}s "
                  f"hits={r['hits']} misses={r['misses']} {status}",
                  file=sys.stderr)
    return summary
