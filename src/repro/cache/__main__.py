"""Compilation-cache CLI.

Usage::

    python -m repro.cache warm --size test --benchmarks ci --jobs 4
    python -m repro.cache stats [--json]
    python -m repro.cache clear
    python -m repro.cache verify [--evict]

``warm`` compiles the benchmark corpus (both the plain and auto-optimized
artifact of every program) across a process pool into the persistent store,
so subsequent bench/sanitizer/CI runs skip parsing, optimization, and code
generation entirely.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import get_store, warm_corpus


def _select_names(spec: str) -> Optional[List[str]]:
    from ..bench import registry
    from ..bench.profile import CI_SUBSET

    if not spec or spec == "all":
        return registry.names()
    if spec == "ci":
        return list(CI_SUBSET)
    return [name.strip() for name in spec.split(",") if name.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Persistent content-addressed compilation cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    warm = sub.add_parser("warm", help="compile the corpus into the cache")
    warm.add_argument("--size", default="test",
                      choices=["test", "small", "large"])
    warm.add_argument("--benchmarks", default="all",
                      help="comma-separated subset, 'ci', or 'all'")
    warm.add_argument("--jobs", type=int, default=0,
                      help="process-pool width (default: cpu count)")
    warm.add_argument("--device", default="CPU")

    stats_p = sub.add_parser("stats", help="show store statistics")
    stats_p.add_argument("--json", action="store_true", dest="as_json")

    sub.add_parser("clear", help="delete every cache entry")

    verify = sub.add_parser("verify", help="checksum-verify all entries")
    verify.add_argument("--evict", action="store_true",
                        help="delete corrupted entries")

    args = parser.parse_args(argv)
    store = get_store()

    if args.command == "warm":
        names = _select_names(args.benchmarks)
        summary = warm_corpus(names=names, size=args.size,
                              device=args.device, jobs=args.jobs or None,
                              verbose=True)
        print(f"warmed {summary['warmed']}/{len(summary['results'])} "
              f"benchmark(s) in {summary['wall_seconds']:.2f}s "
              f"({summary['jobs']} job(s); hits={summary['hits']} "
              f"misses={summary['misses']} stores={summary['stores']}) "
              f"-> {summary['cache_dir']}")
        return 0 if summary["failed"] == 0 else 1

    if args.command == "stats":
        info = store.disk_stats()
        if args.as_json:
            print(json.dumps(info, indent=2, sort_keys=True))
        else:
            print(f"cache directory : {info['directory']}")
            print(f"entries         : {info['entries']}")
            print(f"size            : {info['bytes'] / 1024.0:.1f} KiB "
                  f"(budget {info['max_bytes'] / (1024.0 * 1024.0):.0f} MiB)")
            print(f"memory tier     : {info['memory_entries']} live entries")
        return 0

    if args.command == "clear":
        removed = store.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.directory}")
        return 0

    if args.command == "verify":
        ok, corrupted = store.verify(evict=args.evict)
        print(f"{ok} entr{'y' if ok == 1 else 'ies'} ok, "
              f"{len(corrupted)} corrupted"
              f"{' (evicted)' if args.evict and corrupted else ''}")
        for path in corrupted:
            print(f"  corrupt: {path}")
        return 0 if not corrupted else 1

    return 2


if __name__ == "__main__":
    sys.exit(main())
