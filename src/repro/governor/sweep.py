"""Governed-execution sweep over the bench corpus (``python -m
repro.governor sweep``).

The robustness analogue of the chaos sweep (:mod:`repro.resilience.chaos`):
run every corpus program under deliberately hostile budgets and check that
each run ends in a *structured* governor outcome — the program completes, or
raises :class:`~repro.governor.ExecutionTimeout` /
:class:`~repro.governor.MemoryBudgetExceeded` with its diagnostic payload —
never a hang and never an unstructured crash.  A final trial drives one
program's circuit breaker through its full open → half-open → closed cycle.

Writes ``GOVERNOR.json`` (schema ``repro-governor/1``) for the CI artifact.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from ..config import Config
from .admission import MemoryBudgetExceeded
from .breaker import CircuitOpenError, registry, reset_breakers
from .budget import Budget, ExecutionTimeout, GovernorError

__all__ = ["DEFAULT_CORPUS", "governor_sweep"]

#: CI subset of the perf gate plus application-domain programs — small
#: ``test``-size instances that exercise maps, WCR, and interstate loops
DEFAULT_CORPUS = ["gemm", "jacobi_1d", "atax", "bicg", "mvt",
                  "gesummv", "softmax", "histogram"]

#: budgets per trial: generous (must complete), deadline-starved (must
#: raise ExecutionTimeout), memory-starved (must raise MemoryBudgetExceeded)
_TRIALS = (
    ("baseline", Budget(deadline_s=120.0, max_bytes=1 << 34), (None,)),
    ("deadline", Budget(deadline_s=1e-9), (ExecutionTimeout,)),
    ("memory", Budget(max_bytes=16), (MemoryBudgetExceeded,)),
)


def _run_trial(bench, trial: str, budget: Budget,
               expected: tuple) -> Dict[str, Any]:
    args = bench.arguments("test")
    start = time.perf_counter()
    outcome: Dict[str, Any] = {"trial": trial, "budget": {
        "deadline_s": budget.deadline_s, "max_bytes": budget.max_bytes}}
    try:
        bench.program(**args, __budget=budget)
    except GovernorError as exc:
        outcome["outcome"] = type(exc).__name__
        outcome["ok"] = any(e is not None and isinstance(exc, e)
                            for e in expected)
        outcome["detail"] = exc.to_dict()
    except Exception as exc:  # noqa: BLE001 - the sweep's whole point
        outcome["outcome"] = "unstructured"
        outcome["ok"] = False
        outcome["error"] = f"{type(exc).__name__}: {exc}"
    else:
        outcome["outcome"] = "completed"
        outcome["ok"] = None in expected
    outcome["elapsed_s"] = round(time.perf_counter() - start, 4)
    return outcome


def _breaker_demo(bench) -> Dict[str, Any]:
    """Drive one program's circuit through open → fast-fail → half-open
    probe → closed, at a tight threshold and cooldown."""
    demo: Dict[str, Any] = {"program": bench.name, "steps": []}
    args = bench.arguments("test")
    starve = Budget(max_bytes=8)
    generous = Budget(max_bytes=1 << 34)
    reset_breakers()
    with Config.override(governor__breaker_threshold=3,
                         governor__cooldown_s=0.05):
        for k in range(3):
            try:
                bench.program(**args, __budget=starve)
                demo["steps"].append({"step": f"fail{k}", "ok": False})
            except MemoryBudgetExceeded:
                demo["steps"].append({"step": f"fail{k}", "ok": True})
        try:
            bench.program(**args, __budget=generous)
            demo["steps"].append({"step": "fast-fail", "ok": False})
        except CircuitOpenError as exc:
            demo["steps"].append({"step": "fast-fail", "ok": True,
                                  "failures": exc.failures,
                                  "history": len(exc.history)})
        time.sleep(0.06)
        try:
            bench.program(**args, __budget=generous)
            state = registry().circuits()
            closed = any(c["state"] == "closed" for c in state)
            demo["steps"].append({"step": "probe-recover", "ok": closed})
        except Exception as exc:  # noqa: BLE001
            demo["steps"].append({"step": "probe-recover", "ok": False,
                                  "error": f"{type(exc).__name__}: {exc}"})
    reset_breakers()
    demo["ok"] = all(s["ok"] for s in demo["steps"])
    return demo


def governor_sweep(case_names: Optional[List[str]] = None,
                   out: Optional[str] = "GOVERNOR.json",
                   verbose: bool = True) -> Dict[str, Any]:
    """Run the sweep; returns (and optionally writes) the report dict."""
    from ..bench import registry as bench_registry

    names = case_names or DEFAULT_CORPUS
    programs: List[Dict[str, Any]] = []
    # a high threshold keeps the deliberate per-trial failures from opening
    # circuits mid-sweep; the breaker demo below overrides it back down
    with Config.override(governor__breaker_threshold=100):
        for name in names:
            bench = bench_registry.get(name)
            reset_breakers()
            trials = [_run_trial(bench, trial, budget, expected)
                      for trial, budget, expected in _TRIALS]
            programs.append({"name": name, "trials": trials})
            if verbose:
                flat = ", ".join(f"{t['trial']}={t['outcome']}"
                                 for t in trials)
                print(f"  {name:<12} {flat}")
        demo = _breaker_demo(bench_registry.get(names[0]))
        if verbose:
            print(f"  breaker demo on {demo['program']}: "
                  f"{'ok' if demo['ok'] else 'FAILED'}")

    all_trials = [t for p in programs for t in p["trials"]]
    summary = {
        "programs": len(programs),
        "trials": len(all_trials),
        "ok": sum(1 for t in all_trials if t["ok"]) ,
        "failed": sum(1 for t in all_trials if not t["ok"]),
        "unstructured": sum(1 for t in all_trials
                            if t["outcome"] == "unstructured"),
        "breaker_demo_ok": demo["ok"],
    }
    report = {
        "schema": "repro-governor/1",
        "corpus": names,
        "programs": programs,
        "breaker_demo": demo,
        "summary": summary,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        if verbose:
            print(f"wrote {out}")
    if verbose:
        print(f"summary: {summary['ok']}/{summary['trials']} trials ok, "
              f"{summary['unstructured']} unstructured")
    return report
