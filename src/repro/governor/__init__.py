"""Execution governor: deadlines, cooperative cancellation, memory
admission control, and per-program circuit breakers (DESIGN.md §12).

The ROADMAP north star — a service "serving heavy traffic from millions of
users" — needs per-run resource governance layered on the existing degrade
chain (§7), state-boundary hooks (§10), and descriptor machinery:

* :class:`Budget` ``(deadline_s, max_bytes)`` flows through ``run_sdfg`` /
  ``DaceProgram.__call__`` (reserved ``__budget`` keyword) /
  ``run_distributed``, or ambiently via ``governor.*`` configuration keys.
* :mod:`~repro.governor.admission` prices every planned allocation
  (including the multicore backend's per-chunk WCR accumulators and
  privatized transients) and rejects over-budget runs *before* allocation
  with an itemized :class:`MemoryBudgetExceeded` — or degrades to the
  serial tier when that fits.
* :mod:`~repro.governor.budget` arms a monotonic watchdog per run; the
  interpreter loop, generated modules (``__tick``, a separate cache-key
  variant like ``sanitize``), parallel chunk boundaries and simmpi op
  polling check it cooperatively, raising :class:`ExecutionTimeout` naming
  the last-completed state.
* :mod:`~repro.governor.breaker` fast-fails programs that keep failing,
  keyed by the content-addressed cache fingerprint, with half-open probes
  after ``governor.cooldown_s``.

``python -m repro.governor sweep`` runs the bench corpus under tight
budgets and writes ``GOVERNOR.json`` (schema ``repro-governor/1``).
"""

from .admission import (AdmissionDecision, MemoryBudgetExceeded, MemoryPlan,
                        PlanItem, admit, plan_memory)
from .breaker import (BreakerRegistry, BreakerState, CircuitOpenError,
                      registry as breaker_registry, reset_breakers)
from .budget import (ArmedBudget, Budget, ExecutionCancelled,
                     ExecutionTimeout, GovernorError, adopt, armed, current,
                     tick)

__all__ = [
    "Budget", "ArmedBudget", "GovernorError", "ExecutionTimeout",
    "ExecutionCancelled", "armed", "adopt", "current", "tick",
    "MemoryBudgetExceeded", "MemoryPlan", "PlanItem", "AdmissionDecision",
    "admit", "plan_memory",
    "CircuitOpenError", "BreakerState", "BreakerRegistry",
    "breaker_registry", "reset_breakers",
]
