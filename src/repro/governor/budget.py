"""Run budgets, deadlines, and cooperative cancellation (DESIGN.md §12).

A :class:`Budget` bounds one execution: wall-clock (``deadline_s``) and
peak memory (``max_bytes``, enforced by :mod:`repro.governor.admission`
*before* any allocation happens).  Budgets flow explicitly through
``run_sdfg(budget=...)`` / ``run_distributed(budget=...)`` / the reserved
``__budget`` call keyword of :class:`repro.frontend.decorator.DaceProgram`,
or ambiently through the ``governor.deadline_s`` / ``governor.max_bytes``
configuration keys.

Arming a budget creates an :class:`ArmedBudget` bound to the current thread
plus a monotonic-clock watchdog (a daemon :class:`threading.Timer`) that
flips the ``expired`` flag at the deadline.  Cancellation is *cooperative*:
the runtime checks the armed budget at the same state-boundary sites the
checkpoint hooks use (interpreter state loop, the generated module's
``__tick`` call, parallel chunk boundaries, simmpi op polling), so a
timed-out run raises :class:`ExecutionTimeout` naming the last-completed
state instead of hanging CI or a serving process.  A blocked tasklet cannot
be preempted — the guarantee is "raises at the next boundary", which for
SDFG state machines means within one state's work of the deadline.

Zero overhead when off: every check site reads one thread-local slot and
branches on ``None`` (the established single-check pattern of
:mod:`repro.instrumentation` and :mod:`repro.resilience.hooks`).
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "Budget", "ArmedBudget", "GovernorError", "ExecutionTimeout",
    "ExecutionCancelled", "armed", "adopt", "current", "tick",
]


class GovernorError(RuntimeError):
    """Base of every structured governor rejection/interruption.

    The degrade chain must never absorb these: a timeout retried on a
    slower tier times out again, and an admission rejection is
    deterministic.  Carries a ``to_dict()`` payload for reports.
    """

    def to_dict(self) -> Dict[str, Any]:
        return {"error": type(self).__name__, "message": str(self)}


class ExecutionTimeout(GovernorError):
    """A run exceeded its wall-clock budget (raised at a boundary site)."""

    def __init__(self, program: str, deadline_s: float, elapsed_s: float,
                 last_state: Optional[str]):
        self.program = program
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s
        self.last_state = last_state
        super().__init__(
            f"{program or '<sdfg>'} exceeded its deadline of "
            f"{deadline_s:g}s (elapsed {elapsed_s:.3f}s); last completed "
            f"state: {last_state if last_state is not None else '<none>'}")

    def to_dict(self) -> Dict[str, Any]:
        return {"error": "ExecutionTimeout", "program": self.program,
                "deadline_s": self.deadline_s, "elapsed_s": self.elapsed_s,
                "last_state": self.last_state}


class ExecutionCancelled(GovernorError):
    """A run was cancelled cooperatively via :meth:`ArmedBudget.cancel`."""

    def __init__(self, program: str, reason: str,
                 last_state: Optional[str]):
        self.program = program
        self.reason = reason
        self.last_state = last_state
        super().__init__(
            f"{program or '<sdfg>'} cancelled ({reason}); last completed "
            f"state: {last_state if last_state is not None else '<none>'}")

    def to_dict(self) -> Dict[str, Any]:
        return {"error": "ExecutionCancelled", "program": self.program,
                "reason": self.reason, "last_state": self.last_state}


class Budget:
    """Resource bounds for one execution.  Immutable specification; arming
    it (see :func:`armed`) produces the per-run mutable state."""

    __slots__ = ("deadline_s", "max_bytes")

    def __init__(self, deadline_s: Optional[float] = None,
                 max_bytes: Optional[int] = None):
        self.deadline_s = (float(deadline_s)
                           if deadline_s is not None and deadline_s > 0
                           else None)
        self.max_bytes = (int(max_bytes)
                          if max_bytes is not None and max_bytes > 0
                          else None)

    @property
    def is_null(self) -> bool:
        return self.deadline_s is None and self.max_bytes is None

    @classmethod
    def from_config(cls) -> "Budget":
        from ..config import Config

        return cls(deadline_s=float(Config.get("governor.deadline_s") or 0),
                   max_bytes=int(Config.get("governor.max_bytes") or 0))

    @classmethod
    def resolve(cls, budget: Optional["Budget"] = None) -> "Budget":
        """An explicit budget, else the ambient configured one."""
        if budget is not None:
            return budget
        return cls.from_config()

    def per_rank(self, size: int) -> "Budget":
        """The per-rank slice for an SPMD run of *size* ranks: the deadline
        is shared wall-clock (ranks run concurrently) while the memory
        budget divides — each rank holds its own container copies."""
        mb = self.max_bytes // max(1, int(size)) if self.max_bytes else None
        return Budget(deadline_s=self.deadline_s, max_bytes=mb)

    def __repr__(self) -> str:
        return (f"Budget(deadline_s={self.deadline_s}, "
                f"max_bytes={self.max_bytes})")


class ArmedBudget:
    """One run's live budget state: absolute monotonic deadline, watchdog,
    cancellation flag, and the last-completed-state tracker that boundary
    sites update."""

    __slots__ = ("budget", "program", "started", "deadline", "expired",
                 "cancel_reason", "last_state", "_entered", "_timer")

    def __init__(self, budget: Budget, program: str = "",
                 deadline_at: Optional[float] = None):
        self.budget = budget
        self.program = program
        self.started = time.monotonic()
        if deadline_at is not None:
            self.deadline: Optional[float] = deadline_at
        elif budget.deadline_s is not None:
            self.deadline = self.started + budget.deadline_s
        else:
            self.deadline = None
        self.expired = False
        self.cancel_reason: Optional[str] = None
        self.last_state: Optional[str] = None
        self._entered: Optional[str] = None
        self._timer: Optional[threading.Timer] = None

    # ------------------------------------------------------------ watchdog
    def _expire(self) -> None:
        self.expired = True

    def arm_watchdog(self) -> None:
        if self.deadline is None or self._timer is not None:
            return
        delay = max(0.0, self.deadline - time.monotonic())
        self._timer = threading.Timer(delay, self._expire)
        self._timer.daemon = True
        self._timer.start()

    def disarm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------- check sites
    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation: the next boundary check on any
        thread running under this budget raises :class:`ExecutionCancelled`."""
        self.cancel_reason = reason

    def check(self) -> None:
        """The cooperative tick: raise if cancelled or past the deadline."""
        if self.cancel_reason is not None:
            raise ExecutionCancelled(self.program, self.cancel_reason,
                                     self.last_state)
        if self.expired or (self.deadline is not None
                            and time.monotonic() >= self.deadline):
            self.expired = True
            elapsed = time.monotonic() - self.started
            deadline_s = (self.budget.deadline_s
                          if self.budget.deadline_s is not None
                          else max(0.0, self.deadline - self.started))
            from .. import instrumentation

            coll = instrumentation._ACTIVE
            if coll is not None:
                coll.add("governor", f"timeout:{self.program}", elapsed)
            raise ExecutionTimeout(self.program, deadline_s, elapsed,
                                   self.last_state)

    def boundary(self, label: str) -> None:
        """State-boundary tick: the previously entered state has completed;
        check the budget before entering *label*."""
        if self._entered is not None:
            self.last_state = self._entered
        self._entered = label
        self.check()

    def __repr__(self) -> str:
        return (f"ArmedBudget({self.program!r}, deadline={self.deadline}, "
                f"last_state={self.last_state!r})")


# ---------------------------------------------------------------------------
# thread-local arming (the single-check activation pattern)
# ---------------------------------------------------------------------------

_tls = threading.local()


def current() -> Optional[ArmedBudget]:
    """The budget armed on this thread, or None (the off fast path)."""
    return getattr(_tls, "armed", None)


@contextlib.contextmanager
def armed(budget: Optional[Budget], program: str = "",
          deadline_at: Optional[float] = None) -> Iterator[Optional[ArmedBudget]]:
    """Arm *budget* for the dynamic extent of the block on this thread.

    A null/None budget arms nothing (yields None).  Nested armings stack;
    the watchdog is disarmed and the previous budget restored on exit.
    """
    if budget is None or budget.is_null:
        yield None
        return
    a = ArmedBudget(budget, program=program, deadline_at=deadline_at)
    a.arm_watchdog()
    prev = getattr(_tls, "armed", None)
    _tls.armed = a
    try:
        yield a
    finally:
        _tls.armed = prev
        a.disarm()


@contextlib.contextmanager
def adopt(a: Optional[ArmedBudget]) -> Iterator[None]:
    """Install an already-armed budget on this thread (pool workers: the
    dispatching thread's budget must govern its chunk bodies too)."""
    if a is None:
        yield
        return
    prev = getattr(_tls, "armed", None)
    _tls.armed = a
    try:
        yield
    finally:
        _tls.armed = prev


def tick() -> None:
    """Manual cooperative check site (simmpi op polling and friends)."""
    a = getattr(_tls, "armed", None)
    if a is not None:
        a.check()
