"""Per-program circuit breakers (DESIGN.md §12).

A serving process that recompiles and re-crashes the same program on every
request burns its capacity on known-bad work.  The breaker memoizes
terminal failures per program — keyed by the content-addressed cache
fingerprint (:func:`repro.cache.fingerprint`), so structurally identical
graphs share a circuit while any edit to the program closes it naturally
under a fresh key.

State machine (classic three-state):

* **closed** — calls flow; consecutive terminal failures are counted.
* **open** — after ``governor.breaker_threshold`` consecutive failures:
  calls fast-fail with :class:`CircuitOpenError` carrying the cached
  failure history (no re-parse, no recompile, no re-crash) until
  ``governor.cooldown_s`` has elapsed.
* **half-open** — one probe call is let through after the cooldown; success
  closes the circuit (counter reset), failure re-opens it and restarts the
  cooldown.

Transitions emit ``governor``-category instrumentation events.  The
registry is process-wide and thread-safe; only governed calls (an armed or
explicit :class:`~repro.governor.budget.Budget`) consult it, preserving the
zero-overhead-when-off guarantee for ungoverned callers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .budget import GovernorError

__all__ = ["CircuitOpenError", "BreakerState", "BreakerRegistry",
           "registry", "reset_breakers"]

#: cap on the failure history cached per circuit (the fast-fail payload)
_HISTORY_LIMIT = 8


class CircuitOpenError(GovernorError):
    """Fast-fail: the program's circuit is open from prior failures."""

    def __init__(self, key: str, program: str, failures: int,
                 retry_in_s: float, history: List[Dict[str, Any]]):
        self.key = key
        self.program = program
        self.failures = failures
        self.retry_in_s = retry_in_s
        #: cached failure records (most recent last) — the report callers
        #: would have gotten from re-running, without the re-run
        self.history = history
        super().__init__(
            f"circuit open for {program or key[:12]}: {failures} "
            f"consecutive failure(s), probe allowed in {retry_in_s:.2f}s; "
            f"last error: {history[-1]['error'] if history else '<none>'}")

    def to_dict(self) -> Dict[str, Any]:
        return {"error": "CircuitOpenError", "program": self.program,
                "key": self.key, "failures": self.failures,
                "retry_in_s": self.retry_in_s, "history": self.history}


@dataclass
class BreakerState:
    """One program's circuit."""

    key: str
    program: str = ""
    state: str = "closed"            # "closed" | "open" | "half-open"
    failures: int = 0                # consecutive failures
    opened_at: float = 0.0           # monotonic time of the last open
    opens: int = 0                   # lifetime open transitions
    history: List[Dict[str, Any]] = field(default_factory=list)

    def snapshot(self) -> Dict[str, Any]:
        return {"key": self.key, "program": self.program,
                "state": self.state, "failures": self.failures,
                "opens": self.opens, "history": list(self.history)}


class BreakerRegistry:
    """Process-wide circuit registry (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._circuits: Dict[str, BreakerState] = {}

    def _get(self, key: str, program: str) -> BreakerState:
        st = self._circuits.get(key)
        if st is None:
            st = self._circuits[key] = BreakerState(key=key, program=program)
        elif program and not st.program:
            st.program = program
        return st

    def _emit(self, name: str) -> None:
        from .. import instrumentation

        coll = instrumentation._ACTIVE
        if coll is not None:
            coll.add("governor", name, 0.0)

    # ------------------------------------------------------------- protocol
    def before_call(self, key: str, program: str = "") -> None:
        """Gate a call: raises :class:`CircuitOpenError` while open, lets a
        half-open probe through after the cooldown."""
        from ..config import Config

        with self._lock:
            st = self._get(key, program)
            if st.state != "open":
                return
            cooldown = float(Config.get("governor.cooldown_s"))
            elapsed = time.monotonic() - st.opened_at
            if elapsed >= cooldown:
                st.state = "half-open"
                self._emit(f"breaker-probe:{st.program or key[:12]}")
                return
            err = CircuitOpenError(key, st.program, st.failures,
                                   cooldown - elapsed, list(st.history))
        self._emit(f"breaker-fast-fail:{program or key[:12]}")
        raise err

    def record_success(self, key: str, program: str = "") -> None:
        with self._lock:
            st = self._get(key, program)
            recovered = st.state != "closed"
            st.state = "closed"
            st.failures = 0
            st.history.clear()
        if recovered:
            self._emit(f"breaker-close:{program or key[:12]}")

    def record_failure(self, key: str, exc: BaseException,
                       program: str = "", elapsed_s: float = 0.0) -> bool:
        """Count a terminal failure; returns True when this opened (or
        re-opened) the circuit."""
        from ..config import Config

        threshold = int(Config.get("governor.breaker_threshold"))
        with self._lock:
            st = self._get(key, program)
            st.failures += 1
            st.history.append({
                "error": f"{type(exc).__name__}: {exc}",
                "elapsed_s": elapsed_s,
                "detail": exc.to_dict() if isinstance(exc, GovernorError)
                          else None,
            })
            del st.history[:-_HISTORY_LIMIT]
            opened = (st.state == "half-open"
                      or (threshold > 0 and st.failures >= threshold))
            if opened:
                st.state = "open"
                st.opened_at = time.monotonic()
                st.opens += 1
        if opened:
            self._emit(f"breaker-open:{program or key[:12]}")
        return opened

    # ------------------------------------------------------------ inspection
    def state(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            st = self._circuits.get(key)
            return st.snapshot() if st is not None else None

    def circuits(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [st.snapshot() for st in self._circuits.values()]

    def reset(self) -> None:
        with self._lock:
            self._circuits.clear()


_REGISTRY = BreakerRegistry()


def registry() -> BreakerRegistry:
    return _REGISTRY


def reset_breakers() -> None:
    """Clear every circuit (tests)."""
    _REGISTRY.reset()
