"""CLI for the execution governor: ``python -m repro.governor sweep``."""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.governor",
        description="Execution-governor tooling for the data-centric "
                    "toolbox.")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep",
        help="run the bench corpus under hostile budgets; every run must "
             "end in a structured governor outcome")
    sweep.add_argument("--cases", default=None,
                       help="comma-separated corpus subset "
                            "(default: the built-in 8-program corpus)")
    sweep.add_argument("--out", default="GOVERNOR.json")
    sweep.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.command == "sweep":
        from .sweep import governor_sweep

        names = args.cases.split(",") if args.cases else None
        report = governor_sweep(case_names=names, out=args.out,
                                verbose=not args.quiet)
        summary = report["summary"]
        bad = (summary["failed"] or summary["unstructured"]
               or not summary["breaker_demo_ok"])
        return 1 if bad else 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
