"""Static memory admission control (DESIGN.md §12).

The SDFG model makes every allocation statically visible: data descriptors
carry symbolic shapes, and the multicore backend's extra buffers (per-chunk
WCR accumulators, privatized scope transients — see
:mod:`repro.runtime.parallel`) are derivable from the schedule.  The
admission planner walks those descriptors with the run's concrete symbol
bindings and produces an itemized :class:`MemoryPlan` *before* anything is
allocated; runs whose peak estimate exceeds ``Budget.max_bytes`` are
rejected with a structured :class:`MemoryBudgetExceeded` carrying the plan,
or — when ``governor.admission = "degrade"`` and a single-threaded plan
fits — auto-degraded to the serial tier (multicore dispatch disabled, which
drops the per-chunk accumulator/privatization overhead; the interpreter
tier has the same footprint).

The estimate is conservative-by-summation: all containers are counted as
live at once (transients with disjoint lifetimes are not overlapped), which
errs on the safe side for a budget check.  Shapes that cannot be evaluated
under the provided bindings (data-dependent bounds) are itemized with
``bytes = 0`` and a note, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .budget import Budget, GovernorError

__all__ = [
    "PlanItem", "MemoryPlan", "MemoryBudgetExceeded", "AdmissionDecision",
    "plan_memory", "admit",
]


@dataclass
class PlanItem:
    """One planned allocation: a container, or a parallel-backend extra."""

    name: str
    kind: str          # "argument" | "transient" | "stream" |
                       # "wcr-accumulator" | "privatized-transient"
    bytes: int
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        d = {"name": self.name, "kind": self.kind, "bytes": self.bytes}
        if self.note:
            d["note"] = self.note
        return d


@dataclass
class MemoryPlan:
    """Itemized peak-memory estimate for one SDFG under concrete symbols."""

    program: str
    threads: int
    items: List[PlanItem] = field(default_factory=list)

    @property
    def peak_bytes(self) -> int:
        return sum(item.bytes for item in self.items)

    def by_kind(self, kind: str) -> List[PlanItem]:
        return [i for i in self.items if i.kind == kind]

    def to_dict(self) -> Dict[str, Any]:
        return {"program": self.program, "threads": self.threads,
                "peak_bytes": self.peak_bytes,
                "items": [i.to_dict() for i in self.items]}

    def summary(self, limit: int = 8) -> str:
        ranked = sorted(self.items, key=lambda i: -i.bytes)
        lines = [f"{self.program or '<sdfg>'}: estimated peak "
                 f"{self.peak_bytes} bytes across {len(self.items)} "
                 f"container(s) at {self.threads} thread(s)"]
        for item in ranked[:limit]:
            note = f" ({item.note})" if item.note else ""
            lines.append(f"  {item.bytes:>12}  {item.kind:<20} "
                         f"{item.name}{note}")
        if len(ranked) > limit:
            lines.append(f"  ... and {len(ranked) - limit} more")
        return "\n".join(lines)


class MemoryBudgetExceeded(GovernorError):
    """Admission control rejected the run before allocation."""

    def __init__(self, program: str, plan: MemoryPlan, max_bytes: int,
                 serial_plan: Optional[MemoryPlan] = None):
        self.program = program
        self.plan = plan
        self.max_bytes = max_bytes
        self.serial_plan = serial_plan
        super().__init__(
            f"admission control rejected {program or '<sdfg>'}: planned "
            f"peak {plan.peak_bytes} bytes exceeds governor budget of "
            f"{max_bytes} bytes\n{plan.summary()}")

    def to_dict(self) -> Dict[str, Any]:
        d = {"error": "MemoryBudgetExceeded", "program": self.program,
             "max_bytes": self.max_bytes, "plan": self.plan.to_dict()}
        if self.serial_plan is not None:
            d["serial_plan"] = self.serial_plan.to_dict()
        return d


@dataclass
class AdmissionDecision:
    """Outcome of a successful admission check.

    ``action`` is ``"admit"`` (the full plan fits) or ``"degrade-serial"``
    (only the single-threaded plan fits: run with multicore dispatch
    disabled).  ``rejected`` keeps the over-budget plan for reporting when
    a degrade happened.
    """

    action: str
    plan: MemoryPlan
    rejected: Optional[MemoryPlan] = None

    def to_dict(self) -> Dict[str, Any]:
        d = {"action": self.action, "plan": self.plan.to_dict()}
        if self.rejected is not None:
            d["rejected"] = self.rejected.to_dict()
        return d


# ---------------------------------------------------------------------------
# the planner
# ---------------------------------------------------------------------------

def _eval_bytes(desc, env: Dict[str, int]) -> Optional[int]:
    """Evaluate a descriptor's symbolic byte size; None when unbound
    symbols (data-dependent shapes) make it unevaluable here."""
    try:
        return int(desc.size_bytes().evaluate(env))
    except Exception:
        return None


def _symbol_env(symbols: Dict[str, Any]) -> Dict[str, int]:
    env = {}
    for name, value in symbols.items():
        try:
            env[name] = int(value)
        except (TypeError, ValueError):
            continue
    return env


def plan_memory(sdfg, symbols: Dict[str, Any],
                threads: Optional[int] = None,
                _prefix: str = "") -> MemoryPlan:
    """Walk *sdfg*'s data descriptors (recursing into nested SDFGs) and the
    multicore schedule to produce an itemized peak-bytes plan.

    *threads* defaults to the resolved worker count
    (:func:`repro.runtime.parallel.configured_threads`); pass 1 to price the
    serial tier (no per-chunk accumulators or privatized copies).
    """
    from ..ir.data import Stream
    from ..ir.nodes import AccessNode, MapEntry, NestedSDFG, ScheduleType

    if threads is None:
        from ..runtime.parallel import configured_threads

        threads = configured_threads()
    threads = max(1, int(threads))

    env = _symbol_env(symbols)
    plan = MemoryPlan(program=_prefix + getattr(sdfg, "name", ""),
                      threads=threads)

    for name, desc in sdfg.arrays.items():
        if isinstance(desc, Stream):
            plan.items.append(PlanItem(_prefix + name, "stream", 0,
                                       note="unbounded stream (not priced)"))
            continue
        kind = "transient" if desc.transient else "argument"
        nbytes = _eval_bytes(desc, env)
        if nbytes is None:
            plan.items.append(PlanItem(
                _prefix + name, kind, 0,
                note=f"unevaluated shape {tuple(str(s) for s in desc.shape)}"))
        else:
            plan.items.append(PlanItem(_prefix + name, kind, nbytes))

    # parallel-backend extras: per-chunk WCR accumulators are full-size
    # identity copies of the conflicted output (one per chunk, chunks ==
    # threads), and the interpreter path privatizes scope transients per
    # chunk (see runtime/parallel.py); both vanish on the serial tier
    for state in sdfg.states():
        try:
            scope = state.scope_dict()
        except Exception:
            scope = {}
        for node in state.nodes():
            if isinstance(node, NestedSDFG):
                nested = plan_memory(node.sdfg, symbols, threads=threads,
                                     _prefix=_prefix + node.sdfg.name + ".")
                plan.items.extend(i for i in nested.items
                                  if i.kind != "argument")
                continue
            if not isinstance(node, MapEntry) or scope.get(node) is not None:
                continue
            if node.map.schedule != ScheduleType.CPU_Multicore or threads <= 1:
                continue
            label = node.map.label or ",".join(node.map.params)
            exit_node = node.exit_node
            seen_wcr = set()
            for edge in state.in_edges(exit_node):
                memlet = edge.memlet
                if memlet.is_empty() or memlet.wcr is None \
                        or memlet.data in seen_wcr:
                    continue
                seen_wcr.add(memlet.data)
                desc = sdfg.arrays.get(memlet.data)
                if desc is None or isinstance(desc, Stream):
                    continue
                nbytes = _eval_bytes(desc, env)
                plan.items.append(PlanItem(
                    f"{_prefix}{memlet.data}@{label}", "wcr-accumulator",
                    (nbytes or 0) * threads,
                    note=f"{threads} per-chunk identity copies"
                         + ("" if nbytes is not None else "; unevaluated")))
            for inner in state.scope_subgraph_nodes(node):
                if inner is node or inner is exit_node:
                    continue
                if not isinstance(inner, AccessNode):
                    continue
                desc = sdfg.arrays.get(inner.data)
                if desc is None or not desc.transient \
                        or isinstance(desc, Stream):
                    continue
                nbytes = _eval_bytes(desc, env)
                plan.items.append(PlanItem(
                    f"{_prefix}{inner.data}@{label}", "privatized-transient",
                    (nbytes or 0) * threads,
                    note=f"{threads} chunk-private copies"
                         + ("" if nbytes is not None else "; unevaluated")))
    return plan


def admit(sdfg, symbols: Dict[str, Any], budget: Budget,
          program: str = "", allow_degrade: Optional[bool] = None
          ) -> AdmissionDecision:
    """Check *sdfg* against ``budget.max_bytes`` before allocation.

    Returns an :class:`AdmissionDecision`; raises
    :class:`MemoryBudgetExceeded` (with the itemized plan) when no tier
    fits.  With ``governor.admission = "degrade"`` (the default) an
    over-budget multicore plan falls back to the serial tier when that
    fits; ``"strict"`` always rejects.
    """
    from .. import instrumentation
    from ..config import Config

    program = program or getattr(sdfg, "name", "")
    plan = plan_memory(sdfg, symbols)
    max_bytes = budget.max_bytes
    if not max_bytes or plan.peak_bytes <= max_bytes:
        return AdmissionDecision("admit", plan)
    if allow_degrade is None:
        allow_degrade = Config.get("governor.admission") == "degrade"
    coll = instrumentation._ACTIVE
    if allow_degrade and plan.threads > 1:
        serial = plan_memory(sdfg, symbols, threads=1)
        if serial.peak_bytes <= max_bytes:
            if coll is not None:
                coll.add("governor", f"degrade-serial:{program}", 0.0)
            return AdmissionDecision("degrade-serial", serial, rejected=plan)
    if coll is not None:
        coll.add("governor", f"admission-reject:{program}", 0.0)
    raise MemoryBudgetExceeded(program, plan, max_bytes)
