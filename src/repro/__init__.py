"""Data-centric Python toolbox — reproduction of "Productivity, Portability,
Performance: Data-Centric Python" (SC'21).

Public API mirrors the paper's ``dace`` module: the ``@program`` decorator,
``symbol`` declarations, NumPy-compatible dtypes usable as annotations
(``float64[N, N]``), the ``map`` parametric-parallelism iterator, and the
explicit-communication ``comm`` namespace for distributed programs.
"""

from . import governor, instrumentation, sanitizer
from .config import Config
from .dtypes import (bool_, complex64, complex128, float32, float64, int8,
                     int16, int32, int64, symbol, uint8, uint16, uint32,
                     uint64)
from .frontend.decorator import DaceProgram, map_marker as map, program
from .governor import (Budget, CircuitOpenError, ExecutionTimeout,
                       GovernorError, MemoryBudgetExceeded)
from .instrumentation import ProfileCollector, ProfileReport, profile
from .ir import SDFG, InterstateEdge, Memlet, SDFGState
from .resilience import FailureReport, ResilienceWarning
from .sanitizer import SanitizerError
from .symbolic import Range, Symbol

__version__ = "1.0.0"

__all__ = [
    "program", "DaceProgram", "map", "symbol", "Config",
    "SDFG", "SDFGState", "Memlet", "InterstateEdge", "Range", "Symbol",
    "FailureReport", "ResilienceWarning",
    "instrumentation", "profile", "ProfileCollector", "ProfileReport",
    "sanitizer", "SanitizerError",
    "governor", "Budget", "GovernorError", "ExecutionTimeout",
    "MemoryBudgetExceeded", "CircuitOpenError",
    "bool_", "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64",
    "float32", "float64", "complex64", "complex128",
]
