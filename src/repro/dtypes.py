"""NumPy-compatible scalar type system and annotation syntax.

Mirrors the paper's annotated-Python interface: ``repro.float64`` is a scalar
type usable directly as a function-argument annotation, and
``repro.float64[N, M]`` produces an array annotation with symbolic shape
(the ``dace.float64[N, N]`` syntax from §2.2 of the paper).
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from .symbolic import Expr, Symbol, sympify

__all__ = [
    "typeclass",
    "ArrayAnnotation",
    "symbol",
    "bool_",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "float32",
    "float64",
    "complex64",
    "complex128",
    "dtype_of",
]


class typeclass:
    """A scalar element type backed by a NumPy dtype.

    Instances double as *scalar annotations* in ``@repro.program`` signatures;
    subscripting (``float64[N, M]``) yields an :class:`ArrayAnnotation`.
    """

    __slots__ = ("name", "nptype")

    def __init__(self, name: str, nptype: type):
        self.name = name
        self.nptype = np.dtype(nptype)

    @property
    def bytes(self) -> int:
        return self.nptype.itemsize

    @property
    def is_float(self) -> bool:
        return np.issubdtype(self.nptype, np.floating)

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.nptype, np.integer)

    @property
    def is_complex(self) -> bool:
        return np.issubdtype(self.nptype, np.complexfloating)

    @property
    def is_bool(self) -> bool:
        return self.nptype == np.dtype(bool)

    def __getitem__(self, shape) -> "ArrayAnnotation":
        if not isinstance(shape, tuple):
            shape = (shape,)
        return ArrayAnnotation(self, shape)

    def __call__(self, value):
        """Cast a Python/NumPy value to this scalar type."""
        return self.nptype.type(value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, typeclass):
            return self.nptype == other.nptype
        if isinstance(other, (np.dtype, type)):
            try:
                return self.nptype == np.dtype(other)
            except TypeError:
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.nptype)

    def __repr__(self) -> str:
        return self.name

    def to_json(self) -> str:
        return self.name

    @staticmethod
    def from_json(name: str) -> "typeclass":
        return _BY_NAME[name]


class ArrayAnnotation:
    """An annotation ``dtype[shape...]`` carrying a symbolic shape."""

    __slots__ = ("dtype", "shape")

    def __init__(self, dtype: typeclass, shape: Sequence[Union[int, Expr]]):
        self.dtype = dtype
        self.shape: Tuple[Expr, ...] = tuple(sympify(s) for s in shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __repr__(self) -> str:
        dims = ", ".join(str(s) for s in self.shape)
        return f"{self.dtype.name}[{dims}]"


bool_ = typeclass("bool", np.bool_)
int8 = typeclass("int8", np.int8)
int16 = typeclass("int16", np.int16)
int32 = typeclass("int32", np.int32)
int64 = typeclass("int64", np.int64)
uint8 = typeclass("uint8", np.uint8)
uint16 = typeclass("uint16", np.uint16)
uint32 = typeclass("uint32", np.uint32)
uint64 = typeclass("uint64", np.uint64)
float32 = typeclass("float32", np.float32)
float64 = typeclass("float64", np.float64)
complex64 = typeclass("complex64", np.complex64)
complex128 = typeclass("complex128", np.complex128)

_ALL = [
    bool_, int8, int16, int32, int64, uint8, uint16, uint32, uint64,
    float32, float64, complex64, complex128,
]
_BY_NAME = {t.name: t for t in _ALL}
_BY_NAME["bool_"] = bool_


def dtype_of(value) -> typeclass:
    """Map a NumPy dtype / array / Python scalar to its typeclass."""
    if isinstance(value, typeclass):
        return value
    if isinstance(value, np.ndarray):
        np_dtype = value.dtype
    elif isinstance(value, np.dtype):
        np_dtype = value
    elif isinstance(value, np.generic):
        np_dtype = value.dtype
    elif isinstance(value, bool):
        np_dtype = np.dtype(np.bool_)
    elif isinstance(value, int):
        np_dtype = np.dtype(np.int64)
    elif isinstance(value, float):
        np_dtype = np.dtype(np.float64)
    elif isinstance(value, complex):
        np_dtype = np.dtype(np.complex128)
    else:
        try:
            np_dtype = np.dtype(value)
        except TypeError:
            raise TypeError(f"cannot infer dtype for {value!r}") from None
    name = np_dtype.name
    if name not in _BY_NAME:
        raise TypeError(f"unsupported dtype {np_dtype}")
    return _BY_NAME[name]


def symbol(name: str, positive: bool = True) -> Symbol:
    """Declare a symbolic size (``N = repro.symbol('N')``)."""
    return Symbol(name, nonnegative=True, positive=positive)


def result_type(*types: typeclass) -> typeclass:
    """NumPy-style type promotion over typeclasses."""
    np_result = np.result_type(*[t.nptype for t in types])
    return dtype_of(np_result)
