"""Static race detection for map scopes.

For every map scope the detector classifies the parallel execution of its
iteration space as one of three verdicts:

``race-free``
    Every pair of potentially conflicting accesses (write-write or
    read-write on the same container) is proven safe: WCR writes commute by
    construction, non-WCR writes are injective in the map parameters, and
    read/write subsets either coincide per iteration point or are provably
    disjoint across iteration points.

``race``
    A conflict is *proven*: two distinct iteration points (or two distinct
    writers within one point) touch the same element, at least one of them
    writing without WCR.

``unproved``
    The symbolic engine cannot decide (dynamic memlets, non-affine
    subscripts, symbolic strides, nested-scope parameters, ...).  Runtime
    guards and the differential oracle cover this residue.

The analysis works on the *inner* memlets of a scope — the edges leaving the
``MapEntry`` (reads) and entering the ``MapExit`` (writes) — which carry the
per-iteration subsets; outer edges only carry propagated hulls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.memlet import Memlet
from ..ir.nodes import MapEntry
from ..ir.sdfg import SDFG
from ..ir.state import SDFGState
from ..symbolic import Integer, Range, definitely_eq, definitely_le

__all__ = ["RACE_FREE", "UNPROVED", "RACE", "Conflict", "MapRaceVerdict",
           "check_races", "analyze_map"]

RACE_FREE = "race-free"
UNPROVED = "unproved"
RACE = "race"

_ORDER = {RACE_FREE: 0, UNPROVED: 1, RACE: 2}


@dataclass
class Conflict:
    """One potentially conflicting access pair inside a map scope."""

    kind: str            # "write-write" | "read-write" | "wcr-mix" | "self"
    container: str
    first: str           # str(subset) of the first access
    second: str          # str(subset) of the second access (or note)
    verdict: str         # UNPROVED or RACE
    note: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "container": self.container,
                "first": self.first, "second": self.second,
                "verdict": self.verdict, "note": self.note}


@dataclass
class MapRaceVerdict:
    """Race-analysis result for one map scope."""

    sdfg: str
    state: str
    map_label: str
    params: Tuple[str, ...]
    verdict: str
    conflicts: List[Conflict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"sdfg": self.sdfg, "state": self.state, "map": self.map_label,
                "params": list(self.params), "verdict": self.verdict,
                "conflicts": [c.to_dict() for c in self.conflicts]}


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _multiple_points(dim) -> Optional[bool]:
    """Does a map-range dimension ``(b, e, s)`` contain at least two
    iteration points?  Three-valued; assumes a positive step."""
    begin, end, step = dim
    if isinstance(step, Integer) and step.value <= 0:
        return None
    return definitely_le(begin + step, end)


def _nonempty(rng: Range) -> Optional[bool]:
    """Does the box contain at least one point?  Three-valued."""
    verdict: Optional[bool] = True
    for begin, end, _ in rng.dims:
        le = definitely_le(begin, end)
        if le is False:
            return False
        if le is None:
            verdict = None
    return verdict


def _param_names(memlet: Memlet, params: Sequence[str]) -> set:
    if memlet.subset is None:
        return set()
    return {s.name for s in memlet.subset.free_symbols} & set(params)


def _hull(subset: Range, param_ranges: Dict[str, Tuple]) -> Optional[Range]:
    """Over-approximate a parametric subset by a parameter-free box, by
    substituting each map parameter's extreme values.  Uses the per-dimension
    affine bound logic shared with the bounds checker."""
    from .bounds import minmax_expr

    chain = list(param_ranges.items())
    dims = []
    for begin, end, step in subset.dims:
        lo = minmax_expr(begin, chain, want_max=False)
        hi = minmax_expr(end, chain, want_max=True)
        if lo is None or hi is None:
            return None
        dims.append((lo, hi, 1))
    return Range(dims)


def _points_shift(write: Range, read: Range, params: Sequence[str],
                  param_dims: Dict[str, Tuple]):
    """Decide whether ``write`` (at iteration x) can alias ``read`` (at a
    *different* iteration y) when both subsets are per-dimension points.

    Returns one of:
      ("safe", note)      -- provably no cross-iteration aliasing
      ("race", note)      -- a realizable nonzero iteration shift exists
      ("unproved", note)  -- cannot decide
    """
    # Imported lazily: codegen transitively imports the executor, which
    # imports the guard module of this package (cycle-safe at call time).
    from ..codegen.pygen import affine_decompose

    if write.ndim != read.ndim:
        return ("unproved", "rank mismatch")
    shifts: Dict[str, int] = {}
    for d, ((wb, we, _), (rb, re_, _)) in enumerate(zip(write.dims, read.dims)):
        if definitely_eq(wb, we) is not True or definitely_eq(rb, re_) is not True:
            return ("unproved", f"dim {d} is not a point")
        wdec = affine_decompose(wb, params)
        rdec = affine_decompose(rb, params)
        if wdec is None or rdec is None:
            return ("unproved", f"dim {d} not affine in one parameter")
        wp, wa, wc = wdec
        rp, ra, rc = rdec
        if wp is None and rp is None:
            eq = definitely_eq(wc, rc)
            if eq is False:
                return ("safe", f"dim {d} constants differ")
            if eq is None:
                return ("unproved", f"dim {d} constants undecided")
            continue
        if wp is None or rp is None or wp != rp:
            return ("unproved", f"dim {d} parameters differ")
        if wa != ra or not isinstance(wa, Integer) or wa.value == 0:
            return ("unproved", f"dim {d} coefficients differ or are symbolic")
        delta = rc - wc  # read at y aliases write at x iff y = x + delta/a
        if not isinstance(delta, Integer):
            return ("unproved", f"dim {d} offset is symbolic")
        if delta.value % wa.value != 0:
            return ("safe", f"dim {d} offset not a multiple of the coefficient")
        t = delta.value // wa.value
        if wp in shifts and shifts[wp] != t:
            return ("safe", f"inconsistent shifts for {wp}")
        shifts[wp] = t
    nonzero = {p: t for p, t in shifts.items() if t != 0}
    if not nonzero:
        # Aliasing only at the same iteration point (or along params that
        # constrain nothing): sequential within an iteration, hence safe.
        return ("safe", "aliasing only within one iteration point")
    # A nonzero shift conflicts iff some iteration x has x + t also in range.
    for p, t in nonzero.items():
        begin, end, step = param_dims[p]
        if not isinstance(step, Integer) or step.value <= 0:
            return ("unproved", f"symbolic step for {p}")
        if abs(t) % step.value != 0:
            return ("safe", f"shift {t} for {p} not a multiple of step {step}")
        realizable = definitely_le(begin + abs(t), end)
        if realizable is False:
            return ("safe", f"shift {t} exceeds the range of {p}")
        if realizable is None:
            return ("unproved", f"shift {t} for {p} undecided")
    shift_desc = ", ".join(f"{p}{t:+d}" for p, t in sorted(nonzero.items()))
    return ("race", f"aliases at iteration shift ({shift_desc})")


def _injective_verdict(memlet: Memlet, params: Sequence[str],
                       param_dims: Dict[str, Tuple]):
    """Is a non-WCR write subset injective across iteration points?

    Returns ``(verdict, note)`` with verdict in {RACE_FREE, UNPROVED, RACE}.
    """
    from ..codegen.pygen import affine_decompose

    subset = memlet.subset
    if memlet.dynamic:
        return (UNPROVED, "dynamic (data-dependent) memlet")
    if subset is None:
        return (UNPROVED, "missing subset")
    syms = {s.name for s in subset.free_symbols}
    # Parameters the subset does not mention at all: if such a parameter
    # provably has >= 2 iteration points, every one of them writes the same
    # subset -> a definite write-write race (when the subset is nonempty).
    undecided_multiplicity = False
    for p in params:
        if p in syms:
            continue
        multi = _multiple_points(param_dims[p])
        if multi is True:
            if _nonempty(subset) is True:
                return (RACE, f"subset independent of parameter {p} "
                              f"with multiple iteration points")
            return (UNPROVED, f"subset independent of {p}; emptiness undecided")
        if multi is None:
            undecided_multiplicity = True
    # Each mentioned parameter needs a separating dimension: a point dim
    # affine in that parameter alone with a provably nonzero coefficient.
    separated = set()
    for d, (begin, end, step) in enumerate(subset.dims):
        if definitely_eq(begin, end) is not True:
            continue
        dec = affine_decompose(begin, params)
        if dec is None or dec[0] is None:
            continue
        p, a, _c = dec
        nonzero = (isinstance(a, Integer) and a.value != 0) or \
            a.is_positive() is True or (-a).is_positive() is True
        if nonzero:
            separated.add(p)
    missing = [p for p in params if p in syms and p not in separated]
    if missing:
        return (UNPROVED, f"no separating dimension for {', '.join(missing)}")
    if undecided_multiplicity:
        unknown = [p for p in params if p not in syms]
        return (UNPROVED, f"iteration multiplicity undecided for "
                          f"{', '.join(unknown)}")
    return (RACE_FREE, "injective in all map parameters")


# ---------------------------------------------------------------------------
# Per-map analysis
# ---------------------------------------------------------------------------

def analyze_map(state: SDFGState, entry: MapEntry,
                sdfg: Optional[SDFG] = None) -> MapRaceVerdict:
    """Race-analyze one map scope of *state*."""
    map_obj = entry.map
    params = tuple(map_obj.params)
    param_dims = {p: map_obj.range.dims[i] for i, p in enumerate(params)}
    exit_node = entry.exit_node

    # Parameters of maps nested inside this scope: memlets mentioning them
    # cannot be analyzed from this scope's viewpoint.
    nested_params: set = set()
    for node in state.scope_subgraph_nodes(entry):
        if isinstance(node, MapEntry) and node is not entry:
            nested_params |= set(node.map.params)

    writes: List[Memlet] = []
    for edge in state.in_edges(exit_node):
        if edge.dst_conn and edge.memlet is not None and edge.memlet.data:
            writes.append(edge.memlet)
    reads: List[Memlet] = []
    for edge in state.out_edges(entry):
        if edge.src_conn and edge.memlet is not None and edge.memlet.data:
            reads.append(edge.memlet)

    conflicts: List[Conflict] = []
    verdict = RACE_FREE

    def record(kind, container, first, second, v, note):
        nonlocal verdict
        if _ORDER[v] > _ORDER[verdict]:
            verdict = v
        if v != RACE_FREE:
            conflicts.append(Conflict(kind, container, str(first), str(second), v, note))

    def foreign(memlet: Memlet) -> bool:
        if memlet.subset is None:
            return False
        return bool({s.name for s in memlet.subset.free_symbols} & nested_params)

    def hull_of(memlet: Memlet) -> Optional[Range]:
        if memlet.subset is None or memlet.dynamic or foreign(memlet):
            return None
        return _hull(memlet.subset, param_dims)

    # --- per-write self analysis (same write vs. itself at other points) ---
    for w in writes:
        if w.wcr is not None:
            continue  # WCR writes commute by construction
        if foreign(w):
            record("self", w.data, w.subset, "(nested scope)", UNPROVED,
                   "subset uses nested-map parameters")
            continue
        v, note = _injective_verdict(w, params, param_dims)
        if v != RACE_FREE:
            record("self", w.data, w.subset, "(self)", v, note)

    # --- pairwise write-write ---------------------------------------------
    for i in range(len(writes)):
        for j in range(i + 1, len(writes)):
            w1, w2 = writes[i], writes[j]
            if w1.data != w2.data:
                continue
            both_wcr = w1.wcr is not None and w2.wcr is not None
            if both_wcr and w1.wcr == w2.wcr:
                continue  # same commutative reduction: safe
            if w1.dynamic or w2.dynamic:
                record("write-write", w1.data, w1.subset, w2.subset, UNPROVED,
                       "dynamic memlet")
                continue
            h1, h2 = hull_of(w1), hull_of(w2)
            if h1 is not None and h2 is not None and h1.intersects(h2) is False:
                continue  # provably disjoint footprints
            kind = "wcr-mix" if (w1.wcr is not None) != (w2.wcr is not None) \
                or (both_wcr and w1.wcr != w2.wcr) else "write-write"
            same = w1.subset is not None and w2.subset is not None and \
                w1.subset == w2.subset
            if same and _nonempty(w1.subset) is True:
                record(kind, w1.data, w1.subset, w2.subset, RACE,
                       "two writers touch the identical subset")
            else:
                record(kind, w1.data, w1.subset, w2.subset, UNPROVED,
                       "possibly overlapping writers")

    # --- read-write --------------------------------------------------------
    for r in reads:
        for w in writes:
            if r.data != w.data:
                continue
            if w.wcr is not None:
                # Reading a container that is concurrently WCR-updated is
                # order-dependent unless the footprints are disjoint.
                hr, hw = hull_of(r), hull_of(w)
                if hr is not None and hw is not None and \
                        hr.intersects(hw) is False:
                    continue
                record("read-write", r.data, r.subset, w.subset, UNPROVED,
                       "read overlaps a WCR-updated container")
                continue
            if r.dynamic or w.dynamic:
                record("read-write", r.data, r.subset, w.subset, UNPROVED,
                       "dynamic memlet")
                continue
            if foreign(r) or foreign(w):
                record("read-write", r.data, r.subset, w.subset, UNPROVED,
                       "subset uses nested-map parameters")
                continue
            if r.subset is not None and w.subset is not None and \
                    r.subset == w.subset:
                continue  # same-point access: sequenced within the iteration
            hr, hw = hull_of(r), hull_of(w)
            if hr is not None and hw is not None and hr.intersects(hw) is False:
                continue
            result, note = _points_shift(w.subset, r.subset, params, param_dims)
            if result == "safe":
                continue
            record("read-write", r.data, r.subset, w.subset,
                   RACE if result == "race" else UNPROVED, note)

    return MapRaceVerdict(
        sdfg=sdfg.name if sdfg is not None else "",
        state=state.label, map_label=map_obj.label, params=params,
        verdict=verdict, conflicts=conflicts)


def check_races(sdfg: SDFG) -> List[MapRaceVerdict]:
    """Analyze every map scope of *sdfg* (including nested SDFGs)."""
    from ..ir.nodes import NestedSDFG

    verdicts: List[MapRaceVerdict] = []
    for state in sdfg.states():
        for node in state.nodes():
            if isinstance(node, MapEntry):
                verdicts.append(analyze_map(state, node, sdfg))
            elif isinstance(node, NestedSDFG):
                verdicts.extend(check_races(node.sdfg))
    return verdicts
