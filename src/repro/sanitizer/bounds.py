"""Static bounds checking for memlet subsets.

For every memlet edge the checker tries to prove that the accessed subset
stays inside its container's shape for *all* iterations of the enclosing map
scopes.  Structural validation (:mod:`repro.ir.validation`) only compares
ranks; this module compares symbolic extents:

``in-bounds``
    ``0 <= min(subset)`` and ``max(subset) <= shape - 1`` proven per
    dimension, minimizing/maximizing over the enclosing map-parameter boxes.

``out-of-bounds``
    Some dimension *provably* escapes ``[0, shape)`` for an iteration that
    provably executes (all enclosing ranges nonempty, subset dim nonempty).
    These are hard errors: they feed ``collect_validation_errors`` and make
    the transactional-transformation gate roll the offending pass back.

``unproved``
    Anything the symbolic engine cannot decide (dynamic memlets, non-affine
    subscripts, loop-carried symbols from interstate edges, ...); covered at
    runtime by the guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.data import Scalar, Stream
from ..ir.memlet import Memlet
from ..ir.nodes import AccessNode, MapEntry, MapExit
from ..ir.sdfg import SDFG
from ..ir.state import Edge, SDFGState
from ..symbolic import Expr, Integer, Symbol, definitely_le, definitely_lt, sympify

__all__ = ["IN_BOUNDS", "UNPROVED", "OUT_OF_BOUNDS", "BoundsVerdict",
           "check_bounds", "minmax_expr"]

IN_BOUNDS = "in-bounds"
UNPROVED = "unproved"
OUT_OF_BOUNDS = "out-of-bounds"


@dataclass
class BoundsVerdict:
    """Bounds-analysis result for one memlet subset."""

    sdfg: str
    state: str
    container: str
    subset: str
    verdict: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {"sdfg": self.sdfg, "state": self.state,
                "container": self.container, "subset": self.subset,
                "verdict": self.verdict, "detail": self.detail}


# ---------------------------------------------------------------------------
# Affine min/max over parameter boxes
# ---------------------------------------------------------------------------

ParamDim = Tuple[str, Tuple[Expr, Expr, Expr]]


def _bound_in(expr: Expr, param: str, begin: Expr, end: Expr,
              want_max: bool) -> Optional[Expr]:
    """Extremize *expr* over ``param in [begin, end]`` assuming linearity in
    *param*; ``None`` when the coefficient sign (or linearity) is unknown."""
    c = expr.subs({param: 0})
    a = expr.subs({param: 1}) - c
    if a * Symbol(param, nonnegative=False) + c != expr:
        return None  # not linear in param
    if isinstance(a, Integer) and a.value == 0:
        return expr
    if a.is_nonnegative() is True:
        return a * end + c if want_max else a * begin + c
    if (-a).is_nonnegative() is True:
        return a * begin + c if want_max else a * end + c
    return None


def minmax_expr(expr, chain: Sequence[ParamDim], want_max: bool) -> Optional[Expr]:
    """Extreme value of *expr* over the parameter boxes of *chain*.

    *chain* must be ordered innermost-first: inner map bounds may reference
    outer parameters (triangular iteration spaces), so inner parameters are
    eliminated before outer ones.  Step/phase is ignored — using the box ends
    over-approximates, which is sound for in-bounds proofs (out-of-bounds
    claims additionally require unit steps, checked by the caller).
    """
    result = sympify(expr)
    for param, (begin, end, _step) in chain:
        if Symbol(param) not in result.free_symbols:
            continue
        bounded = _bound_in(result, param, begin, end, want_max)
        if bounded is None:
            return None
        result = bounded
    return result


# ---------------------------------------------------------------------------
# Scope chains
# ---------------------------------------------------------------------------

def _chain_of(node, scope: Dict) -> List[MapEntry]:
    """Innermost-first list of map entries enclosing *node* (for MapEntry /
    MapExit nodes the own scope is included)."""
    if isinstance(node, MapEntry):
        current: Optional[MapEntry] = node
    elif isinstance(node, MapExit):
        current = node.entry_node
    else:
        current = scope.get(node)
    out: List[MapEntry] = []
    while current is not None:
        out.append(current)
        current = scope.get(current)
    return out


def _edge_chain(edge: Edge, scope: Dict) -> List[ParamDim]:
    """Parameter boxes in scope at *edge*, innermost-first.  Edge endpoints
    differ by at most one scope level, so the deeper chain contains both."""
    src_chain = _chain_of(edge.src, scope)
    dst_chain = _chain_of(edge.dst, scope)
    entries = src_chain if len(src_chain) >= len(dst_chain) else dst_chain
    chain: List[ParamDim] = []
    for entry in entries:
        for i, p in enumerate(entry.map.params):
            chain.append((p, entry.map.range.dims[i]))
    return chain


def _chain_provably_nonempty(chain: Sequence[ParamDim]) -> bool:
    return all(definitely_le(b, e) is True for _, (b, e, _s) in chain)


def _chain_unit_steps(chain: Sequence[ParamDim], symbols: frozenset) -> bool:
    relevant = [dim for p, dim in chain if Symbol(p) in symbols]
    return all(isinstance(s, Integer) and s.value == 1 for _b, _e, s in relevant)


# ---------------------------------------------------------------------------
# Per-subset analysis
# ---------------------------------------------------------------------------

def _subset_verdict(subset, shape, chain: Sequence[ParamDim]) -> Tuple[str, str]:
    """Classify one subset against one shape under one parameter chain."""
    proven = True
    for d, ((begin, end, _step), dim_size) in enumerate(zip(subset.dims, shape)):
        lo = minmax_expr(begin, chain, want_max=False)
        hi = minmax_expr(end, chain, want_max=True)
        if lo is None or hi is None:
            return (UNPROVED, f"dim {d}: extent not affine in the map parameters")
        limit = sympify(dim_size) - 1
        low_ok = definitely_le(0, lo)
        high_ok = definitely_le(hi, limit)
        if low_ok is True and high_ok is True:
            continue
        # A *proven* violation needs a witness iteration that executes:
        # nonempty enclosing ranges, nonempty subset dim, and unit steps so
        # the box ends are actually reached.
        provable_site = (
            _chain_provably_nonempty(chain)
            and definitely_le(begin, end) is True
            and _chain_unit_steps(chain, begin.free_symbols | end.free_symbols)
        )
        if provable_site:
            # With unit steps and nonempty ranges the box extremes are
            # reached by an iteration that actually executes.
            if definitely_lt(lo, 0) is True:
                return (OUT_OF_BOUNDS, f"dim {d}: index reaches {lo} < 0")
            if definitely_lt(limit, hi) is True:
                return (OUT_OF_BOUNDS,
                        f"dim {d}: index reaches {hi} > {limit}")
        proven = False
    if proven:
        return (IN_BOUNDS, "")
    return (UNPROVED, "bounds undecided by the symbolic engine")


def _descriptor_for(edge: Edge, memlet: Memlet, sdfg: SDFG, other: bool):
    """(name, descriptor) the subset indexes into; ``other_subset`` indexes
    the non-``memlet.data`` endpoint of a copy edge."""
    if not other:
        return memlet.data, sdfg.arrays.get(memlet.data)
    for node in (edge.dst, edge.src):
        if isinstance(node, AccessNode) and node.data != memlet.data:
            return node.data, sdfg.arrays.get(node.data)
    return None, None


def check_bounds(sdfg: SDFG) -> List[BoundsVerdict]:
    """Bounds-check every memlet subset of *sdfg* (including nested SDFGs)."""
    from ..ir.nodes import NestedSDFG

    verdicts: List[BoundsVerdict] = []
    for state in sdfg.states():
        scope = state.scope_dict()
        for edge in state.edges():
            memlet = edge.memlet
            if memlet is None or not memlet.data:
                continue
            chain = _edge_chain(edge, scope)
            for other in (False, True):
                subset = memlet.other_subset if other else memlet.subset
                if subset is None:
                    continue
                name, desc = _descriptor_for(edge, memlet, sdfg, other)
                if desc is None or isinstance(desc, (Scalar, Stream)):
                    continue
                if subset.ndim != desc.ndim:
                    continue  # rank errors belong to structural validation
                if memlet.dynamic:
                    verdicts.append(BoundsVerdict(
                        sdfg.name, state.label, name, str(subset), UNPROVED,
                        "dynamic (data-dependent) memlet"))
                    continue
                verdict, detail = _subset_verdict(subset, desc.shape, chain)
                verdicts.append(BoundsVerdict(
                    sdfg.name, state.label, name, str(subset), verdict, detail))
        for node in state.nodes():
            if isinstance(node, NestedSDFG):
                verdicts.extend(check_bounds(node.sdfg))
    return verdicts
