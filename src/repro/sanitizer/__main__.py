"""Sanitizer sweep CLI: static analysis + differential oracle over the
benchmark corpus.

Usage::

    python -m repro.sanitizer --seed 0 --corpus examples
    python -m repro.sanitizer --corpus gemm,atax --size test --output SANITIZER.json

For each selected benchmark the sweep reports

* static race verdicts per map scope (on the frontend SDFG and on a clone
  with reductions expanded to their native WCR maps — the WCR-based
  reduction maps the race detector must prove race-free),
* static bounds verdicts (counts, plus every provable violation), and
* the differential-oracle verdict across execution tiers, including the
  bisected culprit pass on an optimization-induced mismatch.

The verdict JSON (schema ``repro-sanitize/1``) is uploaded by CI next to
``BENCH_cpu.json``.  Exit status is nonzero when any provable race,
provable out-of-bounds access, or oracle mismatch/error is found.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

from ..bench import registry
from ..bench.profile import CI_SUBSET
from . import bounds as bounds_mod
from . import races as races_mod
from .oracle import run_oracle

SCHEMA = "repro-sanitize/1"
DEFAULT_OUTPUT = "SANITIZER.json"

#: the example corpus: the CI perf subset plus WCR/dynamic-memlet exercisers
EXAMPLE_CORPUS = CI_SUBSET + ["histogram", "softmax", "gesummv"]


def _select(corpus: str) -> List[str]:
    if corpus == "examples":
        return list(EXAMPLE_CORPUS)
    if corpus == "ci":
        return list(CI_SUBSET)
    if corpus == "all":
        return registry.names()
    return [name.strip() for name in corpus.split(",") if name.strip()]


def _sdfg_for(bench, size: str):
    if bench.program._annotation_descs() is None:
        return bench.program.to_sdfg(**bench.arguments(size)).clone()
    return bench.program.to_sdfg().clone()


def _race_summary(verdicts) -> Dict[str, object]:
    counts = {races_mod.RACE_FREE: 0, races_mod.UNPROVED: 0, races_mod.RACE: 0}
    issues = []
    for v in verdicts:
        counts[v.verdict] += 1
        if v.verdict != races_mod.RACE_FREE:
            issues.append(v.to_dict())
    return {"maps": len(verdicts), "counts": counts, "issues": issues}


def _bounds_summary(verdicts) -> Dict[str, object]:
    counts = {bounds_mod.IN_BOUNDS: 0, bounds_mod.UNPROVED: 0,
              bounds_mod.OUT_OF_BOUNDS: 0}
    violations = []
    for v in verdicts:
        counts[v.verdict] += 1
        if v.verdict == bounds_mod.OUT_OF_BOUNDS:
            violations.append(v.to_dict())
    return {"subsets": len(verdicts), "counts": counts,
            "violations": violations}


def sweep_benchmark(bench, size: str, seed: int, device: str) -> Dict[str, object]:
    entry: Dict[str, object] = {}
    base = _sdfg_for(bench, size)
    base.simplify()

    entry["races"] = _race_summary(races_mod.check_races(base))
    entry["bounds"] = _bounds_summary(bounds_mod.check_bounds(base))

    # Reductions expand to WCR maps only under the native library
    # implementation; analyze those maps explicitly.
    native = base.clone()
    try:
        native.expand_library_nodes(implementation="native")
        entry["races_native"] = _race_summary(races_mod.check_races(native))
    except Exception as exc:
        entry["races_native"] = {"error": str(exc)}

    oracle = run_oracle(bench.program, inputs=bench.arguments(size),
                        seed=seed, device=device, outputs=bench.outputs,
                        reference=bench.reference, name=bench.name)
    entry["oracle"] = oracle.to_dict()
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="static + differential sanitizer sweep over the corpus")
    parser.add_argument("--corpus", default="examples",
                        help="examples | ci | all | comma-separated names")
    parser.add_argument("--size", default="test",
                        help="benchmark size class (default: test)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for oracle input generation")
    parser.add_argument("--device", default="CPU")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"verdict JSON path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--warm", type=int, default=0, metavar="JOBS",
                        help="warm the compilation cache first across JOBS "
                             "processes (0: skip) so oracle tiers start "
                             "from cached artifacts")
    args = parser.parse_args(argv)

    names = _select(args.corpus)
    if args.warm:
        from ..cache.warm import warm_corpus

        summary = warm_corpus(names=names, size=args.size,
                              device=args.device, jobs=args.warm)
        print(f"[sanitize] cache warm-up: {summary['warmed']}/"
              f"{len(summary['results'])} benchmark(s) in "
              f"{summary['wall_seconds']:.2f}s across {summary['jobs']} "
              f"job(s)", file=sys.stderr)
    programs: Dict[str, object] = {}
    failures: Dict[str, str] = {}
    for name in names:
        try:
            bench = registry.get(name)
            programs[name] = sweep_benchmark(bench, args.size, args.seed,
                                             args.device)
        except Exception as exc:
            failures[name] = f"{type(exc).__name__}: {exc}"
            print(f"[sanitize] {name}: SWEEP ERROR {exc}", file=sys.stderr)
            continue
        entry = programs[name]
        oracle_verdict = entry["oracle"]["verdict"]
        races = entry["races"]["counts"][races_mod.RACE]
        oob = entry["bounds"]["counts"][bounds_mod.OUT_OF_BOUNDS]
        culprit = entry["oracle"].get("culprit")
        suffix = f" culprit={culprit}" if culprit else ""
        print(f"[sanitize] {name}: oracle={oracle_verdict} races={races} "
              f"out-of-bounds={oob}{suffix}")

    total_races = sum(p["races"]["counts"][races_mod.RACE]
                      for p in programs.values())
    total_oob = sum(p["bounds"]["counts"][bounds_mod.OUT_OF_BOUNDS]
                    for p in programs.values())
    bad_oracle = [n for n, p in programs.items()
                  if p["oracle"]["verdict"] != "ok"]
    document = {
        "schema": SCHEMA,
        "seed": args.seed,
        "size": args.size,
        "corpus": names,
        "programs": programs,
        "failures": failures,
        "summary": {
            "programs": len(programs),
            "oracle_ok": len(programs) - len(bad_oracle),
            "oracle_bad": bad_oracle,
            "races": total_races,
            "out_of_bounds": total_oob,
        },
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    print(f"[sanitize] wrote {args.output}: {len(programs)} program(s), "
          f"{total_races} race(s), {total_oob} out-of-bounds, "
          f"{len(bad_oracle)} oracle failure(s)")
    return 1 if (total_races or total_oob or bad_oracle or failures) else 0


if __name__ == "__main__":
    raise SystemExit(main())
