"""Differential-testing oracle with pass-pipeline bisection.

Runs the same program through every execution tier the system offers —
pure Python/NumPy, the reference interpreter, the compiled (untransformed)
module, and the auto-optimized module — on identical seeded inputs, and
compares the outputs under dtype-aware tolerances.  A mismatch that appears
only after optimization is delta-debugged: the applied-pass list is bisected
(prefix enable/disable) to name the first semantics-breaking transformation.

The oracle is the dynamic complement of the static analyses: it catches
*miscompiles* — transformations whose result is structurally valid, passes
the race/bounds checks, and still computes the wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autoopt import auto_optimize
from ..codegen import compile_sdfg
from ..runtime.executor import run_sdfg

__all__ = ["AUTOOPT_STEPS", "tolerance_for", "generate_inputs",
           "compare_values", "OracleReport", "run_oracle", "bisect_passes"]

#: named auto_optimize steps, in pipeline order (mirrors autoopt.auto_optimize)
AUTOOPT_STEPS = ["cleanup", "loop_to_map", "collapse", "fusion", "tile_wcr",
                 "transients", "device", "library"]


def tolerance_for(dtype) -> Tuple[float, float]:
    """(rtol, atol) for comparing values of *dtype*; exact for non-floats."""
    dt = np.dtype(dtype)
    if dt.kind == "f" or dt.kind == "c":
        if dt.itemsize <= 2:
            return (1e-2, 1e-4)
        if dt.itemsize <= 4 or (dt.kind == "c" and dt.itemsize <= 8):
            return (1e-4, 1e-7)
        return (1e-7, 1e-10)
    return (0.0, 0.0)


def compare_values(expected, actual, name: str = "value") -> Optional[str]:
    """``None`` when *actual* matches *expected*; a human-readable
    description of the first discrepancy otherwise."""
    exp = np.asarray(expected)
    act = np.asarray(actual)
    if exp.shape != act.shape:
        return f"{name}: shape {act.shape} != expected {exp.shape}"
    rtol, atol = tolerance_for(exp.dtype)
    if rtol == 0.0 and atol == 0.0:
        if not np.array_equal(exp, act):
            bad = int(np.count_nonzero(exp != act))
            return f"{name}: {bad} element(s) differ (exact comparison)"
        return None
    if not np.allclose(act, exp, rtol=rtol, atol=atol, equal_nan=True):
        with np.errstate(invalid="ignore"):
            err = np.abs(act.astype(np.float64, copy=False)
                         - exp.astype(np.float64, copy=False))
        return (f"{name}: max abs error {np.nanmax(err):.3e} exceeds "
                f"rtol={rtol} atol={atol}")
    return None


def generate_inputs(sdfg, symbols: Optional[Dict[str, int]] = None,
                    seed: int = 0) -> Dict[str, object]:
    """Seeded random arguments for every non-transient container of *sdfg*.

    Floats are drawn from ``[0, 1)``, integers from ``[0, min(shape, 8))``
    so they remain usable as (small) indices, booleans uniformly.
    """
    from ..ir.data import Array, Scalar

    rng = np.random.default_rng(seed)
    symbols = dict(symbols or {})
    out: Dict[str, object] = {}
    for name, desc in sdfg.arrays.items():
        if desc.transient:
            continue
        dt = desc.dtype.nptype
        if isinstance(desc, Scalar):
            shape: Tuple[int, ...] = ()
        elif isinstance(desc, Array):
            shape = tuple(int(s.evaluate(symbols)) for s in desc.shape)
        else:
            continue
        kind = dt.kind
        if kind == "f":
            value = np.asarray(rng.random(shape), dtype=dt)
        elif kind == "c":
            value = np.asarray(rng.random(shape) + 1j * rng.random(shape),
                               dtype=dt)
        elif kind == "b":
            value = np.asarray(rng.integers(0, 2, size=shape), dtype=dt)
        else:
            high = max(2, min([8] + [s for s in shape if s > 0]))
            value = np.asarray(rng.integers(0, high, size=shape), dtype=dt)
        out[name] = value if shape != () else dt.type(value.item())
    out.update(symbols)
    return out


def _fresh(inputs: Dict[str, object]) -> Dict[str, object]:
    return {k: (np.array(v, copy=True) if isinstance(v, np.ndarray) else v)
            for k, v in inputs.items()}


def _harvest(call_args: Dict[str, object], returned,
             outputs: Sequence[str]) -> Dict[str, object]:
    got: Dict[str, object] = {name: call_args[name] for name in outputs
                              if name in call_args}
    if returned is not None:
        got["__return"] = returned
    return got


def _compare_outputs(expected: Dict[str, object],
                     actual: Dict[str, object]) -> List[str]:
    mismatches = []
    for name, exp in expected.items():
        if name not in actual:
            mismatches.append(f"{name}: missing from outputs")
            continue
        msg = compare_values(exp, actual[name], name)
        if msg:
            mismatches.append(msg)
    return mismatches


@dataclass
class OracleReport:
    """Differential-testing result for one program."""

    program: str
    seed: int
    stages: Dict[str, str] = field(default_factory=dict)  # name -> "ok"|msg
    verdict: str = "ok"                                   # ok|mismatch|error
    culprit: Optional[str] = None
    mismatches: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"program": self.program, "seed": self.seed,
                "stages": dict(self.stages), "verdict": self.verdict,
                "culprit": self.culprit, "mismatches": list(self.mismatches)}


def _prefix_search(ok: Callable[[int], bool], n: int) -> int:
    """Smallest ``k`` in ``[1, n]`` with ``ok(k)`` False, assuming ``ok(0)``
    holds and ``ok(n)`` fails; monotonicity is the usual delta-debugging
    assumption."""
    lo, hi = 0, n
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return hi


def bisect_passes(make_sdfg: Callable[[], object],
                  steps: Sequence[Tuple[str, Callable]],
                  evaluate: Callable[[object], bool]) -> Optional[str]:
    """Name the first step of *steps* whose application makes *evaluate*
    fail.

    ``make_sdfg`` builds a fresh baseline SDFG; each step is ``(name, fn)``
    with ``fn(sdfg)`` mutating in place; ``evaluate(sdfg)`` returns True when
    the SDFG still computes the right answer.  Returns ``None`` when the full
    pipeline evaluates fine, ``"<base>"`` when even the untransformed SDFG
    fails.
    """
    def ok(k: int) -> bool:
        sdfg = make_sdfg()
        for _name, fn in steps[:k]:
            fn(sdfg)
        return evaluate(sdfg)

    n = len(steps)
    if ok(n):
        return None
    if not ok(0):
        return "<base>"
    return steps[_prefix_search(ok, n) - 1][0]


def run_oracle(program, *, inputs: Optional[Dict[str, object]] = None,
               symbols: Optional[Dict[str, int]] = None, seed: int = 0,
               device: str = "CPU", outputs: Sequence[str] = (),
               reference: Optional[Callable] = None,
               steps: Optional[Sequence[Tuple[str, Callable]]] = None,
               name: str = "") -> OracleReport:
    """Differential-test *program* (a ``DaceProgram``) across all tiers.

    ``inputs`` defaults to :func:`generate_inputs` output (descriptor-driven,
    seeded); ``reference`` defaults to the undecorated Python function (when
    it is executable as plain Python); ``steps`` replaces the auto_optimize
    pipeline for the optimized stage — used to test externally supplied
    transformation lists (and by the bisection regression tests).
    """
    report = OracleReport(program=name or getattr(program, "name", "program"),
                          seed=seed)

    try:
        if getattr(program, "_annotation_descs", lambda: None)() is not None:
            base = program.to_sdfg().clone()
        else:
            probe = inputs if inputs is not None else {}
            base = program.to_sdfg(**_fresh(probe)).clone()
    except Exception as exc:  # frontend failure: nothing to compare
        report.verdict = "error"
        report.stages["frontend"] = f"error: {exc}"
        return report

    if inputs is None:
        inputs = generate_inputs(base, symbols, seed)
    out_names = list(outputs) or \
        [n for n, d in base.arrays.items()
         if not d.transient and n in inputs
         and isinstance(inputs[n], np.ndarray)]

    # --- reference tier ---------------------------------------------------
    expected: Optional[Dict[str, object]] = None
    ref_fn = reference if reference is not None else getattr(program, "func", None)
    if ref_fn is not None:
        try:
            args = _fresh(inputs)
            ret = ref_fn(**args)
            expected = _harvest(args, ret, out_names)
            report.stages["python"] = "ok"
        except Exception as exc:
            # e.g. programs using repro.map are not executable as plain
            # Python; the interpreter then serves as the reference tier.
            report.stages["python"] = f"skipped: {exc}"
            expected = None

    def run_stage(stage: str, runner: Callable[[Dict[str, object]], object]) -> Optional[Dict[str, object]]:
        nonlocal expected
        try:
            args = _fresh(inputs)
            ret = runner(args)
            got = _harvest(args, ret, out_names)
        except Exception as exc:
            report.stages[stage] = f"error: {exc}"
            report.verdict = "error"
            return None
        if expected is None:
            expected = got
            report.stages[stage] = "ok (reference)"
            return got
        mismatches = _compare_outputs(expected, got)
        if mismatches:
            report.stages[stage] = "mismatch: " + "; ".join(mismatches[:3])
            report.mismatches.extend(f"{stage}: {m}" for m in mismatches)
            if report.verdict == "ok":
                report.verdict = "mismatch"
            return None
        report.stages[stage] = "ok"
        return got

    run_stage("interpreter", lambda args: run_sdfg(base.clone(), **args))

    compiled_ok = run_stage(
        "compiled",
        lambda args: compile_sdfg(base.clone(), device=device)(**args)) is not None

    def optimize(sdfg, enabled_prefix: Optional[int] = None):
        if steps is not None:
            upto = len(steps) if enabled_prefix is None else enabled_prefix
            for _n, fn in steps[:upto]:
                fn(sdfg)
        else:
            if enabled_prefix is None:
                auto_optimize(sdfg, device=device)
            else:
                enabled = set(AUTOOPT_STEPS[:enabled_prefix])
                auto_optimize(sdfg, device=device,
                              passes={s: s in enabled for s in AUTOOPT_STEPS})
        return sdfg

    optimized_ok = run_stage(
        "optimized",
        lambda args: compile_sdfg(optimize(base.clone()), device=device)(**args)
    ) is not None

    # --- bisection --------------------------------------------------------
    if compiled_ok and not optimized_ok and report.verdict == "mismatch":
        step_names = [s[0] for s in steps] if steps is not None else AUTOOPT_STEPS

        def prefix_ok(k: int) -> bool:
            try:
                args = _fresh(inputs)
                ret = compile_sdfg(optimize(base.clone(), k), device=device)(**args)
                got = _harvest(args, ret, out_names)
            except Exception:
                return False
            return not _compare_outputs(expected, got)

        if not prefix_ok(len(step_names)):
            report.culprit = step_names[_prefix_search(prefix_ok, len(step_names)) - 1]
            report.stages["bisection"] = f"culprit: {report.culprit}"

    return report
