"""Runtime sanitizer guards: index-bounds and NaN/Inf checks.

Mirrors the instrumentation layer's activation protocol: a module-global
``_ACTIVE`` context is ``None`` when sanitizing is off, so every hook in the
interpreter hot path costs a single ``is None`` test.  Generated modules are
compiled with explicit ``__guard_read``/``__guard_write`` calls only when the
program was compiled with ``sanitize=True`` (a separately cached module, like
``instrument=True``), and those calls no-op unless a guard context is active.

Checks are *dynamic* complements to the static analyses in
:mod:`repro.sanitizer.races` / :mod:`repro.sanitizer.bounds`: NumPy slicing
silently clips out-of-range slices, so without the guard an out-of-bounds
memlet reads/writes the wrong elements instead of failing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import FrozenSet, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "SanitizerError",
    "GUARD_MODES",
    "parse_modes",
    "sanitize",
    "active_modes",
    "check_index",
    "check_value",
    "guard_read",
    "guard_write",
]

GUARD_MODES = ("bounds", "nan")


class SanitizerError(RuntimeError):
    """Structured runtime sanitizer violation.

    Attributes
    ----------
    kind:       ``"bounds"`` | ``"nan"`` | ``"static"``
    container:  name of the offending data container
    detail:     dict with machine-readable context (index, shape, ...)
    """

    def __init__(self, kind: str, container: str, message: str, **detail):
        super().__init__(f"[sanitize:{kind}] {container}: {message}")
        self.kind = kind
        self.container = container
        self.detail = dict(detail)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "container": self.container,
            "message": str(self),
            "detail": {k: repr(v) for k, v in self.detail.items()},
        }


class _GuardState:
    __slots__ = ("modes", "program")

    def __init__(self, modes: FrozenSet[str], program: str):
        self.modes = modes
        self.program = program


#: The active guard context; ``None`` (the common case) disables every check.
_ACTIVE: Optional[_GuardState] = None


def parse_modes(mode: Union[None, bool, str]) -> FrozenSet[str]:
    """Normalize a ``sanitize=`` value to a set of guard modes.

    ``None``/``False``/``""``/``"off"`` -> no modes; ``True``/``"on"``/
    ``"all"`` -> every mode; otherwise a comma-separated subset of
    :data:`GUARD_MODES`.
    """
    if mode is None or mode is False or mode == "" or mode == "off":
        return frozenset()
    if mode is True or mode in ("on", "all"):
        return frozenset(GUARD_MODES)
    if not isinstance(mode, str):
        raise ValueError(f"invalid sanitize mode: {mode!r}")
    selected = frozenset(part.strip() for part in mode.split(",") if part.strip())
    unknown = selected - frozenset(GUARD_MODES)
    if unknown:
        raise ValueError(
            f"unknown sanitize mode(s) {sorted(unknown)}; valid: {GUARD_MODES}"
        )
    return selected


def active_modes() -> Optional[FrozenSet[str]]:
    """The modes of the active guard context, or ``None`` when off."""
    return _ACTIVE.modes if _ACTIVE is not None else None


@contextmanager
def sanitize(mode: Union[bool, str] = "bounds,nan", program: str = "") -> Iterator[None]:
    """Activate runtime guards for the dynamic extent of the block."""
    global _ACTIVE
    modes = parse_modes(mode)
    if not modes:
        yield
        return
    previous = _ACTIVE
    _ACTIVE = _GuardState(modes, program)
    try:
        yield
    finally:
        _ACTIVE = previous


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

IndexPart = Union[int, slice]


def _extent(part: IndexPart, dim: int) -> Optional[Tuple[int, int]]:
    """Lowest/highest element index a slice or integer selects, or ``None``
    for an empty selection.  Never clips — that is the point."""
    if isinstance(part, slice):
        step = 1 if part.step is None else part.step
        if step > 0:
            start = 0 if part.start is None else part.start
            stop = dim if part.stop is None else part.stop
        else:
            start = dim - 1 if part.start is None else part.start
            # A descending slice with stop=None runs down to index 0.
            stop = -1 if part.stop is None else part.stop
        points = range(int(start), int(stop), int(step))
        if len(points) == 0:
            return None
        lo, hi = points[0], points[-1]
        return (min(lo, hi), max(lo, hi))
    idx = int(part)
    return (idx, idx)


def check_index(container: str, shape: Sequence[int], index: Sequence[IndexPart],
                *, program: str = "") -> None:
    """Raise :class:`SanitizerError` when *index* leaves ``[0, shape)``."""
    if len(index) != len(shape):
        raise SanitizerError(
            "bounds", container,
            f"index rank {len(index)} does not match shape {tuple(shape)}",
            index=tuple(index), shape=tuple(shape), program=program)
    for axis, (part, dim) in enumerate(zip(index, shape)):
        extent = _extent(part, int(dim))
        if extent is None:
            continue
        lo, hi = extent
        if lo < 0 or hi >= dim:
            raise SanitizerError(
                "bounds", container,
                f"axis {axis} accesses [{lo}, {hi}] outside [0, {int(dim) - 1}] "
                f"(shape {tuple(int(s) for s in shape)})",
                axis=axis, index=tuple(index), shape=tuple(shape),
                program=program)


def check_value(container: str, value, *, program: str = "") -> None:
    """Raise :class:`SanitizerError` when a float/complex value is NaN/Inf."""
    arr = np.asarray(value)
    if arr.dtype.kind not in "fc":
        return
    if not np.all(np.isfinite(arr)):
        flat = np.atleast_1d(arr)
        bad = flat[~np.isfinite(flat)]
        raise SanitizerError(
            "nan", container,
            f"non-finite value written ({bad[:4].tolist()}{'...' if bad.size > 4 else ''})",
            count=int(bad.size), program=program)


# ---------------------------------------------------------------------------
# Generated-module hooks (injected into the codegen namespace when the module
# is compiled with sanitize=True; no-ops unless a guard context is active)
# ---------------------------------------------------------------------------

def guard_read(container: str, storage, index: Sequence[IndexPart]) -> None:
    state = _ACTIVE
    if state is None:
        return
    if "bounds" in state.modes:
        check_index(container, storage.shape, index, program=state.program)


def guard_write(container: str, storage, index: Sequence[IndexPart], value) -> None:
    state = _ACTIVE
    if state is None:
        return
    if "bounds" in state.modes:
        check_index(container, storage.shape, index, program=state.program)
    if "nan" in state.modes:
        check_value(container, value, program=state.program)
