"""SDFG sanitizer: static race/bounds analysis, runtime guards, and a
differential-testing oracle.

Four cooperating parts (DESIGN.md §8):

* :mod:`repro.sanitizer.races` — per-map static race detection
  (``race-free | unproved | race``) over symbolic memlet subsets;
* :mod:`repro.sanitizer.bounds` — symbolic in-bounds proofs for memlet
  subsets over the enclosing map ranges;
* :mod:`repro.sanitizer.guards` — opt-in runtime index-bounds and NaN/Inf
  guards for the interpreter and generated modules
  (``@repro.program(sanitize="bounds,nan")``);
* :mod:`repro.sanitizer.oracle` — seeded differential testing across
  execution tiers with pass-pipeline bisection
  (``python -m repro.sanitizer``).
"""

from __future__ import annotations

from typing import FrozenSet

from .bounds import IN_BOUNDS, OUT_OF_BOUNDS, BoundsVerdict, check_bounds
from .guards import SanitizerError, active_modes, sanitize
from .races import RACE, RACE_FREE, UNPROVED, MapRaceVerdict, check_races

# The oracle pulls in autoopt/codegen/runtime, which import this package's
# guard module — load it lazily (PEP 562) to keep package import acyclic.
_ORACLE_ATTRS = ("OracleReport", "bisect_passes", "generate_inputs",
                 "run_oracle", "AUTOOPT_STEPS", "tolerance_for",
                 "compare_values")


def __getattr__(name: str):
    if name in _ORACLE_ATTRS or name == "oracle":
        # importlib (not ``from . import``): the from-import machinery
        # probes the package with hasattr, which would re-enter this hook.
        import importlib

        oracle = importlib.import_module(__name__ + ".oracle")
        if name == "oracle":
            return oracle
        return getattr(oracle, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "check_races", "MapRaceVerdict", "RACE_FREE", "UNPROVED", "RACE",
    "check_bounds", "BoundsVerdict", "IN_BOUNDS", "OUT_OF_BOUNDS",
    "SanitizerError", "sanitize", "active_modes",
    "run_oracle", "OracleReport", "bisect_passes", "generate_inputs",
    "static_issue_keys",
]


def static_issue_keys(sdfg) -> FrozenSet[str]:
    """Stable keys for every *provable* static issue (races and
    out-of-bounds accesses) in *sdfg*.

    Used by the transactional-transformation gate: a pass whose application
    introduces keys that were not present before is rolled back.  Keys are
    built from labels/subsets (not node identities) so they survive
    snapshot/restore round-trips.
    """
    keys = set()
    for verdict in check_races(sdfg):
        if verdict.verdict == RACE:
            keys.add(f"race:{verdict.state}:{verdict.map_label}:"
                     + ",".join(sorted({c.container for c in verdict.conflicts})))
    for verdict in check_bounds(sdfg):
        if verdict.verdict == OUT_OF_BOUNDS:
            keys.add(f"oob:{verdict.state}:{verdict.container}:{verdict.subset}")
    return frozenset(keys)
