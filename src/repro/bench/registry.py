"""Benchmark registry: the evaluation corpus of §3.4.

Each benchmark bundles the annotated data-centric program, a pure-NumPy
reference (the Fig. 7 baseline), an initializer, and named size classes:
``test`` (fast, used by the correctness suite), ``small``/``large`` (used by
the benchmark harnesses; ``large`` approximates the paper's instances).

Benchmarks register themselves on import; ``all_benchmarks()`` imports the
whole corpus.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["Benchmark", "register", "get", "all_benchmarks", "names"]

_REGISTRY: Dict[str, "Benchmark"] = {}

#: corpus modules (polybench + applications)
POLYBENCH_MODULES = [
    "k2mm", "k3mm", "adi", "atax", "bicg", "cholesky", "correlation",
    "covariance", "deriche", "doitgen", "durbin", "fdtd_2d",
    "floyd_warshall", "gemm", "gemver", "gesummv", "gramschmidt", "heat_3d",
    "jacobi_1d", "jacobi_2d", "lu", "ludcmp", "mvt", "nussinov", "seidel_2d",
    "symm", "syr2k", "syrk", "trisolv", "trmm",
]
APP_MODULES = [
    "azimint_naive", "azimint_hist", "cavity_flow", "crc16", "go_fast",
    "hdiff", "histogram", "mandelbrot1", "mandelbrot2", "nbody", "resnet",
    "softmax", "spmv", "stockham_fft", "vadv",
]


@dataclass
class Benchmark:
    """One corpus entry."""

    name: str
    program: object                     # DaceProgram
    reference: Callable                 # numpy implementation (in-place)
    init: Callable[[Dict[str, int]], Dict[str, object]]
    sizes: Dict[str, Dict[str, int]]
    #: containers checked for correctness (output argument names); when
    #: empty, the return value is compared instead
    outputs: Sequence[str] = ()
    domain: str = "polybench"
    gpu: bool = True                    # part of the GPU-transformable subset
    fpga: bool = True
    notes: str = ""

    def arguments(self, size: str = "test") -> Dict[str, object]:
        return self.init(dict(self.sizes[size]))

    def flop_estimate(self, size: str = "test") -> float:
        """Rough algorithmic flop count for sanity checks (optional)."""
        return 0.0


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _REGISTRY:
        raise KeyError(f"benchmark {benchmark.name!r} already registered")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def get(name: str) -> Benchmark:
    if name not in _REGISTRY:
        all_benchmarks()
    return _REGISTRY[name]


def all_benchmarks(domain: Optional[str] = None) -> List[Benchmark]:
    for module in POLYBENCH_MODULES:
        importlib.import_module(f"repro.bench.polybench.{module}")
    for module in APP_MODULES:
        importlib.import_module(f"repro.bench.apps.{module}")
    values = list(_REGISTRY.values())
    if domain is not None:
        values = [b for b in values if b.domain == domain]
    return sorted(values, key=lambda b: b.name)


def names() -> List[str]:
    return sorted(b.name for b in all_benchmarks())
