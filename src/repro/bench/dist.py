"""Distributed comm-volume benchmark & CI gate (``BENCH_dist.json``).

Runs the comm-optimizer corpus (jacobi / pgemm / pgemv) on 4 simulated
ranks, eager and optimized, and records per-kernel communication volume,
message counts, wait time, and modeled wall time under schema
``repro-bench-dist/1``::

    python -m repro.bench.dist                                # measure
    python -m repro.bench.dist --check benchmarks/BENCH_dist_baseline.json
    python -m repro.bench.dist --update-baseline              # refresh

The ``--check`` gate fails (exit 1) when any kernel's **optimized** comm
volume regresses more than ``--tolerance`` (default 10%) over the
committed baseline — the dedup/coalescing savings are deterministic under
the simulator, so growth means an optimization stopped firing.  It also
fails if an optimized run's outputs diverge bitwise from the eager run,
or if jacobi stops showing measured overlap (optimized wait must stay
below the eager exchange wait).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

import numpy as np

from ..config import Config
from ..distributed.commopt.corpus import KERNELS, run_kernel

__all__ = ["measure", "check", "main", "SCHEMA"]

SCHEMA = "repro-bench-dist/1"
DEFAULT_OUTPUT = "BENCH_dist.json"
DEFAULT_BASELINE = "benchmarks/BENCH_dist_baseline.json"

#: modeled stencil rate: slow enough that the interior credit exceeds the
#: message latency at the toy sizes, so the overlap is visible in the gate
STENCIL_GFLOPS = 1e-4


def _side(report, result) -> Dict[str, Any]:
    return {
        "comm_bytes": report.total_bytes,
        "messages": int(result.comm_stats.get("messages", 0)),
        "wait_s": report.total_wait_s,
        "halo_wait_s": report.wait_s("HaloExchange")
        + report.wait_s("HaloFinish"),
        "modeled_time_s": result.modeled_time,
        "applied": dict(report.applied),
        "commopt": {k: v for k, v in report.commopt.items() if v},
    }


def measure(ranks: int = 4, seed: int = 0) -> Dict[str, Any]:
    """Run every corpus kernel eager and optimized; returns the artifact."""
    kernels: Dict[str, Any] = {}
    for name in KERNELS:
        with Config.override(commopt__stencil_gflops=STENCIL_GFLOPS):
            out_e, r_e = run_kernel(name, size=ranks, optimize=False,
                                    seed=seed)
            out_o, r_o = run_kernel(name, size=ranks, optimize=True,
                                    seed=seed)
        bitwise = all(np.array_equal(out_e[k], out_o[k]) for k in out_e)
        eager = _side(r_e.comm_report, r_e)
        opt = _side(r_o.comm_report, r_o)
        saved = eager["comm_bytes"] - opt["comm_bytes"]
        kernels[name] = {
            "eager": eager,
            "optimized": opt,
            "bitwise_equal": bool(bitwise),
            "comm_bytes_saved": saved,
            "comm_bytes_saved_pct": (100.0 * saved / eager["comm_bytes"]
                                     if eager["comm_bytes"] else 0.0),
        }
    return {"schema": SCHEMA, "ranks": ranks, "seed": seed,
            "stencil_gflops": STENCIL_GFLOPS, "kernels": kernels}


def check(result: Dict[str, Any], baseline: Dict[str, Any],
          tolerance: float = 0.10) -> List[str]:
    """Gate *result* against *baseline*; returns failure messages."""
    failures: List[str] = []
    for name, cur in result["kernels"].items():
        if not cur["bitwise_equal"]:
            failures.append(f"{name}: optimized outputs diverge bitwise "
                            f"from the eager run")
        base = baseline.get("kernels", {}).get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline "
                            f"(run --update-baseline)")
            continue
        cur_bytes = cur["optimized"]["comm_bytes"]
        base_bytes = base["optimized"]["comm_bytes"]
        if base_bytes and cur_bytes > base_bytes * (1.0 + tolerance):
            failures.append(
                f"{name}: optimized comm volume regressed "
                f"{cur_bytes} B vs baseline {base_bytes} B "
                f"(+{100.0 * (cur_bytes / base_bytes - 1.0):.1f}%, "
                f"tolerance {100.0 * tolerance:.0f}%)")
    jac = result["kernels"].get("jacobi")
    if jac is not None:
        eager_wait = jac["eager"]["halo_wait_s"]
        opt_wait = jac["optimized"]["halo_wait_s"]
        if eager_wait > 0.0 and opt_wait >= eager_wait:
            failures.append(
                f"jacobi: no measured overlap (optimized halo wait "
                f"{opt_wait * 1e6:.1f}us >= eager {eager_wait * 1e6:.1f}us)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.dist",
        description="Distributed comm-volume benchmark (eager vs. "
                    "comm-optimized) and CI regression gate.")
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"artifact path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--check", default="", metavar="BASELINE",
                        help="gate against a committed baseline; exit "
                             "non-zero on comm-volume regression, lost "
                             "overlap, or bitwise divergence")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed optimized comm-volume growth for "
                             "--check (default: 0.10)")
    parser.add_argument("--update-baseline", nargs="?",
                        const=DEFAULT_BASELINE, default="", metavar="PATH",
                        help=f"also write the artifact as the committed "
                             f"baseline (default path: {DEFAULT_BASELINE})")
    args = parser.parse_args(argv)

    result = measure(ranks=args.ranks, seed=args.seed)
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for name, k in result["kernels"].items():
        print(f"{name:<8} eager {k['eager']['comm_bytes']:>8} B "
              f"{k['eager']['halo_wait_s'] * 1e6:>8.1f}us halo wait | "
              f"optimized {k['optimized']['comm_bytes']:>8} B "
              f"{k['optimized']['halo_wait_s'] * 1e6:>8.1f}us | "
              f"saved {k['comm_bytes_saved_pct']:.1f}% "
              f"bitwise={'ok' if k['bitwise_equal'] else 'DIVERGED'}")
    print(f"wrote {args.output}")

    if args.update_baseline:
        with open(args.update_baseline, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"updated baseline {args.update_baseline}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check(result, baseline, tolerance=args.tolerance)
        if failures:
            for msg in failures:
                print(f"GATE FAILURE: {msg}", file=sys.stderr)
            return 1
        print(f"comm-volume gate passed against {args.check} "
              f"(tolerance {100.0 * args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
