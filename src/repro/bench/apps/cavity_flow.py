"""cavity_flow: lid-driven cavity (CFD Python, 12 steps to Navier-Stokes [9])."""

import numpy as np

import repro
from ..registry import Benchmark, register

NX = repro.symbol("NX")
NY = repro.symbol("NY")


@repro.program
def cavity_flow(u: repro.float64[NY, NX], v: repro.float64[NY, NX],
                p: repro.float64[NY, NX], nt: repro.int64, nit: repro.int64,
                dx: repro.float64, dy: repro.float64, dt: repro.float64,
                rho: repro.float64, nu: repro.float64):
    b = np.zeros((NY, NX))
    un = np.zeros((NY, NX))
    vn = np.zeros((NY, NX))
    for step in range(nt):
        b[1:-1, 1:-1] = rho * (1.0 / dt * ((u[1:-1, 2:] - u[1:-1, :-2]) / (2.0 * dx)
                                           + (v[2:, 1:-1] - v[:-2, 1:-1]) / (2.0 * dy))
                               - ((u[1:-1, 2:] - u[1:-1, :-2]) / (2.0 * dx)) ** 2
                               - 2.0 * ((u[2:, 1:-1] - u[:-2, 1:-1]) / (2.0 * dy)
                                        * (v[1:-1, 2:] - v[1:-1, :-2]) / (2.0 * dx))
                               - ((v[2:, 1:-1] - v[:-2, 1:-1]) / (2.0 * dy)) ** 2)
        for q in range(nit):
            pn = p.copy()
            p[1:-1, 1:-1] = (((pn[1:-1, 2:] + pn[1:-1, :-2]) * dy * dy
                              + (pn[2:, 1:-1] + pn[:-2, 1:-1]) * dx * dx)
                             / (2.0 * (dx * dx + dy * dy))
                             - dx * dx * dy * dy / (2.0 * (dx * dx + dy * dy))
                             * b[1:-1, 1:-1])
            p[:, -1] = p[:, -2]
            p[0, :] = p[1, :]
            p[:, 0] = p[:, 1]
            p[-1, :] = 0.0
        un[:] = u
        vn[:] = v
        u[1:-1, 1:-1] = (un[1:-1, 1:-1]
                         - un[1:-1, 1:-1] * dt / dx * (un[1:-1, 1:-1] - un[1:-1, :-2])
                         - vn[1:-1, 1:-1] * dt / dy * (un[1:-1, 1:-1] - un[:-2, 1:-1])
                         - dt / (2.0 * rho * dx) * (p[1:-1, 2:] - p[1:-1, :-2])
                         + nu * (dt / (dx * dx) * (un[1:-1, 2:] - 2.0 * un[1:-1, 1:-1] + un[1:-1, :-2])
                                 + dt / (dy * dy) * (un[2:, 1:-1] - 2.0 * un[1:-1, 1:-1] + un[:-2, 1:-1])))
        v[1:-1, 1:-1] = (vn[1:-1, 1:-1]
                         - un[1:-1, 1:-1] * dt / dx * (vn[1:-1, 1:-1] - vn[1:-1, :-2])
                         - vn[1:-1, 1:-1] * dt / dy * (vn[1:-1, 1:-1] - vn[:-2, 1:-1])
                         - dt / (2.0 * rho * dy) * (p[2:, 1:-1] - p[:-2, 1:-1])
                         + nu * (dt / (dx * dx) * (vn[1:-1, 2:] - 2.0 * vn[1:-1, 1:-1] + vn[1:-1, :-2])
                                 + dt / (dy * dy) * (vn[2:, 1:-1] - 2.0 * vn[1:-1, 1:-1] + vn[:-2, 1:-1])))
        u[0, :] = 0.0
        u[:, 0] = 0.0
        u[:, -1] = 0.0
        u[-1, :] = 1.0
        v[0, :] = 0.0
        v[-1, :] = 0.0
        v[:, 0] = 0.0
        v[:, -1] = 0.0


def reference(u, v, p, nt, nit, dx, dy, dt, rho, nu):
    ny, nx = u.shape
    b = np.zeros((ny, nx))
    for step in range(nt):
        b[1:-1, 1:-1] = rho * (1.0 / dt * ((u[1:-1, 2:] - u[1:-1, :-2]) / (2.0 * dx)
                                           + (v[2:, 1:-1] - v[:-2, 1:-1]) / (2.0 * dy))
                               - ((u[1:-1, 2:] - u[1:-1, :-2]) / (2.0 * dx)) ** 2
                               - 2.0 * ((u[2:, 1:-1] - u[:-2, 1:-1]) / (2.0 * dy)
                                        * (v[1:-1, 2:] - v[1:-1, :-2]) / (2.0 * dx))
                               - ((v[2:, 1:-1] - v[:-2, 1:-1]) / (2.0 * dy)) ** 2)
        for q in range(nit):
            pn = p.copy()
            p[1:-1, 1:-1] = (((pn[1:-1, 2:] + pn[1:-1, :-2]) * dy * dy
                              + (pn[2:, 1:-1] + pn[:-2, 1:-1]) * dx * dx)
                             / (2.0 * (dx * dx + dy * dy))
                             - dx * dx * dy * dy / (2.0 * (dx * dx + dy * dy))
                             * b[1:-1, 1:-1])
            p[:, -1] = p[:, -2]
            p[0, :] = p[1, :]
            p[:, 0] = p[:, 1]
            p[-1, :] = 0.0
        un = u.copy()
        vn = v.copy()
        u[1:-1, 1:-1] = (un[1:-1, 1:-1]
                         - un[1:-1, 1:-1] * dt / dx * (un[1:-1, 1:-1] - un[1:-1, :-2])
                         - vn[1:-1, 1:-1] * dt / dy * (un[1:-1, 1:-1] - un[:-2, 1:-1])
                         - dt / (2.0 * rho * dx) * (p[1:-1, 2:] - p[1:-1, :-2])
                         + nu * (dt / (dx * dx) * (un[1:-1, 2:] - 2.0 * un[1:-1, 1:-1] + un[1:-1, :-2])
                                 + dt / (dy * dy) * (un[2:, 1:-1] - 2.0 * un[1:-1, 1:-1] + un[:-2, 1:-1])))
        v[1:-1, 1:-1] = (vn[1:-1, 1:-1]
                         - un[1:-1, 1:-1] * dt / dx * (vn[1:-1, 1:-1] - vn[1:-1, :-2])
                         - vn[1:-1, 1:-1] * dt / dy * (vn[1:-1, 1:-1] - vn[:-2, 1:-1])
                         - dt / (2.0 * rho * dy) * (p[2:, 1:-1] - p[:-2, 1:-1])
                         + nu * (dt / (dx * dx) * (vn[1:-1, 2:] - 2.0 * vn[1:-1, 1:-1] + vn[1:-1, :-2])
                                 + dt / (dy * dy) * (vn[2:, 1:-1] - 2.0 * vn[1:-1, 1:-1] + vn[:-2, 1:-1])))
        u[0, :] = 0.0
        u[:, 0] = 0.0
        u[:, -1] = 0.0
        u[-1, :] = 1.0
        v[0, :] = 0.0
        v[-1, :] = 0.0
        v[:, 0] = 0.0
        v[:, -1] = 0.0


def init(sizes):
    nx, ny, nt, nit = sizes["NX"], sizes["NY"], sizes["NT"], sizes["NIT"]
    return {"u": np.zeros((ny, nx)), "v": np.zeros((ny, nx)),
            "p": np.zeros((ny, nx)), "nt": nt, "nit": nit,
            "dx": 2.0 / (nx - 1), "dy": 2.0 / (ny - 1), "dt": 0.001,
            "rho": 1.0, "nu": 0.1}


register(Benchmark(
    "cavity_flow", cavity_flow, reference, init,
    sizes={"test": dict(NX=12, NY=10, NT=3, NIT=4),
           "small": dict(NX=41, NY=41, NT=50, NIT=50),
           "large": dict(NX=101, NY=101, NT=200, NIT=50)},
    outputs=("u", "v", "p"), domain="apps", fpga=False))
