"""histogram: data-dependent binning (Numba examples [5]); exercises
indirect write-conflict accumulation."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")
BINS = repro.symbol("BINS")


@repro.program
def histogram(x: repro.float64[N], hist: repro.int64[BINS]):
    for i in repro.map[0:N]:
        b = int(x[i] * BINS)
        if b >= 0:
            if b < BINS:
                hist[b] += 1


def reference(x, hist):
    bins = hist.shape[0]
    for v in x:
        b = int(v * bins)
        if 0 <= b < bins:
            hist[b] += 1


def init(sizes):
    n, bins = sizes["N"], sizes["BINS"]
    rng = np.random.default_rng(42)
    return {"x": rng.random(n), "hist": np.zeros(bins, dtype=np.int64)}


register(Benchmark(
    "histogram", histogram, reference, init,
    sizes={"test": dict(N=200, BINS=10),
           "small": dict(N=100000, BINS=64),
           "large": dict(N=1000000, BINS=256)},
    outputs=("hist",), domain="apps", fpga=False))
