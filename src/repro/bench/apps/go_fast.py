"""go_fast: the Numba 5-minute-guide example (trace of tanh + broadcast)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def go_fast(a: repro.float64[N, N]):
    trace = 0.0
    for i in range(N):
        trace += np.tanh(a[i, i])
    return a + trace


def reference(a):
    trace = 0.0
    for i in range(a.shape[0]):
        trace += np.tanh(a[i, i])
    return a + trace


def init(sizes):
    n = sizes["N"]
    return {"a": np.arange(n * n, dtype=np.float64).reshape(n, n) / (n * n)}


register(Benchmark(
    "go_fast", go_fast, reference, init,
    sizes={"test": dict(N=16), "small": dict(N=500), "large": dict(N=2000)},
    outputs=(), domain="apps", gpu=False, fpga=False))
