"""azimint_naive: azimuthal integration, naive masked-mean form (pyFAI [41];
boolean masks rewritten as where/sum, see DESIGN.md)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")
NPT = repro.symbol("NPT")


@repro.program
def azimint_naive(data: repro.float64[N], radius: repro.float64[N],
                  res: repro.float64[NPT]):
    rmax = np.max(radius)
    for i in range(NPT):
        r1 = rmax * i / NPT
        r2 = rmax * (i + 1) / NPT
        on = np.where((radius >= r1) * (radius < r2), 1.0, 0.0)
        total = np.sum(on)
        if total > 0.0:
            res[i] = np.sum(data * on) / total
        else:
            res[i] = 0.0


def reference(data, radius, res):
    npt = res.shape[0]
    rmax = radius.max()
    for i in range(npt):
        r1 = rmax * i / npt
        r2 = rmax * (i + 1) / npt
        mask = np.logical_and(radius >= r1, radius < r2)
        total = mask.sum()
        res[i] = data[mask].mean() if total > 0 else 0.0


def init(sizes):
    n, npt = sizes["N"], sizes["NPT"]
    rng = np.random.default_rng(42)
    return {"data": rng.random(n), "radius": rng.random(n),
            "res": np.zeros(npt)}


register(Benchmark(
    "azimint_naive", azimint_naive, reference, init,
    sizes={"test": dict(N=100, NPT=8),
           "small": dict(N=40000, NPT=100),
           "large": dict(N=400000, NPT=1000)},
    outputs=("res",), domain="apps", fpga=False))
