"""softmax: numerically-stable softmax over attention-shaped tensors [40]."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")
H = repro.symbol("H")
SM = repro.symbol("SM")


@repro.program
def softmax(x: repro.float64[N, H, SM, SM], out: repro.float64[N, H, SM, SM]):
    for i, j, k in repro.map[0:N, 0:H, 0:SM]:
        row_max = np.max(x[i, j, k, :])
        e = np.exp(x[i, j, k, :] - row_max)
        out[i, j, k, :] = e / np.sum(e)


def reference(x, out):
    m = np.max(x, axis=-1)[..., np.newaxis]
    e = np.exp(x - m)
    out[:] = e / np.sum(e, axis=-1)[..., np.newaxis]


def init(sizes):
    n, h, sm = sizes["N"], sizes["H"], sizes["SM"]
    rng = np.random.default_rng(42)
    return {"x": rng.random((n, h, sm, sm)), "out": np.zeros((n, h, sm, sm))}


register(Benchmark(
    "softmax", softmax, reference, init,
    sizes={"test": dict(N=2, H=3, SM=8),
           "small": dict(N=8, H=8, SM=32),
           "large": dict(N=16, H=16, SM=64)},
    outputs=("out",), domain="apps"))
