"""crc16: CRC-16-CCITT checksum (bit manipulation; control-flow heavy) [60]."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def crc16(data: repro.int64[N]):
    crc = 0xFFFF
    for b in data:
        cur_byte = 0xFF & b
        for bit in range(8):
            if (crc & 0x0001) ^ (cur_byte & 0x0001):
                crc = (crc >> 1) ^ 0x8408
            else:
                crc >>= 1
            cur_byte >>= 1
    crc = (~crc & 0xFFFF)
    crc = (crc << 8) | ((crc >> 8) & 0xFF)
    return crc & 0xFFFF


def reference(data):
    crc = 0xFFFF
    for b in data:
        cur_byte = 0xFF & int(b)
        for _ in range(8):
            if (crc & 0x0001) ^ (cur_byte & 0x0001):
                crc = (crc >> 1) ^ 0x8408
            else:
                crc >>= 1
            cur_byte >>= 1
    crc = (~crc & 0xFFFF)
    crc = (crc << 8) | ((crc >> 8) & 0xFF)
    return crc & 0xFFFF


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"data": rng.integers(0, 256, size=n).astype(np.int64)}


register(Benchmark(
    "crc16", crc16, reference, init,
    sizes={"test": dict(N=24), "small": dict(N=2000), "large": dict(N=20000)},
    outputs=(), domain="apps", gpu=False, fpga=False))
