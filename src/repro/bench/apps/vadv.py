"""vadv: COSMO vertical advection (upstream scheme, condensed) [8, 20]."""

import numpy as np

import repro
from ..registry import Benchmark, register

I = repro.symbol("I")
J = repro.symbol("J")
K = repro.symbol("K")


@repro.program
def vadv(utens_stage: repro.float64[I, J, K], u_stage: repro.float64[I, J, K],
         wcon: repro.float64[I + 1, J, K], u_pos: repro.float64[I, J, K],
         utens: repro.float64[I, J, K], dtr_stage: repro.float64):
    ccol = np.zeros((I, J, K))
    dcol = np.zeros((I, J, K))
    # forward sweep
    gcv0 = 0.25 * (wcon[1:, :, 1] + wcon[:-1, :, 1])
    cs0 = gcv0 * 0.04761904761904762
    ccol[:, :, 0] = gcv0 * 0.3333333333333333
    bcol0 = dtr_stage - ccol[:, :, 0]
    correction0 = -cs0 * (u_stage[:, :, 1] - u_stage[:, :, 0])
    dcol[:, :, 0] = (dtr_stage * u_pos[:, :, 0] + utens[:, :, 0]
                     + utens_stage[:, :, 0] + correction0)
    ccol[:, :, 0] = ccol[:, :, 0] / bcol0
    dcol[:, :, 0] = dcol[:, :, 0] / bcol0
    for k in range(1, K - 1):
        gav = -0.25 * (wcon[1:, :, k] + wcon[:-1, :, k])
        gcv = 0.25 * (wcon[1:, :, k + 1] + wcon[:-1, :, k + 1])
        as_ = gav * 0.3333333333333333
        cs = gcv * 0.04761904761904762
        acol = gav * 0.04761904761904762
        ccol[:, :, k] = gcv * 0.3333333333333333
        bcol = dtr_stage - acol - ccol[:, :, k]
        correction = -as_ * (u_stage[:, :, k - 1] - u_stage[:, :, k]) \
            - cs * (u_stage[:, :, k + 1] - u_stage[:, :, k])
        dcol[:, :, k] = (dtr_stage * u_pos[:, :, k] + utens[:, :, k]
                         + utens_stage[:, :, k] + correction)
        divided = 1.0 / (bcol - ccol[:, :, k - 1] * acol)
        ccol[:, :, k] = ccol[:, :, k] * divided
        dcol[:, :, k] = (dcol[:, :, k] - dcol[:, :, k - 1] * acol) * divided
    gav_last = -0.25 * (wcon[1:, :, K - 1] + wcon[:-1, :, K - 1])
    as_last = gav_last * 0.3333333333333333
    acol_last = gav_last * 0.04761904761904762
    bcol_last = dtr_stage - acol_last
    correction_last = -as_last * (u_stage[:, :, K - 2] - u_stage[:, :, K - 1])
    dcol[:, :, K - 1] = (dtr_stage * u_pos[:, :, K - 1] + utens[:, :, K - 1]
                         + utens_stage[:, :, K - 1] + correction_last)
    divided_last = 1.0 / (bcol_last - ccol[:, :, K - 2] * acol_last)
    dcol[:, :, K - 1] = (dcol[:, :, K - 1] - dcol[:, :, K - 2] * acol_last) \
        * divided_last
    # backward sweep
    utens_stage[:, :, K - 1] = dtr_stage * (dcol[:, :, K - 1]
                                            - u_pos[:, :, K - 1])
    for k in range(K - 2, -1, -1):
        dcol[:, :, k] = dcol[:, :, k] - ccol[:, :, k] * dcol[:, :, k + 1]
        utens_stage[:, :, k] = dtr_stage * (dcol[:, :, k] - u_pos[:, :, k])


def reference(utens_stage, u_stage, wcon, u_pos, utens, dtr_stage):
    ii, jj, kk = utens_stage.shape
    ccol = np.zeros((ii, jj, kk))
    dcol = np.zeros((ii, jj, kk))
    gcv0 = 0.25 * (wcon[1:, :, 1] + wcon[:-1, :, 1])
    cs0 = gcv0 * 0.04761904761904762
    ccol[:, :, 0] = gcv0 * (1.0 / 3.0)
    bcol0 = dtr_stage - ccol[:, :, 0]
    correction0 = -cs0 * (u_stage[:, :, 1] - u_stage[:, :, 0])
    dcol[:, :, 0] = (dtr_stage * u_pos[:, :, 0] + utens[:, :, 0]
                     + utens_stage[:, :, 0] + correction0)
    ccol[:, :, 0] /= bcol0
    dcol[:, :, 0] /= bcol0
    for k in range(1, kk - 1):
        gav = -0.25 * (wcon[1:, :, k] + wcon[:-1, :, k])
        gcv = 0.25 * (wcon[1:, :, k + 1] + wcon[:-1, :, k + 1])
        as_ = gav * (1.0 / 3.0)
        cs = gcv * 0.04761904761904762
        acol = gav * 0.04761904761904762
        ccol[:, :, k] = gcv * (1.0 / 3.0)
        bcol = dtr_stage - acol - ccol[:, :, k]
        correction = -as_ * (u_stage[:, :, k - 1] - u_stage[:, :, k]) \
            - cs * (u_stage[:, :, k + 1] - u_stage[:, :, k])
        dcol[:, :, k] = (dtr_stage * u_pos[:, :, k] + utens[:, :, k]
                         + utens_stage[:, :, k] + correction)
        divided = 1.0 / (bcol - ccol[:, :, k - 1] * acol)
        ccol[:, :, k] *= divided
        dcol[:, :, k] = (dcol[:, :, k] - dcol[:, :, k - 1] * acol) * divided
    gav_l = -0.25 * (wcon[1:, :, kk - 1] + wcon[:-1, :, kk - 1])
    as_l = gav_l * (1.0 / 3.0)
    acol_l = gav_l * 0.04761904761904762
    bcol_l = dtr_stage - acol_l
    corr_l = -as_l * (u_stage[:, :, kk - 2] - u_stage[:, :, kk - 1])
    dcol[:, :, kk - 1] = (dtr_stage * u_pos[:, :, kk - 1] + utens[:, :, kk - 1]
                          + utens_stage[:, :, kk - 1] + corr_l)
    div_l = 1.0 / (bcol_l - ccol[:, :, kk - 2] * acol_l)
    dcol[:, :, kk - 1] = (dcol[:, :, kk - 1] - dcol[:, :, kk - 2] * acol_l) * div_l
    utens_stage[:, :, kk - 1] = dtr_stage * (dcol[:, :, kk - 1]
                                             - u_pos[:, :, kk - 1])
    for k in range(kk - 2, -1, -1):
        dcol[:, :, k] -= ccol[:, :, k] * dcol[:, :, k + 1]
        utens_stage[:, :, k] = dtr_stage * (dcol[:, :, k] - u_pos[:, :, k])


def init(sizes):
    i, j, k = sizes["I"], sizes["J"], sizes["K"]
    rng = np.random.default_rng(42)
    return {"utens_stage": rng.random((i, j, k)),
            "u_stage": rng.random((i, j, k)),
            "wcon": rng.random((i + 1, j, k)) + 0.1,
            "u_pos": rng.random((i, j, k)),
            "utens": rng.random((i, j, k)), "dtr_stage": 3.0 / 20.0}


register(Benchmark(
    "vadv", vadv, reference, init,
    sizes={"test": dict(I=6, J=6, K=8),
           "small": dict(I=64, J=64, K=40),
           "large": dict(I=256, J=256, K=64)},
    outputs=("utens_stage",), domain="apps", gpu=False, fpga=False))
