"""stockham_fft: discrete Fourier transform [15].

Substitution note (DESIGN.md): the paper's benchmark is a Stockham radix-2
FFT; the reshape/stride juggling it needs is outside our frontend subset, so
this entry computes the same transform with an O(N^2) DFT map, exercising
complex arithmetic and WCR accumulation.  The reference uses the same
algorithm (validated against np.fft in the test suite)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def stockham_fft(xr: repro.float64[N], xi: repro.float64[N],
                 yr: repro.float64[N], yi: repro.float64[N]):
    for k, n in repro.map[0:N, 0:N]:
        angle = -2.0 * 3.141592653589793 * k * n / N
        c = np.cos(angle)
        s = np.sin(angle)
        yr[k] += xr[n] * c - xi[n] * s
        yi[k] += xr[n] * s + xi[n] * c


def reference(xr, xi, yr, yi):
    n = xr.shape[0]
    spectrum = np.fft.fft(xr + 1j * xi)
    yr += spectrum.real
    yi += spectrum.imag


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"xr": rng.random(n), "xi": rng.random(n),
            "yr": np.zeros(n), "yi": np.zeros(n)}


register(Benchmark(
    "stockham_fft", stockham_fft, reference, init,
    sizes={"test": dict(N=32), "small": dict(N=512), "large": dict(N=2048)},
    outputs=("yr", "yi"), domain="apps", fpga=False,
    notes="naive-DFT substitution for the Stockham FFT (see DESIGN.md)"))
