"""spmv: CSR sparse matrix-vector product (indirect reads, data-dependent
loop bounds)."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
NNZ = repro.symbol("NNZ")


@repro.program
def spmv(rowptr: repro.int64[M + 1], col: repro.int64[NNZ],
         val: repro.float64[NNZ], x: repro.float64[M],
         y: repro.float64[M]):
    for i in range(M):
        y[i] = 0.0
        for j in range(rowptr[i], rowptr[i + 1]):
            y[i] += val[j] * x[col[j]]


def reference(rowptr, col, val, x, y):
    for i in range(y.shape[0]):
        y[i] = 0.0
        for j in range(rowptr[i], rowptr[i + 1]):
            y[i] += val[j] * x[col[j]]


def init(sizes):
    m, nnz_per_row = sizes["M"], sizes.get("NNZ_PER_ROW", 4)
    rng = np.random.default_rng(42)
    nnz = m * nnz_per_row
    rowptr = np.arange(0, nnz + 1, nnz_per_row, dtype=np.int64)
    col = rng.integers(0, m, size=nnz).astype(np.int64)
    val = rng.random(nnz)
    return {"rowptr": rowptr, "col": col, "val": val, "x": rng.random(m),
            "y": np.zeros(m)}


register(Benchmark(
    "spmv", spmv, reference, init,
    sizes={"test": dict(M=20, NNZ_PER_ROW=3),
           "small": dict(M=5000, NNZ_PER_ROW=8),
           "large": dict(M=100000, NNZ_PER_ROW=16)},
    outputs=("y",), domain="apps", gpu=False, fpga=False))
