"""mandelbrot1: escape-time fractal with per-pixel iteration [67]."""

import numpy as np

import repro
from ..registry import Benchmark, register

W = repro.symbol("W")
H = repro.symbol("H")


@repro.program
def mandelbrot1(output: repro.int64[H, W], maxiter: repro.int64):
    for py, px in repro.map[0:H, 0:W]:
        x0 = -2.0 + px * (0.5 - -2.0) / W
        y0 = -1.25 + py * (1.25 - -1.25) / H
        zx = 0.0
        zy = 0.0
        count = 0
        for it in range(maxiter):
            if zx * zx + zy * zy > 4.0:
                break
            tmp = zx * zx - zy * zy + x0
            zy = 2.0 * zx * zy + y0
            zx = tmp
            count = count + 1
        output[py, px] = count


def reference(output, maxiter):
    h, w = output.shape
    for py in range(h):
        for px in range(w):
            x0 = -2.0 + px * 2.5 / w
            y0 = -1.25 + py * 2.5 / h
            zx = zy = 0.0
            count = 0
            for _ in range(maxiter):
                if zx * zx + zy * zy > 4.0:
                    break
                zx, zy = zx * zx - zy * zy + x0, 2.0 * zx * zy + y0
                count += 1
            output[py, px] = count


def init(sizes):
    w, h = sizes["W"], sizes["H"]
    return {"output": np.zeros((h, w), dtype=np.int64),
            "maxiter": sizes.get("MAXITER", 20)}


register(Benchmark(
    "mandelbrot1", mandelbrot1, reference, init,
    sizes={"test": dict(W=16, H=12, MAXITER=12),
           "small": dict(W=200, H=150, MAXITER=50),
           "large": dict(W=800, H=600, MAXITER=100)},
    outputs=("output",), domain="apps", fpga=False))
