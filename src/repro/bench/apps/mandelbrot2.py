"""mandelbrot2: fractal variant with smooth (fractional) escape counts [67]."""

import numpy as np

import repro
from ..registry import Benchmark, register

W = repro.symbol("W")
H = repro.symbol("H")


@repro.program
def mandelbrot2(output: repro.float64[H, W], maxiter: repro.int64):
    for py, px in repro.map[0:H, 0:W]:
        x0 = -2.0 + px * 2.5 / W
        y0 = -1.25 + py * 2.5 / H
        zx = 0.0
        zy = 0.0
        smooth = 0.0
        escaped = 0
        for it in range(maxiter):
            if escaped == 0:
                if zx * zx + zy * zy > 4.0:
                    smooth = it + 1.0 - np.log(np.log(zx * zx + zy * zy)) / 0.6931471805599453
                    escaped = 1
                else:
                    tmp = zx * zx - zy * zy + x0
                    zy = 2.0 * zx * zy + y0
                    zx = tmp
        if escaped == 0:
            smooth = maxiter * 1.0
        output[py, px] = smooth


def reference(output, maxiter):
    h, w = output.shape
    for py in range(h):
        for px in range(w):
            x0 = -2.0 + px * 2.5 / w
            y0 = -1.25 + py * 2.5 / h
            zx = zy = 0.0
            smooth = 0.0
            escaped = False
            for it in range(maxiter):
                if not escaped:
                    if zx * zx + zy * zy > 4.0:
                        smooth = it + 1.0 - np.log(np.log(zx * zx + zy * zy)) / np.log(2.0)
                        escaped = True
                    else:
                        zx, zy = zx * zx - zy * zy + x0, 2.0 * zx * zy + y0
            if not escaped:
                smooth = float(maxiter)
            output[py, px] = smooth


def init(sizes):
    w, h = sizes["W"], sizes["H"]
    return {"output": np.zeros((h, w)), "maxiter": sizes.get("MAXITER", 12)}


register(Benchmark(
    "mandelbrot2", mandelbrot2, reference, init,
    sizes={"test": dict(W=12, H=10, MAXITER=10),
           "small": dict(W=160, H=120, MAXITER=40),
           "large": dict(W=640, H=480, MAXITER=80)},
    outputs=("output",), domain="apps", fpga=False))
