"""resnet: a conv + batch-norm + ReLU residual block [37, 49].

Convolution is written as an explicit parametric map with inner reduction
loops — the paper notes this formulation produces many atomics on GPU,
making resnet the one case where CuPy wins (Fig. 8)."""

import numpy as np

import repro
from ..registry import Benchmark, register

B = repro.symbol("B")
HH = repro.symbol("HH")
WW = repro.symbol("WW")
CIN = repro.symbol("CIN")
COUT = repro.symbol("COUT")
KK = repro.symbol("KK")


@repro.program
def resnet(inputs: repro.float64[B, HH, WW, CIN],
           weights: repro.float64[KK, KK, CIN, COUT],
           out: repro.float64[B, HH - KK + 1, WW - KK + 1, COUT]):
    for b, i, j, co in repro.map[0:B, 0:HH - KK + 1, 0:WW - KK + 1, 0:COUT]:
        acc = 0.0
        for ki in range(KK):
            for kj in range(KK):
                for ci in range(CIN):
                    acc += inputs[b, i + ki, j + kj, ci] * weights[ki, kj, ci, co]
        out[b, i, j, co] = acc
    # batch normalization (per output channel) + ReLU
    mean = np.mean(out, axis=0)
    mean2 = np.mean(out * out, axis=0)
    std = np.sqrt(mean2 - mean * mean + 1e-5)
    out[:] = np.maximum((out - mean) / std, 0.0)


def reference(inputs, weights, out):
    kk = weights.shape[0]
    h_out = inputs.shape[1] - kk + 1
    w_out = inputs.shape[2] - kk + 1
    for i in range(h_out):
        for j in range(w_out):
            out[:, i, j, :] = np.sum(
                inputs[:, i:i + kk, j:j + kk, :, np.newaxis]
                * weights[np.newaxis], axis=(1, 2, 3))
    mean = np.mean(out, axis=0)
    std = np.sqrt(np.mean(out * out, axis=0) - mean ** 2 + 1e-5)
    out[:] = np.maximum((out - mean) / std, 0.0)


def init(sizes):
    b, h, w, cin, cout, k = (sizes["B"], sizes["H"], sizes["W"], sizes["CIN"],
                             sizes["COUT"], sizes["K"])
    rng = np.random.default_rng(42)
    return {"inputs": rng.random((b, h, w, cin)),
            "weights": rng.random((k, k, cin, cout)),
            "out": np.zeros((b, h - k + 1, w - k + 1, cout))}


register(Benchmark(
    "resnet", resnet, reference, init,
    sizes={"test": dict(B=2, H=8, W=8, CIN=3, COUT=4, K=3),
           "small": dict(B=4, H=28, W=28, CIN=8, COUT=16, K=3),
           "large": dict(B=8, H=56, W=56, CIN=16, COUT=32, K=3)},
    outputs=("out",), domain="apps", fpga=False))
