"""azimint_hist: azimuthal integration via histogram binning (pyFAI [41])."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")
NPT = repro.symbol("NPT")


@repro.program
def azimint_hist(data: repro.float64[N], radius: repro.float64[N],
                 res: repro.float64[NPT]):
    rmax = np.max(radius)
    counts = np.zeros((NPT,))
    sums = np.zeros((NPT,))
    for i in repro.map[0:N]:
        b = int(radius[i] / rmax * NPT)
        if b >= NPT:
            b = NPT - 1
        counts[b] += 1.0
        sums[b] += data[i]
    res[:] = sums / np.maximum(counts, 1.0)


def reference(data, radius, res):
    npt = res.shape[0]
    rmax = radius.max()
    b = np.minimum((radius / rmax * npt).astype(np.int64), npt - 1)
    counts = np.bincount(b, minlength=npt).astype(np.float64)
    sums = np.bincount(b, weights=data, minlength=npt)
    res[:] = sums / np.maximum(counts, 1.0)


def init(sizes):
    n, npt = sizes["N"], sizes["NPT"]
    rng = np.random.default_rng(42)
    return {"data": rng.random(n), "radius": rng.random(n),
            "res": np.zeros(npt)}


register(Benchmark(
    "azimint_hist", azimint_hist, reference, init,
    sizes={"test": dict(N=200, NPT=10),
           "small": dict(N=40000, NPT=100),
           "large": dict(N=400000, NPT=1000)},
    outputs=("res",), domain="apps", fpga=False))
