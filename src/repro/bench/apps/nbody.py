"""nbody: gravitational N-body leapfrog integration [51]."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def nbody(mass: repro.float64[N, 1], pos: repro.float64[N, 3],
          vel: repro.float64[N, 3], acc: repro.float64[N, 3],
          Nt: repro.int64, dt: repro.float64, G: repro.float64,
          softening: repro.float64):
    for step in range(Nt):
        vel += acc * (dt / 2.0)
        pos += vel * dt
        x = pos[:, 0:1]
        y = pos[:, 1:2]
        z = pos[:, 2:3]
        dx = x.T - x
        dy = y.T - y
        dz = z.T - z
        inv_r3 = dx * dx + dy * dy + dz * dz + softening * softening
        inv_r3 = inv_r3 ** (-1.5)
        acc[:, 0:1] = G * ((dx * inv_r3) @ mass)
        acc[:, 1:2] = G * ((dy * inv_r3) @ mass)
        acc[:, 2:3] = G * ((dz * inv_r3) @ mass)
        vel += acc * (dt / 2.0)


def reference(mass, pos, vel, acc, Nt, dt, G, softening):
    for step in range(Nt):
        vel += acc * (dt / 2.0)
        pos += vel * dt
        x, y, z = pos[:, 0:1], pos[:, 1:2], pos[:, 2:3]
        dx, dy, dz = x.T - x, y.T - y, z.T - z
        inv_r3 = (dx ** 2 + dy ** 2 + dz ** 2 + softening ** 2) ** (-1.5)
        acc[:, 0:1] = G * ((dx * inv_r3) @ mass)
        acc[:, 1:2] = G * ((dy * inv_r3) @ mass)
        acc[:, 2:3] = G * ((dz * inv_r3) @ mass)
        vel += acc * (dt / 2.0)


def init(sizes):
    n, nt = sizes["N"], sizes["NT"]
    rng = np.random.default_rng(17)
    return {"mass": np.full((n, 1), 20.0 / n), "pos": rng.random((n, 3)) - 0.5,
            "vel": rng.random((n, 3)) - 0.5, "acc": np.zeros((n, 3)),
            "Nt": nt, "dt": 0.01, "G": 1.0, "softening": 0.1}


register(Benchmark(
    "nbody", nbody, reference, init,
    sizes={"test": dict(N=12, NT=4),
           "small": dict(N=200, NT=20),
           "large": dict(N=1000, NT=50)},
    outputs=("pos", "vel", "acc"), domain="apps", fpga=False))
