"""hdiff: COSMO horizontal diffusion stencil [8, 20]."""

import numpy as np

import repro
from ..registry import Benchmark, register

I = repro.symbol("I")
J = repro.symbol("J")
K = repro.symbol("K")


@repro.program
def hdiff(in_field: repro.float64[I + 4, J + 4, K],
          out_field: repro.float64[I, J, K],
          coeff: repro.float64[I, J, K]):
    lap_field = 4.0 * in_field[1:I + 3, 1:J + 3, :] - (
        in_field[2:I + 4, 1:J + 3, :] + in_field[0:I + 2, 1:J + 3, :]
        + in_field[1:I + 3, 2:J + 4, :] + in_field[1:I + 3, 0:J + 2, :])
    res1 = lap_field[1:, 1:J + 1, :] - lap_field[:-1, 1:J + 1, :]
    flx_field = np.where(
        res1 * (in_field[2:I + 3, 2:J + 2, :] - in_field[1:I + 2, 2:J + 2, :]) > 0.0,
        0.0, res1)
    res2 = lap_field[1:I + 1, 1:, :] - lap_field[1:I + 1, :-1, :]
    fly_field = np.where(
        res2 * (in_field[2:I + 2, 2:J + 3, :] - in_field[2:I + 2, 1:J + 2, :]) > 0.0,
        0.0, res2)
    out_field[:] = in_field[2:I + 2, 2:J + 2, :] - coeff * (
        flx_field[1:, :, :] - flx_field[:-1, :, :]
        + fly_field[:, 1:, :] - fly_field[:, :-1, :])


def reference(in_field, out_field, coeff):
    ii = out_field.shape[0]
    jj = out_field.shape[1]
    lap_field = 4.0 * in_field[1:ii + 3, 1:jj + 3, :] - (
        in_field[2:ii + 4, 1:jj + 3, :] + in_field[0:ii + 2, 1:jj + 3, :]
        + in_field[1:ii + 3, 2:jj + 4, :] + in_field[1:ii + 3, 0:jj + 2, :])
    res1 = lap_field[1:, 1:jj + 1, :] - lap_field[:-1, 1:jj + 1, :]
    flx_field = np.where(
        res1 * (in_field[2:ii + 3, 2:jj + 2, :] - in_field[1:ii + 2, 2:jj + 2, :]) > 0.0,
        0.0, res1)
    res2 = lap_field[1:ii + 1, 1:, :] - lap_field[1:ii + 1, :-1, :]
    fly_field = np.where(
        res2 * (in_field[2:ii + 2, 2:jj + 3, :] - in_field[2:ii + 2, 1:jj + 2, :]) > 0.0,
        0.0, res2)
    out_field[:] = in_field[2:ii + 2, 2:jj + 2, :] - coeff * (
        flx_field[1:, :, :] - flx_field[:-1, :, :]
        + fly_field[:, 1:, :] - fly_field[:, :-1, :])


def init(sizes):
    i, j, k = sizes["I"], sizes["J"], sizes["K"]
    rng = np.random.default_rng(42)
    return {"in_field": rng.random((i + 4, j + 4, k)),
            "out_field": np.zeros((i, j, k)),
            "coeff": rng.random((i, j, k))}


register(Benchmark(
    "hdiff", hdiff, reference, init,
    sizes={"test": dict(I=8, J=8, K=4),
           "small": dict(I=64, J=64, K=40),
           "large": dict(I=256, J=256, K=64)},
    outputs=("out_field",), domain="apps"))
