"""The perf-trajectory harness: corpus profiling and the ``BENCH_cpu.json``
artifact.

Runs every corpus benchmark (or a subset) at a chosen size class and
measures three executions per benchmark:

* ``numpy_s`` — the pure-NumPy reference (the Fig. 7 baseline),
* ``interpreter_s`` — the reference SDFG interpreter,
* ``compiled_s`` — the auto-optimized generated module,

plus the compilation wall time decomposed per transformation pass via
:mod:`repro.instrumentation` (the Fig. 6 analogue).  Per-benchmark speedup
is ``numpy_s / compiled_s`` and the corpus summary is their geometric mean
(the Fig. 7 summary line).

Usage::

    python -m repro.bench.profile --size test
    python -m repro.bench.profile --size test --benchmarks gemm,atax,bicg

The resulting ``BENCH_cpu.json`` (schema below) is the datapoint every PR's
perf trajectory is judged against; CI uploads one per run.

Schema (``repro-bench-cpu/1``)::

    {
      "schema": "repro-bench-cpu/1",
      "created_utc": "...", "size": "...", "repetitions": N,
      "benchmarks": {
        "<name>": {"numpy_s": ..., "interpreter_s": ..., "compiled_s": ...,
                    "speedup": ..., "interpreter_speedup": ...,
                    "compile_s": ..., "passes": {"<pass>": seconds, ...}}
      },
      "failures": {"<name>": "<stage>: <error>"},
      "geomean_speedup": ...,            # compiled vs numpy, corpus geomean
      "geomean_interpreter_speedup": ...
    }
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from .. import instrumentation
from ..autoopt import auto_optimize
from ..codegen import compile_sdfg
from ..perf import geomean, measure
from ..runtime.executor import run_sdfg
from . import registry

__all__ = ["profile_benchmark", "profile_corpus", "write_artifact", "main"]

SCHEMA = "repro-bench-cpu/1"
DEFAULT_OUTPUT = "BENCH_cpu.json"

#: the CI subset: structurally diverse, fast at the test size class
CI_SUBSET = ["gemm", "jacobi_1d", "atax", "bicg", "mvt"]


def _sdfg_for(bench, size: str):
    if bench.program._annotation_descs() is None:
        return bench.program.to_sdfg(**bench.arguments(size)).clone()
    return bench.program.to_sdfg().clone()


def profile_benchmark(bench, size: str = "test", repetitions: int = 3,
                      warmup: int = 1) -> Dict[str, object]:
    """Measure one benchmark; returns its ``BENCH_cpu.json`` entry.

    Raises on failure — the caller decides how to record it.
    """
    # --- compilation, instrumented: per-pass decomposition (Fig. 6) ------
    with instrumentation.profile(bench.name) as coll:
        start = time.perf_counter()
        sdfg = _sdfg_for(bench, size)
        opt = sdfg.clone()
        auto_optimize(opt, device="CPU")
        compiled = compile_sdfg(opt)
        compile_s = time.perf_counter() - start
    passes = {r.name: r.total_s
              for r in coll.report().by_category("pass")}

    def fresh():
        return (), bench.arguments(size)

    numpy_m = measure(bench.reference, repetitions=repetitions,
                      warmup=warmup, setup=fresh)
    compiled_m = measure(lambda **kw: compiled(**kw),
                         repetitions=repetitions, warmup=warmup, setup=fresh)
    # the interpreter is orders of magnitude slower: one timed run suffices
    interp_m = measure(lambda **kw: run_sdfg(sdfg, **kw),
                       repetitions=1, warmup=0, setup=fresh)

    entry: Dict[str, object] = {
        "numpy_s": numpy_m.median,
        "interpreter_s": interp_m.median,
        "compiled_s": compiled_m.median,
        "speedup": (numpy_m.median / compiled_m.median
                    if compiled_m.median > 0 else 0.0),
        "interpreter_speedup": (numpy_m.median / interp_m.median
                                if interp_m.median > 0 else 0.0),
        "compile_s": compile_s,
        "passes": passes,
    }
    return entry


def profile_corpus(size: str = "test", names: Optional[List[str]] = None,
                   repetitions: int = 3, warmup: int = 1,
                   verbose: bool = True) -> Dict[str, object]:
    """Profile the corpus (or *names*); returns the artifact dictionary."""
    if names:
        benches = [registry.get(name) for name in names]
    else:
        benches = registry.all_benchmarks()

    benchmarks: Dict[str, Dict[str, object]] = {}
    failures: Dict[str, str] = {}
    for bench in benches:
        try:
            entry = profile_benchmark(bench, size=size,
                                      repetitions=repetitions, warmup=warmup)
        except Exception as exc:
            failures[bench.name] = f"{type(exc).__name__}: {exc}"
            if verbose:
                print(f"  {bench.name:<20} FAILED "
                      f"({failures[bench.name][:90]})", file=sys.stderr)
            continue
        benchmarks[bench.name] = entry
        if verbose:
            print(f"  {bench.name:<20} numpy {entry['numpy_s'] * 1e3:9.3f} ms"
                  f"  compiled {entry['compiled_s'] * 1e3:9.3f} ms"
                  f"  ({entry['speedup']:6.2f}x)")

    speedups = [e["speedup"] for e in benchmarks.values()]
    interp_speedups = [e["interpreter_speedup"] for e in benchmarks.values()]
    return {
        "schema": SCHEMA,
        "created_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "size": size,
        "repetitions": repetitions,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": benchmarks,
        "failures": failures,
        "geomean_speedup": geomean(speedups),
        "geomean_interpreter_speedup": geomean(interp_speedups),
    }


def write_artifact(result: Dict[str, object],
                   path: str = DEFAULT_OUTPUT) -> str:
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile",
        description="Profile the corpus (interpreter vs. compiled vs. NumPy)"
                    " and write the BENCH_cpu.json perf artifact.")
    parser.add_argument("--size", default="test",
                        choices=["test", "small", "large"],
                        help="size class (default: test)")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: full corpus); "
                             "'ci' selects the fast CI subset")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"artifact path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="timed repetitions for numpy/compiled "
                             "(default: 3)")
    parser.add_argument("--list", action="store_true",
                        help="list corpus benchmark names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in registry.names():
            print(name)
        return 0

    names: Optional[List[str]] = None
    if args.benchmarks == "ci":
        names = list(CI_SUBSET)
    elif args.benchmarks:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]

    print(f"profiling {len(names) if names else 'all'} benchmark(s) "
          f"at size class {args.size!r}...")
    result = profile_corpus(size=args.size, names=names,
                            repetitions=args.repetitions)
    path = write_artifact(result, args.output)
    ok = len(result["benchmarks"])
    failed = len(result["failures"])
    print(f"\n{ok} benchmark(s) measured, {failed} failed")
    print(f"geomean speedup over NumPy: compiled "
          f"{result['geomean_speedup']:.3f}x, interpreter "
          f"{result['geomean_interpreter_speedup']:.3f}x")
    print(f"wrote {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
