"""The perf-trajectory harness: corpus profiling and the ``BENCH_cpu.json``
artifact.

Runs every corpus benchmark (or a subset) at a chosen size class and
measures three executions per benchmark:

* ``numpy_s`` — the pure-NumPy reference (the Fig. 7 baseline),
* ``interpreter_s`` — the reference SDFG interpreter,
* ``compiled_s`` — the auto-optimized generated module,

plus the compilation wall time decomposed per transformation pass via
:mod:`repro.instrumentation` (the Fig. 6 analogue) and the cold-vs-warm
compile decomposition through the persistent compilation cache
(:mod:`repro.cache`): ``compile_cold_s`` measures the full
optimize+validate+codegen pipeline with the cache bypassed, and
``compile_warm_s`` measures a guaranteed cache hit.  Per-benchmark speedup
is ``numpy_s / compiled_s`` and the corpus summary is their geometric mean
(the Fig. 7 summary line).

Usage::

    python -m repro.bench.profile --size test
    python -m repro.bench.profile --size test --benchmarks gemm,atax,bicg
    python -m repro.bench.profile --warm 4                      # parallel warm-up
    python -m repro.bench.profile --check benchmarks/BENCH_baseline.json \
        --tolerance 0.25                                        # CI perf gate
    python -m repro.bench.profile --update-baseline             # refresh baseline

The resulting ``BENCH_cpu.json`` (schema below) is the datapoint every PR's
perf trajectory is judged against; CI uploads one per run and gates merges
on ``--check`` against the committed ``benchmarks/BENCH_baseline.json``.

With ``--threads N`` the harness additionally measures each benchmark's
compiled module with the multicore backend at N workers
(``device.cpu_threads`` override; the serial baseline is pinned to one
worker either way) and records the serial-vs-parallel thread-scaling
columns plus their corpus geomean.

Schema (``repro-bench-cpu/3``)::

    {
      "schema": "repro-bench-cpu/3",
      "created_utc": "...", "size": "...", "repetitions": N,
      "cpu_threads": T,                  # 0: thread-scaling not measured
      "benchmarks": {
        "<name>": {"numpy_s": ..., "interpreter_s": ..., "compiled_s": ...,
                    "speedup": ..., "interpreter_speedup": ...,
                    "compiled_parallel_s": ..., "parallel_speedup": ...,
                    "parallel_regions": ...,
                    "compile_s": ..., "compile_cold_s": ...,
                    "compile_warm_s": ..., "compile_warm_speedup": ...,
                    "cache_populate": "miss" | "hit-disk" | "hit-memory",
                    "passes": {"<pass>": seconds, ...}}
      },
      "failures": {"<name>": "<stage>: <error>"},
      "geomean_speedup": ...,            # compiled vs numpy, corpus geomean
      "geomean_interpreter_speedup": ...,
      "geomean_parallel_speedup": ...,   # serial vs T workers, corpus geomean
      "geomean_compile_warm_speedup": ..., # cold/warm compile, corpus geomean
      "compile_cold_total_s": ..., "compile_warm_total_s": ...,
      "cache": {"memory_hits": ..., "disk_hits": ..., "misses": ...,
                 "stores": ..., "hit_rate": ..., "directory": "..."}
    }
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from .. import cache as repro_cache
from .. import instrumentation
from ..autoopt import auto_optimize
from ..codegen import compile_sdfg
from ..config import Config
from ..perf import geomean, measure
from ..runtime.executor import run_sdfg
from . import registry

__all__ = ["profile_benchmark", "profile_corpus", "write_artifact",
           "check_against_baseline", "main"]

SCHEMA = "repro-bench-cpu/3"
DEFAULT_OUTPUT = "BENCH_cpu.json"
DEFAULT_BASELINE = "benchmarks/BENCH_baseline.json"

#: the CI subset: structurally diverse, fast at the test size class
CI_SUBSET = ["gemm", "jacobi_1d", "atax", "bicg", "mvt"]


def _sdfg_for(bench, size: str):
    if bench.program._annotation_descs() is None:
        return bench.program.to_sdfg(**bench.arguments(size)).clone()
    return bench.program.to_sdfg().clone()


def profile_benchmark(bench, size: str = "test", repetitions: int = 3,
                      warmup: int = 1, threads: int = 0) -> Dict[str, object]:
    """Measure one benchmark; returns its ``BENCH_cpu.json`` entry.

    Raises on failure — the caller decides how to record it.
    """
    # --- compilation, instrumented: per-pass decomposition (Fig. 6), with
    # the cache bypassed so this is the true cold pipeline cost ------------
    with instrumentation.profile(bench.name) as coll:
        start = time.perf_counter()
        sdfg = _sdfg_for(bench, size)
        opt = sdfg.clone()
        auto_optimize(opt, device="CPU")
        compiled = compile_sdfg(opt, cache=False)
        compile_s = time.perf_counter() - start
    passes = {r.name: r.total_s
              for r in coll.report().by_category("pass")}

    # --- warm path: the same artifact through the persistent cache -------
    # First call populates (or hits the disk tier left by a previous
    # process); the timed second call is a guaranteed hit, so the pair is
    # the cold/warm compile decomposition of the "heavy traffic" scenario.
    compile_warm_s = None
    cache_populate = "off"
    if Config.get("cache.enabled"):
        before = repro_cache.stats()
        counts = (before.memory_hits, before.disk_hits, before.misses)
        repro_cache.cached_compile(sdfg, device="CPU", optimize="CPU")
        after = repro_cache.stats()
        if after.misses > counts[2]:
            cache_populate = "miss"
        elif after.disk_hits > counts[1]:
            cache_populate = "hit-disk"
        else:
            cache_populate = "hit-memory"
        warm_start = time.perf_counter()
        warm_compiled = repro_cache.cached_compile(sdfg, device="CPU",
                                                   optimize="CPU")
        compile_warm_s = time.perf_counter() - warm_start
        assert warm_compiled is not None

    def fresh():
        return (), bench.arguments(size)

    numpy_m = measure(bench.reference, repetitions=repetitions,
                      warmup=warmup, setup=fresh)
    # the serial baseline pins the worker count to 1 so it stays comparable
    # across machines and against pre-multicore baselines
    with Config.override(device__cpu_threads=1):
        compiled_m = measure(lambda **kw: compiled(**kw),
                             repetitions=repetitions, warmup=warmup,
                             setup=fresh)
    # the interpreter is orders of magnitude slower: one timed run suffices
    interp_m = measure(lambda **kw: run_sdfg(sdfg, **kw),
                       repetitions=1, warmup=0, setup=fresh)

    # thread-scaling column: same compiled artifact, multicore dispatch
    # (the pool size is resolved at call time, not compile time)
    compiled_parallel_s = None
    parallel_regions = 0
    if threads and threads > 1:
        from ..runtime import parallel as repro_parallel

        before = repro_parallel.stats().to_dict()
        with Config.override(device__cpu_threads=int(threads)):
            par_m = measure(lambda **kw: compiled(**kw),
                            repetitions=repetitions, warmup=warmup,
                            setup=fresh)
        compiled_parallel_s = par_m.median
        parallel_regions = (repro_parallel.stats().to_dict()
                            ["parallel_regions"]
                            - before["parallel_regions"])

    entry: Dict[str, object] = {
        "numpy_s": numpy_m.median,
        "interpreter_s": interp_m.median,
        "compiled_s": compiled_m.median,
        "speedup": (numpy_m.median / compiled_m.median
                    if compiled_m.median > 0 else 0.0),
        "interpreter_speedup": (numpy_m.median / interp_m.median
                                if interp_m.median > 0 else 0.0),
        "compiled_parallel_s": compiled_parallel_s,
        "parallel_speedup": (compiled_m.median / compiled_parallel_s
                             if compiled_parallel_s else 0.0),
        "parallel_regions": parallel_regions,
        "compile_s": compile_s,
        "compile_cold_s": compile_s,
        "compile_warm_s": compile_warm_s,
        "compile_warm_speedup": (compile_s / compile_warm_s
                                 if compile_warm_s else 0.0),
        "cache_populate": cache_populate,
        "passes": passes,
    }
    return entry


def profile_corpus(size: str = "test", names: Optional[List[str]] = None,
                   repetitions: int = 3, warmup: int = 1,
                   verbose: bool = True, threads: int = 0) -> Dict[str, object]:
    """Profile the corpus (or *names*); returns the artifact dictionary."""
    if names:
        benches = [registry.get(name) for name in names]
    else:
        benches = registry.all_benchmarks()

    cache_before = repro_cache.stats().to_dict()
    benchmarks: Dict[str, Dict[str, object]] = {}
    failures: Dict[str, str] = {}
    for bench in benches:
        try:
            entry = profile_benchmark(bench, size=size,
                                      repetitions=repetitions, warmup=warmup,
                                      threads=threads)
        except Exception as exc:
            failures[bench.name] = f"{type(exc).__name__}: {exc}"
            if verbose:
                print(f"  {bench.name:<20} FAILED "
                      f"({failures[bench.name][:90]})", file=sys.stderr)
            continue
        benchmarks[bench.name] = entry
        if verbose:
            print(f"  {bench.name:<20} numpy {entry['numpy_s'] * 1e3:9.3f} ms"
                  f"  compiled {entry['compiled_s'] * 1e3:9.3f} ms"
                  f"  ({entry['speedup']:6.2f}x)")

    speedups = [e["speedup"] for e in benchmarks.values()]
    interp_speedups = [e["interpreter_speedup"] for e in benchmarks.values()]
    warm_speedups = [e["compile_warm_speedup"] for e in benchmarks.values()
                     if e.get("compile_warm_speedup")]
    parallel_speedups = [e["parallel_speedup"] for e in benchmarks.values()
                         if e.get("parallel_speedup")]
    cache_now = repro_cache.stats()
    cache_section = {k: cache_now.to_dict()[k] - cache_before.get(k, 0)
                     for k in ("memory_hits", "disk_hits", "misses",
                               "stores", "invalidations", "evictions",
                               "hits")}
    lookups = cache_section["hits"] + cache_section["misses"]
    cache_section["hit_rate"] = (cache_section["hits"] / lookups
                                 if lookups else 0.0)
    cache_section["enabled"] = bool(Config.get("cache.enabled"))
    cache_section["directory"] = repro_cache.default_directory()
    return {
        "schema": SCHEMA,
        "created_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "size": size,
        "repetitions": repetitions,
        "cpu_threads": int(threads),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": benchmarks,
        "failures": failures,
        "geomean_speedup": geomean(speedups),
        "geomean_interpreter_speedup": geomean(interp_speedups),
        "geomean_parallel_speedup": geomean(parallel_speedups),
        "geomean_compile_warm_speedup": geomean(warm_speedups),
        "compile_cold_total_s": sum(e["compile_cold_s"]
                                    for e in benchmarks.values()),
        "compile_warm_total_s": sum(e["compile_warm_s"] or 0.0
                                    for e in benchmarks.values()),
        "cache": cache_section,
    }


# ---------------------------------------------------------------------------
# the CI perf-regression gate
# ---------------------------------------------------------------------------

def check_against_baseline(result: Dict[str, object],
                           baseline: Dict[str, object],
                           tolerance: float = 0.25,
                           compile_tolerance: float = 1.0) -> List[str]:
    """Compare a fresh profile against a committed baseline.

    Returns a list of human-readable regression descriptions (empty when the
    gate passes).  Checks, in order:

    * every benchmark measured in the baseline still measures (a new failure
      is always a regression),
    * the corpus geomean speedups (compiled and interpreter vs. NumPy) have
      not dropped by more than *tolerance* (relative),
    * the corpus cold compile-time total has not grown by more than
      *compile_tolerance* (relative; wall-clock totals are noisier across
      machines than same-machine speedup ratios, hence the separate, looser
      knob).
    """
    problems: List[str] = []
    base_benchmarks = dict(baseline.get("benchmarks", {}))
    new_benchmarks = dict(result.get("benchmarks", {}))

    missing = sorted(set(base_benchmarks) - set(new_benchmarks))
    for name in missing:
        reason = result.get("failures", {}).get(name, "not measured")
        problems.append(f"benchmark {name!r} in baseline but absent from "
                        f"this run ({reason})")

    for metric in ("geomean_speedup", "geomean_interpreter_speedup"):
        base = float(baseline.get(metric) or 0.0)
        new = float(result.get(metric) or 0.0)
        if base > 0 and new < base * (1.0 - tolerance):
            problems.append(
                f"{metric} regressed: {new:.3f} < {base:.3f} "
                f"* (1 - {tolerance:.2f}) = {base * (1 - tolerance):.3f}")

    common = sorted(set(base_benchmarks) & set(new_benchmarks))
    base_compile = sum(float(base_benchmarks[n].get("compile_cold_s",
                             base_benchmarks[n].get("compile_s", 0.0)))
                       for n in common)
    new_compile = sum(float(new_benchmarks[n].get("compile_cold_s",
                            new_benchmarks[n].get("compile_s", 0.0)))
                      for n in common)
    if base_compile > 0 and new_compile > base_compile * (1.0 + compile_tolerance):
        problems.append(
            f"compile-time total regressed: {new_compile:.3f}s > "
            f"{base_compile:.3f}s * (1 + {compile_tolerance:.2f}) = "
            f"{base_compile * (1 + compile_tolerance):.3f}s "
            f"over {len(common)} common benchmark(s)")
    return problems


def write_artifact(result: Dict[str, object],
                   path: str = DEFAULT_OUTPUT) -> str:
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile",
        description="Profile the corpus (interpreter vs. compiled vs. NumPy)"
                    " and write the BENCH_cpu.json perf artifact.")
    parser.add_argument("--size", default="test",
                        choices=["test", "small", "large"],
                        help="size class (default: test)")
    parser.add_argument("--benchmarks", default="",
                        help="comma-separated subset (default: full corpus); "
                             "'ci' selects the fast CI subset")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"artifact path (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="timed repetitions for numpy/compiled "
                             "(default: 3)")
    parser.add_argument("--threads", type=int, default=0, metavar="N",
                        help="also measure the multicore backend at N "
                             "workers and record serial-vs-N thread-scaling "
                             "columns (0: skip)")
    parser.add_argument("--list", action="store_true",
                        help="list corpus benchmark names and exit")
    parser.add_argument("--warm", type=int, default=0, metavar="JOBS",
                        help="warm the compilation cache first across JOBS "
                             "processes (0: skip)")
    parser.add_argument("--check", default="", metavar="BASELINE",
                        help="perf-regression gate: compare against a "
                             "baseline BENCH_cpu.json and exit non-zero on "
                             "regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative geomean-speedup drop for "
                             "--check (default: 0.25)")
    parser.add_argument("--compile-tolerance", type=float, default=1.0,
                        help="allowed relative compile-time-total growth "
                             "for --check (default: 1.0; wall-clock totals "
                             "are noisier across machines)")
    parser.add_argument("--update-baseline", nargs="?", const=DEFAULT_BASELINE,
                        default="", metavar="PATH",
                        help=f"also write the artifact as the committed "
                             f"baseline (default path: {DEFAULT_BASELINE})")
    args = parser.parse_args(argv)

    if args.list:
        for name in registry.names():
            print(name)
        return 0

    names: Optional[List[str]] = None
    if args.benchmarks == "ci":
        names = list(CI_SUBSET)
    elif args.benchmarks:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]

    if args.warm:
        from ..cache.warm import warm_corpus

        summary = warm_corpus(names=names, size=args.size, jobs=args.warm)
        print(f"cache warm-up: {summary['warmed']}/"
              f"{len(summary['results'])} benchmark(s) in "
              f"{summary['wall_seconds']:.2f}s across {summary['jobs']} "
              f"job(s) (hits={summary['hits']} misses={summary['misses']})")

    print(f"profiling {len(names) if names else 'all'} benchmark(s) "
          f"at size class {args.size!r}...")
    result = profile_corpus(size=args.size, names=names,
                            repetitions=args.repetitions,
                            threads=args.threads)
    path = write_artifact(result, args.output)
    ok = len(result["benchmarks"])
    failed = len(result["failures"])
    print(f"\n{ok} benchmark(s) measured, {failed} failed")
    print(f"geomean speedup over NumPy: compiled "
          f"{result['geomean_speedup']:.3f}x, interpreter "
          f"{result['geomean_interpreter_speedup']:.3f}x")
    if args.threads and result.get("geomean_parallel_speedup"):
        print(f"thread scaling at {args.threads} workers: geomean "
              f"{result['geomean_parallel_speedup']:.3f}x over serial")
    if result.get("geomean_compile_warm_speedup"):
        print(f"compile cold {result['compile_cold_total_s']:.3f}s vs warm "
              f"{result['compile_warm_total_s']:.3f}s "
              f"(geomean {result['geomean_compile_warm_speedup']:.1f}x; "
              f"cache hit rate {result['cache']['hit_rate']:.2f})")
    print(f"wrote {path}")
    if not ok:
        return 1

    if args.update_baseline:
        write_artifact(result, args.update_baseline)
        print(f"updated baseline {args.update_baseline}")

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        problems = check_against_baseline(
            result, baseline, tolerance=args.tolerance,
            compile_tolerance=args.compile_tolerance)
        if problems:
            print(f"\nPERF GATE FAILED against {args.check}:",
                  file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        print(f"perf gate passed against {args.check} "
              f"(tolerance {args.tolerance:.2f}, compile tolerance "
              f"{args.compile_tolerance:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
