"""Table 2: the distributed benchmark suite — initial problem sizes per
framework and weak-scaling factors as functions of the process count S.

Scaling-factor semantics follow the paper: ``sqrtS`` multiplies a dimension
by sqrt(S), ``cbrtS`` by S^(1/3), ``S`` linearly, ``-`` keeps it fixed.
Sizes are rounded to multiples of the process-grid dimensions so block
distributions stay uniform (the functional runtime requires divisibility).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..simmpi.grid import balanced_dims

__all__ = ["DistributedBenchmark", "TABLE2", "scaled_sizes"]


@dataclass(frozen=True)
class DistributedBenchmark:
    """One Table 2 row."""

    name: str
    params: Tuple[str, ...]
    dace_sizes: Tuple[int, ...]          # DaCe/Legate initial problem size
    dask_sizes: Tuple[int, ...]          # Dask (halved; see §4.4)
    scaling: Tuple[str, ...]             # per-parameter factor
    pattern: str                         # communication pattern class
    #: flops as a function of the size dict (weak-scaling work)
    flop_exponents: Dict[str, float] = field(default_factory=dict)


TABLE2: Dict[str, DistributedBenchmark] = {b.name: b for b in [
    DistributedBenchmark(
        "atax", ("M", "N"), (20000, 25000), (10000, 12500),
        ("sqrtS", "sqrtS"), "matvec"),
    DistributedBenchmark(
        "bicg", ("M", "N"), (25000, 20000), (12500, 10000),
        ("sqrtS", "sqrtS"), "matvec"),
    DistributedBenchmark(
        "doitgen", ("NR", "NQ", "NP"), (128, 512, 512), (128, 512, 512),
        ("S", "-", "-"), "embarrassing"),
    DistributedBenchmark(
        "gemm", ("NI", "NJ", "NK"), (8000, 9200, 5200), (4000, 4600, 2600),
        ("cbrtS", "cbrtS", "cbrtS"), "matmul"),
    DistributedBenchmark(
        "gemver", ("N",), (10000,), (5000,), ("sqrtS",), "matvec"),
    DistributedBenchmark(
        "gesummv", ("N",), (22400,), (11400,), ("sqrtS",), "matvec"),
    DistributedBenchmark(
        "jacobi_1d", ("T", "N"), (1000, 24000), (1000, 24000),
        ("-", "S"), "stencil1d"),
    DistributedBenchmark(
        "jacobi_2d", ("T", "N"), (1000, 1300), (1000, 1300),
        ("-", "sqrtS"), "stencil2d"),
    DistributedBenchmark(
        "k2mm", ("NI", "NJ", "NK", "NM"), (6400, 7200, 4400, 4800),
        (3200, 3600, 2200, 2400), ("cbrtS",) * 4, "matmul"),
    DistributedBenchmark(
        "k3mm", ("NI", "NJ", "NK", "NL", "NM"), (6400, 7200, 4000, 4400, 4800),
        (3200, 3600, 2000, 2200, 2400), ("cbrtS",) * 5, "matmul"),
    DistributedBenchmark(
        "mvt", ("N",), (22000,), (11000,), ("sqrtS",), "matvec"),
]}


def _factor(kind: str, procs: int) -> float:
    if kind == "-":
        return 1.0
    if kind == "S":
        return float(procs)
    if kind == "sqrtS":
        return math.sqrt(procs)
    if kind == "cbrtS":
        return procs ** (1.0 / 3.0)
    raise ValueError(f"unknown scaling factor {kind!r}")


def scaled_sizes(bench: DistributedBenchmark, procs: int,
                 framework: str = "dace",
                 align_to_grid: bool = True) -> Dict[str, int]:
    """Problem sizes for *procs* processes under weak scaling (Table 2)."""
    base = bench.dace_sizes if framework in ("dace", "legate") else bench.dask_sizes
    grid = balanced_dims(procs)
    sizes: Dict[str, int] = {}
    for param, initial, kind in zip(bench.params, base, bench.scaling):
        value = int(round(initial * _factor(kind, procs)))
        if align_to_grid and kind != "-":
            multiple = grid[0] * grid[1]
            value = max(multiple, (value // multiple) * multiple)
        sizes[param] = value
    return sizes
