"""Benchmark corpus (§3.4) and measurement harnesses.

``repro.bench.registry`` holds the corpus; ``repro.bench.profile`` is the
perf-trajectory harness (``python -m repro.bench.profile``) producing the
``BENCH_cpu.json`` artifact.
"""

from . import registry

__all__ = ["registry"]
