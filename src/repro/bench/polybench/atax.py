"""atax: y = A.T @ (A @ x)."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
N = repro.symbol("N")


@repro.program
def atax(A: repro.float64[M, N], x: repro.float64[N], y: repro.float64[N]):
    y[:] = (A @ x) @ A


def reference(A, x, y):
    y[:] = (A @ x) @ A


def init(sizes):
    m, n = sizes["M"], sizes["N"]
    rng = np.random.default_rng(42)
    return {"A": rng.random((m, n)), "x": rng.random(n), "y": np.zeros(n)}


register(Benchmark(
    "atax", atax, reference, init,
    sizes={"test": dict(M=14, N=18),
           "small": dict(M=600, N=700),
           "large": dict(M=2000, N=2500)},
    outputs=("y",)))
