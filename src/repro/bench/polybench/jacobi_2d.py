"""jacobi_2d: 2-D five-point stencil time loop (§4.3 example)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def jacobi_2d(TSTEPS: repro.int32, A: repro.float64[N, N],
              B: repro.float64[N, N]):
    for t in range(1, TSTEPS):
        B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:]
                               + A[2:, 1:-1] + A[:-2, 1:-1])
        A[1:-1, 1:-1] = 0.2 * (B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:]
                               + B[2:, 1:-1] + B[:-2, 1:-1])


def reference(TSTEPS, A, B):
    for t in range(1, TSTEPS):
        B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:]
                               + A[2:, 1:-1] + A[:-2, 1:-1])
        A[1:-1, 1:-1] = 0.2 * (B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:]
                               + B[2:, 1:-1] + B[:-2, 1:-1])


def init(sizes):
    n, t = sizes["N"], sizes["TSTEPS"]
    rng = np.random.default_rng(42)
    return {"TSTEPS": t, "A": rng.random((n, n)), "B": rng.random((n, n))}


register(Benchmark(
    "jacobi_2d", jacobi_2d, reference, init,
    sizes={"test": dict(N=20, TSTEPS=6),
           "small": dict(N=300, TSTEPS=100),
           "large": dict(N=1300, TSTEPS=400)},
    outputs=("A", "B")))
