"""nussinov: RNA secondary-structure dynamic program (control-flow heavy;
the paper notes C compilers handle this class best)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def nussinov(seq: repro.int64[N], table: repro.int64[N, N]):
    for i in range(N - 1, -1, -1):
        for j in range(i + 1, N):
            if j - 1 >= 0:
                table[i, j] = max(table[i, j], table[i, j - 1])
            if i + 1 < N:
                table[i, j] = max(table[i, j], table[i + 1, j])
            if j - 1 >= 0 and i + 1 < N:
                if i < j - 1:
                    table[i, j] = max(table[i, j], table[i + 1, j - 1]
                                      + (1 if seq[i] + seq[j] == 3 else 0))
                else:
                    table[i, j] = max(table[i, j], table[i + 1, j - 1])
            for k in range(i + 1, j):
                table[i, j] = max(table[i, j], table[i, k] + table[k + 1, j])


def reference(seq, table):
    n = seq.shape[0]
    for i in range(n - 1, -1, -1):
        for j in range(i + 1, n):
            if j - 1 >= 0:
                table[i, j] = max(table[i, j], table[i, j - 1])
            if i + 1 < n:
                table[i, j] = max(table[i, j], table[i + 1, j])
            if j - 1 >= 0 and i + 1 < n:
                if i < j - 1:
                    table[i, j] = max(table[i, j], table[i + 1, j - 1]
                                      + (1 if seq[i] + seq[j] == 3 else 0))
                else:
                    table[i, j] = max(table[i, j], table[i + 1, j - 1])
            for k in range(i + 1, j):
                table[i, j] = max(table[i, j], table[i, k] + table[k + 1, j])


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"seq": rng.integers(0, 4, size=n).astype(np.int64),
            "table": np.zeros((n, n), dtype=np.int64)}


register(Benchmark(
    "nussinov", nussinov, reference, init,
    sizes={"test": dict(N=12),
           "small": dict(N=60),
           "large": dict(N=180)},
    outputs=("table",), gpu=False, fpga=False))
