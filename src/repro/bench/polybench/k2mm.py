"""2mm: D = alpha*A@B@C + beta*D (two chained matrix products)."""

import numpy as np

import repro
from ..registry import Benchmark, register

NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")
NL = repro.symbol("NL")


@repro.program
def k2mm(alpha: repro.float64, beta: repro.float64,
         A: repro.float64[NI, NK], B: repro.float64[NK, NJ],
         C: repro.float64[NJ, NL], D: repro.float64[NI, NL]):
    D[:] = alpha * A @ B @ C + beta * D


def reference(alpha, beta, A, B, C, D):
    D[:] = alpha * A @ B @ C + beta * D


def init(sizes):
    ni, nj, nk, nl = sizes["NI"], sizes["NJ"], sizes["NK"], sizes["NL"]
    rng = np.random.default_rng(42)
    return {"alpha": 1.5, "beta": 1.2, "A": rng.random((ni, nk)),
            "B": rng.random((nk, nj)), "C": rng.random((nj, nl)),
            "D": rng.random((ni, nl))}


register(Benchmark(
    "k2mm", k2mm, reference, init,
    sizes={"test": dict(NI=10, NJ=12, NK=14, NL=16),
           "small": dict(NI=180, NJ=190, NK=210, NL=220),
           "large": dict(NI=700, NJ=750, NK=800, NL=850)},
    outputs=("D",)))
