"""correlation: correlation matrix of a data set (numpy-natural form)."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
NN = repro.symbol("NN")


@repro.program
def correlation(float_n: repro.float64, data: repro.float64[NN, M],
                corr: repro.float64[M, M]):
    mean = np.mean(data, axis=0)
    centered = data - mean
    stddev = np.sqrt(np.mean(centered * centered, axis=0))
    stddev[:] = np.where(stddev <= 0.1, 1.0, stddev)
    data[:] = centered / (np.sqrt(float_n) * stddev)
    corr[:] = data.T @ data


def reference(float_n, data, corr):
    mean = np.mean(data, axis=0)
    centered = data - mean
    stddev = np.sqrt(np.mean(centered * centered, axis=0))
    stddev[:] = np.where(stddev <= 0.1, 1.0, stddev)
    data[:] = centered / (np.sqrt(float_n) * stddev)
    corr[:] = data.T @ data


def init(sizes):
    m, n = sizes["M"], sizes["NN"]
    rng = np.random.default_rng(42)
    return {"float_n": float(n), "data": rng.random((n, m)),
            "corr": np.zeros((m, m))}


register(Benchmark(
    "correlation", correlation, reference, init,
    sizes={"test": dict(M=12, NN=16),
           "small": dict(M=200, NN=240),
           "large": dict(M=700, NN=800)},
    outputs=("data", "corr")))
