"""gramschmidt: modified Gram-Schmidt QR decomposition."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
N = repro.symbol("N")


@repro.program
def gramschmidt(A: repro.float64[M, N], R: repro.float64[N, N],
                Q: repro.float64[M, N]):
    for k in range(N):
        R[k, k] = np.sqrt(A[:, k] @ A[:, k])
        Q[:, k] = A[:, k] / R[k, k]
        for j in range(k + 1, N):
            R[k, j] = Q[:, k] @ A[:, j]
            A[:, j] -= Q[:, k] * R[k, j]


def reference(A, R, Q):
    n = A.shape[1]
    for k in range(n):
        R[k, k] = np.sqrt(A[:, k] @ A[:, k])
        Q[:, k] = A[:, k] / R[k, k]
        for j in range(k + 1, n):
            R[k, j] = Q[:, k] @ A[:, j]
            A[:, j] -= Q[:, k] * R[k, j]


def init(sizes):
    m, n = sizes["M"], sizes["N"]
    rng = np.random.default_rng(42)
    return {"A": rng.random((m, n)) + 1.0, "R": np.zeros((n, n)),
            "Q": np.zeros((m, n))}


register(Benchmark(
    "gramschmidt", gramschmidt, reference, init,
    sizes={"test": dict(M=14, N=10),
           "small": dict(M=140, N=100),
           "large": dict(M=400, N=300)},
    outputs=("A", "R", "Q"), gpu=False, fpga=False))
