"""trmm: triangular matrix multiplication."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
N = repro.symbol("N")


@repro.program
def trmm(alpha: repro.float64, A: repro.float64[M, M], B: repro.float64[M, N]):
    for i in range(M):
        for j in range(N):
            B[i, j] = B[i, j] + A[i + 1:, i] @ B[i + 1:, j]
    B *= alpha


def reference(alpha, A, B):
    for i in range(B.shape[0]):
        for j in range(B.shape[1]):
            B[i, j] += A[i + 1:, i] @ B[i + 1:, j]
    B *= alpha


def init(sizes):
    m, n = sizes["M"], sizes["N"]
    rng = np.random.default_rng(42)
    return {"alpha": 1.5, "A": np.tril(rng.random((m, m)), -1) + np.eye(m),
            "B": rng.random((m, n))}


register(Benchmark(
    "trmm", trmm, reference, init,
    sizes={"test": dict(M=10, N=12),
           "small": dict(M=150, N=180),
           "large": dict(M=500, N=600)},
    outputs=("B",), gpu=False, fpga=False))
