"""durbin: Toeplitz system solver (Levinson-Durbin recursion)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def durbin(r: repro.float64[N], y: repro.float64[N]):
    y[0] = -r[0]
    beta = 1.0
    alpha = -r[0]
    for k in range(1, N):
        beta *= 1.0 - alpha * alpha
        alpha = -(r[k] + np.flip(r[:k]) @ y[:k]) / beta
        y[:k] += alpha * np.flip(y[:k])
        y[k] = alpha


def reference(r, y):
    n = r.shape[0]
    y[0] = -r[0]
    beta = 1.0
    alpha = -r[0]
    for k in range(1, n):
        beta *= 1.0 - alpha * alpha
        alpha = -(r[k] + np.flip(r[:k]) @ y[:k]) / beta
        y[:k] += alpha * np.flip(y[:k])
        y[k] = alpha


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"r": rng.random(n) * 0.5, "y": np.zeros(n)}


register(Benchmark(
    "durbin", durbin, reference, init,
    sizes={"test": dict(N=14),
           "small": dict(N=500),
           "large": dict(N=2000)},
    outputs=("y",), gpu=False, fpga=False))
