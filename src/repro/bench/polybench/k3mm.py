"""3mm: G = (A@B) @ (C@D) (three matrix products)."""

import numpy as np

import repro
from ..registry import Benchmark, register

NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")
NL = repro.symbol("NL")
NM = repro.symbol("NM")


@repro.program
def k3mm(A: repro.float64[NI, NK], B: repro.float64[NK, NJ],
         C: repro.float64[NJ, NM], D: repro.float64[NM, NL],
         G: repro.float64[NI, NL]):
    G[:] = A @ B @ (C @ D)


def reference(A, B, C, D, G):
    G[:] = A @ B @ (C @ D)


def init(sizes):
    ni, nj, nk, nl, nm = (sizes["NI"], sizes["NJ"], sizes["NK"], sizes["NL"],
                          sizes["NM"])
    rng = np.random.default_rng(42)
    return {"A": rng.random((ni, nk)), "B": rng.random((nk, nj)),
            "C": rng.random((nj, nm)), "D": rng.random((nm, nl)),
            "G": np.zeros((ni, nl))}


register(Benchmark(
    "k3mm", k3mm, reference, init,
    sizes={"test": dict(NI=8, NJ=10, NK=12, NL=14, NM=16),
           "small": dict(NI=180, NJ=190, NK=200, NL=210, NM=220),
           "large": dict(NI=600, NJ=650, NK=700, NL=750, NM=800)},
    outputs=("G",)))
