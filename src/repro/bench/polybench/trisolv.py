"""trisolv: forward substitution for a lower-triangular system."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def trisolv(L: repro.float64[N, N], x: repro.float64[N], b: repro.float64[N]):
    for i in range(N):
        x[i] = (b[i] - L[i, :i] @ x[:i]) / L[i, i]


def reference(L, x, b):
    for i in range(x.shape[0]):
        x[i] = (b[i] - L[i, :i] @ x[:i]) / L[i, i]


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    L = np.tril(rng.random((n, n)) + 1.0)
    return {"L": L, "x": np.zeros(n), "b": rng.random(n)}


register(Benchmark(
    "trisolv", trisolv, reference, init,
    sizes={"test": dict(N=16),
           "small": dict(N=400),
           "large": dict(N=2000)},
    outputs=("x",), gpu=False, fpga=False))
