"""gesummv: y = alpha*A@x + beta*B@x."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def gesummv(alpha: repro.float64, beta: repro.float64,
            A: repro.float64[N, N], B: repro.float64[N, N],
            x: repro.float64[N], y: repro.float64[N]):
    y[:] = alpha * A @ x + beta * B @ x


def reference(alpha, beta, A, B, x, y):
    y[:] = alpha * A @ x + beta * B @ x


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"alpha": 1.5, "beta": 1.2, "A": rng.random((n, n)),
            "B": rng.random((n, n)), "x": rng.random(n), "y": np.zeros(n)}


register(Benchmark(
    "gesummv", gesummv, reference, init,
    sizes={"test": dict(N=16),
           "small": dict(N=700),
           "large": dict(N=2800)},
    outputs=("y",)))
