"""gemm: C = alpha*A@B + beta*C, written with Python's @ operator (§3.4)."""

import numpy as np

import repro
from ..registry import Benchmark, register

NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")


@repro.program
def gemm(alpha: repro.float64, beta: repro.float64, C: repro.float64[NI, NJ],
         A: repro.float64[NI, NK], B: repro.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C


def reference(alpha, beta, C, A, B):
    C[:] = alpha * A @ B + beta * C


def init(sizes):
    ni, nj, nk = sizes["NI"], sizes["NJ"], sizes["NK"]
    rng = np.random.default_rng(42)
    return {"alpha": 1.5, "beta": 1.2, "C": rng.random((ni, nj)),
            "A": rng.random((ni, nk)), "B": rng.random((nk, nj))}


register(Benchmark(
    "gemm", gemm, reference, init,
    sizes={"test": dict(NI=12, NJ=14, NK=10),
           "small": dict(NI=200, NJ=220, NK=240),
           "large": dict(NI=800, NJ=900, NK=1000)},
    outputs=("C",)))
