"""covariance: covariance matrix of a data set."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
NN = repro.symbol("NN")


@repro.program
def covariance(float_n: repro.float64, data: repro.float64[NN, M],
               cov: repro.float64[M, M]):
    mean = np.mean(data, axis=0)
    data -= mean
    cov[:] = data.T @ data / (float_n - 1.0)


def reference(float_n, data, cov):
    mean = np.mean(data, axis=0)
    data -= mean
    cov[:] = data.T @ data / (float_n - 1.0)


def init(sizes):
    m, n = sizes["M"], sizes["NN"]
    rng = np.random.default_rng(42)
    return {"float_n": float(n), "data": rng.random((n, m)),
            "cov": np.zeros((m, m))}


register(Benchmark(
    "covariance", covariance, reference, init,
    sizes={"test": dict(M=12, NN=16),
           "small": dict(M=200, NN=240),
           "large": dict(M=700, NN=800)},
    outputs=("data", "cov")))
