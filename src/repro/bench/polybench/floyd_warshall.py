"""floyd_warshall: all-pairs shortest paths via broadcasting minimum."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def floyd_warshall(path: repro.float64[N, N]):
    for k in range(N):
        path[:] = np.minimum(path, path[:, k:k + 1] + path[k:k + 1, :])


def reference(path):
    for k in range(path.shape[0]):
        path[:] = np.minimum(path, path[:, k:k + 1] + path[k:k + 1, :])


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"path": rng.integers(1, 100, size=(n, n)).astype(np.float64)}


register(Benchmark(
    "floyd_warshall", floyd_warshall, reference, init,
    sizes={"test": dict(N=16),
           "small": dict(N=200),
           "large": dict(N=700)},
    outputs=("path",)))
