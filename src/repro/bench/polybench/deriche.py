"""deriche: recursive 2-D edge-detection filter (row/column scans)."""

import numpy as np

import repro
from ..registry import Benchmark, register

W = repro.symbol("W")
H = repro.symbol("H")


@repro.program
def deriche(alpha: repro.float64, imgIn: repro.float64[W, H],
            imgOut: repro.float64[W, H]):
    k = (1.0 - np.exp(-alpha)) * (1.0 - np.exp(-alpha)) \
        / (1.0 + 2.0 * alpha * np.exp(-alpha) - np.exp(2.0 * alpha))
    a1 = k
    a2 = k * np.exp(-alpha) * (alpha - 1.0)
    a3 = k * np.exp(-alpha) * (alpha + 1.0)
    a4 = -k * np.exp(-2.0 * alpha)
    b1 = 2.0 ** (-alpha)
    b2 = -np.exp(-2.0 * alpha)

    y1 = np.zeros((W, H))
    y2 = np.zeros((W, H))

    # horizontal forward pass
    y1[:, 0] = a1 * imgIn[:, 0]
    y1[:, 1] = a1 * imgIn[:, 1] + a2 * imgIn[:, 0] + b1 * y1[:, 0]
    for j in range(2, H):
        y1[:, j] = a1 * imgIn[:, j] + a2 * imgIn[:, j - 1] \
            + b1 * y1[:, j - 1] + b2 * y1[:, j - 2]
    # horizontal backward pass
    y2[:, H - 1] = 0.0
    y2[:, H - 2] = a3 * imgIn[:, H - 1]
    for j in range(H - 3, -1, -1):
        y2[:, j] = a3 * imgIn[:, j + 1] + a4 * imgIn[:, j + 2] \
            + b1 * y2[:, j + 1] + b2 * y2[:, j + 2]
    imgOut[:] = y1 + y2

    # vertical forward pass
    y1[0, :] = a1 * imgOut[0, :]
    y1[1, :] = a1 * imgOut[1, :] + a2 * imgOut[0, :] + b1 * y1[0, :]
    for i in range(2, W):
        y1[i, :] = a1 * imgOut[i, :] + a2 * imgOut[i - 1, :] \
            + b1 * y1[i - 1, :] + b2 * y1[i - 2, :]
    # vertical backward pass
    y2[W - 1, :] = 0.0
    y2[W - 2, :] = a3 * imgOut[W - 1, :]
    for i in range(W - 3, -1, -1):
        y2[i, :] = a3 * imgOut[i + 1, :] + a4 * imgOut[i + 2, :] \
            + b1 * y2[i + 1, :] + b2 * y2[i + 2, :]
    imgOut[:] = y1 + y2


def reference(alpha, imgIn, imgOut):
    w, h = imgIn.shape
    k = (1.0 - np.exp(-alpha)) ** 2 \
        / (1.0 + 2.0 * alpha * np.exp(-alpha) - np.exp(2.0 * alpha))
    a1 = k
    a2 = k * np.exp(-alpha) * (alpha - 1.0)
    a3 = k * np.exp(-alpha) * (alpha + 1.0)
    a4 = -k * np.exp(-2.0 * alpha)
    b1 = 2.0 ** (-alpha)
    b2 = -np.exp(-2.0 * alpha)
    y1 = np.zeros((w, h))
    y2 = np.zeros((w, h))
    y1[:, 0] = a1 * imgIn[:, 0]
    y1[:, 1] = a1 * imgIn[:, 1] + a2 * imgIn[:, 0] + b1 * y1[:, 0]
    for j in range(2, h):
        y1[:, j] = a1 * imgIn[:, j] + a2 * imgIn[:, j - 1] \
            + b1 * y1[:, j - 1] + b2 * y1[:, j - 2]
    y2[:, h - 1] = 0.0
    y2[:, h - 2] = a3 * imgIn[:, h - 1]
    for j in range(h - 3, -1, -1):
        y2[:, j] = a3 * imgIn[:, j + 1] + a4 * imgIn[:, j + 2] \
            + b1 * y2[:, j + 1] + b2 * y2[:, j + 2]
    imgOut[:] = y1 + y2
    y1[0, :] = a1 * imgOut[0, :]
    y1[1, :] = a1 * imgOut[1, :] + a2 * imgOut[0, :] + b1 * y1[0, :]
    for i in range(2, w):
        y1[i, :] = a1 * imgOut[i, :] + a2 * imgOut[i - 1, :] \
            + b1 * y1[i - 1, :] + b2 * y1[i - 2, :]
    y2[w - 1, :] = 0.0
    y2[w - 2, :] = a3 * imgOut[w - 1, :]
    for i in range(w - 3, -1, -1):
        y2[i, :] = a3 * imgOut[i + 1, :] + a4 * imgOut[i + 2, :] \
            + b1 * y2[i + 1, :] + b2 * y2[i + 2, :]
    imgOut[:] = y1 + y2


def init(sizes):
    w, h = sizes["W"], sizes["H"]
    rng = np.random.default_rng(42)
    return {"alpha": 0.25, "imgIn": rng.random((w, h)),
            "imgOut": np.zeros((w, h))}


register(Benchmark(
    "deriche", deriche, reference, init,
    sizes={"test": dict(W=14, H=12),
           "small": dict(W=400, H=300),
           "large": dict(W=1600, H=1200)},
    outputs=("imgOut",), gpu=False, fpga=False))
