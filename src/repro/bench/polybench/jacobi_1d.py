"""jacobi_1d: 1-D three-point stencil time loop (the paper's §2.2 example)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def jacobi_1d(TSTEPS: repro.int32, A: repro.float64[N], B: repro.float64[N]):
    for t in range(1, TSTEPS):
        B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
        A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])


def reference(TSTEPS, A, B):
    for t in range(1, TSTEPS):
        B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
        A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])


def init(sizes):
    n, t = sizes["N"], sizes["TSTEPS"]
    rng = np.random.default_rng(42)
    return {"TSTEPS": t, "A": rng.random(n), "B": rng.random(n)}


register(Benchmark(
    "jacobi_1d", jacobi_1d, reference, init,
    sizes={"test": dict(N=40, TSTEPS=8),
           "small": dict(N=20000, TSTEPS=200),
           "large": dict(N=120000, TSTEPS=1000)},
    outputs=("A", "B")))
