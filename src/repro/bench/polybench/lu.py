"""lu: LU decomposition without pivoting."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def lu(A: repro.float64[N, N]):
    for i in range(N):
        for j in range(i):
            A[i, j] -= A[i, :j] @ A[:j, j]
            A[i, j] /= A[j, j]
        for j in range(i, N):
            A[i, j] -= A[i, :i] @ A[:i, j]


def reference(A):
    n = A.shape[0]
    for i in range(n):
        for j in range(i):
            A[i, j] -= A[i, :j] @ A[:j, j]
            A[i, j] /= A[j, j]
        for j in range(i, n):
            A[i, j] -= A[i, :i] @ A[:i, j]


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    A = rng.random((n, n))
    return {"A": A @ A.T + n * np.eye(n)}


register(Benchmark(
    "lu", lu, reference, init,
    sizes={"test": dict(N=10),
           "small": dict(N=80),
           "large": dict(N=220)},
    outputs=("A",), gpu=False, fpga=False))
