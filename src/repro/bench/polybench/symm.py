"""symm: symmetric matrix-matrix multiplication."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
N = repro.symbol("N")


@repro.program
def symm(alpha: repro.float64, beta: repro.float64, C: repro.float64[M, N],
         A: repro.float64[M, M], B: repro.float64[M, N],
         temp2: repro.float64[N]):
    C *= beta
    for i in range(M):
        for j in range(N):
            C[:i, j] += alpha * B[i, j] * A[i, :i]
            temp2[j] = B[:i, j] @ A[i, :i]
        C[i, :] += alpha * B[i, :] * A[i, i] + alpha * temp2


def reference(alpha, beta, C, A, B, temp2):
    C *= beta
    for i in range(C.shape[0]):
        for j in range(C.shape[1]):
            C[:i, j] += alpha * B[i, j] * A[i, :i]
            temp2[j] = B[:i, j] @ A[i, :i]
        C[i, :] += alpha * B[i, :] * A[i, i] + alpha * temp2


def init(sizes):
    m, n = sizes["M"], sizes["N"]
    rng = np.random.default_rng(42)
    return {"alpha": 1.5, "beta": 1.2, "C": rng.random((m, n)),
            "A": rng.random((m, m)), "B": rng.random((m, n)),
            "temp2": np.zeros(n)}


register(Benchmark(
    "symm", symm, reference, init,
    sizes={"test": dict(M=10, N=12),
           "small": dict(M=80, N=90),
           "large": dict(M=200, N=240)},
    outputs=("C",), gpu=False, fpga=False))
