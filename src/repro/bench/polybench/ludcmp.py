"""ludcmp: LU decomposition followed by forward/backward substitution."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def ludcmp(A: repro.float64[N, N], b: repro.float64[N], x: repro.float64[N],
           y: repro.float64[N]):
    for i in range(N):
        for j in range(i):
            A[i, j] -= A[i, :j] @ A[:j, j]
            A[i, j] /= A[j, j]
        for j in range(i, N):
            A[i, j] -= A[i, :i] @ A[:i, j]
    for i in range(N):
        y[i] = b[i] - A[i, :i] @ y[:i]
    for i in range(N - 1, -1, -1):
        x[i] = (y[i] - A[i, i + 1:] @ x[i + 1:]) / A[i, i]


def reference(A, b, x, y):
    n = A.shape[0]
    for i in range(n):
        for j in range(i):
            A[i, j] -= A[i, :j] @ A[:j, j]
            A[i, j] /= A[j, j]
        for j in range(i, n):
            A[i, j] -= A[i, :i] @ A[:i, j]
    for i in range(n):
        y[i] = b[i] - A[i, :i] @ y[:i]
    for i in range(n - 1, -1, -1):
        x[i] = (y[i] - A[i, i + 1:] @ x[i + 1:]) / A[i, i]


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    A = rng.random((n, n))
    return {"A": A @ A.T + n * np.eye(n), "b": rng.random(n),
            "x": np.zeros(n), "y": np.zeros(n)}


register(Benchmark(
    "ludcmp", ludcmp, reference, init,
    sizes={"test": dict(N=10),
           "small": dict(N=80),
           "large": dict(N=220)},
    outputs=("A", "x", "y"), gpu=False, fpga=False))
