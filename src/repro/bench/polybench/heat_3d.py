"""heat_3d: 3-D seven-point heat stencil."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def heat_3d(TSTEPS: repro.int32, A: repro.float64[N, N, N],
            B: repro.float64[N, N, N]):
    for t in range(1, TSTEPS):
        B[1:-1, 1:-1, 1:-1] = (
            0.125 * (A[2:, 1:-1, 1:-1] - 2.0 * A[1:-1, 1:-1, 1:-1]
                     + A[:-2, 1:-1, 1:-1])
            + 0.125 * (A[1:-1, 2:, 1:-1] - 2.0 * A[1:-1, 1:-1, 1:-1]
                       + A[1:-1, :-2, 1:-1])
            + 0.125 * (A[1:-1, 1:-1, 2:] - 2.0 * A[1:-1, 1:-1, 1:-1]
                       + A[1:-1, 1:-1, :-2])
            + A[1:-1, 1:-1, 1:-1])
        A[1:-1, 1:-1, 1:-1] = (
            0.125 * (B[2:, 1:-1, 1:-1] - 2.0 * B[1:-1, 1:-1, 1:-1]
                     + B[:-2, 1:-1, 1:-1])
            + 0.125 * (B[1:-1, 2:, 1:-1] - 2.0 * B[1:-1, 1:-1, 1:-1]
                       + B[1:-1, :-2, 1:-1])
            + 0.125 * (B[1:-1, 1:-1, 2:] - 2.0 * B[1:-1, 1:-1, 1:-1]
                       + B[1:-1, 1:-1, :-2])
            + B[1:-1, 1:-1, 1:-1])


def reference(TSTEPS, A, B):
    for t in range(1, TSTEPS):
        B[1:-1, 1:-1, 1:-1] = (
            0.125 * (A[2:, 1:-1, 1:-1] - 2.0 * A[1:-1, 1:-1, 1:-1]
                     + A[:-2, 1:-1, 1:-1])
            + 0.125 * (A[1:-1, 2:, 1:-1] - 2.0 * A[1:-1, 1:-1, 1:-1]
                       + A[1:-1, :-2, 1:-1])
            + 0.125 * (A[1:-1, 1:-1, 2:] - 2.0 * A[1:-1, 1:-1, 1:-1]
                       + A[1:-1, 1:-1, :-2])
            + A[1:-1, 1:-1, 1:-1])
        A[1:-1, 1:-1, 1:-1] = (
            0.125 * (B[2:, 1:-1, 1:-1] - 2.0 * B[1:-1, 1:-1, 1:-1]
                     + B[:-2, 1:-1, 1:-1])
            + 0.125 * (B[1:-1, 2:, 1:-1] - 2.0 * B[1:-1, 1:-1, 1:-1]
                       + B[1:-1, :-2, 1:-1])
            + 0.125 * (B[1:-1, 1:-1, 2:] - 2.0 * B[1:-1, 1:-1, 1:-1]
                       + B[1:-1, 1:-1, :-2])
            + B[1:-1, 1:-1, 1:-1])


def init(sizes):
    n, t = sizes["N"], sizes["TSTEPS"]
    rng = np.random.default_rng(42)
    return {"TSTEPS": t, "A": rng.random((n, n, n)),
            "B": rng.random((n, n, n))}


register(Benchmark(
    "heat_3d", heat_3d, reference, init,
    sizes={"test": dict(N=10, TSTEPS=4),
           "small": dict(N=40, TSTEPS=50),
           "large": dict(N=120, TSTEPS=200)},
    outputs=("A", "B")))
