"""bicg: q = A @ p, s = A.T @ r (BiCGStab subkernel)."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
N = repro.symbol("N")


@repro.program
def bicg(A: repro.float64[N, M], p: repro.float64[M], r: repro.float64[N],
         q: repro.float64[N], s: repro.float64[M]):
    q[:] = A @ p
    s[:] = r @ A


def reference(A, p, r, q, s):
    q[:] = A @ p
    s[:] = r @ A


def init(sizes):
    m, n = sizes["M"], sizes["N"]
    rng = np.random.default_rng(42)
    return {"A": rng.random((n, m)), "p": rng.random(m), "r": rng.random(n),
            "q": np.zeros(n), "s": np.zeros(m)}


register(Benchmark(
    "bicg", bicg, reference, init,
    sizes={"test": dict(M=14, N=18),
           "small": dict(M=600, N=700),
           "large": dict(M=2000, N=2500)},
    outputs=("q", "s")))
