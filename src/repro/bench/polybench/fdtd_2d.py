"""fdtd_2d: 2-D finite-difference time-domain electromagnetic kernel."""

import numpy as np

import repro
from ..registry import Benchmark, register

TMAX = repro.symbol("TMAX")
NX = repro.symbol("NX")
NY = repro.symbol("NY")


@repro.program
def fdtd_2d(ex: repro.float64[NX, NY], ey: repro.float64[NX, NY],
            hz: repro.float64[NX, NY], _fict_: repro.float64[TMAX]):
    for t in range(TMAX):
        ey[0, :] = _fict_[t]
        ey[1:, :] = ey[1:, :] - 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] = ex[:, 1:] - 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] = hz[:-1, :-1] - 0.7 * (ex[:-1, 1:] - ex[:-1, :-1]
                                             + ey[1:, :-1] - ey[:-1, :-1])


def reference(ex, ey, hz, _fict_):
    for t in range(_fict_.shape[0]):
        ey[0, :] = _fict_[t]
        ey[1:, :] = ey[1:, :] - 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] = ex[:, 1:] - 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] = hz[:-1, :-1] - 0.7 * (ex[:-1, 1:] - ex[:-1, :-1]
                                             + ey[1:, :-1] - ey[:-1, :-1])


def init(sizes):
    nx, ny, tmax = sizes["NX"], sizes["NY"], sizes["TMAX"]
    rng = np.random.default_rng(42)
    return {"ex": rng.random((nx, ny)), "ey": rng.random((nx, ny)),
            "hz": rng.random((nx, ny)), "_fict_": rng.random(tmax)}


register(Benchmark(
    "fdtd_2d", fdtd_2d, reference, init,
    sizes={"test": dict(NX=14, NY=16, TMAX=5),
           "small": dict(NX=200, NY=240, TMAX=100),
           "large": dict(NX=1000, NY=1200, TMAX=500)},
    outputs=("ex", "ey", "hz")))
