"""cholesky: Cholesky decomposition (in-place, lower triangle)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def cholesky(A: repro.float64[N, N]):
    A[0, 0] = np.sqrt(A[0, 0])
    for i in range(1, N):
        for j in range(i):
            A[i, j] -= A[i, :j] @ A[j, :j]
            A[i, j] /= A[j, j]
        A[i, i] -= A[i, :i] @ A[i, :i]
        A[i, i] = np.sqrt(A[i, i])


def reference(A):
    n = A.shape[0]
    A[0, 0] = np.sqrt(A[0, 0])
    for i in range(1, n):
        for j in range(i):
            A[i, j] -= A[i, :j] @ A[j, :j]
            A[i, j] /= A[j, j]
        A[i, i] -= A[i, :i] @ A[i, :i]
        A[i, i] = np.sqrt(A[i, i])


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    A = rng.random((n, n))
    return {"A": A @ A.T + n * np.eye(n)}


register(Benchmark(
    "cholesky", cholesky, reference, init,
    sizes={"test": dict(N=10),
           "small": dict(N=80),
           "large": dict(N=220)},
    outputs=("A",), gpu=False, fpga=False))
