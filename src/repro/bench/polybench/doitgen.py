"""doitgen: multiresolution analysis kernel (batched vector-matrix)."""

import numpy as np

import repro
from ..registry import Benchmark, register

NR = repro.symbol("NR")
NQ = repro.symbol("NQ")
NP = repro.symbol("NP")


@repro.program
def doitgen(A: repro.float64[NR, NQ, NP], C4: repro.float64[NP, NP]):
    for r in range(NR):
        for q in range(NQ):
            A[r, q, :] = A[r, q, :] @ C4


def reference(A, C4):
    for r in range(A.shape[0]):
        for q in range(A.shape[1]):
            A[r, q, :] = A[r, q, :] @ C4


def init(sizes):
    nr, nq, np_ = sizes["NR"], sizes["NQ"], sizes["NP"]
    rng = np.random.default_rng(42)
    return {"A": rng.random((nr, nq, np_)), "C4": rng.random((np_, np_))}


register(Benchmark(
    "doitgen", doitgen, reference, init,
    sizes={"test": dict(NR=4, NQ=5, NP=12),
           "small": dict(NR=30, NQ=40, NP=128),
           "large": dict(NR=64, NQ=64, NP=256)},
    outputs=("A",)))
