"""mvt: x1 += A @ y_1, x2 += A.T @ y_2."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def mvt(x1: repro.float64[N], x2: repro.float64[N], y_1: repro.float64[N],
        y_2: repro.float64[N], A: repro.float64[N, N]):
    x1 += A @ y_1
    x2 += y_2 @ A


def reference(x1, x2, y_1, y_2, A):
    x1 += A @ y_1
    x2 += y_2 @ A


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"x1": rng.random(n), "x2": rng.random(n), "y_1": rng.random(n),
            "y_2": rng.random(n), "A": rng.random((n, n))}


register(Benchmark(
    "mvt", mvt, reference, init,
    sizes={"test": dict(N=16),
           "small": dict(N=800),
           "large": dict(N=3000)},
    outputs=("x1", "x2")))
