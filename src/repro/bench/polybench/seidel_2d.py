"""seidel_2d: Gauss-Seidel sweep (sequential in-place stencil)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def seidel_2d(TSTEPS: repro.int32, A: repro.float64[N, N]):
    for t in range(TSTEPS):
        for i in range(1, N - 1):
            A[i, 1:-1] += (A[i - 1, :-2] + A[i - 1, 1:-1] + A[i - 1, 2:]
                           + A[i, 2:] + A[i + 1, :-2] + A[i + 1, 1:-1]
                           + A[i + 1, 2:])
            for j in range(1, N - 1):
                A[i, j] += A[i, j - 1]
                A[i, j] /= 9.0


def reference(TSTEPS, A):
    n = A.shape[0]
    for t in range(TSTEPS):
        for i in range(1, n - 1):
            A[i, 1:-1] += (A[i - 1, :-2] + A[i - 1, 1:-1] + A[i - 1, 2:]
                           + A[i, 2:] + A[i + 1, :-2] + A[i + 1, 1:-1]
                           + A[i + 1, 2:])
            for j in range(1, n - 1):
                A[i, j] += A[i, j - 1]
                A[i, j] /= 9.0


def init(sizes):
    n, t = sizes["N"], sizes["TSTEPS"]
    rng = np.random.default_rng(42)
    return {"TSTEPS": t, "A": rng.random((n, n))}


register(Benchmark(
    "seidel_2d", seidel_2d, reference, init,
    sizes={"test": dict(N=12, TSTEPS=3),
           "small": dict(N=120, TSTEPS=20),
           "large": dict(N=400, TSTEPS=100)},
    outputs=("A",), gpu=False, fpga=False))
