"""gemver: rank-2 update plus two matrix-vector products."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def gemver(alpha: repro.float64, beta: repro.float64, A: repro.float64[N, N],
           u1: repro.float64[N], v1: repro.float64[N], u2: repro.float64[N],
           v2: repro.float64[N], w: repro.float64[N], x: repro.float64[N],
           y: repro.float64[N], z: repro.float64[N]):
    A += np.outer(u1, v1) + np.outer(u2, v2)
    x += beta * (y @ A) + z
    w += alpha * (A @ x)


def reference(alpha, beta, A, u1, v1, u2, v2, w, x, y, z):
    A += np.outer(u1, v1) + np.outer(u2, v2)
    x += beta * (y @ A) + z
    w += alpha * (A @ x)


def init(sizes):
    n = sizes["N"]
    rng = np.random.default_rng(42)
    return {"alpha": 1.5, "beta": 1.2, "A": rng.random((n, n)),
            "u1": rng.random(n), "v1": rng.random(n), "u2": rng.random(n),
            "v2": rng.random(n), "w": np.zeros(n), "x": rng.random(n),
            "y": rng.random(n), "z": rng.random(n)}


register(Benchmark(
    "gemver", gemver, reference, init,
    sizes={"test": dict(N=16),
           "small": dict(N=700),
           "large": dict(N=2800)},
    outputs=("A", "x", "w")))
