"""adi: alternating-direction implicit heat solver (column sweeps with
sequential recurrences, the paper's hardest stencil-like kernel)."""

import numpy as np

import repro
from ..registry import Benchmark, register

N = repro.symbol("N")


@repro.program
def adi(TSTEPS: repro.int32, u: repro.float64[N, N], v: repro.float64[N, N]):
    p = np.zeros((N, N))
    q = np.zeros((N, N))
    DX = 1.0 / N
    DT = 1.0 / TSTEPS
    B1 = 2.0
    B2 = 1.0
    mul1 = B1 * DT / (DX * DX)
    mul2 = B2 * DT / (DX * DX)
    a = -mul1 / 2.0
    b = 1.0 + mul1
    c = -mul1 / 2.0
    d = -mul2 / 2.0
    e = 1.0 + mul2
    f = -mul2 / 2.0
    for t in range(1, TSTEPS + 1):
        # column sweep
        v[0, 1:N - 1] = 1.0
        p[1:N - 1, 0] = 0.0
        q[1:N - 1, 0] = v[0, 1:N - 1]
        for j in range(1, N - 1):
            p[1:N - 1, j] = -c / (a * p[1:N - 1, j - 1] + b)
            q[1:N - 1, j] = (-d * u[j, 0:N - 2]
                             + (1.0 + 2.0 * d) * u[j, 1:N - 1]
                             - f * u[j, 2:N]
                             - a * q[1:N - 1, j - 1]) \
                / (a * p[1:N - 1, j - 1] + b)
        v[N - 1, 1:N - 1] = 1.0
        for j in range(N - 2, 0, -1):
            v[j, 1:N - 1] = p[1:N - 1, j] * v[j + 1, 1:N - 1] + q[1:N - 1, j]
        # row sweep
        u[1:N - 1, 0] = 1.0
        p[1:N - 1, 0] = 0.0
        q[1:N - 1, 0] = u[1:N - 1, 0]
        for j in range(1, N - 1):
            p[1:N - 1, j] = -f / (d * p[1:N - 1, j - 1] + e)
            q[1:N - 1, j] = (-a * v[0:N - 2, j]
                             + (1.0 + 2.0 * a) * v[1:N - 1, j]
                             - c * v[2:N, j]
                             - d * q[1:N - 1, j - 1]) \
                / (d * p[1:N - 1, j - 1] + e)
        u[1:N - 1, N - 1] = 1.0
        for j in range(N - 2, 0, -1):
            u[1:N - 1, j] = p[1:N - 1, j] * u[1:N - 1, j + 1] + q[1:N - 1, j]


def reference(TSTEPS, u, v):
    n = u.shape[0]
    p = np.zeros((n, n))
    q = np.zeros((n, n))
    DX = 1.0 / n
    DT = 1.0 / TSTEPS
    mul1 = 2.0 * DT / (DX * DX)
    mul2 = 1.0 * DT / (DX * DX)
    a = -mul1 / 2.0
    b = 1.0 + mul1
    c = -mul1 / 2.0
    d = -mul2 / 2.0
    e = 1.0 + mul2
    f = -mul2 / 2.0
    for t in range(1, TSTEPS + 1):
        v[0, 1:n - 1] = 1.0
        p[1:n - 1, 0] = 0.0
        q[1:n - 1, 0] = v[0, 1:n - 1]
        for j in range(1, n - 1):
            p[1:n - 1, j] = -c / (a * p[1:n - 1, j - 1] + b)
            q[1:n - 1, j] = (-d * u[j, 0:n - 2]
                             + (1.0 + 2.0 * d) * u[j, 1:n - 1]
                             - f * u[j, 2:n]
                             - a * q[1:n - 1, j - 1]) \
                / (a * p[1:n - 1, j - 1] + b)
        v[n - 1, 1:n - 1] = 1.0
        for j in range(n - 2, 0, -1):
            v[j, 1:n - 1] = p[1:n - 1, j] * v[j + 1, 1:n - 1] + q[1:n - 1, j]
        u[1:n - 1, 0] = 1.0
        p[1:n - 1, 0] = 0.0
        q[1:n - 1, 0] = u[1:n - 1, 0]
        for j in range(1, n - 1):
            p[1:n - 1, j] = -f / (d * p[1:n - 1, j - 1] + e)
            q[1:n - 1, j] = (-a * v[0:n - 2, j]
                             + (1.0 + 2.0 * a) * v[1:n - 1, j]
                             - c * v[2:n, j]
                             - d * q[1:n - 1, j - 1]) \
                / (d * p[1:n - 1, j - 1] + e)
        u[1:n - 1, n - 1] = 1.0
        for j in range(n - 2, 0, -1):
            u[1:n - 1, j] = p[1:n - 1, j] * u[1:n - 1, j + 1] + q[1:n - 1, j]


def init(sizes):
    n, t = sizes["N"], sizes["TSTEPS"]
    rng = np.random.default_rng(42)
    return {"TSTEPS": t, "u": rng.random((n, n)), "v": np.zeros((n, n))}


register(Benchmark(
    "adi", adi, reference, init,
    sizes={"test": dict(N=12, TSTEPS=3),
           "small": dict(N=150, TSTEPS=20),
           "large": dict(N=500, TSTEPS=50)},
    outputs=("u", "v"), gpu=False, fpga=False))
