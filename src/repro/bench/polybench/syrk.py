"""syrk: symmetric rank-k update (triangular part)."""

import numpy as np

import repro
from ..registry import Benchmark, register

M = repro.symbol("M")
N = repro.symbol("N")


@repro.program
def syrk(alpha: repro.float64, beta: repro.float64, C: repro.float64[N, N],
         A: repro.float64[N, M]):
    for i in range(N):
        C[i, :i + 1] *= beta
        for k in range(M):
            C[i, :i + 1] += alpha * A[i, k] * A[:i + 1, k]


def reference(alpha, beta, C, A):
    for i in range(C.shape[0]):
        C[i, :i + 1] *= beta
        for k in range(A.shape[1]):
            C[i, :i + 1] += alpha * A[i, k] * A[:i + 1, k]


def init(sizes):
    n, m = sizes["N"], sizes["M"]
    rng = np.random.default_rng(42)
    return {"alpha": 1.5, "beta": 1.2, "C": rng.random((n, n)),
            "A": rng.random((n, m))}


register(Benchmark(
    "syrk", syrk, reference, init,
    sizes={"test": dict(N=12, M=10),
           "small": dict(N=150, M=120),
           "large": dict(N=400, M=350)},
    outputs=("C",), gpu=False, fpga=False))
