"""Differential pipeline fuzzer (see DESIGN.md §14).

Seeded program generation (:mod:`repro.fuzz.gen`), config-variant and
structural mutation (:mod:`repro.fuzz.mutate`), cross-tier differential
execution (:mod:`repro.fuzz.runner`) and delta-debugging shrink +
corpus serialization (:mod:`repro.fuzz.shrink`).

CLI: ``python -m repro.fuzz run|replay|shrink``.
"""

from .gen import GenCase, generate_case, render_module
from .mutate import DEFAULT_VARIANT, mutate_case, variant_for
from .runner import (
    CampaignReport,
    CaseResult,
    failure_detail,
    run_campaign,
    run_gen_case,
    run_source_case,
)
from .shrink import (
    corpus_entry,
    corpus_files,
    load_corpus_entry,
    save_corpus_entry,
    shrink_case,
)

__all__ = [
    "GenCase", "generate_case", "render_module",
    "DEFAULT_VARIANT", "mutate_case", "variant_for",
    "CampaignReport", "CaseResult", "failure_detail", "run_campaign",
    "run_gen_case", "run_source_case",
    "corpus_entry", "corpus_files", "load_corpus_entry",
    "save_corpus_entry", "shrink_case",
]
