"""Delta-debugging shrinker and corpus serialization.

``shrink_case`` reduces a failing :class:`~repro.fuzz.gen.GenCase` to a
local minimum under a caller-supplied predicate (``True`` = still fails):

1. **Statement removal** — repeatedly drop any statement whose removal
   keeps the case def-before-use valid and still failing (greedy, reverse
   order, to fixed point).
2. **Size shrinking** — walk every size variable down toward 2 while the
   failure persists.
3. **Global pruning** — drop module globals that are not load-bearing.

Minimal repros serialize to ``tests/fuzz_corpus/`` as schema
``repro-fuzz/1`` JSON: the rendered module source plus the input
descriptors, enough to replay the case across all tiers without the
generator.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, List, Optional

from .gen import GenCase, ReturnStmt, render_module

__all__ = ["shrink_case", "save_corpus_entry", "load_corpus_entry",
           "corpus_files"]

SCHEMA = "repro-fuzz/1"


def _without_stmt(case: GenCase, index: int) -> Optional[GenCase]:
    trial = case.clone()
    removed = trial.stmts.pop(index)
    if isinstance(removed, ReturnStmt):
        return None
    # retarget the return if it consumed the removed statement's temp
    last = trial.stmts[-1] if trial.stmts else None
    if isinstance(last, ReturnStmt) and last.value in removed.defs:
        last.value = ""
    if not trial.is_valid():
        return None
    return trial


def shrink_case(case: GenCase, failing: Callable[[GenCase], bool],
                max_checks: int = 200) -> GenCase:
    """Greedy delta-debugging to a 1-minimal statement list and minimal
    sizes; *failing* must be deterministic."""
    checks = [0]

    def still_fails(trial: GenCase) -> bool:
        if checks[0] >= max_checks:
            return False
        checks[0] += 1
        return failing(trial)

    current = case.clone()

    # (1) statement removal to fixed point
    changed = True
    while changed and checks[0] < max_checks:
        changed = False
        for index in range(len(current.stmts) - 1, -1, -1):
            trial = _without_stmt(current, index)
            if trial is not None and still_fails(trial):
                current = trial
                changed = True

    # (2) shrink size variables toward 2
    for name in sorted(current.sizes):
        while current.sizes[name] > 2 and checks[0] < max_checks:
            trial = current.clone()
            trial.sizes[name] -= 1
            if still_fails(trial):
                current = trial
            else:
                break

    # (3) prune globals
    for name in sorted(current.globals):
        trial = current.clone()
        del trial.globals[name]
        if trial.is_valid() and still_fails(trial):
            current = trial

    return current


# ---------------------------------------------------------------------------
# Corpus serialization
# ---------------------------------------------------------------------------

def corpus_entry(case: GenCase, *, variant: Optional[Dict[str, object]] = None,
                 note: str = "") -> dict:
    arrays = {a.name: {"shape": list(a.shape(case.sizes)), "dtype": a.dtype}
              for a in case.args if a.dims}
    scalars = [a.name for a in case.args if not a.dims]
    return {
        "schema": SCHEMA,
        "seed": case.seed,
        "note": note or case.note,
        "module": render_module(case),
        "arrays": arrays,
        "scalars": scalars,
        "variant": dict(variant or {}),
        "expect": "match",
    }


def save_corpus_entry(case: GenCase, corpus_dir: str, *,
                      variant: Optional[Dict[str, object]] = None,
                      note: str = "", name: Optional[str] = None) -> str:
    entry = corpus_entry(case, variant=variant, note=note)
    os.makedirs(corpus_dir, exist_ok=True)
    if name is None:
        digest = hashlib.sha256(entry["module"].encode()).hexdigest()[:10]
        name = f"case_{case.seed}_{digest}"
    path = os.path.join(corpus_dir, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus_entry(path: str) -> dict:
    with open(path) as fh:
        entry = json.load(fh)
    if entry.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown corpus schema {entry.get('schema')!r}")
    return entry


def corpus_files(corpus_dir: str) -> List[str]:
    if not os.path.isdir(corpus_dir):
        return []
    return sorted(os.path.join(corpus_dir, f)
                  for f in os.listdir(corpus_dir) if f.endswith(".json"))
