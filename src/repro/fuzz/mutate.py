"""Mutation engine: config variants and structural case mutations.

Two orthogonal mutation axes:

* **Config variants** — the same program re-run under different pipeline
  configuration (thread count, sanitizer, governor, compile-cache cold vs
  warm).  A correct pipeline must produce tier-identical results under
  every variant; the variant schedule is deterministic in the case index.
* **Structural mutations** — small legal edits to a generated case
  (swapped elementwise templates, perturbed reduction axes, toggled
  ``keepdims``, changed slice modes, renamed map parameters — including
  renames *onto* module-global names, which exercises frontend scoping).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from .gen import (
    _EWISE_BINARY,
    _EWISE_UNARY,
    _MAP_RHS,
    GLOBAL_NAMES,
    PARAM_NAMES,
    EwiseStmt,
    GenCase,
    MapStmt,
    ReduceStmt,
    ReturnStmt,
    SliceStmt,
    TriMapStmt,
)

__all__ = ["DEFAULT_VARIANT", "variant_for", "variant_overrides", "mutate_case"]

#: baseline configuration: serial, no sanitizer, no governor, cold cache
DEFAULT_VARIANT: Dict[str, object] = {
    "threads": 0, "sanitize": False, "govern": False, "cache": "cold",
}

_VARIANTS = [
    {},                                      # baseline
    {"threads": 2},                          # multicore pool on
    {"sanitize": True},                      # bounds+nan guards on
    {"govern": True},                        # governor armed (generous)
    {"cache": "warm"},                       # cold vs warm bitwise equality
    {"threads": 2, "sanitize": True},
    {"threads": 2, "cache": "warm"},
]


def variant_for(index: int, rng: random.Random) -> Dict[str, object]:
    """Deterministic variant schedule: every 2nd case runs the baseline so
    core-pipeline bugs are never masked by variant noise; the rest cycle
    through the variant table."""
    if index % 2 == 0:
        chosen: Dict[str, object] = {}
    else:
        chosen = _VARIANTS[(index // 2) % len(_VARIANTS)]
    return dict(DEFAULT_VARIANT, **chosen)


def variant_overrides(variant: Dict[str, object],
                      workdir: str) -> Dict[str, object]:
    """Translate a variant dict into ``Config.override`` keyword form
    (dots written as ``__``)."""
    overrides: Dict[str, object] = {
        "device__cpu_threads": int(variant.get("threads", 0)),
    }
    if variant.get("sanitize"):
        overrides["sanitize__mode"] = "bounds,nan"
    if variant.get("govern"):
        overrides["governor__deadline_s"] = 60.0
        overrides["governor__max_bytes"] = 1 << 30
    if variant.get("cache") == "warm":
        overrides["cache__enabled"] = True
        overrides["cache__dir"] = workdir
    else:
        overrides["cache__enabled"] = False
    # low dispatch threshold so small fuzz kernels actually exercise the pool
    if int(variant.get("threads", 0)) > 1:
        overrides["parallel__min_work"] = 1
    return overrides


# ---------------------------------------------------------------------------
# Structural mutations
# ---------------------------------------------------------------------------

def mutate_case(case: GenCase, rng: random.Random) -> GenCase:
    """Return a mutated clone of *case* (the original is not modified).
    Mutations preserve validity by construction; as a backstop, an edit
    that breaks def-before-use is rolled back."""
    mutated = case.clone()
    editable = [s for s in mutated.stmts
                if isinstance(s, (EwiseStmt, ReduceStmt, SliceStmt,
                                  MapStmt, TriMapStmt))]
    if not editable:
        return mutated
    stmt = rng.choice(editable)
    if isinstance(stmt, EwiseStmt):
        pool = _EWISE_BINARY if len(stmt.operands) >= 2 else _EWISE_UNARY
        stmt.template = rng.choice(pool)
        if len(stmt.operands) > pool[0].count("{"):
            # scalar tail was dropped by the template swap: trim operands
            stmt.operands = stmt.operands[:2]
    elif isinstance(stmt, ReduceStmt):
        out_dims_before = stmt.out_dims()
        choice = rng.random()
        rank = len(stmt.src_dims)
        if choice < 0.4 and rank:
            stmt.axis = rng.randrange(-rank, rank)
        elif choice < 0.7:
            stmt.keepdims = not stmt.keepdims and stmt.axis is not None
            if stmt.keepdims:
                stmt.method = False
        else:
            stmt.method = not stmt.method and not stmt.keepdims
        if stmt.out_dims() != out_dims_before and any(
                stmt.dest in s.uses for s in mutated.stmts
                if s is not stmt and not isinstance(s, ReturnStmt)):
            # a shape change would break a downstream consumer of the temp
            # (e.g. slicing a now-scalar result) in the *reference* too,
            # producing an invalid case rather than a finding: roll back
            return case.clone()
    elif isinstance(stmt, SliceStmt):
        stmt.mode = rng.choice(["asc", "asc2", "desc", "rev"])
    elif isinstance(stmt, MapStmt):
        if rng.random() < 0.5:
            stmt.rhs_template = rng.choice(_MAP_RHS[:2]).replace("{1}", "{0}") \
                if len(stmt.reads) == 1 else rng.choice(_MAP_RHS)
        else:
            # rename a map parameter — possibly onto a module-global name
            fresh = rng.choice(PARAM_NAMES + GLOBAL_NAMES)
            if fresh not in stmt.params:
                which = rng.randrange(len(stmt.params))
                stmt.params = tuple(fresh if idx == which else p
                                    for idx, p in enumerate(stmt.params))
    elif isinstance(stmt, TriMapStmt):
        stmt.delta = 1 - stmt.delta
    if not mutated.is_valid():
        return case.clone()
    return mutated
