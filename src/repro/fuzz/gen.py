"""Seeded, deterministic program generator for the differential fuzzer.

Every case is a *paired* pair of sources rendered from one statement IR:

* ``fuzz_prog`` — a ``@repro.program``-decoratable function using the
  data-centric dialect (``repro.map`` scopes, annotated arguments);
* ``fuzz_ref``  — the same computation as plain Python/NumPy (``range``
  loops instead of maps, ``.copy()`` after view-producing calls so the
  reference has the frontend's value semantics).

Rendering both functions from the same IR guarantees they agree by
construction; any cross-tier disagreement observed by the runner is
therefore a bug in the pipeline, not in the generator.  The grammar only
emits constructs the frontend documents as supported (elementwise ufuncs,
reductions with ``axis``/``keepdims``, slicing including negative steps,
``matmul``/``outer``/``transpose``/``flip``, map scopes with permuted /
flipped / mixed-constant stores, WCR accumulation, triangular ``0:i``
ranges, scalar symbols) — a frontend rejection of a generated program is
itself a finding.

Array extents are *size variables* (``n0``, ``n1``, …) resolved at render
time, so the shrinker can reduce shapes without re-deriving statement
legality.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["ArraySpec", "GenCase", "generate_case", "render_module"]

SizeRef = Union[str, int]

#: candidate map-parameter names; deliberately overlaps the module-global
#: name pool so the fuzzer exercises name-shadowing paths in the frontend
PARAM_NAMES = ["i", "j", "k", "m"]
GLOBAL_NAMES = ["j", "k"]


def _resolve(ref: SizeRef, sizes: Dict[str, int]) -> int:
    return sizes[ref] if isinstance(ref, str) else int(ref)


def _resolve_dims(dims: Sequence[SizeRef], sizes: Dict[str, int]) -> Tuple[int, ...]:
    return tuple(_resolve(d, sizes) for d in dims)


@dataclass
class ArraySpec:
    """One container: a function argument or (for allocs) a local temp."""

    name: str
    dims: Tuple[SizeRef, ...]
    dtype: str = "float64"

    def shape(self, sizes: Dict[str, int]) -> Tuple[int, ...]:
        return _resolve_dims(self.dims, sizes)

    def annotation(self, sizes: Dict[str, int]) -> str:
        if not self.dims:
            return f"repro.{self.dtype}"
        inner = ", ".join(str(d) for d in self.shape(sizes))
        return f"repro.{self.dtype}[{inner}]"


# ---------------------------------------------------------------------------
# Statement IR
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    dest: Optional[str] = None

    @property
    def defs(self) -> Tuple[str, ...]:
        return (self.dest,) if self.dest else ()

    @property
    def uses(self) -> Tuple[str, ...]:
        return ()

    def out_dims(self) -> Optional[Tuple[SizeRef, ...]]:
        return None

    def prog_lines(self, sizes: Dict[str, int]) -> List[str]:
        raise NotImplementedError

    def ref_lines(self, sizes: Dict[str, int]) -> List[str]:
        return self.prog_lines(sizes)


@dataclass
class AllocStmt(Stmt):
    """``t = np.zeros((...))`` — identical in both renderings."""

    dims: Tuple[SizeRef, ...] = ()
    dtype: str = "float64"

    def out_dims(self):
        return self.dims

    def prog_lines(self, sizes):
        shape = ", ".join(str(s) for s in _resolve_dims(self.dims, sizes))
        return [f"{self.dest} = np.zeros(({shape},), dtype=np.{self.dtype})"]


@dataclass
class EwiseStmt(Stmt):
    """Elementwise expression over same-shape operands (and scalars)."""

    template: str = "{0}"
    operands: Tuple[str, ...] = ()
    dims: Tuple[SizeRef, ...] = ()

    @property
    def uses(self):
        return self.operands

    def out_dims(self):
        return self.dims

    def prog_lines(self, sizes):
        return [f"{self.dest} = {self.template.format(*self.operands)}"]


@dataclass
class ReduceStmt(Stmt):
    """``np.sum``-family reduction, free-function or method form."""

    src: str = ""
    op: str = "sum"           # sum | prod | min | max | mean
    axis: Optional[int] = None
    keepdims: bool = False
    method: bool = False      # A.sum(axis) vs np.sum(A, axis=axis)
    src_dims: Tuple[SizeRef, ...] = ()

    @property
    def uses(self):
        return (self.src,)

    def out_dims(self):
        if self.axis is None:
            if self.keepdims:
                return tuple(1 for _ in self.src_dims)
            return ()
        ax = self.axis % len(self.src_dims)
        if self.keepdims:
            return tuple(1 if d == ax else dim
                         for d, dim in enumerate(self.src_dims))
        return tuple(dim for d, dim in enumerate(self.src_dims) if d != ax)

    def prog_lines(self, sizes):
        if self.method:
            arg = "" if self.axis is None else str(self.axis)
            return [f"{self.dest} = {self.src}.{self.op}({arg})"]
        parts = [self.src]
        if self.axis is not None:
            parts.append(f"axis={self.axis}")
        if self.keepdims:
            parts.append("keepdims=True")
        return [f"{self.dest} = np.{self.op}({', '.join(parts)})"]


@dataclass
class SliceStmt(Stmt):
    """1-D slice; the reference copies to match frontend value semantics."""

    src: str = ""
    mode: str = "asc"  # asc | asc2 | desc | rev
    size: SizeRef = 0  # extent of src

    @property
    def uses(self):
        return (self.src,)

    def out_dims(self):
        # lengths as literal ints are resolved at render; keep symbolic-ish
        return ("__slice__",)  # opaque: slice temps only feed reductions

    def _slice_text(self, sizes):
        n = _resolve(self.size, sizes)
        return {
            "asc": f"[1:{n}]",
            "asc2": f"[0:{n}:2]",
            "desc": f"[{n - 1}:0:-1]",
            "rev": "[::-1]",
        }[self.mode]

    def prog_lines(self, sizes):
        return [f"{self.dest} = {self.src}{self._slice_text(sizes)}"]

    def ref_lines(self, sizes):
        return [f"{self.dest} = {self.src}{self._slice_text(sizes)}.copy()"]


@dataclass
class CallStmt(Stmt):
    """matmul / outer / transpose / flip."""

    kind: str = "matmul"
    srcs: Tuple[str, ...] = ()
    dims: Tuple[SizeRef, ...] = ()

    @property
    def uses(self):
        return self.srcs

    def out_dims(self):
        return self.dims

    def prog_lines(self, sizes):
        if self.kind == "matmul":
            return [f"{self.dest} = {self.srcs[0]} @ {self.srcs[1]}"]
        if self.kind == "outer":
            return [f"{self.dest} = np.outer({self.srcs[0]}, {self.srcs[1]})"]
        if self.kind == "transpose":
            return [f"{self.dest} = np.transpose({self.srcs[0]})"]
        if self.kind == "flip":
            return [f"{self.dest} = np.flip({self.srcs[0]})"]
        raise ValueError(self.kind)

    def ref_lines(self, sizes):
        lines = self.prog_lines(sizes)
        if self.kind in ("transpose", "flip"):
            return [lines[0] + ".copy()"]
        return lines


@dataclass
class MapStmt(Stmt):
    """A ``repro.map`` scope storing into *out* (an argument or alloc)."""

    out: str = ""
    params: Tuple[str, ...] = ()
    bounds: Tuple[SizeRef, ...] = ()          # param p_k in [0, bounds[k])
    # store index: ("param", k) -> params[k]; ("flip", k, size) -> size-1-p;
    # ("const", c) -> literal
    store: Tuple[Tuple, ...] = ()
    reads: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()  # (array, param order)
    rhs_template: str = "{0} * 2.0"
    wcr: bool = False

    @property
    def defs(self):
        return ()

    @property
    def uses(self):
        return (self.out,) + tuple(a for a, _ in self.reads)

    def _store_idx(self, sizes) -> str:
        parts = []
        for entry in self.store:
            if entry[0] == "param":
                parts.append(self.params[entry[1]])
            elif entry[0] == "flip":
                n = _resolve(entry[2], sizes)
                parts.append(f"{n - 1} - {self.params[entry[1]]}")
            else:
                parts.append(str(entry[1]))
        return ", ".join(parts)

    def _rhs(self) -> str:
        read_exprs = [f"{a}[{', '.join(self.params[k] for k in order)}]"
                      for a, order in self.reads]
        return self.rhs_template.format(*read_exprs)

    def _body(self, sizes) -> str:
        op = "+=" if self.wcr else "="
        return f"{self.out}[{self._store_idx(sizes)}] {op} {self._rhs()}"

    def prog_lines(self, sizes):
        rng = ", ".join(f"0:{_resolve(b, sizes)}" for b in self.bounds)
        head = f"for {', '.join(self.params)} in repro.map[{rng}]:"
        return [head, f"    {self._body(sizes)}"]

    def ref_lines(self, sizes):
        lines = []
        for depth, (p, b) in enumerate(zip(self.params, self.bounds)):
            lines.append("    " * depth
                         + f"for {p} in range({_resolve(b, sizes)}):")
        lines.append("    " * len(self.params) + self._body(sizes))
        return lines


@dataclass
class TriMapStmt(Stmt):
    """Triangular iteration: a range loop whose trip count bounds an inner
    map — the inner range is empty for small loop indices."""

    out: str = ""
    size: SizeRef = 0       # square extent
    delta: int = 0          # inner map runs 0 : t - delta
    reads: Tuple[str, ...] = ()   # 2-D (size, size) arrays
    rhs_template: str = "{0} * 2.0"
    one_d: bool = False     # True: OUT[p] += rhs  (OUT is 1-D); else OUT[t, p] = rhs

    @property
    def defs(self):
        return ()

    @property
    def uses(self):
        return (self.out,) + self.reads

    def _body(self) -> str:
        reads = [f"{a}[it, p]" for a in self.reads]
        rhs = self.rhs_template.format(*reads)
        if self.one_d:
            return f"{self.out}[p] += {rhs}"
        return f"{self.out}[it, p] = {rhs}"

    def _upper(self) -> str:
        return "it" if self.delta == 0 else f"it - {self.delta}"

    def prog_lines(self, sizes):
        n = _resolve(self.size, sizes)
        return [f"for it in range({n}):",
                f"    for p in repro.map[0:{self._upper()}]:",
                f"        {self._body()}"]

    def ref_lines(self, sizes):
        n = _resolve(self.size, sizes)
        return [f"for it in range({n}):",
                f"    for p in range(max(0, {self._upper()})):",
                f"        {self._body()}"]


@dataclass
class AccStmt(Stmt):
    """Scalar WCR accumulation over a map, stored into a sink element."""

    acc: str = "acc0"
    params: Tuple[str, ...] = ()
    bounds: Tuple[SizeRef, ...] = ()
    reads: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    rhs_template: str = "{0}"
    sink: str = ""          # 2-D array receiving acc at [0, 0]

    @property
    def defs(self):
        return ()

    @property
    def uses(self):
        return (self.sink,) + tuple(a for a, _ in self.reads)

    def _rhs(self) -> str:
        read_exprs = [f"{a}[{', '.join(self.params[k] for k in order)}]"
                      for a, order in self.reads]
        return self.rhs_template.format(*read_exprs)

    def prog_lines(self, sizes):
        rng = ", ".join(f"0:{_resolve(b, sizes)}" for b in self.bounds)
        return [f"{self.acc} = 0.0",
                f"for {', '.join(self.params)} in repro.map[{rng}]:",
                f"    {self.acc} += {self._rhs()}",
                f"{self.sink}[0, 0] = {self.acc}"]

    def ref_lines(self, sizes):
        lines = [f"{self.acc} = 0.0"]
        for depth, (p, b) in enumerate(zip(self.params, self.bounds)):
            lines.append("    " * depth
                         + f"for {p} in range({_resolve(b, sizes)}):")
        lines.append("    " * len(self.params) + f"{self.acc} += {self._rhs()}")
        lines.append(f"{self.sink}[0, 0] = {self.acc}")
        return lines


@dataclass
class ReturnStmt(Stmt):
    value: str = ""           # name, or "" -> np.sum(fallback)
    fallback: str = "A"

    @property
    def defs(self):
        return ()

    @property
    def uses(self):
        return (self.value or self.fallback,)

    def prog_lines(self, sizes):
        if self.value:
            return [f"return {self.value}"]
        return [f"return np.sum({self.fallback})"]


# ---------------------------------------------------------------------------
# Case container
# ---------------------------------------------------------------------------

@dataclass
class GenCase:
    """A generated case: sizes, arguments, module globals and statements."""

    seed: int
    sizes: Dict[str, int] = field(default_factory=dict)
    args: List[ArraySpec] = field(default_factory=list)
    globals: Dict[str, int] = field(default_factory=dict)
    stmts: List[Stmt] = field(default_factory=list)
    note: str = ""

    def clone(self) -> "GenCase":
        return copy.deepcopy(self)

    def arg_names(self) -> List[str]:
        return [a.name for a in self.args]

    def array_args(self) -> List[ArraySpec]:
        return [a for a in self.args if a.dims]

    def is_valid(self) -> bool:
        """Def-before-use over temps (arguments are always defined)."""
        defined = set(self.arg_names()) | set(self.globals)
        for stmt in self.stmts:
            for use in stmt.uses:
                if use not in defined:
                    return False
            defined.update(stmt.defs)
        return True


def render_module(case: GenCase) -> str:
    """Full module text: globals, ``fuzz_prog`` and ``fuzz_ref``."""
    sizes = case.sizes
    lines = [f'"""Auto-generated fuzz case (repro-fuzz), seed={case.seed}."""',
             "import numpy as np", "import repro", ""]
    for name, value in sorted(case.globals.items()):
        lines.append(f"{name} = {value}")
    if case.globals:
        lines.append("")

    sig = ", ".join(f"{a.name}: {a.annotation(sizes)}" for a in case.args)
    lines.append(f"def fuzz_prog({sig}):")
    body = [ln for stmt in case.stmts for ln in stmt.prog_lines(sizes)]
    lines.extend("    " + ln for ln in (body or ["pass"]))
    lines.append("")

    ref_sig = ", ".join(a.name for a in case.args)
    lines.append(f"def fuzz_ref({ref_sig}):")
    ref_body = [ln for stmt in case.stmts for ln in stmt.ref_lines(sizes)]
    lines.extend("    " + ln for ln in (ref_body or ["pass"]))
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

_EWISE_BINARY = [
    "{0} * 2.0 + {1}",
    "np.maximum({0}, 0.5) - {1} * 0.25",
    "np.where({0} > 0.5, {0}, -{1})",
    "np.minimum({0}, {1}) + 0.125",
    "({0} + {1}) * 0.5",
]
_EWISE_UNARY = [
    "np.sqrt(np.abs({0}))",
    "np.exp(-{0})",
    "{0} * {0} + 1.0",
    "-{0} + 2.0",
]
_MAP_RHS = ["{0} * 2.0", "{0} + {1}", "{0} * {1} + 0.5", "{0} - 0.25"]
_ACC_RHS = ["{0} * {1}", "{0} + {1}", "{0}"]
_REDUCE_OPS = ["sum", "min", "max", "prod", "mean"]


class _Gen:
    def __init__(self, seed: int):
        self.rng = random.Random(f"repro-fuzz-{seed}")
        self.seed = seed
        self.tmp = 0
        self.acc = 0

    def fresh(self) -> str:
        name = f"t{self.tmp}"
        self.tmp += 1
        return name

    def build(self) -> GenCase:
        rng = self.rng
        sizes = {"n0": rng.randint(2, 6), "n1": rng.randint(2, 6),
                 "n2": rng.randint(2, 5)}
        args = [
            ArraySpec("A", ("n0", "n1")),
            ArraySpec("B", ("n0", "n1")),
            ArraySpec("C", ("n1", "n0")),
            ArraySpec("D", ("n0", "n0")),
            ArraySpec("u", ("n1",)),
            ArraySpec("v", ("n1",)),
            ArraySpec("w", ("n0",)),
        ]
        if rng.random() < 0.4:
            args.append(ArraySpec("E", ("n1", "n2")))
        if rng.random() < 0.3:
            args.append(ArraySpec("s", ()))
        for spec in args:
            if spec.dims and rng.random() < 0.15:
                spec.dtype = "float32"

        case = GenCase(seed=self.seed, sizes=sizes, args=args)
        if rng.random() < 0.25:
            # a module-level tuning constant whose name may collide with a
            # map parameter — exercises frontend name-resolution order
            case.globals[rng.choice(GLOBAL_NAMES)] = rng.randint(0, 1)

        # dims -> available array names (args + temps as they appear)
        pools: Dict[Tuple[SizeRef, ...], List[str]] = {}
        for spec in args:
            if spec.dims:
                pools.setdefault(spec.dims, []).append(spec.name)
        scalars = [a.name for a in args if not a.dims]
        last_array: Optional[str] = None

        def register(name: str, dims: Optional[Tuple[SizeRef, ...]]):
            nonlocal last_array
            if dims is None:
                return
            if dims and "__slice__" not in dims:
                pools.setdefault(dims, []).append(name)
            last_array = name

        makers = [self._ewise, self._reduce, self._slice, self._call,
                  self._map, self._trimap, self._acc]
        weights = [3, 3, 1, 2, 3, 1, 1]
        n_stmts = rng.randint(3, 7)
        for _ in range(n_stmts):
            maker = rng.choices(makers, weights)[0]
            made = maker(case, pools, scalars)
            if made is None:
                continue
            stmt = made
            case.stmts.append(stmt)
            if stmt.dest:
                register(stmt.dest, stmt.out_dims())

        ret_candidates = [s.dest for s in case.stmts
                          if s.dest and s.out_dims() is not None]
        if ret_candidates and rng.random() < 0.8:
            case.stmts.append(ReturnStmt(value=rng.choice(ret_candidates)))
        else:
            case.stmts.append(ReturnStmt(value="", fallback="A"))
        return case

    # -- statement makers --------------------------------------------------
    def _pick_pool(self, pools, rank=None, min_len=1):
        cands = [(dims, names) for dims, names in pools.items()
                 if len(names) >= min_len
                 and (rank is None or len(dims) == rank)]
        if not cands:
            return None
        return self.rng.choice(cands)

    def _ewise(self, case, pools, scalars):
        rng = self.rng
        picked = self._pick_pool(pools)
        if picked is None:
            return None
        dims, names = picked
        if len(names) >= 2 and rng.random() < 0.7:
            template = rng.choice(_EWISE_BINARY)
            operands = (rng.choice(names), rng.choice(names))
        else:
            template = rng.choice(_EWISE_UNARY)
            operands = (rng.choice(names),)
        if scalars and rng.random() < 0.3:
            template = f"({template}) * {{{len(operands)}}}"
            operands = operands + (scalars[0],)
        return EwiseStmt(dest=self.fresh(), template=template,
                         operands=operands, dims=dims)

    def _reduce(self, case, pools, scalars):
        rng = self.rng
        picked = self._pick_pool(pools)
        if picked is None:
            return None
        dims, names = picked
        src = rng.choice(names)
        rank = len(dims)
        axis: Optional[int] = None
        if rank and rng.random() < 0.8:
            axis = rng.randrange(rank)
            if rng.random() < 0.4:
                axis -= rank  # negative form
        keepdims = axis is not None and rng.random() < 0.2
        method = not keepdims and rng.random() < 0.3
        op = rng.choice(_REDUCE_OPS)
        if method and op == "mean":
            op = "sum"
        if op == "prod" and rank == 2:
            op = "sum"  # avoid overflow-ish magnitudes on big products? floats in [0,1): prod fine, keep variety on 1-D
        return ReduceStmt(dest=self.fresh(), src=src, op=op, axis=axis,
                          keepdims=keepdims, method=method, src_dims=dims)

    def _slice(self, case, pools, scalars):
        rng = self.rng
        picked = self._pick_pool(pools, rank=1)
        if picked is None:
            return None
        dims, names = picked
        mode = rng.choice(["asc", "asc2", "desc", "rev"])
        return SliceStmt(dest=self.fresh(), src=rng.choice(names),
                         mode=mode, size=dims[0])

    def _call(self, case, pools, scalars):
        rng = self.rng
        kind = rng.choice(["matmul", "outer", "transpose", "flip"])
        if kind == "matmul":
            a = self._pick_pool(pools, rank=2)
            if a is None:
                return None
            (d0, d1), names = a
            b = pools.get((d1, d0))
            if not b:
                return None
            return CallStmt(dest=self.fresh(), kind=kind,
                            srcs=(rng.choice(names), rng.choice(b)),
                            dims=(d0, d0))
        if kind == "outer":
            a = self._pick_pool(pools, rank=1)
            if a is None:
                return None
            dims, names = a
            return CallStmt(dest=self.fresh(), kind=kind,
                            srcs=(rng.choice(names), rng.choice(names)),
                            dims=(dims[0], dims[0]))
        if kind == "transpose":
            a = self._pick_pool(pools, rank=2)
            if a is None:
                return None
            dims, names = a
            return CallStmt(dest=self.fresh(), kind=kind,
                            srcs=(rng.choice(names),), dims=(dims[1], dims[0]))
        a = self._pick_pool(pools, rank=1)
        if a is None:
            return None
        dims, names = a
        return CallStmt(dest=self.fresh(), kind="flip",
                        srcs=(rng.choice(names),), dims=dims)

    def _map(self, case, pools, scalars):
        rng = self.rng
        picked = self._pick_pool(pools, rank=2)
        if picked is None:
            return None
        out_dims, out_names = picked
        out = rng.choice(out_names)
        a, b = out_dims
        params = tuple(rng.sample(PARAM_NAMES, 2))
        pattern = rng.choice(["direct", "swap", "flip"])
        if pattern == "direct":
            bounds, store = (a, b), (("param", 0), ("param", 1))
            read_order = {(a, b): (0, 1), (b, a): (1, 0)}
        elif pattern == "swap":
            bounds, store = (b, a), (("param", 1), ("param", 0))
            read_order = {(a, b): (1, 0), (b, a): (0, 1)}
        else:
            bounds, store = (a, b), (("flip", 0, a), ("param", 1))
            read_order = {(a, b): (0, 1), (b, a): (1, 0)}
        reads = []
        for dims, order in read_order.items():
            names = [n for n in pools.get(dims, ()) if n != out]
            if names:
                reads.append((rng.choice(names), order))
        if not reads:
            return None
        rng.shuffle(reads)
        reads = tuple(reads[:2])
        template = rng.choice(_MAP_RHS[:2] if len(reads) == 1 else _MAP_RHS)
        if len(reads) == 1:
            template = template.replace("{1}", "{0}")
        return MapStmt(out=out, params=params, bounds=bounds, store=store,
                       reads=reads, rhs_template=template,
                       wcr=False)

    def _trimap(self, case, pools, scalars):
        rng = self.rng
        square = None
        for dims, names in pools.items():
            if len(dims) == 2 and dims[0] == dims[1]:
                square = (dims, names)
        if square is None:
            return None
        (n, _), names = square
        reads = [x for x in names]
        one_d = rng.random() < 0.4 and pools.get((n,))
        if one_d:
            out = rng.choice(pools[(n,)])
            srcs = tuple(rng.sample(reads, 1))
        else:
            out = rng.choice(names)
            srcs = tuple(rng.sample([x for x in reads if x != out] or reads, 1))
            if out in srcs:
                return None
        return TriMapStmt(out=out, size=n, delta=rng.choice([0, 1]),
                          reads=srcs, rhs_template=rng.choice(_MAP_RHS[:2]).replace("{1}", "{0}"),
                          one_d=bool(one_d))

    def _acc(self, case, pools, scalars):
        rng = self.rng
        picked = self._pick_pool(pools, rank=2)
        if picked is None:
            return None
        dims, names = picked
        a, b = dims
        params = tuple(rng.sample(PARAM_NAMES, 2))
        sinks = [n for n in names]
        sink = rng.choice(sinks)
        read_names = [n for n in names if n != sink]
        if not read_names:
            return None
        r1 = rng.choice(read_names)
        r2 = rng.choice(read_names)
        template = rng.choice(_ACC_RHS)
        n_reads = template.count("{")
        reads = tuple([(r1, (0, 1)), (r2, (0, 1))][:n_reads])
        name = f"acc{self.acc}"
        self.acc += 1
        return AccStmt(acc=name, params=params, bounds=(a, b), reads=reads,
                       rhs_template=template, sink=sink)


def generate_case(seed: int) -> GenCase:
    """Deterministically generate one case from *seed*."""
    return _Gen(seed).build()
