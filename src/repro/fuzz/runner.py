"""Differential runner: execute one fuzz case across every pipeline tier.

Tiers mirror the sanitizer oracle (python reference -> reference
interpreter -> compiled module -> auto-optimized/parallel module) and reuse
its dtype-aware comparison helpers.  The paired reference function rendered
by :mod:`repro.fuzz.gen` is the ground truth; the runner compares the
return value *and* every mutated argument array, shape-strict.

A case whose reference runs but whose frontend/interpreter/compiled/
parallel stage errors or disagrees is a **divergence** — the generator only
emits constructs the frontend supports, so "unsupported" is not a
permissible verdict for a generated program.  Known-but-unfixed findings
can be suppressed via an explanation list (substring match against the
failure detail); anything unexplained fails the campaign.
"""

from __future__ import annotations

import contextlib
import importlib.util
import json
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autoopt import auto_optimize
from ..codegen import compile_sdfg
from ..config import Config
from ..runtime.executor import run_sdfg
from ..sanitizer.oracle import compare_values
from .gen import GenCase, generate_case, render_module
from .mutate import DEFAULT_VARIANT, variant_overrides

__all__ = ["CaseResult", "CampaignReport", "run_source_case", "run_gen_case",
           "run_campaign", "failure_detail"]

SCHEMA = "repro-fuzz/1"
REPORT_SCHEMA = "repro-fuzz-report/1"


@dataclass
class CaseResult:
    index: int
    seed: int
    verdict: str = "ok"               # ok | divergence | invalid
    stages: Dict[str, str] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    variant: Dict[str, object] = field(default_factory=dict)
    explained: Optional[str] = None

    def to_dict(self) -> dict:
        return {"index": self.index, "seed": self.seed,
                "verdict": self.verdict, "stages": dict(self.stages),
                "mismatches": list(self.mismatches),
                "variant": dict(self.variant), "explained": self.explained}


@dataclass
class CampaignReport:
    seed: int
    cases: int
    completed: int = 0
    elapsed_s: float = 0.0
    budget_s: Optional[float] = None
    counts: Dict[str, int] = field(default_factory=lambda: {
        "ok": 0, "divergence": 0, "explained": 0, "invalid": 0})
    findings: List[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"schema": REPORT_SCHEMA, "seed": self.seed,
                "cases": self.cases, "completed": self.completed,
                "elapsed_s": round(self.elapsed_s, 3),
                "budget_s": self.budget_s, "counts": dict(self.counts),
                "findings": self.findings}

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Module materialization
# ---------------------------------------------------------------------------

_MODULE_COUNTER = [0]


def _load_module(source: str, workdir: str):
    """Write *source* to a real file and import it (the frontend retrieves
    program source via ``inspect.getsource``, so exec()'d code is not
    enough)."""
    _MODULE_COUNTER[0] += 1
    name = f"repro_fuzz_case_{os.getpid()}_{_MODULE_COUNTER[0]}"
    path = os.path.join(workdir, f"{name}.py")
    with open(path, "w") as fh:
        fh.write(source)
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except Exception:
        sys.modules.pop(name, None)
        raise
    return module


def _make_inputs(arrays: Dict[str, dict], scalars: Sequence[str],
                 seed: int) -> Dict[str, object]:
    rng = np.random.default_rng(seed)
    out: Dict[str, object] = {}
    for name in sorted(arrays):
        spec = arrays[name]
        out[name] = rng.random(tuple(spec["shape"])).astype(spec["dtype"])
    for name in sorted(scalars):
        out[name] = float(rng.random())
    return out


def _fresh(inputs: Dict[str, object]) -> Dict[str, object]:
    return {k: (np.array(v, copy=True) if isinstance(v, np.ndarray) else v)
            for k, v in inputs.items()}


def _harvest(args: Dict[str, object], returned) -> Dict[str, object]:
    got = {k: v for k, v in args.items() if isinstance(v, np.ndarray)}
    if returned is not None:
        got["__return"] = returned
    return got


def _compare(expected: Dict[str, object],
             actual: Dict[str, object]) -> List[str]:
    out = []
    for name in sorted(expected):
        if name not in actual:
            out.append(f"{name}: missing from outputs")
            continue
        msg = compare_values(expected[name], actual[name], name)
        if msg:
            out.append(msg)
    return out


# ---------------------------------------------------------------------------
# One case across the tiers
# ---------------------------------------------------------------------------

def run_source_case(source: str, arrays: Dict[str, dict],
                    scalars: Sequence[str], seed: int, *,
                    variant: Optional[Dict[str, object]] = None,
                    workdir: Optional[str] = None,
                    index: int = 0,
                    explanations: Sequence[Tuple[str, str]] = ()) -> CaseResult:
    """Run a rendered case module across all tiers under *variant* config."""
    import repro

    variant = dict(DEFAULT_VARIANT, **(variant or {}))
    result = CaseResult(index=index, seed=seed, variant=dict(variant))
    owns_workdir = workdir is None
    if owns_workdir:
        workdir = tempfile.mkdtemp(prefix="repro-fuzz-")

    def explain(detail: str) -> Optional[str]:
        for needle, reason in explanations:
            if needle in detail:
                return reason
        return None

    def fail(stage: str, detail: str) -> CaseResult:
        result.stages[stage] = detail
        reason = explain(detail)
        if reason is not None:
            result.verdict = "ok"
            result.explained = reason
        else:
            result.verdict = "divergence"
            result.mismatches.append(f"{stage}: {detail}")
        return result

    with contextlib.ExitStack() as stack:
        overrides = variant_overrides(variant, workdir)
        if overrides:
            stack.enter_context(Config.override(**overrides))

        try:
            module = _load_module(source, workdir)
        except Exception as exc:
            result.verdict = "invalid"
            result.stages["module"] = f"error: {exc}"
            return result

        inputs = _make_inputs(arrays, scalars, seed)

        # --- reference tier ------------------------------------------------
        try:
            args = _fresh(inputs)
            expected = _harvest(args, module.fuzz_ref(**args))
            result.stages["python"] = "ok"
        except Exception as exc:
            result.verdict = "invalid"
            result.stages["python"] = f"error: {exc}"
            return result

        # --- frontend ------------------------------------------------------
        try:
            program = repro.program(module.fuzz_prog)
            base = program.to_sdfg().clone()
            result.stages["frontend"] = "ok"
        except Exception as exc:
            return fail("frontend", f"error: {type(exc).__name__}: {exc}")

        def run_stage(stage: str, runner) -> bool:
            try:
                args = _fresh(inputs)
                got = _harvest(args, runner(args))
            except Exception as exc:
                fail(stage, f"error: {type(exc).__name__}: {exc}")
                return False
            mismatches = _compare(expected, got)
            if mismatches:
                fail(stage, "mismatch: " + "; ".join(mismatches[:3]))
                return False
            result.stages[stage] = "ok"
            return True

        run_stage("interpreter", lambda a: run_sdfg(base.clone(), **a))
        run_stage("compiled", lambda a: compile_sdfg(base.clone())(**a))
        if variant.get("cache") == "warm":
            # second compile of the identical SDFG hits the persistent
            # cache; results must be bitwise identical to the cold run
            try:
                cold = _fresh(inputs)
                got_cold = _harvest(cold, compile_sdfg(base.clone())(**cold))
                warm = _fresh(inputs)
                got_warm = _harvest(warm, compile_sdfg(base.clone())(**warm))
                for name in sorted(got_cold):
                    if not np.array_equal(np.asarray(got_cold[name]),
                                          np.asarray(got_warm.get(name))):
                        fail("cache-warm", f"bitwise mismatch on {name}")
                        break
                else:
                    result.stages["cache-warm"] = "ok"
            except Exception as exc:
                fail("cache-warm", f"error: {type(exc).__name__}: {exc}")

        def parallel_runner(a):
            opt = auto_optimize(base.clone(), device="CPU")
            return compile_sdfg(opt)(**a)

        run_stage("parallel", parallel_runner)

    return result


def run_gen_case(case: GenCase, *, variant: Optional[Dict[str, object]] = None,
                 workdir: Optional[str] = None, index: int = 0,
                 explanations: Sequence[Tuple[str, str]] = ()) -> CaseResult:
    source = render_module(case)
    arrays = {a.name: {"shape": list(a.shape(case.sizes)), "dtype": a.dtype}
              for a in case.args if a.dims}
    scalars = [a.name for a in case.args if not a.dims]
    return run_source_case(source, arrays, scalars, case.seed,
                           variant=variant, workdir=workdir, index=index,
                           explanations=explanations)


def failure_detail(case: GenCase,
                   variant: Optional[Dict[str, object]] = None,
                   workdir: Optional[str] = None) -> Optional[str]:
    """Shrinker predicate helper: the first failing stage's detail, or
    ``None`` when the case passes (``invalid`` cases count as passing so the
    shrinker never walks out of the valid-program space)."""
    result = run_gen_case(case, variant=variant, workdir=workdir)
    if result.verdict != "divergence":
        return None
    return result.mismatches[0] if result.mismatches else "divergence"


# ---------------------------------------------------------------------------
# Campaign loop
# ---------------------------------------------------------------------------

def run_campaign(seed: int, cases: int, *, budget_s: Optional[float] = None,
                 mutate: bool = True,
                 explanations: Sequence[Tuple[str, str]] = (),
                 shrink_failures: bool = False,
                 corpus_dir: Optional[str] = None,
                 verbose: bool = False) -> CampaignReport:
    """Generate and differentially execute *cases* cases; optionally shrink
    each failure and write the minimal repro into *corpus_dir*."""
    from .mutate import mutate_case, variant_for
    from .shrink import save_corpus_entry, shrink_case

    report = CampaignReport(seed=seed, cases=cases, budget_s=budget_s)
    start = time.monotonic()
    workdir = tempfile.mkdtemp(prefix="repro-fuzz-")
    import random as _random

    for index in range(cases):
        if budget_s is not None and time.monotonic() - start > budget_s:
            break
        case_seed = seed * 1_000_003 + index
        case = generate_case(case_seed)
        rng = _random.Random(f"repro-fuzz-mutate-{case_seed}")
        if mutate and rng.random() < 0.3:
            case = mutate_case(case, rng)
        variant = variant_for(index, rng)
        result = run_gen_case(case, variant=variant, workdir=workdir,
                              index=index, explanations=explanations)
        report.completed += 1
        if result.explained is not None:
            report.counts["explained"] += 1
        report.counts[result.verdict] = report.counts.get(result.verdict, 0) + 1
        if result.verdict == "divergence":
            finding = result.to_dict()
            if shrink_failures and corpus_dir is not None:
                target = result.mismatches[0].split(":", 1)[0] \
                    if result.mismatches else ""
                shrunk = shrink_case(
                    case,
                    lambda c: failure_detail(c, variant, workdir) is not None,
                    )
                path = save_corpus_entry(
                    shrunk, corpus_dir, variant=variant,
                    note=f"campaign seed={seed} case={index} stage={target}")
                finding["shrunk_file"] = path
            report.findings.append(finding)
            if verbose:
                print(f"[fuzz] case {index} seed={case_seed} DIVERGENCE: "
                      f"{result.mismatches[:1]}", file=sys.stderr)
        elif result.verdict == "invalid":
            report.findings.append(result.to_dict())
        if verbose and index % 25 == 24:
            print(f"[fuzz] {index + 1}/{cases} done "
                  f"({report.counts})", file=sys.stderr)
    report.elapsed_s = time.monotonic() - start
    return report
