"""CLI for the differential pipeline fuzzer.

::

    python -m repro.fuzz run    --seed 0 --cases 200 [--budget-s 120]
                                [--out FUZZ.json] [--shrink --corpus DIR]
    python -m repro.fuzz replay tests/fuzz_corpus/*.json
    python -m repro.fuzz shrink --seed S --index I --corpus DIR

``run`` exits nonzero when any unexplained divergence (or generator
invalidity) was observed — the CI contract.
"""

from __future__ import annotations

import argparse
import json
import sys

from .gen import generate_case, render_module
from .runner import run_campaign, run_gen_case, run_source_case
from .shrink import corpus_files, load_corpus_entry, save_corpus_entry, shrink_case

DEFAULT_CORPUS = "tests/fuzz_corpus"


def _cmd_run(args: argparse.Namespace) -> int:
    report = run_campaign(
        args.seed, args.cases, budget_s=args.budget_s,
        mutate=not args.no_mutate,
        shrink_failures=args.shrink, corpus_dir=args.corpus,
        verbose=not args.quiet)
    if args.out:
        report.write(args.out)
    bad = report.counts.get("divergence", 0) + report.counts.get("invalid", 0)
    print(f"fuzz: {report.completed}/{report.cases} cases in "
          f"{report.elapsed_s:.1f}s — ok={report.counts.get('ok', 0)} "
          f"explained={report.counts.get('explained', 0)} "
          f"divergent={report.counts.get('divergence', 0)} "
          f"invalid={report.counts.get('invalid', 0)}")
    for finding in report.findings[:10]:
        print(f"  case {finding['index']} (seed {finding['seed']}): "
              f"{finding.get('mismatches') or finding.get('stages')}")
    return 1 if bad else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    paths = list(args.files) or corpus_files(args.corpus)
    if not paths:
        print(f"no corpus files under {args.corpus!r}", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        entry = load_corpus_entry(path)
        result = run_source_case(
            entry["module"], entry["arrays"], entry.get("scalars", ()),
            entry["seed"], variant=entry.get("variant"))
        status = result.verdict
        if entry.get("expect", "match") == "match" and status != "ok":
            failures += 1
            print(f"FAIL {path}: {result.mismatches or result.stages}")
        else:
            print(f"ok   {path}")
    return 1 if failures else 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    from .mutate import mutate_case, variant_for
    from .runner import failure_detail
    import random as _random

    # replicate the campaign's draws exactly (mutation, then variant)
    case_seed = args.seed * 1_000_003 + args.index
    case = generate_case(case_seed)
    rng = _random.Random(f"repro-fuzz-mutate-{case_seed}")
    if not args.no_mutate and rng.random() < 0.3:
        case = mutate_case(case, rng)
    variant = variant_for(args.index, rng)
    detail = failure_detail(case, variant)
    if detail is None:
        print(f"case {args.index} (seed {case_seed}) does not fail; "
              "nothing to shrink")
        return 1
    print(f"shrinking: {detail}")
    shrunk = shrink_case(
        case, lambda c: failure_detail(c, variant) is not None)
    path = save_corpus_entry(
        shrunk, args.corpus, variant=variant,
        note=f"shrunk from campaign seed={args.seed} case={args.index}: "
             f"{detail[:160]}")
    print(f"wrote {path}")
    if args.show:
        print(render_module(shrunk))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.fuzz")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a seeded fuzz campaign")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--cases", type=int, default=200)
    p_run.add_argument("--budget-s", type=float, default=None)
    p_run.add_argument("--out", default="FUZZ.json")
    p_run.add_argument("--shrink", action="store_true",
                       help="shrink failures and write corpus entries")
    p_run.add_argument("--corpus", default=DEFAULT_CORPUS)
    p_run.add_argument("--no-mutate", action="store_true")
    p_run.add_argument("--quiet", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser("replay", help="replay corpus repro files")
    p_replay.add_argument("files", nargs="*")
    p_replay.add_argument("--corpus", default=DEFAULT_CORPUS)
    p_replay.set_defaults(func=_cmd_replay)

    p_shrink = sub.add_parser("shrink", help="shrink one campaign case")
    p_shrink.add_argument("--seed", type=int, required=True)
    p_shrink.add_argument("--index", type=int, required=True)
    p_shrink.add_argument("--corpus", default=DEFAULT_CORPUS)
    p_shrink.add_argument("--no-mutate", action="store_true")
    p_shrink.add_argument("--show", action="store_true")
    p_shrink.set_defaults(func=_cmd_shrink)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
