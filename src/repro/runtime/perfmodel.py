"""IR-derived workload analysis for the device performance models.

The paper's headline effects are *data-movement* effects: subgraph fusion
removes intermediate arrays, streaming composition removes DRAM round trips,
tiling removes atomic updates.  This module measures exactly those
quantities on the SDFG — bytes moved per memlet, floating-point operations
per tasklet/library node, kernel launches, and write-conflict updates —
scaled by observed state-visit counts, so data-dependent control flow is
handled by real execution.

The device models (:mod:`repro.runtime.devices`) turn a
:class:`ProgramCost` into modeled runtimes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.data import Scalar, StorageType, Stream
from ..ir.nodes import (
    AccessNode,
    LibraryNode,
    MapEntry,
    MapExit,
    NestedSDFG,
    Tasklet,
)
from ..symbolic import Expr, Integer

__all__ = ["StateCost", "ProgramCost", "analyze_state", "analyze_program",
           "tasklet_flops"]

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
              ast.Pow, ast.BitAnd, ast.BitOr, ast.BitXor, ast.LShift,
              ast.RShift)
#: calls that count as (several) flops
_EXPENSIVE_CALLS = {"sqrt": 4, "exp": 8, "log": 8, "sin": 8, "cos": 8,
                    "tan": 10, "tanh": 10, "pow": 8, "arctan2": 12,
                    "exp2": 8, "hypot": 8}


def tasklet_flops(code: str) -> int:
    """Arithmetic operations per execution of a tasklet."""
    try:
        tree = ast.parse(code)
    except SyntaxError:
        return 1
    flops = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
            flops += 1
        elif isinstance(node, ast.Compare):
            flops += len(node.ops)
        elif isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            flops += _EXPENSIVE_CALLS.get(name, 1)
    return max(flops, 1)


@dataclass
class StateCost:
    """Measured cost quantities of one state execution."""

    bytes_read: int = 0
    bytes_written: int = 0
    flops: int = 0
    kernels: int = 0                      # top-level operations (launches)
    wcr_updates: int = 0                  # conflicting (atomic) updates
    transient_bytes: int = 0              # intermediate array traffic
    stream_bytes: int = 0                 # moved through FIFO streams (FPGA)
    library_flops: int = 0                # flops inside fast-library calls
    map_iterations: int = 0

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: int) -> "StateCost":
        return StateCost(**{k: v * factor for k, v in self.__dict__.items()})

    def __iadd__(self, other: "StateCost") -> "StateCost":
        for key, value in other.__dict__.items():
            setattr(self, key, getattr(self, key) + value)
        return self


@dataclass
class ProgramCost(StateCost):
    """Whole-program cost: state costs scaled by visit counts, plus the
    argument footprint (host<->device transfers on accelerators)."""

    argument_bytes_in: int = 0
    argument_bytes_out: int = 0


def _eval(expr: Expr, env: Dict[str, int]) -> int:
    try:
        return max(int(expr.evaluate(env)), 0)
    except (KeyError, ZeroDivisionError):
        return 1


def _volume(memlet, env: Dict[str, int], param_env: Dict[str, int]) -> int:
    if memlet.is_empty():
        return 0
    merged = dict(env)
    merged.update(param_env)
    subset = memlet.subset.subs(merged)
    try:
        return max(int(subset.volume().evaluate(merged)), 0)
    except (KeyError, ZeroDivisionError):
        return 1


def _scope_multiplier(state, node, scopes: Dict, env: Dict[str, int]) -> int:
    """Product of enclosing map range volumes."""
    mult = 1
    current = scopes.get(node)
    while current is not None:
        mult *= _eval(current.map.range.volume(), env)
        current = scopes.get(current)
    return mult


def _param_env(state, node, scopes: Dict, env: Dict[str, int]) -> Dict[str, int]:
    """Bind enclosing map params to their range begins (for hull evaluation)."""
    out: Dict[str, int] = {}
    current = scopes.get(node)
    while current is not None:
        for param, (begin, _e, _s) in zip(current.map.params,
                                          current.map.range.dims):
            out[param] = _eval(begin, {**env, **out})
        current = scopes.get(current)
    return out


def analyze_state(sdfg, state, env: Dict[str, int]) -> StateCost:
    """Cost of executing *state* once under the given symbol values."""
    cost = StateCost()
    scopes = state.scope_dict()

    for node in state.nodes():
        scope = scopes.get(node)
        if isinstance(node, MapEntry) and scope is None:
            cost.kernels += 1
            cost.map_iterations += _eval(node.map.range.volume(), env)
        elif isinstance(node, LibraryNode):
            if scope is None:
                cost.kernels += 1
            shapes_env: Dict[str, object] = {}
            for edge in state.in_edges(node):
                if edge.memlet.is_empty() or edge.dst_conn is None:
                    continue
                desc = sdfg.arrays[edge.memlet.data]
                shape = tuple(_eval(s, env) for s in desc.shape)
                shapes_env[f"{edge.dst_conn}_shape"] = shape
            mult = _scope_multiplier(state, node, scopes, env)
            cost.library_flops += node.flop_count(shapes_env) * mult
        elif isinstance(node, Tasklet):
            mult = _scope_multiplier(state, node, scopes, env)
            cost.flops += tasklet_flops(node.code) * mult
            if scope is None:
                cost.kernels += 1
        elif isinstance(node, NestedSDFG):
            inner_env = dict(env)
            for name, value in node.symbol_mapping.items():
                if hasattr(value, "evaluate"):
                    try:
                        inner_env[name] = int(value.evaluate(env))
                    except KeyError:
                        pass
            mult = _scope_multiplier(state, node, scopes, env)
            inner = analyze_program_static(node.sdfg, inner_env)
            cost += inner.scaled(mult)
            if scope is None:
                cost.kernels += 1

    # memlet traffic
    for edge in state.edges():
        memlet = edge.memlet
        if memlet.is_empty():
            continue
        desc = sdfg.arrays.get(memlet.data)
        if desc is None:
            continue
        if desc.transient and isinstance(desc, Scalar) and memlet.wcr is None:
            continue  # register-resident scalars move no memory
        param_env = _param_env(state, edge.src, scopes, env)
        src_scope = scopes.get(edge.src)
        dst_scope = scopes.get(edge.dst)

        # outer (hull) edges at scope boundaries are bookkeeping; traffic is
        # charged on the precise inner edges
        if isinstance(edge.src, AccessNode) and isinstance(edge.dst, MapEntry):
            continue
        if isinstance(edge.src, MapExit) and isinstance(edge.dst, AccessNode):
            continue
        if isinstance(edge.src, MapEntry) or isinstance(edge.dst, MapExit) \
                or src_scope is not None or dst_scope is not None:
            innermost = edge.dst if dst_scope is not None else edge.src
            mult = _scope_multiplier(state, innermost, scopes, env)
            if isinstance(edge.src, MapEntry) and scopes.get(edge.dst) is edge.src:
                mult = _scope_multiplier(state, edge.dst, scopes, env)
        else:
            mult = 1
        volume = _volume(memlet, env, param_env)
        scalar_register = desc.transient and isinstance(desc, Scalar)
        nbytes = 0 if scalar_register else volume * desc.dtype.bytes * mult

        is_write = (isinstance(edge.dst, AccessNode)
                    or (isinstance(edge.dst, MapExit)
                        and edge.dst_conn is not None))
        is_copy = isinstance(edge.src, AccessNode) and isinstance(edge.dst, AccessNode)
        if is_copy:
            cost.bytes_read += nbytes
            cost.bytes_written += nbytes
            cost.kernels += 1
        elif is_write:
            cost.bytes_written += nbytes
        else:
            cost.bytes_read += nbytes

        if desc.transient and not isinstance(desc, Scalar):
            if getattr(desc, "fpga_streamed", False) or isinstance(desc, Stream):
                cost.stream_bytes += nbytes
            elif desc.storage != StorageType.CPU_Stack:
                cost.transient_bytes += nbytes

        if memlet.wcr is not None and is_write:
            entry = dst_scope if isinstance(dst_scope, MapEntry) else None
            updates = volume * mult
            if entry is not None and entry.map.tile_sizes:
                tiles = 1
                for (begin, end, step), tile in zip(entry.map.range.dims,
                                                    entry.map.tile_sizes):
                    extent = _eval((end - begin) // step + 1, env)
                    tiles *= max((extent + tile - 1) // tile, 1)
                updates = min(updates, tiles * max(volume, 1))
            cost.wcr_updates += updates
    return cost


def analyze_program_static(sdfg, env: Dict[str, int]) -> StateCost:
    """Single-pass cost of all states (no visit weighting; used for nested
    SDFGs where visit counts are not tracked)."""
    total = StateCost()
    for state in sdfg.states():
        total += analyze_state(sdfg, state, env)
    return total


def analyze_program(sdfg, state_visits: Dict[int, int],
                    env: Dict[str, int]) -> ProgramCost:
    """Whole-program cost from per-state visit counts (from a compiled run)."""
    states = sdfg.topological_states()
    total = ProgramCost()
    for index, state in enumerate(states):
        visits = state_visits.get(index, 0)
        if visits == 0:
            continue
        total += analyze_state(sdfg, state, env).scaled(visits)
    for name, desc in sdfg.arglist().items():
        nbytes = _eval(desc.total_size(), env) * desc.dtype.bytes
        total.argument_bytes_in += nbytes
        total.argument_bytes_out += nbytes  # conservatively copied back
    return total
