"""Multicore CPU execution: the persistent worker pool and chunked map
dispatch (DESIGN.md §11).

The paper's CPU backend emits OpenMP ``parallel for`` loops over map scopes
(§3.3); here the analogue is a process-wide, persistent
:class:`~concurrent.futures.ThreadPoolExecutor` onto which both backends
dispatch chunks of a ``CPU_Multicore``-scheduled map's outermost range:

* the generated (vectorized) backend calls :func:`parallel_map` with a
  chunk-body closure emitted by :mod:`repro.codegen.pygen`,
* the reference interpreter calls :func:`maybe_parallel_scope` from its
  scope loop.

Threads (not processes) are the right pool here because the heavy lifting
is NumPy array operations, which release the GIL; chunk closures share the
program's containers in place.  Safety is the optimizer's problem: only maps
the static race detector proved ``race-free`` are ever scheduled
``CPU_Multicore`` (:mod:`repro.transformations.device.cpu_transform`), so
non-WCR writes are injective in the map parameters — distinct chunks write
disjoint locations.  Commutative WCR outputs are privatized: each chunk
accumulates into an identity-initialized private buffer and the buffers are
merged back in deterministic chunk order via ``apply_wcr``.

Tiny maps stay serial: dispatch is gated on a perfmodel-derived work
estimate against ``parallel.min_work``.  Pool failures (thread exhaustion,
interpreter shutdown) degrade deterministically to the serial path, so the
resilience chain above never sees a parallel-only failure mode.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import instrumentation
from ..config import Config
from ..governor import budget as _governor_budget
from .wcr import apply_wcr, identity_like

__all__ = ["configured_threads", "get_pool", "shutdown_pool", "parallel_map",
           "maybe_parallel_scope", "stats", "reset_stats", "ParallelStats",
           "in_worker"]


# ---------------------------------------------------------------------------
# worker-count resolution and pool lifecycle
# ---------------------------------------------------------------------------

def configured_threads() -> int:
    """Resolved worker count: ``device.cpu_threads`` config if positive,
    else ``$REPRO_CPU_THREADS``, else ``os.cpu_count()``."""
    value = int(Config.get("device.cpu_threads") or 0)
    if value > 0:
        return value
    env = os.environ.get("REPRO_CPU_THREADS", "")
    if env:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value > 0:
            return value
    return os.cpu_count() or 1


_POOL: Optional[ThreadPoolExecutor] = None
_POOL_SIZE = 0
_POOL_LOCK = threading.Lock()

#: thread-local marker: set inside pool workers so nested parallel regions
#: run serial instead of deadlocking on their own pool
_TLS = threading.local()


def in_worker() -> bool:
    return getattr(_TLS, "in_worker", False)


def get_pool(size: int) -> Optional[ThreadPoolExecutor]:
    """The persistent process-wide pool, (re)created when the resolved
    worker count changes.  Returns None when pool creation fails — callers
    must fall back to serial execution."""
    global _POOL, _POOL_SIZE
    pool = _POOL
    if pool is not None and _POOL_SIZE == size:
        return pool
    with _POOL_LOCK:
        if _POOL is not None and _POOL_SIZE == size:
            return _POOL
        if _POOL is not None:
            _POOL.shutdown(wait=False)
            _POOL = None
        try:
            _POOL = ThreadPoolExecutor(max_workers=size,
                                       thread_name_prefix="repro-par")
            _POOL_SIZE = size
        except Exception:
            _POOL = None
            _POOL_SIZE = 0
        return _POOL


def shutdown_pool() -> None:
    """Tear the pool down (tests; interpreter shutdown)."""
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_SIZE = 0


# ---------------------------------------------------------------------------
# accounting
# ---------------------------------------------------------------------------

class ParallelStats:
    """Process-wide parallel-execution counters (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.parallel_regions = 0    # map scopes dispatched onto the pool
        self.serial_regions = 0      # CPU_Multicore scopes that ran serial
        self.chunks = 0              # chunk tasks executed (incl. inline)
        self.pool_failures = 0       # pool unavailable / submit refused

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    def to_dict(self) -> Dict[str, int]:
        with self._lock:
            return {"parallel_regions": self.parallel_regions,
                    "serial_regions": self.serial_regions,
                    "chunks": self.chunks,
                    "pool_failures": self.pool_failures}


_STATS = ParallelStats()


def stats() -> ParallelStats:
    return _STATS


def reset_stats() -> None:
    global _STATS
    _STATS = ParallelStats()


# ---------------------------------------------------------------------------
# shared chunk plumbing
# ---------------------------------------------------------------------------

def _chunk_bounds(n: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous [lo, hi) index spans covering range(n), balanced to within
    one element.  An empty range has no chunks (not a degenerate [0, 0))."""
    if n <= 0:
        return []
    parts = max(1, min(parts, n))
    base, extra = divmod(n, parts)
    bounds = []
    lo = 0
    for p in range(parts):
        hi = lo + base + (1 if p < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _run_chunk(task: Callable[[], None], label: str,
               gov=None) -> None:
    """Execute one chunk body inside a worker: mark the thread as a pool
    worker (nested regions stay serial), adopt the dispatching thread's
    armed governor budget (deadline checks cross the pool boundary), and
    report a per-worker region timer into the active collector (RegionStat
    aggregation is thread-safe)."""
    prev = getattr(_TLS, "in_worker", False)
    _TLS.in_worker = True
    start = time.perf_counter()
    try:
        if gov is None:
            task()
        else:
            # chunk boundary is a cooperative check site: a pool queue full
            # of pending chunks drains fast once the deadline passes
            gov.check()
            with _governor_budget.adopt(gov):
                task()
    finally:
        _TLS.in_worker = prev
        _STATS.bump("chunks")
        coll = instrumentation._ACTIVE
        if coll is not None:
            coll.add("parallel", label, time.perf_counter() - start)


def _report_pool_fallback(label: str, cause: str) -> None:
    """Structured recovery event for a pool-unavailable serial fallback:
    the degradation stays deterministic but no longer silent."""
    _STATS.bump("pool_failures")
    coll = instrumentation._ACTIVE
    if coll is not None:
        coll.add("recovery", f"pool-fallback:{label}:{cause}", 0.0)


def _dispatch(tasks: List[Callable[[], None]], label: str) -> None:
    """Run chunk tasks on the pool; degrade to inline execution when the
    pool is unavailable.  Re-raises the first chunk exception after all
    chunks settle (no partially-joined pool state)."""
    pool = get_pool(configured_threads())
    gov = _governor_budget.current()
    futures = []
    first_exc: Optional[BaseException] = None
    for task in tasks:
        submitted = False
        if pool is not None:
            try:
                futures.append(pool.submit(_run_chunk, task, label, gov))
                submitted = True
            except RuntimeError:
                _report_pool_fallback(label, "submit-rejected")
        if not submitted:
            if pool is None:
                _report_pool_fallback(label, "pool-unavailable")
            try:
                _run_chunk(task, label, gov)
            except BaseException as exc:
                if first_exc is None:
                    first_exc = exc
    for fut in futures:
        exc = fut.exception()
        if exc is not None and first_exc is None:
            first_exc = exc
    if first_exc is not None:
        raise first_exc


# ---------------------------------------------------------------------------
# generated-code entry point (the vectorized backend)
# ---------------------------------------------------------------------------

def parallel_map(body: Callable[[int, int, Dict[str, Any]], None],
                 begin, end, step, work_per_index,
                 wcr_outputs: Dict[str, Tuple[Any, str]],
                 label: str = "") -> None:
    """Execute a generated map-scope body over ``begin:end:step`` (inclusive
    end, SDFG range convention), chunked over the pool.

    *body(lo, hi, acc)* executes the scope for the outermost-parameter span
    ``lo:hi:step``; *acc* maps each conflicted WCR output name to the array
    the body's ``wcr_store`` calls must target.  On the serial path that is
    the real container; on the parallel path each chunk gets an
    identity-filled private buffer, merged back here in chunk order.

    *work_per_index* is the perfmodel flop estimate for one outermost-index
    slice; dispatch only happens when ``n * work_per_index`` clears
    ``parallel.min_work``.
    """
    begin = int(begin)
    end = int(end)
    step = int(step)
    if step == 0:
        return
    n = (end - begin) // step + 1
    if n <= 0:
        return
    workers = configured_threads()
    direct = {name: arr for name, (arr, _wcr) in wcr_outputs.items()}
    if (workers <= 1 or n < 2 or in_worker()
            or n * max(int(work_per_index), 1)
            < int(Config.get("parallel.min_work"))):
        _STATS.bump("serial_regions")
        body(begin, end, direct)
        return
    bounds = _chunk_bounds(n, workers)
    if len(bounds) < 2:
        _STATS.bump("serial_regions")
        body(begin, end, direct)
        return
    accs: List[Dict[str, Any]] = []
    tasks: List[Callable[[], None]] = []
    for lo_i, hi_i in bounds:
        acc = {name: identity_like(arr, wcr)
               for name, (arr, wcr) in wcr_outputs.items()}
        accs.append(acc)
        lo = begin + lo_i * step
        hi = begin + (hi_i - 1) * step
        tasks.append(lambda lo=lo, hi=hi, acc=acc: body(lo, hi, acc))
    _dispatch(tasks, label)
    _STATS.bump("parallel_regions")
    # deterministic merge: chunk order, whole-array combine (identity
    # elements make untouched entries no-ops)
    for acc in accs:
        for name, (arr, wcr) in wcr_outputs.items():
            apply_wcr(arr, tuple(slice(None) for _ in range(arr.ndim)),
                      acc[name], wcr)


# ---------------------------------------------------------------------------
# interpreter entry point (the loop-fallback backend)
# ---------------------------------------------------------------------------

def _scope_work_estimate(state, entry) -> int:
    """Perfmodel flop estimate for one full iteration of the scope body,
    memoized on the Map object."""
    cached = getattr(entry.map, "_par_flops", None)
    if cached is not None:
        return cached
    from ..ir.nodes import Tasklet
    from .perfmodel import tasklet_flops

    flops = 0
    for node in state.scope_subgraph_nodes(entry):
        if isinstance(node, Tasklet):
            flops += tasklet_flops(node.code)
        elif node is not entry and node is not entry.exit_node:
            flops += 8  # library/nested/access nodes: nominal cost
    flops = max(flops, 1)
    entry.map._par_flops = flops
    return flops


def maybe_parallel_scope(ctx, state, entry, env: Dict[str, Any],
                         scope_order, iteration: List[range]) -> bool:
    """Try to execute a ``CPU_Multicore`` scope in parallel from the
    reference interpreter.  Returns False when the scope must run serial
    (the caller's loop is the deterministic fallback)."""
    ok = _parallel_scope(ctx, state, entry, env, scope_order, iteration)
    if not ok:
        _STATS.bump("serial_regions")
    return ok


def _parallel_scope(ctx, state, entry, env: Dict[str, Any],
                    scope_order, iteration: List[range]) -> bool:
    import itertools

    from ..ir.data import Stream
    from ..ir.nodes import AccessNode

    workers = configured_threads()
    if workers <= 1 or in_worker():
        return False
    first = list(iteration[0])
    if len(first) < 2:
        return False
    total = 1
    for rng in iteration:
        total *= len(rng)
    if total * _scope_work_estimate(state, entry) \
            < int(Config.get("parallel.min_work")):
        return False

    exit_ = entry.exit_node
    privates = set()
    for node in state.scope_subgraph_nodes(entry):
        if node is entry or node is exit_:
            continue
        if isinstance(node, AccessNode):
            desc = ctx.sdfg.arrays.get(node.data)
            if desc is None or not desc.transient or isinstance(desc, Stream):
                return False  # shared or stream access inside the body
            privates.add(node.data)

    # WCR outputs at the scope exit get per-chunk private accumulators;
    # a container written both with and without WCR, or read inside the
    # scope, cannot be privatized — stay serial
    wcr_outs: Dict[str, str] = {}
    for edge in state.in_edges(exit_):
        if edge.memlet.is_empty():
            continue
        desc = ctx.sdfg.arrays.get(edge.memlet.data)
        if desc is None or isinstance(desc, Stream):
            return False
        if edge.memlet.wcr is not None:
            known = wcr_outs.get(edge.memlet.data)
            if known is not None and known != edge.memlet.wcr:
                return False
            wcr_outs[edge.memlet.data] = edge.memlet.wcr
    for edge in state.in_edges(exit_):
        if not edge.memlet.is_empty() and edge.memlet.wcr is None \
                and edge.memlet.data in wcr_outs:
            return False
    reads = {e.memlet.data for e in state.out_edges(entry)
             if not e.memlet.is_empty()}
    if reads & set(wcr_outs):
        return False

    from .executor import _Context, _execute_level

    # materialize WCR targets now so the merge has storage to combine into
    bases = {name: ctx.storage(name) for name in wcr_outs}
    body = scope_order[entry]
    params = list(entry.map.params)
    rest_iter = iteration[1:]

    bounds = _chunk_bounds(len(first), workers)
    if len(bounds) < 2:
        return False

    accs: List[Dict[str, Any]] = []
    tasks: List[Callable[[], None]] = []
    for lo_i, hi_i in bounds:
        acc = {name: identity_like(bases[name], wcr)
               for name, wcr in wcr_outs.items()}
        accs.append(acc)

        def task(lo_i=lo_i, hi_i=hi_i, acc=acc):
            # chunk-private containers: scope transients drop out (lazily
            # reallocated per chunk) and WCR outputs point at the private
            # accumulator
            containers = {k: v for k, v in ctx.containers.items()
                          if k not in privates}
            containers.update(acc)
            chunk_ctx = _Context(ctx.sdfg, containers, ctx.symbols)
            for i0 in first[lo_i:hi_i]:
                for rest in itertools.product(*rest_iter):
                    inner_env = dict(env)
                    inner_env.update(zip(params, (i0,) + rest))
                    _execute_level(chunk_ctx, state, body, inner_env,
                                   scope_order)

        tasks.append(task)

    label = entry.map.label or ",".join(params)
    _dispatch(tasks, label)
    _STATS.bump("parallel_regions")
    for acc in accs:
        for name, wcr in wcr_outs.items():
            arr = bases[name]
            apply_wcr(arr, tuple(slice(None) for _ in range(arr.ndim)),
                      acc[name], wcr)
    return True
