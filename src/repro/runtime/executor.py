"""Reference SDFG interpreter.

Executes an SDFG functionally: walks the state machine, runs each state's
dataflow in topological order, iterates map scopes point-by-point, and honors
memlet subsets, WCR, streams, library nodes, and nested SDFGs.  This is the
semantic ground truth that code generation and the device simulators are
tested against; it favors clarity over speed.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from typing import Any, Dict, List, Optional

import numpy as np

from .. import instrumentation
from ..config import Config
from ..governor import budget as _governor_budget
from ..resilience import hooks as _hooks
from ..sanitizer import guards as _guards
from ..ir.data import Array, Scalar, Stream, View
from ..ir.memlet import Memlet
from ..ir.nodes import (
    AccessNode,
    LibraryNode,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    ScheduleType,
    Tasklet,
)
from ..ir.state import SDFGState
from ..symbolic import Symbol
from .wcr import apply_wcr

__all__ = ["run_sdfg", "ExecutionError", "allocate_container", "infer_symbols"]

#: hard backstop against runaway state machines
MAX_TRANSITIONS = 100_000_000

_TASKLET_GLOBALS = {
    "np": np,
    "math": math,
    "abs": abs,
    "min": min,
    "max": max,
    "int": int,
    "float": float,
    "bool": bool,
    "len": len,
    "range": range,
}


class ExecutionError(RuntimeError):
    """Raised when the interpreter cannot execute an SDFG."""


def allocate_container(desc, env: Dict[str, int]):
    """Allocate backing storage for a data descriptor."""
    if isinstance(desc, Stream):
        return deque(maxlen=desc.buffer_size or None)
    shape = tuple(int(s.evaluate(env)) for s in desc.shape)
    if isinstance(desc, Scalar):
        return np.zeros(1, dtype=desc.dtype.nptype)
    return np.zeros(shape, dtype=desc.dtype.nptype)


def infer_symbols(sdfg, containers: Dict[str, Any]) -> Dict[str, int]:
    """Deduce free-symbol values from actual argument shapes and from
    integer scalar arguments that share a free symbol's name.

    Pure-symbol dimensions bind directly; composite dimensions are verified
    afterwards (mismatch is an error, matching the paper's static symbolic
    typing).  A shape-derived binding and a scalar-argument binding for the
    same symbol must agree.
    """
    env: Dict[str, int] = {}
    for name, desc in sdfg.arrays.items():
        if name not in containers or isinstance(desc, (Scalar, Stream)):
            continue
        value = containers[name]
        if not hasattr(value, "shape"):
            continue
        if len(value.shape) != len(desc.shape):
            raise ExecutionError(
                f"argument {name!r} has {len(value.shape)} dimensions, "
                f"expected {len(desc.shape)}")
        for sym_dim, actual in zip(desc.shape, value.shape):
            if isinstance(sym_dim, Symbol):
                if sym_dim.name in env and env[sym_dim.name] != actual:
                    raise ExecutionError(
                        f"inconsistent value for symbol {sym_dim.name}: "
                        f"{env[sym_dim.name]} vs {actual} (argument {name!r})")
                env[sym_dim.name] = int(actual)
    # a free symbol supplied explicitly as an integer scalar argument binds
    # too (shape-less programs have no other source); shape-derived values
    # win conflicts only by raising, never silently
    free = set(sdfg.free_symbols) | set(getattr(sdfg, "symbols", ()))
    for name, desc in sdfg.arrays.items():
        if not isinstance(desc, Scalar) or name not in containers \
                or name not in free:
            continue
        value = np.asarray(containers[name]).reshape(-1)[0]
        if not isinstance(value, (int, np.integer)):
            continue
        value = int(value)
        if name in env and env[name] != value:
            raise ExecutionError(
                f"inconsistent value for symbol {name}: shape-derived "
                f"{env[name]} vs scalar argument {value}")
        env[name] = value
    # verify composite dimensions now that symbols are bound
    for name, desc in sdfg.arrays.items():
        if name not in containers or isinstance(desc, (Scalar, Stream)):
            continue
        value = containers[name]
        if not hasattr(value, "shape"):
            continue
        for sym_dim, actual in zip(desc.shape, value.shape):
            try:
                expected = sym_dim.evaluate(env)
            except KeyError:
                continue
            if expected != actual:
                raise ExecutionError(
                    f"argument {name!r}: dimension {sym_dim} evaluates to "
                    f"{expected} but actual size is {actual}")
    return env


class _Context:
    """Mutable execution state: container storage + symbol values."""

    __slots__ = ("sdfg", "containers", "symbols")

    def __init__(self, sdfg, containers: Dict[str, Any], symbols: Dict[str, Any]):
        self.sdfg = sdfg
        self.containers = containers
        self.symbols = symbols

    def storage(self, name: str):
        desc = self.sdfg.arrays[name]
        existing = self.containers.get(name)
        if existing is None:
            existing = self.containers[name] = allocate_container(desc, self.symbols)
            return existing
        # loop-dependent transient shapes (e.g. x[:i]) change between
        # iterations: reallocate when the evaluated shape differs
        if desc.transient and not isinstance(desc, (Scalar, Stream)) \
                and desc.free_symbols:
            try:
                shape = tuple(int(s.evaluate(self.symbols)) for s in desc.shape)
            except KeyError:
                return existing
            if getattr(existing, "shape", shape) != shape:
                existing = self.containers[name] = allocate_container(
                    desc, self.symbols)
        return existing


def _read(ctx: _Context, memlet: Memlet, env: Dict[str, Any]):
    storage = ctx.storage(memlet.data)
    desc = ctx.sdfg.arrays[memlet.data]
    if isinstance(desc, Stream):
        if not storage:
            raise ExecutionError(f"read from empty stream {memlet.data!r}")
        return storage.popleft()
    if isinstance(desc, Scalar):
        return storage[0]
    slices = memlet.subset.to_slices(env)
    guard = _guards._ACTIVE
    if guard is not None and "bounds" in guard.modes:
        _guards.check_index(memlet.data, storage.shape, slices,
                            program=guard.program)
    view = storage[slices]
    if memlet.squeeze:
        new_shape = tuple(s for axis, s in enumerate(view.shape)
                          if axis not in memlet.squeeze)
        view = view.reshape(new_shape)
    if view.size == 1 and memlet.subset.is_point() is True:
        return view.reshape(())[()]
    return view


def _write(ctx: _Context, memlet: Memlet, env: Dict[str, Any], value) -> None:
    storage = ctx.storage(memlet.data)
    desc = ctx.sdfg.arrays[memlet.data]
    if isinstance(desc, Stream):
        storage.append(value)
        return
    guard = _guards._ACTIVE
    if guard is not None and "nan" in guard.modes:
        _guards.check_value(memlet.data, value, program=guard.program)
    if isinstance(desc, Scalar):
        if memlet.wcr is not None:
            apply_wcr(storage, 0, value, memlet.wcr)
        else:
            storage[0] = value
        return
    slices = memlet.subset.to_slices(env)
    if guard is not None and "bounds" in guard.modes:
        _guards.check_index(memlet.data, storage.shape, slices,
                            program=guard.program)
    if memlet.wcr is not None:
        apply_wcr(storage, slices, value, memlet.wcr)
    else:
        target = storage[slices]
        if np.isscalar(value) or (hasattr(value, "shape") and value.shape != target.shape):
            storage[slices] = np.broadcast_to(np.asarray(value), target.shape)
        else:
            storage[slices] = value


def _execute_tasklet(ctx: _Context, state: SDFGState, node: Tasklet,
                     env: Dict[str, Any]) -> None:
    local: Dict[str, Any] = {}
    for edge in state.in_edges(node):
        if edge.memlet.is_empty() or edge.dst_conn is None:
            continue
        local[edge.dst_conn] = _read(ctx, edge.memlet, env)
    local.update(env)
    tasklet_globals = dict(_TASKLET_GLOBALS)
    tasklet_globals.update(ctx.sdfg.constants)
    try:
        exec(compile(node.code, f"<tasklet {node.label}>", "exec"), tasklet_globals, local)
    except Exception as exc:  # pragma: no cover - exercised via error tests
        raise ExecutionError(
            f"tasklet {node.label!r} failed: {exc}\ncode: {node.code}") from exc
    for edge in state.out_edges(node):
        if edge.memlet.is_empty() or edge.src_conn is None:
            continue
        if edge.src_conn not in local:
            raise ExecutionError(
                f"tasklet {node.label!r} did not assign output connector "
                f"{edge.src_conn!r}")
        _write(ctx, edge.memlet, env, local[edge.src_conn])


def _execute_library(ctx: _Context, state: SDFGState, node: LibraryNode,
                     env: Dict[str, Any]) -> None:
    prof = instrumentation._ACTIVE
    if prof is not None:
        with prof.region("library", node.label or type(node).__name__):
            _execute_library_body(ctx, state, node, env)
        return
    _execute_library_body(ctx, state, node, env)


def _execute_library_body(ctx: _Context, state: SDFGState, node: LibraryNode,
                          env: Dict[str, Any]) -> None:
    inputs: Dict[str, Any] = {}
    for edge in state.in_edges(node):
        if edge.memlet.is_empty() or edge.dst_conn is None:
            continue
        inputs[edge.dst_conn] = _read(ctx, edge.memlet, env)
    sym_env = {k: v for k, v in env.items() if isinstance(v, (int, np.integer))}
    outputs = node.compute(inputs, sym_env)
    for edge in state.out_edges(node):
        if edge.memlet.is_empty() or edge.src_conn is None:
            continue
        if edge.src_conn not in outputs:
            raise ExecutionError(
                f"library node {node.label!r} produced no output for "
                f"connector {edge.src_conn!r}")
        _write(ctx, edge.memlet, env, outputs[edge.src_conn])


def _execute_nested(ctx: _Context, state: SDFGState, node: NestedSDFG,
                    env: Dict[str, Any]) -> None:
    inner = node.sdfg
    inner_containers: Dict[str, Any] = {}
    writeback: List = []
    for edge in state.in_edges(node):
        if edge.memlet.is_empty() or edge.dst_conn is None:
            continue
        outer_desc = ctx.sdfg.arrays[edge.memlet.data]
        storage = ctx.storage(edge.memlet.data)
        if isinstance(outer_desc, Stream):
            inner_containers[edge.dst_conn] = storage
            continue
        if isinstance(outer_desc, Scalar):
            inner_containers[edge.dst_conn] = storage
            continue
        slices = edge.memlet.subset.to_slices(env)
        view = storage[slices]
        inner_desc = inner.arrays[edge.dst_conn]
        # squeeze/reshape view to match the inner container's rank
        inner_containers[edge.dst_conn] = _conform(view, inner_desc, env, node)
    for edge in state.out_edges(node):
        if edge.memlet.is_empty() or edge.src_conn is None:
            continue
        outer_desc = ctx.sdfg.arrays[edge.memlet.data]
        storage = ctx.storage(edge.memlet.data)
        if isinstance(outer_desc, (Stream, Scalar)):
            inner_containers.setdefault(edge.src_conn, storage)
            continue
        slices = edge.memlet.subset.to_slices(env)
        view = storage[slices]
        inner_desc = inner.arrays[edge.src_conn]
        conformed = _conform(view, inner_desc, env, node)
        if conformed.base is None and conformed is not view:
            # reshape produced a copy; remember to write back after the call
            writeback.append((storage, slices, conformed))
        inner_containers.setdefault(edge.src_conn, conformed)

    inner_symbols: Dict[str, Any] = {}
    for inner_name, outer_expr in node.symbol_mapping.items():
        if hasattr(outer_expr, "evaluate"):
            inner_symbols[inner_name] = outer_expr.evaluate(env)
        elif isinstance(outer_expr, str) and outer_expr in env:
            inner_symbols[inner_name] = env[outer_expr]
        else:
            inner_symbols[inner_name] = outer_expr
    # unmapped inner symbols inherit same-named outer values
    for name, value in env.items():
        if isinstance(value, (int, np.integer)):
            inner_symbols.setdefault(name, int(value))
    # nested state machines run mid-state of the outer SDFG: their
    # boundaries are not checkpointable program points
    with _hooks.suppressed():
        _run_machine(inner, inner_containers, inner_symbols)
    for storage, slices, data in writeback:
        storage[slices] = data.reshape(storage[slices].shape)


def _conform(view: np.ndarray, inner_desc, env, node) -> np.ndarray:
    """Make an outer view match the inner descriptor's rank/shape."""
    try:
        target_shape = tuple(int(s.evaluate(env)) for s in inner_desc.shape)
    except KeyError:
        return view
    if view.shape == target_shape:
        return view
    squeezed = view
    if view.ndim > len(target_shape):
        squeeze_axes = tuple(i for i, s in enumerate(view.shape)
                             if s == 1 and view.ndim - 1 >= len(target_shape))
        squeezed = view
        for axis in sorted(squeeze_axes, reverse=True):
            if squeezed.ndim > len(target_shape) and squeezed.shape[axis] == 1:
                squeezed = squeezed.reshape(
                    squeezed.shape[:axis] + squeezed.shape[axis + 1:])
    if squeezed.shape == target_shape:
        return squeezed
    return squeezed.reshape(target_shape)


def _execute_scope(ctx: _Context, state: SDFGState, entry: MapEntry,
                   env: Dict[str, Any],
                   scope_order: Dict[Optional[MapEntry], List[Node]]) -> None:
    prof = instrumentation._ACTIVE
    if prof is not None:
        name = entry.map.label or ",".join(entry.map.params)
        with prof.region("map", name):
            _execute_scope_body(ctx, state, entry, env, scope_order)
        return
    _execute_scope_body(ctx, state, entry, env, scope_order)


def _execute_scope_body(ctx: _Context, state: SDFGState, entry: MapEntry,
                        env: Dict[str, Any],
                        scope_order: Dict[Optional[MapEntry], List[Node]]
                        ) -> None:
    rng = entry.map.range
    iteration = []
    for begin, end, step in rng.dims:
        b = begin.evaluate(env)
        e = end.evaluate(env)
        s = step.evaluate(env)
        iteration.append(range(b, e + 1, s))
    body = scope_order[entry]
    if entry.map.schedule == ScheduleType.CPU_Multicore and iteration \
            and iteration[0]:
        from . import parallel as _parallel

        if _parallel.maybe_parallel_scope(ctx, state, entry, env,
                                          scope_order, iteration):
            return
    for point in itertools.product(*iteration):
        inner_env = dict(env)
        inner_env.update(zip(entry.map.params, point))
        _execute_level(ctx, state, body, inner_env, scope_order)


def _execute_level(ctx: _Context, state: SDFGState, nodes: List[Node],
                   env: Dict[str, Any],
                   scope_order: Dict[Optional[MapEntry], List[Node]]) -> None:
    for node in nodes:
        if isinstance(node, Tasklet):
            _execute_tasklet(ctx, state, node, env)
        elif isinstance(node, MapEntry):
            _execute_scope(ctx, state, node, env, scope_order)
        elif isinstance(node, LibraryNode):
            _execute_library(ctx, state, node, env)
        elif isinstance(node, NestedSDFG):
            _execute_nested(ctx, state, node, env)
        elif isinstance(node, AccessNode):
            # perform access->access copy edges when visiting the destination
            for edge in state.in_edges(node):
                if isinstance(edge.src, AccessNode) and not edge.memlet.is_empty():
                    _copy_edge(ctx, edge, env)
        elif isinstance(node, MapExit):
            pass  # all writes happen at the producing code nodes
        else:  # pragma: no cover - future node kinds
            raise ExecutionError(f"cannot execute node {node!r}")


def _copy_edge(ctx: _Context, edge, env: Dict[str, Any]) -> None:
    memlet = edge.memlet
    src_name = edge.src.data
    dst_name = edge.dst.data
    src_desc = ctx.sdfg.arrays[src_name]
    dst_desc = ctx.sdfg.arrays[dst_name]
    src_storage = ctx.storage(src_name)
    dst_storage = ctx.storage(dst_name)
    # Determine source and destination subsets from the memlet convention:
    # memlet.data names one side; other_subset (if present) the other side.
    if memlet.data == src_name:
        src_subset = memlet.subset
        dst_subset = memlet.other_subset
    else:
        src_subset = memlet.other_subset
        dst_subset = memlet.subset

    guard = _guards._ACTIVE
    if isinstance(src_desc, Stream):
        value = src_storage.popleft()
    elif isinstance(src_desc, Scalar):
        value = src_storage[0]
    else:
        slices = (src_subset.to_slices(env) if src_subset is not None
                  else tuple(slice(None) for _ in src_storage.shape))
        if guard is not None and "bounds" in guard.modes:
            _guards.check_index(src_name, src_storage.shape, slices,
                                program=guard.program)
        value = src_storage[slices]

    if isinstance(dst_desc, Stream):
        dst_storage.append(np.copy(value))
        return
    if isinstance(dst_desc, Scalar):
        if memlet.wcr:
            apply_wcr(dst_storage, 0, value, memlet.wcr)
        else:
            dst_storage[0] = value
        return
    dst_slices = (dst_subset.to_slices(env) if dst_subset is not None
                  else tuple(slice(None) for _ in dst_storage.shape))
    if guard is not None and "bounds" in guard.modes:
        _guards.check_index(dst_name, dst_storage.shape, dst_slices,
                            program=guard.program)
    target = dst_storage[dst_slices]
    value_arr = np.asarray(value)
    if value_arr.shape != target.shape:
        value_arr = value_arr.reshape(target.shape)
    if memlet.wcr:
        apply_wcr(dst_storage, dst_slices, value_arr, memlet.wcr)
    else:
        dst_storage[dst_slices] = value_arr


def execute_state(ctx: _Context, state: SDFGState) -> None:
    prof = instrumentation._ACTIVE
    if prof is not None:
        with prof.region("state", state.label):
            _execute_state_body(ctx, state)
        return
    _execute_state_body(ctx, state)


def _execute_state_body(ctx: _Context, state: SDFGState) -> None:
    scope = state.scope_dict()
    order: Dict[Optional[MapEntry], List[Node]] = {}
    for node in state.topological_nodes():
        holder = scope.get(node)
        if isinstance(node, MapExit):
            continue  # handled by its scope's writes
        order.setdefault(holder, []).append(node)
    env = dict(ctx.symbols)
    _execute_level(ctx, state, order.get(None, []), env, order)


def _scalar_value(storage) -> Any:
    arr = np.asarray(storage)
    return arr.reshape(-1)[0]


def _run_machine(sdfg, containers: Dict[str, Any], symbols: Dict[str, Any],
                 start_state=None) -> None:
    ctx = _Context(sdfg, containers, symbols)
    state = start_state if start_state is not None else sdfg.start_state
    if state is None:
        return
    hook = _hooks.active_hook()
    state_index = ({s: i for i, s in enumerate(sdfg.topological_states())}
                   if hook is not None else None)
    # cooperative cancellation: one thread-local read per run; per-state
    # cost when ungoverned is a single None check (DESIGN.md §12)
    gov = _governor_budget.current()
    transitions = 0
    while state is not None:
        if gov is not None:
            gov.boundary(state.label)
        if hook is not None:
            hook(state_index.get(state, -1), ctx.containers, ctx.symbols)
        execute_state(ctx, state)
        cond_env = dict(ctx.symbols)
        # expose scalar container values to interstate conditions
        for name, desc in sdfg.arrays.items():
            if isinstance(desc, Scalar) and name in ctx.containers:
                cond_env[name] = _scalar_value(ctx.containers[name])
        next_state = None
        # deterministic order: conditional edges first, unconditional last
        out = sdfg.out_edges(state)
        out.sort(key=lambda e: e.data.is_unconditional())
        for isedge in out:
            if isedge.data.evaluate_condition(cond_env):
                # assignments may read scalar containers (data-dependent
                # bounds); evaluate against the full environment, commit
                # only the assigned symbols
                merged = dict(cond_env)
                isedge.data.apply_assignments(merged)
                for key in isedge.data.assignments:
                    ctx.symbols[key] = merged[key]
                next_state = isedge.dst
                break
        state = next_state
        transitions += 1
        if transitions > MAX_TRANSITIONS:
            raise ExecutionError("state machine exceeded the transition limit")


def prepare_arguments(sdfg, args, kwargs):
    """Bind positional/keyword arguments to (containers, symbols) dicts.

    Shared by the interpreter and compiled-module paths.  Mutates nothing;
    raises :class:`ExecutionError` on signature violations.
    """
    kwargs = dict(kwargs)
    arg_order = [n for n in (sdfg.arg_names or sorted(sdfg.arglist()))]
    containers: Dict[str, Any] = {}
    symbols: Dict[str, Any] = {}

    positional = list(args)
    names = [n for n in arg_order if n in sdfg.arrays and not sdfg.arrays[n].transient]
    if len(positional) > len(names):
        raise ExecutionError(
            f"too many positional arguments: got {len(positional)}, "
            f"expected at most {len(names)}")
    for name, value in zip(names, positional):
        kwargs.setdefault(name, value)

    for key, value in kwargs.items():
        if key in sdfg.arrays:
            desc = sdfg.arrays[key]
            if isinstance(desc, Scalar):
                containers[key] = np.array([value], dtype=desc.dtype.nptype)
            elif isinstance(desc, Stream):
                containers[key] = value
            else:
                arr = np.asarray(value)
                if arr.dtype != desc.dtype.nptype:
                    raise ExecutionError(
                        f"argument {key!r} has dtype {arr.dtype}, expected "
                        f"{desc.dtype.nptype} (static symbolic typing)")
                containers[key] = arr
        elif key in sdfg.symbols or key in sdfg.free_symbols:
            symbols[key] = int(value)
        else:
            raise ExecutionError(f"unknown argument {key!r}")

    symbols.update(infer_symbols(sdfg, containers))
    missing = [name for name in sdfg.free_symbols if name not in symbols]
    if missing:
        raise ExecutionError(f"unbound symbols: {sorted(missing)}")
    required = [n for n in names if n not in containers and n != "__return"]
    if required:
        raise ExecutionError(f"missing arguments: {required}")
    return containers, symbols


def collect_return(sdfg, containers):
    """Extract the ``__return`` container(s) after execution, or None."""
    names = sorted(n for n in sdfg.arrays if n.startswith("__return"))
    if not names:
        return None
    results = []
    for name in names:
        value = containers.get(name)
        if value is not None and isinstance(sdfg.arrays[name], Scalar):
            value = value[0]
        results.append(value)
    if len(results) == 1:
        return results[0]
    return tuple(results)


def run_sdfg(sdfg, *args, validate: Optional[bool] = None,
             budget=None, **kwargs):
    """Execute an SDFG with NumPy arguments.

    Positional arguments follow ``sdfg.arg_names``; keyword arguments bind
    containers (by name) and free symbols.  Returns the ``__return``
    container if the SDFG defines one, else None.  Arrays are modified
    in place, matching the paper's calling convention.

    ``validate`` defaults to the ``validate.before_execute`` configuration
    key: malformed graphs fail fast with an :class:`InvalidSDFGError`
    naming the violated invariant instead of erroring deep inside a tasklet.

    ``budget`` (a :class:`repro.governor.Budget`; defaults to the ambient
    ``governor.*`` configuration) bounds the run: the memory plan is
    admission-checked *before* any transient is allocated, and a deadline
    arms a watchdog whose expiry raises
    :class:`~repro.governor.ExecutionTimeout` at the next state boundary.
    """
    if validate is None:
        validate = Config.get("validate.before_execute")
    if validate:
        sdfg.validate()
    containers, symbols = prepare_arguments(sdfg, args, kwargs)
    resolved = _governor_budget.Budget.resolve(budget)
    if resolved.is_null:
        _run_machine(sdfg, containers, symbols)
        return collect_return(sdfg, containers)

    from ..governor import admission as _admission

    decision = None
    if resolved.max_bytes:
        decision = _admission.admit(sdfg, symbols, resolved,
                                    program=sdfg.name)
    with _governor_budget.armed(resolved, program=sdfg.name):
        if decision is not None and decision.action == "degrade-serial":
            # the serial tier's plan was admitted: pin the worker count so
            # no per-chunk accumulators/privatized copies materialize
            with Config.override(device__cpu_threads=1):
                _run_machine(sdfg, containers, symbols)
        else:
            _run_machine(sdfg, containers, symbols)
    return collect_return(sdfg, containers)
