"""Runtimes: the reference interpreter, workload analysis, and the
simulated CPU/GPU/FPGA device models."""

from .devices import (CPU_PROFILES, FPGA_PROFILES, GPU_PROFILES, cpu_time,
                      fpga_time, gpu_time)
from .executor import ExecutionError, run_sdfg
from .perfmodel import ProgramCost, StateCost, analyze_program, analyze_state

__all__ = [
    "run_sdfg", "ExecutionError",
    "ProgramCost", "StateCost", "analyze_program", "analyze_state",
    "CPU_PROFILES", "GPU_PROFILES", "FPGA_PROFILES",
    "cpu_time", "gpu_time", "fpga_time",
]
