"""Write-conflict resolution (WCR) semantics.

When multiple map iterations write the same location, the memlet's ``wcr``
function combines the incoming value with the stored one (§2.3, Fig. 2b).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["WCR_APPLY", "WCR_UFUNC", "WCR_IDENTITY", "apply_wcr",
           "wcr_identity", "identity_like"]

#: scalar combine functions
WCR_APPLY: Dict[str, Callable] = {
    "sum": lambda old, new: old + new,
    "prod": lambda old, new: old * new,
    "min": lambda old, new: min(old, new) if np.isscalar(old) else np.minimum(old, new),
    "max": lambda old, new: max(old, new) if np.isscalar(old) else np.maximum(old, new),
    "logical_and": lambda old, new: bool(old) and bool(new),
    "logical_or": lambda old, new: bool(old) or bool(new),
}

#: vectorized in-place equivalents
WCR_UFUNC: Dict[str, np.ufunc] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "logical_and": np.logical_and,
    "logical_or": np.logical_or,
}

#: identity element per WCR function, as Python floats/bools.  Kept for
#: backward compatibility; accumulator initialization must go through
#: :func:`wcr_identity`, which is dtype-aware (``float("inf")`` crashes when
#: written into an integer array and silently casts in a float32 one).
WCR_IDENTITY: Dict[str, float] = {
    "sum": 0.0,
    "prod": 1.0,
    "min": float("inf"),
    "max": float("-inf"),
    "logical_and": True,
    "logical_or": False,
}


def wcr_identity(wcr: str, dtype) -> np.generic:
    """The identity element of a WCR function *typed to the storage dtype*.

    Integer min/max use the ``np.iinfo`` bounds (there is no integer
    infinity), logical functions use booleans, and everything else is a
    dtype-typed zero/one so no implicit cast happens at initialization.
    """
    dt = np.dtype(dtype)
    if wcr == "sum":
        return dt.type(0)
    if wcr == "prod":
        return dt.type(1)
    if wcr in ("logical_and", "logical_or"):
        return np.bool_(wcr == "logical_and") if dt == np.bool_ \
            else dt.type(1 if wcr == "logical_and" else 0)
    if wcr in ("min", "max"):
        if dt == np.bool_:
            return np.bool_(wcr == "min")
        if np.issubdtype(dt, np.integer):
            info = np.iinfo(dt)
            return dt.type(info.max if wcr == "min" else info.min)
        return dt.type(np.inf if wcr == "min" else -np.inf)
    raise KeyError(f"unknown WCR function {wcr!r}")


def identity_like(array: np.ndarray, wcr: str) -> np.ndarray:
    """A fresh array shaped like *array*, filled with the WCR identity.

    Per-worker accumulators start from this so merging them back with
    :func:`apply_wcr` is a no-op on elements a chunk never touched.
    """
    return np.full(array.shape, wcr_identity(wcr, array.dtype),
                   dtype=array.dtype)


def apply_wcr(storage: np.ndarray, slices, value, wcr: str) -> None:
    """Combine *value* into ``storage[slices]`` using the WCR function."""
    ufunc = WCR_UFUNC[wcr]
    ufunc.at(storage, slices, value)
