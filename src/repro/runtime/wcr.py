"""Write-conflict resolution (WCR) semantics.

When multiple map iterations write the same location, the memlet's ``wcr``
function combines the incoming value with the stored one (§2.3, Fig. 2b).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["WCR_APPLY", "WCR_UFUNC", "WCR_IDENTITY", "apply_wcr"]

#: scalar combine functions
WCR_APPLY: Dict[str, Callable] = {
    "sum": lambda old, new: old + new,
    "prod": lambda old, new: old * new,
    "min": lambda old, new: min(old, new) if np.isscalar(old) else np.minimum(old, new),
    "max": lambda old, new: max(old, new) if np.isscalar(old) else np.maximum(old, new),
    "logical_and": lambda old, new: bool(old) and bool(new),
    "logical_or": lambda old, new: bool(old) or bool(new),
}

#: vectorized in-place equivalents
WCR_UFUNC: Dict[str, np.ufunc] = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "logical_and": np.logical_and,
    "logical_or": np.logical_or,
}

#: identity element per WCR function (for initializing accumulators)
WCR_IDENTITY: Dict[str, float] = {
    "sum": 0.0,
    "prod": 1.0,
    "min": float("inf"),
    "max": float("-inf"),
    "logical_and": True,
    "logical_or": False,
}


def apply_wcr(storage: np.ndarray, slices, value, wcr: str) -> None:
    """Combine *value* into ``storage[slices]`` using the WCR function."""
    ufunc = WCR_UFUNC[wcr]
    ufunc.at(storage, slices, value)
