"""Analytic device models: simulated CPU, GPU, and FPGA targets.

Each model converts a :class:`~repro.runtime.perfmodel.ProgramCost` into a
modeled runtime.  Hardware parameters default to the paper's evaluation
platforms (2x Xeon 6130, V100, Stratix 10 / Alveo U250) and live in
:mod:`repro.config` so benchmarks can vary them.

Framework *profiles* reproduce the comparators' characteristic cost
structures: NumPy pays interpreter dispatch per operation and full
intermediate-array traffic; Numba/Pythran-style compilers eliminate dispatch
but (lacking a data-centric IR) keep per-statement kernels; CuPy launches
one GPU kernel per NumPy operation.  The paper's wins come from running the
*fused* SDFG through the same machine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import Config
from ..ir.data import StorageType
from ..ir.nodes import AccessNode, MapEntry, Tasklet
from .perfmodel import ProgramCost

__all__ = [
    "CPUProfile", "CPU_PROFILES", "cpu_time",
    "GPUProfile", "GPU_PROFILES", "gpu_time",
    "FPGAProfile", "FPGA_PROFILES", "fpga_time",
    "detect_stencil_maps",
]


# ---------------------------------------------------------------------------
# CPU
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CPUProfile:
    """A CPU execution style (framework comparator)."""

    name: str
    per_op_overhead_us: float      # dispatch/launch overhead per operation
    parallel: bool                 # uses all cores
    fuses: bool                    # eliminates intermediate-array traffic
    library_efficiency: float      # fraction of peak for BLAS-library flops
    compute_efficiency: float      # fraction of peak for generated loops


CPU_PROFILES: Dict[str, CPUProfile] = {
    # CPython + NumPy: vectorized kernels, MKL, but interpreter dispatch and
    # one temporary per operation
    "numpy": CPUProfile("numpy", per_op_overhead_us=2.0, parallel=False,
                        fuses=False, library_efficiency=0.85,
                        compute_efficiency=0.35),
    # Numba: JIT-compiled statements, SVML, no interpreter overhead; no
    # cross-statement fusion
    "numba": CPUProfile("numba", per_op_overhead_us=0.15, parallel=True,
                        fuses=False, library_efficiency=0.80,
                        compute_efficiency=0.55),
    # Pythran: AOT-compiled module, expression templates fuse within a
    # statement but not across statements
    "pythran": CPUProfile("pythran", per_op_overhead_us=0.10, parallel=False,
                          fuses=False, library_efficiency=0.75,
                          compute_efficiency=0.60),
    # Polybench/C with GCC: sequential loops, no BLAS pattern matching
    "gcc": CPUProfile("gcc", per_op_overhead_us=0.02, parallel=False,
                      fuses=True, library_efficiency=0.10,
                      compute_efficiency=0.65),
    # Polybench/C with ICC -parallel: auto-parallel + MKL pattern matching;
    # auto-parallelized loop schedules trail hand-fused data-centric ones
    "icc": CPUProfile("icc", per_op_overhead_us=0.04, parallel=True,
                      fuses=True, library_efficiency=0.80,
                      compute_efficiency=0.55),
    # data-centric auto-optimized code (this work): fused, parallel, MKL
    "dace": CPUProfile("dace", per_op_overhead_us=0.05, parallel=True,
                       fuses=True, library_efficiency=0.85,
                       compute_efficiency=0.70),
}


def cpu_time(cost: ProgramCost, profile: CPUProfile) -> float:
    """Modeled CPU runtime in seconds."""
    bandwidth = Config.get("cpu.bandwidth_gbs") * 1e9
    peak = Config.get("cpu.flops_gflops") * 1e9
    if not profile.parallel:
        bandwidth /= 4.0     # single socketless stream vs full machine
        peak /= 32.0         # one of 32 cores
    traffic = cost.bytes_moved
    if not profile.fuses:
        # unfused execution round-trips every intermediate through memory
        traffic += cost.transient_bytes
    else:
        traffic -= min(cost.transient_bytes, traffic)
    compute = cost.flops / (peak * profile.compute_efficiency) if cost.flops else 0.0
    library = (cost.library_flops / (peak * profile.library_efficiency)
               if cost.library_flops else 0.0)
    memory = traffic / bandwidth
    dispatch = cost.kernels * profile.per_op_overhead_us * 1e-6
    return max(memory, compute) + library + dispatch


# ---------------------------------------------------------------------------
# GPU
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GPUProfile:
    name: str
    fuses: bool
    library_efficiency: float
    compute_efficiency: float
    kernels_per_op: float = 1.0


GPU_PROFILES: Dict[str, GPUProfile] = {
    # CuPy: one kernel + one intermediate per NumPy operation
    "cupy": GPUProfile("cupy", fuses=False, library_efficiency=0.85,
                       compute_efficiency=0.55),
    # auto-optimized data-centric code: fused kernels, cuBLAS
    "dace": GPUProfile("dace", fuses=True, library_efficiency=0.85,
                       compute_efficiency=0.70),
}


def gpu_time(cost: ProgramCost, profile: GPUProfile,
             include_transfers: bool = True) -> float:
    """Modeled GPU runtime in seconds."""
    hbm = Config.get("gpu.bandwidth_gbs") * 1e9
    pcie = Config.get("gpu.pcie_gbs") * 1e9
    peak = Config.get("gpu.flops_gflops") * 1e9
    launch = Config.get("gpu.kernel_launch_us") * 1e-6
    atomic_penalty_ns = Config.get("gpu.atomic_penalty") * 1e-9

    traffic = cost.bytes_moved
    if not profile.fuses:
        traffic += cost.transient_bytes
    else:
        traffic -= min(cost.transient_bytes, traffic)
    kernel_time = max(traffic / hbm,
                      cost.flops / (peak * profile.compute_efficiency)
                      if cost.flops else 0.0)
    library = (cost.library_flops / (peak * profile.library_efficiency)
               if cost.library_flops else 0.0)
    atomics = cost.wcr_updates * atomic_penalty_ns
    launches = cost.kernels * profile.kernels_per_op * launch
    transfers = ((cost.argument_bytes_in + cost.argument_bytes_out) / pcie
                 if include_transfers else 0.0)
    return kernel_time + library + atomics + launches + transfers


# ---------------------------------------------------------------------------
# FPGA
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FPGAProfile:
    """Vendor toolchain profile (§3.4.2: the platforms differ in language,
    accumulation hardware, and stencil pattern detection)."""

    name: str
    frequency_mhz: float
    dram_gbs: float
    hardened_float_accumulation: bool   # Intel: native fp32 accumulate
    stencil_detection: bool             # Intel toolchain detects stencils
    accumulation_latency: int = 8       # cycles of a loop-carried fp add
    pipeline_depth: int = 120


FPGA_PROFILES: Dict[str, FPGAProfile] = {
    # Bittware 520N, Intel Stratix 10, Intel OpenCL SDK
    "intel": FPGAProfile("intel", frequency_mhz=340.0, dram_gbs=68.0,
                         hardened_float_accumulation=True,
                         stencil_detection=True),
    # Xilinx Alveo U250, Vitis HLS; accumulation interleaving in the
    # generated code avoids most loop-carried stalls (§3.4.2 [24])
    "xilinx": FPGAProfile("xilinx", frequency_mhz=300.0, dram_gbs=58.0,
                          hardened_float_accumulation=False,
                          stencil_detection=False),
}


def detect_stencil_maps(sdfg) -> int:
    """Count top-level maps that read >= 3 shifted points of one container
    (stencil-like; Intel's toolchain converts these to shift registers)."""
    count = 0
    for state in sdfg.states():
        scope = state.scope_dict()
        for node in state.nodes():
            if not isinstance(node, MapEntry) or scope.get(node) is not None:
                continue
            reads: Dict[str, set] = {}
            for edge in state.out_edges(node):
                if edge.memlet.is_empty() or edge.memlet.data is None:
                    continue
                reads.setdefault(edge.memlet.data, set()).add(
                    str(edge.memlet.subset))
            if any(len(subsets) >= 3 for subsets in reads.values()):
                count += 1
    return count


def fpga_time(cost: ProgramCost, profile: FPGAProfile, sdfg=None,
              interleaved_accumulation: bool = True) -> float:
    """Modeled FPGA kernel runtime in seconds (excludes synthesis)."""
    freq = profile.frequency_mhz * 1e6
    dram = profile.dram_gbs * 1e9

    # pipeline: one element per cycle per top-level pipeline at II=1
    cycles = cost.map_iterations + cost.kernels * profile.pipeline_depth
    # accumulation: loop-carried dependency unless hardened or interleaved
    if cost.wcr_updates:
        if profile.hardened_float_accumulation:
            pass  # II stays 1
        elif interleaved_accumulation:
            # interleaving across registers leaves a small reduction tail
            cycles += cost.wcr_updates // 8 + profile.accumulation_latency
        else:
            cycles += cost.wcr_updates * (profile.accumulation_latency - 1)

    dram_bytes = cost.bytes_moved - cost.stream_bytes
    stencil_maps = detect_stencil_maps(sdfg) if sdfg is not None else 0
    if profile.stencil_detection and stencil_maps:
        # shift registers turn the redundant neighbor reads into on-chip
        # reuse: off-chip traffic drops to roughly one read per element
        dram_bytes = int(dram_bytes / 2.5)
    else:
        # no stencil detection: redundant reads hit DRAM and the pipeline
        # stalls on memory
        pass
    return max(cycles / freq, dram_bytes / dram)
