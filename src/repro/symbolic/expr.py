"""Minimal symbolic integer algebra for the SDFG IR.

The data-centric IR manipulates array shapes, memlet subsets, and map ranges
symbolically (e.g. ``B[1:N-1]``).  This module provides the small expression
algebra those manipulations need:

* immutable expression trees over integer constants and named symbols,
* canonicalization of sums and products (term collection, constant folding),
* ``floor``-division, modulo, ``Min``/``Max`` as partially-evaluated atoms,
* substitution and full evaluation to Python ints,
* *decidable-when-possible* ordering queries (``definitely_le`` and friends)
  under per-symbol nonnegativity assumptions.

The engine intentionally supports only what subset analysis requires; it is
not a general CAS.  All coefficients are Python ints (exact arithmetic).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

ExprLike = Union["Expr", int]

__all__ = [
    "Expr",
    "Integer",
    "Symbol",
    "Add",
    "Mul",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "sympify",
    "simplify",
]


class Expr:
    """Base class of all symbolic expressions.

    Expressions are immutable and hashable; arithmetic operators build new
    canonicalized expressions.
    """

    __slots__ = ()

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return _add(self, sympify(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return _add(sympify(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return _add(self, _mul(Integer(-1), sympify(other)))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return _add(sympify(other), _mul(Integer(-1), self))

    def __mul__(self, other: ExprLike) -> "Expr":
        return _mul(self, sympify(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return _mul(sympify(other), self)

    def __neg__(self) -> "Expr":
        return _mul(Integer(-1), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(self, sympify(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv.make(sympify(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod.make(self, sympify(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return Mod.make(sympify(other), self)

    def __pow__(self, other: int) -> "Expr":
        if not isinstance(other, int) or other < 0:
            raise ValueError("only nonnegative integer powers are supported")
        result: Expr = Integer(1)
        for _ in range(other):
            result = _mul(result, self)
        return result

    # -- equality is structural -----------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Integer(other)
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> tuple:
        raise NotImplementedError

    # -- queries ----------------------------------------------------------
    @property
    def free_symbols(self) -> frozenset:
        """All :class:`Symbol` instances appearing in this expression."""
        return frozenset()

    def subs(self, env: Mapping[Union[str, "Symbol"], ExprLike]) -> "Expr":
        """Substitute symbols by name or identity; returns a new expression."""
        raise NotImplementedError

    def evaluate(self, env: Optional[Mapping[str, int]] = None) -> int:
        """Fully evaluate to a Python int; raises KeyError on free symbols."""
        raise NotImplementedError

    @property
    def is_constant(self) -> bool:
        return not self.free_symbols

    def is_nonnegative(self) -> Optional[bool]:
        """True/False if decidable under symbol assumptions, else None."""
        return _sign_query(self, strict=False)

    def is_positive(self) -> Optional[bool]:
        return _sign_query(self, strict=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self})"

    # expressions are immutable: copying returns the same object
    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo) -> "Expr":
        return self


class Integer(Expr):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, (int,)) or isinstance(value, bool):
            raise TypeError(f"Integer requires an int, got {type(value).__name__}")
        object.__setattr__(self, "value", int(value))

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("Integer is immutable")

    def _key(self) -> tuple:
        return ("int", self.value)

    def subs(self, env) -> "Expr":
        return self

    def evaluate(self, env=None) -> int:
        return self.value

    def __str__(self) -> str:
        return str(self.value)

    def __int__(self) -> int:
        return self.value


class Symbol(Expr):
    """A named integer symbol, by default assumed nonnegative.

    Symbolic array sizes in the paper (``N = dace.symbol('N')``) denote
    dynamic-but-fixed dimensions, so nonnegativity is the natural default;
    ``positive=True`` additionally assumes the symbol is at least 1.
    """

    __slots__ = ("name", "nonnegative", "positive")

    def __init__(self, name: str, nonnegative: bool = True, positive: bool = False):
        if not name or not isinstance(name, str):
            raise ValueError("Symbol requires a non-empty name")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "nonnegative", bool(nonnegative or positive))
        object.__setattr__(self, "positive", bool(positive))

    def __setattr__(self, name, value):
        raise AttributeError("Symbol is immutable")

    def _key(self) -> tuple:
        return ("sym", self.name)

    @property
    def free_symbols(self) -> frozenset:
        return frozenset((self,))

    def subs(self, env) -> "Expr":
        for key in (self, self.name):
            try:
                if key in env:
                    return sympify(env[key])
            except TypeError:
                pass
        return self

    def evaluate(self, env=None) -> int:
        if env is None or self.name not in env:
            raise KeyError(f"no value bound for symbol {self.name!r}")
        return int(env[self.name])

    def __str__(self) -> str:
        return self.name


def sympify(value: ExprLike) -> Expr:
    """Convert ints (and numpy integer scalars) to :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("cannot sympify a bool")
    if isinstance(value, int):
        return Integer(value)
    # Accept numpy integer scalars without importing numpy here.
    if hasattr(value, "__index__"):
        return Integer(value.__index__())
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


# ---------------------------------------------------------------------------
# Canonical sums and products
# ---------------------------------------------------------------------------

class Add(Expr):
    """Canonical sum: constant + sum of (coefficient * term) entries.

    ``terms`` maps a non-Add, non-Integer expression to its integer
    coefficient.  Construction goes through :func:`_add`.
    """

    __slots__ = ("constant", "terms", "_ordered")

    def __init__(self, constant: int, terms: Mapping[Expr, int]):
        object.__setattr__(self, "constant", int(constant))
        clean = {t: int(c) for t, c in terms.items() if c != 0}
        object.__setattr__(self, "terms", clean)
        ordered = tuple(sorted(clean.items(), key=lambda kv: str(kv[0])))
        object.__setattr__(self, "_ordered", ordered)

    def __setattr__(self, name, value):
        raise AttributeError("Add is immutable")

    def _key(self) -> tuple:
        return ("add", self.constant, tuple((t._key(), c) for t, c in self._ordered))

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for term in self.terms:
            out |= term.free_symbols
        return out

    def subs(self, env) -> Expr:
        result: Expr = Integer(self.constant)
        for term, coeff in self._ordered:
            result = result + term.subs(env) * coeff
        return result

    def evaluate(self, env=None) -> int:
        total = self.constant
        for term, coeff in self._ordered:
            total += coeff * term.evaluate(env)
        return total

    def __str__(self) -> str:
        parts = []
        if self.constant != 0 or not self.terms:
            parts.append(str(self.constant))
        for term, coeff in self._ordered:
            if coeff == 1:
                parts.append(str(term))
            elif coeff == -1:
                parts.append(f"-{_paren(term)}")
            else:
                parts.append(f"{coeff}*{_paren(term)}")
        out = " + ".join(parts)
        return out.replace("+ -", "- ")


class Mul(Expr):
    """Canonical product: integer coefficient * product of base**exp factors."""

    __slots__ = ("coeff", "factors", "_ordered")

    def __init__(self, coeff: int, factors: Mapping[Expr, int]):
        object.__setattr__(self, "coeff", int(coeff))
        clean = {b: int(e) for b, e in factors.items() if e != 0}
        object.__setattr__(self, "factors", clean)
        ordered = tuple(sorted(clean.items(), key=lambda kv: str(kv[0])))
        object.__setattr__(self, "_ordered", ordered)

    def __setattr__(self, name, value):
        raise AttributeError("Mul is immutable")

    def _key(self) -> tuple:
        return ("mul", self.coeff, tuple((b._key(), e) for b, e in self._ordered))

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for base in self.factors:
            out |= base.free_symbols
        return out

    def subs(self, env) -> Expr:
        result: Expr = Integer(self.coeff)
        for base, exp in self._ordered:
            result = result * (base.subs(env) ** exp)
        return result

    def evaluate(self, env=None) -> int:
        total = self.coeff
        for base, exp in self._ordered:
            total *= base.evaluate(env) ** exp
        return total

    def __str__(self) -> str:
        parts = []
        if self.coeff != 1 or not self.factors:
            parts.append(str(self.coeff))
        for base, exp in self._ordered:
            parts.append(_paren(base) if exp == 1 else f"{_paren(base)}**{exp}")
        return "*".join(parts)


def _paren(expr: Expr) -> str:
    text = str(expr)
    if isinstance(expr, (Add,)) or (isinstance(expr, Mul) and len(expr.factors) > 0
                                    and (expr.coeff != 1 or len(expr.factors) > 1)):
        return f"({text})"
    return text


def _as_terms(expr: Expr) -> Tuple[int, Dict[Expr, int]]:
    """Decompose into (constant, {term: coeff}) for sum collection."""
    if isinstance(expr, Integer):
        return expr.value, {}
    if isinstance(expr, Add):
        return expr.constant, dict(expr.terms)
    if isinstance(expr, Mul):
        if not expr.factors:
            return expr.coeff, {}
        stripped = Mul(1, expr.factors)
        inner = _collapse_mul(stripped)
        return 0, {inner: expr.coeff}
    return 0, {expr: 1}


def _collapse_mul(m: Mul) -> Expr:
    """Reduce a coefficient-1 Mul with a single degree-1 factor to that factor."""
    if m.coeff == 1 and len(m.factors) == 1:
        (base, exp), = m.factors.items()
        if exp == 1:
            return base
    if not m.factors:
        return Integer(m.coeff)
    return m


def _add(a: Expr, b: Expr) -> Expr:
    const_a, terms_a = _as_terms(a)
    const_b, terms_b = _as_terms(b)
    constant = const_a + const_b
    terms = dict(terms_a)
    for term, coeff in terms_b.items():
        terms[term] = terms.get(term, 0) + coeff
    terms = {t: c for t, c in terms.items() if c != 0}
    if not terms:
        return Integer(constant)
    if constant == 0 and len(terms) == 1:
        (term, coeff), = terms.items()
        if coeff == 1:
            return term
        return _mul(Integer(coeff), term)
    return Add(constant, terms)


def _as_factors(expr: Expr) -> Tuple[int, Dict[Expr, int]]:
    """Decompose into (coefficient, {base: exponent}) for product collection."""
    if isinstance(expr, Integer):
        return expr.value, {}
    if isinstance(expr, Mul):
        return expr.coeff, dict(expr.factors)
    return 1, {expr: 1}


def _mul(a: Expr, b: Expr) -> Expr:
    # Distribute products over sums so polynomials stay canonical:
    # (x + 1) * 2 -> 2x + 2; (x + 1) * (y) -> x*y + y.
    if isinstance(a, Add) and isinstance(b, (Integer, Symbol, Mul, Add)):
        result: Expr = Integer(0)
        for part in _iter_addends(a):
            result = _add(result, _mul(part, b))
        return result
    if isinstance(b, Add):
        return _mul(b, a)
    coeff_a, factors_a = _as_factors(a)
    coeff_b, factors_b = _as_factors(b)
    coeff = coeff_a * coeff_b
    if coeff == 0:
        return Integer(0)
    factors = dict(factors_a)
    for base, exp in factors_b.items():
        factors[base] = factors.get(base, 0) + exp
    factors = {base: exp for base, exp in factors.items() if exp != 0}
    if not factors:
        return Integer(coeff)
    return _collapse_mul(Mul(coeff, factors))


def _iter_addends(expr: Expr) -> Iterable[Expr]:
    if isinstance(expr, Add):
        if expr.constant != 0:
            yield Integer(expr.constant)
        for term, coeff in expr.terms.items():
            yield term if coeff == 1 else _mul(Integer(coeff), term)
    else:
        yield expr


# ---------------------------------------------------------------------------
# Opaque atoms with partial evaluation
# ---------------------------------------------------------------------------

class _BinaryAtom(Expr):
    """Base for floor-division and modulo atoms."""

    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left: Expr, right: Expr):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _key(self) -> tuple:
        return (type(self).__name__, self.left._key(), self.right._key())

    @property
    def free_symbols(self) -> frozenset:
        return self.left.free_symbols | self.right.free_symbols

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"


class FloorDiv(_BinaryAtom):
    """``left // right`` kept opaque unless it folds to a constant."""

    __slots__ = ()
    _symbol = "//"

    @staticmethod
    def make(left: Expr, right: Expr) -> Expr:
        if isinstance(right, Integer):
            if right.value == 0:
                raise ZeroDivisionError("symbolic floor division by zero")
            if right.value == 1:
                return left
            if isinstance(left, Integer):
                return Integer(left.value // right.value)
            # Exact division of a polynomial by a constant, when all
            # coefficients divide evenly, stays polynomial.
            divided = _try_exact_div(left, right.value)
            if divided is not None:
                return divided
        if left == right:
            return Integer(1)
        if isinstance(left, Integer) and left.value == 0:
            return Integer(0)
        return FloorDiv(left, right)

    def subs(self, env) -> Expr:
        return FloorDiv.make(self.left.subs(env), self.right.subs(env))

    def evaluate(self, env=None) -> int:
        return self.left.evaluate(env) // self.right.evaluate(env)


def _try_exact_div(expr: Expr, divisor: int) -> Optional[Expr]:
    const, terms = _as_terms(expr)
    if const % divisor != 0:
        return None
    if any(coeff % divisor != 0 for coeff in terms.values()):
        return None
    result: Expr = Integer(const // divisor)
    for term, coeff in terms.items():
        result = result + term * (coeff // divisor)
    return result


class Mod(_BinaryAtom):
    """``left % right`` kept opaque unless it folds to a constant."""

    __slots__ = ()
    _symbol = "%"

    @staticmethod
    def make(left: Expr, right: Expr) -> Expr:
        if isinstance(right, Integer):
            if right.value == 0:
                raise ZeroDivisionError("symbolic modulo by zero")
            if right.value == 1:
                return Integer(0)
            if isinstance(left, Integer):
                return Integer(left.value % right.value)
        if left == right:
            return Integer(0)
        if isinstance(left, Integer) and left.value == 0:
            return Integer(0)
        return Mod(left, right)

    def subs(self, env) -> Expr:
        return Mod.make(self.left.subs(env), self.right.subs(env))

    def evaluate(self, env=None) -> int:
        return self.left.evaluate(env) % self.right.evaluate(env)


class _MinMax(Expr):
    """Variadic min/max atom with constant folding and duplicate removal."""

    __slots__ = ("args",)
    _pick = staticmethod(min)
    _name = "MinMax"

    def __init__(self, args: Tuple[Expr, ...]):
        object.__setattr__(self, "args", args)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    @classmethod
    def make(cls, *args: ExprLike) -> Expr:
        exprs = [sympify(a) for a in args]
        if not exprs:
            raise ValueError(f"{cls._name} requires at least one argument")
        flat = []
        for e in exprs:
            if isinstance(e, cls):
                flat.extend(e.args)
            else:
                flat.append(e)
        constants = [e.value for e in flat if isinstance(e, Integer)]
        others = []
        for e in flat:
            if not isinstance(e, Integer) and e not in others:
                others.append(e)
        if constants:
            folded = cls._pick(constants)
            if not others:
                return Integer(folded)
            others.append(Integer(folded))
        if len(others) == 1:
            return others[0]
        ordered = tuple(sorted(others, key=str))
        return cls(ordered)

    def _key(self) -> tuple:
        return (type(self).__name__, tuple(a._key() for a in self.args))

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.free_symbols
        return out

    def subs(self, env) -> Expr:
        return type(self).make(*(a.subs(env) for a in self.args))

    def evaluate(self, env=None) -> int:
        return self._pick(a.evaluate(env) for a in self.args)

    def __str__(self) -> str:
        return f"{self._name}({', '.join(str(a) for a in self.args)})"


class Min(_MinMax):
    __slots__ = ()
    _pick = staticmethod(min)
    _name = "Min"


class Max(_MinMax):
    __slots__ = ()
    _pick = staticmethod(max)
    _name = "Max"


# ---------------------------------------------------------------------------
# Sign and ordering queries
# ---------------------------------------------------------------------------

def _atom_sign(expr: Expr, strict: bool) -> Optional[bool]:
    if isinstance(expr, Symbol):
        if strict:
            return True if expr.positive else None
        return True if expr.nonnegative else None
    if isinstance(expr, Integer):
        return expr.value > 0 if strict else expr.value >= 0
    if isinstance(expr, (Min, Max)):
        signs = [_sign_query(a, strict) for a in expr.args]
        if isinstance(expr, Min) and all(s is True for s in signs):
            return True
        if isinstance(expr, Max) and any(s is True for s in signs):
            return True
        return None
    if isinstance(expr, FloorDiv):
        if _sign_query(expr.left, False) and _sign_query(expr.right, True):
            # floor(a/b) >= 0 for a >= 0, b > 0 — never strictly positive
            # without magnitude information.
            return True if not strict else None
        return None
    if isinstance(expr, Mod):
        if _sign_query(expr.right, True):
            return True if not strict else None
        return None
    return None


def _sign_query(expr: Expr, strict: bool) -> Optional[bool]:
    """Decide expr > 0 (strict) or expr >= 0; None when unknown."""
    const, terms = _as_terms(expr)
    if not terms:
        return const > 0 if strict else const >= 0
    # Every term must be provably nonnegative for a sound "yes".
    all_nonneg = True
    any_negative_coeff = False
    for term, coeff in terms.items():
        term_nonneg = _product_nonneg(term)
        if coeff > 0 and term_nonneg:
            continue
        if coeff < 0 and term_nonneg:
            any_negative_coeff = True
            all_nonneg = False
            continue
        all_nonneg = False
    if all_nonneg:
        if const > 0:
            return True
        if const == 0:
            if not strict:
                return True
            # strict: need at least one strictly positive term
            for term, coeff in terms.items():
                if coeff > 0 and _product_positive(term):
                    return True
            return None
        # const < 0 with nonnegative terms: each provably *positive* term is
        # an integer >= 1, so expr >= sum(positive coeffs) + const.
        floor = const
        for term, coeff in terms.items():
            if coeff > 0 and _product_positive(term):
                floor += coeff
        if floor > 0 or (floor == 0 and not strict):
            return True
        return None
    # All terms nonpositive and constant nonpositive -> definitely not positive
    if any_negative_coeff:
        all_nonpos = const <= 0
        for term, coeff in terms.items():
            if not (coeff < 0 and _product_nonneg(term)):
                all_nonpos = False
                break
        if all_nonpos:
            if strict:
                return False
            # expr <= 0: expr >= 0 only possible if expr == 0
            if const < 0:
                return False
            if const == 0 and all(
                coeff < 0 and _product_positive(term) for term, coeff in terms.items()
            ):
                return False
            return None
    return None


def _product_nonneg(term: Expr) -> bool:
    if isinstance(term, Mul):
        if term.coeff < 0:
            return False
        return all(
            _atom_sign(base, False) is True or exp % 2 == 0
            for base, exp in term.factors.items()
        )
    return _atom_sign(term, False) is True


def _product_positive(term: Expr) -> bool:
    if isinstance(term, Mul):
        if term.coeff <= 0:
            return False
        return all(_atom_sign(base, True) is True for base, exp in term.factors.items())
    return _atom_sign(term, True) is True


def simplify(expr: ExprLike) -> Expr:
    """Return the canonical form of *expr* (construction already canonicalizes;
    this re-runs it, folding any newly-constant atoms)."""
    expr = sympify(expr)
    return expr.subs({})


def definitely_le(a: ExprLike, b: ExprLike) -> Optional[bool]:
    """True if a <= b always holds, False if a > b always holds, else None."""
    diff = sympify(b) - sympify(a)
    nonneg = diff.is_nonnegative()
    if nonneg is True:
        return True
    # a > b  <=>  b - a <= -1  <=>  a - b - 1 >= 0
    opposite = (sympify(a) - sympify(b) - 1).is_nonnegative()
    if opposite is True:
        return False
    return None


def definitely_lt(a: ExprLike, b: ExprLike) -> Optional[bool]:
    """True if a < b always holds, False if a >= b always holds, else None."""
    strict = (sympify(b) - sympify(a)).is_positive()
    if strict is True:
        return True
    if (sympify(a) - sympify(b)).is_nonnegative() is True:
        return False
    return None


def definitely_eq(a: ExprLike, b: ExprLike) -> Optional[bool]:
    """True if a == b structurally after canonicalization, False if provably
    different, else None."""
    diff = sympify(a) - sympify(b)
    if isinstance(diff, Integer):
        return diff.value == 0
    if diff.is_positive() is True or (-diff).is_positive() is True:
        return False
    return None
