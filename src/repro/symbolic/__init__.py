"""Symbolic subsystem: expressions, symbols, and integer range sets."""

from .expr import (
    Add,
    Expr,
    FloorDiv,
    Integer,
    Max,
    Min,
    Mod,
    Mul,
    Symbol,
    definitely_eq,
    definitely_le,
    definitely_lt,
    simplify,
    sympify,
)
from .sets import Range

__all__ = [
    "Add",
    "Expr",
    "FloorDiv",
    "Integer",
    "Max",
    "Min",
    "Mod",
    "Mul",
    "Range",
    "Symbol",
    "definitely_eq",
    "definitely_le",
    "definitely_lt",
    "simplify",
    "sympify",
]
