"""Symbolic integer range sets (memlet subsets and map ranges).

A :class:`Range` is an N-dimensional box of integer points, stored per
dimension as an inclusive ``(begin, end, step)`` triple of symbolic
expressions — the same convention DaCe uses for memlet subsets.  The set
operations needed by the dataflow transformations are provided with
*three-valued* results: ``True`` / ``False`` when the symbolic engine can
decide, ``None`` when it cannot (transformations must then be conservative).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .expr import (
    Expr,
    Integer,
    Max,
    Min,
    definitely_eq,
    definitely_le,
    definitely_lt,
    sympify,
)

DimTriple = Tuple[Expr, Expr, Expr]

__all__ = ["Range"]


class Range:
    """An N-dimensional symbolic box with inclusive bounds and strides."""

    __slots__ = ("dims",)

    def __init__(self, dims: Iterable[Union[DimTriple, Tuple]]):
        normalized: List[DimTriple] = []
        for dim in dims:
            if len(dim) == 2:
                begin, end = dim
                step = 1
            elif len(dim) == 3:
                begin, end, step = dim
            else:
                raise ValueError(f"range dimension must be 2- or 3-tuple, got {dim!r}")
            normalized.append((sympify(begin), sympify(end), sympify(step)))
        object.__setattr__(self, "dims", tuple(normalized))

    def __setattr__(self, name, value):
        raise AttributeError("Range is immutable")

    def __copy__(self) -> "Range":
        return self

    def __deepcopy__(self, memo) -> "Range":
        return self

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_shape(cls, shape: Sequence) -> "Range":
        """Full range covering an array of the given shape."""
        return cls([(0, sympify(s) - 1, 1) for s in shape])

    @classmethod
    def from_indices(cls, indices: Sequence) -> "Range":
        """Degenerate range for a single point access ``A[i, j]``."""
        return cls([(i, i, 1) for i in indices])

    @classmethod
    def from_string(cls, text: str, symbols: Optional[Mapping[str, Expr]] = None) -> "Range":
        """Parse ``"0:N, i, 2:M:2"`` style subsets (used in tests/serialization)."""
        import ast as _ast

        symbols = dict(symbols or {})

        def parse_expr(snippet: str) -> Expr:
            tree = _ast.parse(snippet.strip(), mode="eval").body
            return _eval_ast(tree, symbols)

        dims: List[DimTriple] = []
        for dim_text in _split_top_level(text):
            pieces = dim_text.split(":")
            if len(pieces) == 1:
                point = parse_expr(pieces[0])
                dims.append((point, point, Integer(1)))
            elif len(pieces) == 2:
                begin = parse_expr(pieces[0])
                end = parse_expr(pieces[1]) - 1
                dims.append((begin, end, Integer(1)))
            elif len(pieces) == 3:
                begin = parse_expr(pieces[0])
                end = parse_expr(pieces[1]) - 1
                step = parse_expr(pieces[2])
                dims.append((begin, end, step))
            else:
                raise ValueError(f"cannot parse range dimension {dim_text!r}")
        return cls(dims)

    # -- basic queries -----------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.dims)

    def size(self) -> Tuple[Expr, ...]:
        """Number of points per dimension: (end - begin) // step + 1."""
        out = []
        for begin, end, step in self.dims:
            extent = end - begin
            if step == Integer(1):
                out.append(extent + 1)
            else:
                out.append(extent // step + 1)
        return tuple(out)

    def volume(self) -> Expr:
        total: Expr = Integer(1)
        for s in self.size():
            total = total * s
        return total

    def num_elements(self, env: Optional[Mapping[str, int]] = None) -> int:
        return self.volume().evaluate(env)

    def min_element(self) -> Tuple[Expr, ...]:
        return tuple(begin for begin, _, _ in self.dims)

    def max_element(self) -> Tuple[Expr, ...]:
        return tuple(end for _, end, _ in self.dims)

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for begin, end, step in self.dims:
            out |= begin.free_symbols | end.free_symbols | step.free_symbols
        return out

    def is_point(self) -> Optional[bool]:
        """True when every dimension has a single element."""
        results = [definitely_eq(b, e) for b, e, _ in self.dims]
        if all(r is True for r in results):
            return True
        if any(r is False for r in results):
            return False
        return None

    # -- set operations ----------------------------------------------------
    def covers(self, other: "Range") -> Optional[bool]:
        """Three-valued: does self contain every point of other?

        Sound for unit strides; with non-unit strides the answer is only
        ``True`` when the triples are structurally identical.
        """
        if self.ndim != other.ndim:
            return None
        verdict: Optional[bool] = True
        for (b1, e1, s1), (b2, e2, s2) in zip(self.dims, other.dims):
            if (b1, e1, s1) == (b2, e2, s2):
                continue
            if not (s1 == Integer(1) and s2 == Integer(1)):
                return None
            low = definitely_le(b1, b2)
            high = definitely_le(e2, e1)
            if low is True and high is True:
                continue
            if low is False or high is False:
                # other definitely starts before self or ends after it
                return False
            verdict = None
        return verdict

    def intersects(self, other: "Range") -> Optional[bool]:
        """Three-valued: do the boxes share at least one point (ignoring
        stride phase, i.e. an over-approximation suitable for dependency
        checks)?"""
        if self.ndim != other.ndim:
            return None
        verdict: Optional[bool] = True
        for (b1, e1, _), (b2, e2, _) in zip(self.dims, other.dims):
            # Disjoint along this dim <=> e1 < b2 or e2 < b1
            lt1 = definitely_lt(e1, b2)
            lt2 = definitely_lt(e2, b1)
            if lt1 is True or lt2 is True:
                return False
            if lt1 is None or lt2 is None:
                verdict = None
        return verdict

    def intersection(self, other: "Range") -> Optional["Range"]:
        """Symbolic box intersection; None when provably empty."""
        if self.ndim != other.ndim:
            raise ValueError("dimension mismatch in Range.intersection")
        if self.intersects(other) is False:
            return None
        dims = []
        for (b1, e1, s1), (b2, e2, s2) in zip(self.dims, other.dims):
            step = s1 if definitely_le(s2, s1) is True else s2
            dims.append((Max.make(b1, b2), Min.make(e1, e2), step))
        return Range(dims)

    def union_hull(self, other: "Range") -> "Range":
        """Smallest box containing both (used for memlet propagation)."""
        if self.ndim != other.ndim:
            raise ValueError("dimension mismatch in Range.union_hull")
        dims = []
        for (b1, e1, s1), (b2, e2, s2) in zip(self.dims, other.dims):
            step = s1 if s1 == s2 else Integer(1)
            dims.append((Min.make(b1, b2), Max.make(e1, e2), step))
        return Range(dims)

    # -- transformations ---------------------------------------------------
    def offset_by(self, origin: Sequence, negative: bool = True) -> "Range":
        """Shift by -origin (default) or +origin per dimension."""
        if len(origin) != self.ndim:
            raise ValueError("origin length mismatch in Range.offset_by")
        dims = []
        for (begin, end, step), off in zip(self.dims, origin):
            off = sympify(off)
            if negative:
                dims.append((begin - off, end - off, step))
            else:
                dims.append((begin + off, end + off, step))
        return Range(dims)

    def compose(self, inner: "Range") -> "Range":
        """Subset-of-subset: coordinates of *inner* are relative to self.

        Unit-stride outer dimensions compose exactly; a strided outer
        dimension composes by scaling the inner offsets.
        """
        if inner.ndim != self.ndim:
            raise ValueError("dimension mismatch in Range.compose")
        dims = []
        for (ob, _oe, os_), (ib, ie, is_) in zip(self.dims, inner.dims):
            dims.append((ob + ib * os_, ob + ie * os_, is_ * os_))
        return Range(dims)

    def subs(self, env) -> "Range":
        return Range([(b.subs(env), e.subs(env), s.subs(env)) for b, e, s in self.dims])

    def pop_dims(self, indices: Sequence[int]) -> "Range":
        keep = [d for i, d in enumerate(self.dims) if i not in set(indices)]
        return Range(keep)

    def to_slices(self, env: Optional[Mapping[str, int]] = None) -> Tuple[slice, ...]:
        """Concrete NumPy slices for this subset (requires all symbols bound).

        Bounds are inclusive domain coordinates: an end before the begin
        (``0:i`` at ``i == 0`` stores end ``-1``) is an *empty* range, and
        the exclusive stop must not cross zero into NumPy's from-the-end
        territory — ascending ``e+1`` for ``e <= -2`` and descending
        ``e-1`` for ``e == 0`` would both silently select wrong elements.
        """
        out = []
        for begin, end, step in self.dims:
            b = begin.evaluate(env)
            e = end.evaluate(env)
            s = step.evaluate(env)
            if s > 0:
                out.append(slice(b, e + 1, s) if e >= b else slice(0, 0, 1))
            elif e > b:
                out.append(slice(0, 0, 1))
            else:
                out.append(slice(b, None if e == 0 else e - 1, s))
        return tuple(out)

    # -- protocol ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return self.dims == other.dims

    def __hash__(self) -> int:
        return hash(self.dims)

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return self.ndim

    def __getitem__(self, index: int) -> DimTriple:
        return self.dims[index]

    def __str__(self) -> str:
        parts = []
        for begin, end, step in self.dims:
            if definitely_eq(begin, end) is True:
                parts.append(str(begin))
            elif step == Integer(1):
                parts.append(f"{begin}:{end + 1}")
            else:
                parts.append(f"{begin}:{end + 1}:{step}")
        return ", ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Range[{self}]"


def _split_top_level(text: str) -> List[str]:
    """Split on commas not nested in parentheses/brackets."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def _eval_ast(node, symbols: Mapping[str, Expr]) -> Expr:
    import ast as _ast

    if isinstance(node, _ast.Constant):
        return sympify(node.value)
    if isinstance(node, _ast.Name):
        from .expr import Symbol

        if node.id in symbols:
            return symbols[node.id]
        return Symbol(node.id)
    if isinstance(node, _ast.BinOp):
        left = _eval_ast(node.left, symbols)
        right = _eval_ast(node.right, symbols)
        if isinstance(node.op, _ast.Add):
            return left + right
        if isinstance(node.op, _ast.Sub):
            return left - right
        if isinstance(node.op, _ast.Mult):
            return left * right
        if isinstance(node.op, _ast.FloorDiv):
            return left // right
        if isinstance(node.op, _ast.Mod):
            return left % right
        raise ValueError(f"unsupported operator in range expression: {node.op}")
    if isinstance(node, _ast.UnaryOp) and isinstance(node.op, _ast.USub):
        return -_eval_ast(node.operand, symbols)
    raise ValueError(f"unsupported syntax in range expression: {_ast.dump(node)}")
