"""The SDFG intermediate representation."""

from .data import AllocationLifetime, Array, Data, Scalar, StorageType, Stream, View
from .dot import sdfg_to_dot
from .interstate import InterstateEdge
from .memlet import Memlet
from .nodes import (
    AccessNode,
    CodeNode,
    LibraryNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    ScheduleType,
    Tasklet,
    make_map_scope,
)
from .sdfg import SDFG
from .state import Edge, SDFGState
from .validation import (InvalidSDFGError, collect_validation_errors,
                         validate_sdfg, validate_state)

__all__ = [
    "SDFG",
    "SDFGState",
    "Edge",
    "Memlet",
    "InterstateEdge",
    "AccessNode",
    "CodeNode",
    "Tasklet",
    "Map",
    "MapEntry",
    "MapExit",
    "NestedSDFG",
    "Node",
    "LibraryNode",
    "ScheduleType",
    "StorageType",
    "AllocationLifetime",
    "Array",
    "Data",
    "Scalar",
    "Stream",
    "View",
    "make_map_scope",
    "InvalidSDFGError",
    "collect_validation_errors",
    "validate_sdfg",
    "validate_state",
    "sdfg_to_dot",
]
