"""The Stateful Dataflow multiGraph (SDFG).

An SDFG is a state machine whose states are dataflow multigraphs.  It owns
the data-descriptor dictionary, the free symbols, and the interstate control
flow, and is the unit of validation, transformation, compilation, and
execution.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from ..dtypes import typeclass
from ..symbolic import Expr, Symbol, sympify
from .data import Array, Data, Scalar, Stream, View, StorageType
from .interstate import InterstateEdge
from .nodes import AccessNode, LibraryNode, NestedSDFG
from .state import SDFGState

__all__ = ["SDFG", "InterstateEdgeView"]


class InterstateEdgeView:
    """A (src_state, edge, dst_state) triple."""

    __slots__ = ("src", "dst", "data", "key")

    def __init__(self, src: SDFGState, dst: SDFGState, data: InterstateEdge, key: int):
        self.src = src
        self.dst = dst
        self.data = data
        self.key = key

    def __repr__(self) -> str:
        return f"{self.src.label} -> {self.dst.label} [{self.data!r}]"


class SDFG:
    """A named stateful dataflow multigraph."""

    def __init__(self, name: str):
        self.name = name
        self.arrays: Dict[str, Data] = {}
        self.symbols: Dict[str, Symbol] = {}
        #: constants available to tasklets (e.g. numpy module functions)
        self.constants: Dict[str, object] = {}
        self._graph = nx.MultiDiGraph()
        self.start_state: Optional[SDFGState] = None
        #: ordered argument names for calling convention (non-transients + symbols)
        self.arg_names: List[str] = []
        self.parent: Optional[SDFGState] = None  # state containing us, if nested
        self._state_counter = 0

    # -- data descriptors ----------------------------------------------------
    def _check_name(self, name: str) -> None:
        if name in self.arrays:
            raise NameError(f"container {name!r} already exists in SDFG {self.name!r}")
        if not name.isidentifier():
            raise NameError(f"container name {name!r} is not a valid identifier")

    def add_array(self, name: str, shape: Sequence, dtype: typeclass,
                  transient: bool = False,
                  storage: StorageType = StorageType.Default) -> Array:
        self._check_name(name)
        desc = Array(dtype, shape, transient=transient, storage=storage)
        self.arrays[name] = desc
        self._register_shape_symbols(desc)
        return desc

    def add_transient(self, name: str, shape: Sequence, dtype: typeclass,
                      storage: StorageType = StorageType.Default) -> Array:
        return self.add_array(name, shape, dtype, transient=True, storage=storage)

    def add_scalar(self, name: str, dtype: typeclass, transient: bool = False) -> Scalar:
        self._check_name(name)
        desc = Scalar(dtype, transient=transient)
        self.arrays[name] = desc
        return desc

    def add_stream(self, name: str, dtype: typeclass, buffer_size: int = 0,
                   shape: Sequence = (1,)) -> Stream:
        self._check_name(name)
        desc = Stream(dtype, shape=shape, buffer_size=buffer_size, transient=True)
        self.arrays[name] = desc
        return desc

    def add_view(self, name: str, shape: Sequence, dtype: typeclass) -> View:
        self._check_name(name)
        desc = View(dtype, shape, transient=True)
        self.arrays[name] = desc
        self._register_shape_symbols(desc)
        return desc

    def add_datadesc(self, name: str, desc: Data) -> Data:
        self._check_name(name)
        self.arrays[name] = desc
        self._register_shape_symbols(desc)
        return desc

    def remove_data(self, name: str) -> None:
        for state in self.states():
            for node in state.data_nodes():
                if node.data == name:
                    raise ValueError(
                        f"cannot remove {name!r}: still accessed in state {state.label!r}")
        del self.arrays[name]

    def _register_shape_symbols(self, desc: Data) -> None:
        for sym in desc.free_symbols:
            self.symbols.setdefault(sym.name, sym)

    def add_symbol(self, name: str, positive: bool = True) -> Symbol:
        sym = self.symbols.get(name)
        if sym is None:
            sym = Symbol(name, nonnegative=True, positive=positive)
            self.symbols[name] = sym
        return sym

    def temp_data_name(self, prefix: str = "__tmp") -> str:
        i = 0
        while f"{prefix}{i}" in self.arrays:
            i += 1
        return f"{prefix}{i}"

    # -- states ----------------------------------------------------------------
    def add_state(self, label: Optional[str] = None, is_start_state: bool = False) -> SDFGState:
        if label is None:
            label = f"state_{self._state_counter}"
        self._state_counter += 1
        base = label
        existing = {s.label for s in self.states()}
        i = 0
        while label in existing:
            i += 1
            label = f"{base}_{i}"
        state = SDFGState(label, sdfg=self)
        self._graph.add_node(state)
        if is_start_state or self.start_state is None:
            self.start_state = state
        return state

    def add_state_after(self, state: SDFGState, label: Optional[str] = None) -> SDFGState:
        """Insert a new state after *state*, rerouting its out-edges."""
        new_state = self.add_state(label)
        for edge in self.out_edges(state):
            self.add_edge(new_state, edge.dst, edge.data.clone())
            self.remove_edge(edge)
        self.add_edge(state, new_state, InterstateEdge())
        return new_state

    def add_state_before(self, state: SDFGState, label: Optional[str] = None) -> SDFGState:
        new_state = self.add_state(label)
        for edge in self.in_edges(state):
            self.add_edge(edge.src, new_state, edge.data.clone())
            self.remove_edge(edge)
        self.add_edge(new_state, state, InterstateEdge())
        if self.start_state is state:
            self.start_state = new_state
        return new_state

    def remove_state(self, state: SDFGState) -> None:
        self._graph.remove_node(state)
        if self.start_state is state:
            remaining = self.states()
            self.start_state = remaining[0] if remaining else None

    def states(self) -> List[SDFGState]:
        return list(self._graph.nodes)

    def number_of_states(self) -> int:
        return self._graph.number_of_nodes()

    # -- interstate edges --------------------------------------------------------
    def add_edge(self, src: SDFGState, dst: SDFGState,
                 edge: Optional[InterstateEdge] = None) -> InterstateEdgeView:
        edge = edge or InterstateEdge()
        key = self._graph.add_edge(src, dst, data=edge)
        return InterstateEdgeView(src, dst, edge, key)

    def remove_edge(self, edge: InterstateEdgeView) -> None:
        self._graph.remove_edge(edge.src, edge.dst, key=edge.key)

    def edges(self) -> List[InterstateEdgeView]:
        return [InterstateEdgeView(u, v, d["data"], k)
                for u, v, k, d in self._graph.edges(keys=True, data=True)]

    def in_edges(self, state: SDFGState) -> List[InterstateEdgeView]:
        return [InterstateEdgeView(u, v, d["data"], k)
                for u, v, k, d in self._graph.in_edges(state, keys=True, data=True)]

    def out_edges(self, state: SDFGState) -> List[InterstateEdgeView]:
        return [InterstateEdgeView(u, v, d["data"], k)
                for u, v, k, d in self._graph.out_edges(state, keys=True, data=True)]

    def predecessors(self, state: SDFGState) -> List[SDFGState]:
        return list(self._graph.predecessors(state))

    def successors(self, state: SDFGState) -> List[SDFGState]:
        return list(self._graph.successors(state))

    def topological_states(self) -> List[SDFGState]:
        if nx.is_directed_acyclic_graph(self._graph):
            return list(nx.topological_sort(self._graph))
        # Control-flow graphs with loops: BFS order from the start state.
        order: List[SDFGState] = []
        seen: Set[SDFGState] = set()
        queue = [self.start_state] if self.start_state else []
        while queue:
            state = queue.pop(0)
            if state in seen or state is None:
                continue
            seen.add(state)
            order.append(state)
            queue.extend(self.successors(state))
        order.extend(s for s in self.states() if s not in seen)
        return order

    # -- arguments ---------------------------------------------------------------
    def arglist(self) -> Dict[str, Data]:
        """Non-transient containers, in calling-convention order."""
        if self.arg_names:
            return {name: self.arrays[name] for name in self.arg_names
                    if name in self.arrays and not self.arrays[name].transient}
        return {name: desc for name, desc in sorted(self.arrays.items())
                if not desc.transient}

    @property
    def free_symbols(self) -> Set[str]:
        """Symbols that must be provided externally (not defined by shapes of
        arguments or interstate assignments)."""
        used: Set[str] = set()
        for desc in self.arrays.values():
            used |= {s.name for s in desc.free_symbols}
        for state in self.states():
            for edge in state.edges():
                used |= {s.name for s in edge.memlet.free_symbols}
            for node in state.nodes():
                from .nodes import MapEntry
                if isinstance(node, MapEntry):
                    used |= {s.name for s in node.map.range.free_symbols}
        for isedge in self.edges():
            used |= isedge.data.free_symbols
        defined = set()
        for isedge in self.edges():
            defined |= set(isedge.data.assignments)
        # map parameters are bound inside scopes
        for state in self.states():
            from .nodes import MapEntry
            for node in state.nodes():
                if isinstance(node, MapEntry):
                    defined |= set(node.map.params)
        defined |= set(self.arrays)
        return used - defined

    # -- traversal helpers ----------------------------------------------------
    def all_nodes_recursive(self):
        """Yield (node, state) pairs, descending into nested SDFGs."""
        for state in self.states():
            for node in state.nodes():
                yield node, state
                if isinstance(node, NestedSDFG):
                    yield from node.sdfg.all_nodes_recursive()

    def library_nodes(self) -> List[Tuple[LibraryNode, SDFGState]]:
        return [(n, s) for n, s in self.all_nodes_recursive()
                if isinstance(n, LibraryNode)]

    def expand_library_nodes(self, implementation: Optional[str] = None,
                             device: str = "CPU") -> int:
        """Expand all library nodes using *implementation* or the per-device
        priority list (§3.2).  Returns the number of expanded nodes."""
        count = 0
        while True:
            nodes = [(n, s) for n, s in self.library_nodes()
                     if s.scope_dict().get(n) is None]
            if not nodes:
                break
            for node, state in nodes:
                impl = implementation
                if impl is None:
                    priorities = type(node).default_priority.get(
                        device, list(type(node).implementations))
                    impl = next(
                        (p for p in priorities if p in type(node).implementations),
                        None)
                owner = state.sdfg if state.sdfg is not None else self
                node.expand(owner, state, impl)
                count += 1
        return count

    # -- transformation / optimization entry points --------------------------
    def apply(self, transformation, **options) -> int:
        """Apply a transformation class or instance everywhere it matches.
        Returns the number of applications."""
        from ..transformations.base import apply_transformation

        return apply_transformation(self, transformation, **options)

    def apply_transformations_repeated(self, transformations, **options) -> int:
        from ..transformations.base import apply_transformation

        total = 0
        changed = True
        while changed:
            changed = False
            for xf in transformations:
                n = apply_transformation(self, xf, **options)
                if n:
                    total += n
                    changed = True
        return total

    def simplify(self, report=None) -> int:
        """Run the dataflow-coarsening pass (§2.4, the -O1 analogue)."""
        from ..transformations.pipeline import simplify_pass

        return simplify_pass(self, report=report)

    def auto_optimize(self, device: str = "CPU", report=None) -> "SDFG":
        from ..autoopt import auto_optimize

        return auto_optimize(self, device=device, report=report)

    def validate(self) -> None:
        from .validation import validate_sdfg

        validate_sdfg(self)

    # -- compilation / execution ------------------------------------------------
    def compile(self, device: str = "CPU"):
        from ..codegen import compile_sdfg

        return compile_sdfg(self, device=device)

    def __call__(self, *args, **kwargs):
        """Execute through the reference interpreter (convenience)."""
        from ..runtime.executor import run_sdfg

        return run_sdfg(self, *args, **kwargs)

    def clone(self) -> "SDFG":
        return copy.deepcopy(self)

    # -- io ------------------------------------------------------------------
    def to_json(self) -> dict:
        states = self.states()
        index = {s: i for i, s in enumerate(states)}
        return {
            "name": self.name,
            "arrays": {name: desc.to_json() for name, desc in self.arrays.items()},
            "symbols": sorted(self.symbols),
            "arg_names": list(self.arg_names),
            "states": [s.to_json() for s in states],
            "start_state": index[self.start_state] if self.start_state else None,
            "edges": [
                {"src": index[e.src], "dst": index[e.dst], "data": e.data.to_json()}
                for e in self.edges()
            ],
        }

    def save(self, path: str) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2)

    def __repr__(self) -> str:
        return (f"SDFG({self.name!r}, {self.number_of_states()} states, "
                f"{len(self.arrays)} containers)")
