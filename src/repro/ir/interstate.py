"""Interstate edges: control flow between SDFG states.

Conditions and assignments on these edges express loops, branches, and state
machines (Table 1 of the paper).  Conditions are Python expressions over SDFG
symbols and scalar containers; assignments update symbols when the edge is
taken.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = ["InterstateEdge"]


class InterstateEdge:
    """A state transition with an optional condition and symbol assignments."""

    def __init__(self, condition: Optional[str] = None,
                 assignments: Optional[Mapping[str, str]] = None):
        self.condition = condition  # Python expression string or None (always taken)
        self.assignments: Dict[str, str] = dict(assignments or {})
        self._cond_code = compile(condition, "<interstate>", "eval") if condition else None
        self._assign_code = {
            k: compile(v, "<interstate>", "eval") for k, v in self.assignments.items()
        }

    def is_unconditional(self) -> bool:
        return self.condition is None

    def evaluate_condition(self, env: Mapping[str, object]) -> bool:
        if self._cond_code is None:
            return True
        return bool(eval(self._cond_code, {"__builtins__": _SAFE_BUILTINS}, dict(env)))

    def apply_assignments(self, env: Dict[str, object]) -> None:
        # Evaluate all right-hand sides against the *pre*-edge environment,
        # then commit (simultaneous assignment semantics).
        updates = {
            k: eval(code, {"__builtins__": _SAFE_BUILTINS}, dict(env))
            for k, code in self._assign_code.items()
        }
        env.update(updates)

    @property
    def free_symbols(self) -> frozenset:
        names = set()
        if self._cond_code is not None:
            names |= set(self._cond_code.co_names)
        for code in self._assign_code.values():
            names |= set(code.co_names)
        return frozenset(names - set(_SAFE_BUILTINS))

    def clone(self) -> "InterstateEdge":
        return InterstateEdge(self.condition, dict(self.assignments))

    def __repr__(self) -> str:
        cond = self.condition or "True"
        assign = ", ".join(f"{k}={v}" for k, v in self.assignments.items())
        return f"InterstateEdge(if {cond}; {assign})"

    def to_json(self) -> dict:
        return {"condition": self.condition, "assignments": dict(self.assignments)}

    @staticmethod
    def from_json(obj: dict) -> "InterstateEdge":
        return InterstateEdge(obj["condition"], obj["assignments"])


_SAFE_BUILTINS = {
    "abs": abs, "min": min, "max": max, "int": int, "float": float, "bool": bool,
    "len": len, "range": range,
}
