"""SDFG states: acyclic dataflow multigraphs.

A state contains pure dataflow (third tenet: control flow lives on the
interstate edges, not here).  Nodes are access nodes, tasklets, map scopes,
library nodes and nested SDFGs; edges carry memlets between connectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import networkx as nx

from ..symbolic import Range
from .memlet import Memlet
from .nodes import (
    AccessNode,
    CodeNode,
    LibraryNode,
    Map,
    MapEntry,
    MapExit,
    NestedSDFG,
    Node,
    ScheduleType,
    Tasklet,
    make_map_scope,
)

__all__ = ["Edge", "SDFGState"]


@dataclass(frozen=True)
class Edge:
    """A dataflow edge: (src.src_conn) --memlet--> (dst.dst_conn)."""

    src: Node
    src_conn: Optional[str]
    dst: Node
    dst_conn: Optional[str]
    memlet: Memlet
    key: int

    @property
    def data(self) -> Memlet:
        return self.memlet

    def __repr__(self) -> str:
        sc = f".{self.src_conn}" if self.src_conn else ""
        dc = f".{self.dst_conn}" if self.dst_conn else ""
        return f"{self.src!r}{sc} -> {self.dst!r}{dc} [{self.memlet!r}]"


class SDFGState:
    """One state of an SDFG: a directed acyclic multigraph of dataflow."""

    def __init__(self, label: str, sdfg=None):
        self.label = label
        self.sdfg = sdfg
        self._graph = nx.MultiDiGraph()

    # -- nodes -------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        self._graph.add_node(node)
        return node

    def remove_node(self, node: Node) -> None:
        self._graph.remove_node(node)

    def nodes(self) -> List[Node]:
        return list(self._graph.nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._graph

    def number_of_nodes(self) -> int:
        return self._graph.number_of_nodes()

    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    # -- edges -------------------------------------------------------------
    def add_edge(self, src: Node, src_conn: Optional[str], dst: Node,
                 dst_conn: Optional[str], memlet: Memlet) -> Edge:
        for node in (src, dst):
            if node not in self._graph:
                self._graph.add_node(node)
        key = self._graph.add_edge(src, dst, src_conn=src_conn, dst_conn=dst_conn,
                                   memlet=memlet)
        return Edge(src, src_conn, dst, dst_conn, memlet, key)

    def add_nedge(self, src: Node, dst: Node, memlet: Optional[Memlet] = None) -> Edge:
        """Edge without connectors (access-to-access copies, dependencies)."""
        return self.add_edge(src, None, dst, None, memlet or Memlet.empty())

    def remove_edge(self, edge: Edge) -> None:
        self._graph.remove_edge(edge.src, edge.dst, key=edge.key)

    def _wrap(self, u: Node, v: Node, key: int, attrs: dict) -> Edge:
        return Edge(u, attrs["src_conn"], v, attrs["dst_conn"], attrs["memlet"], key)

    def edges(self) -> List[Edge]:
        return [self._wrap(u, v, k, d) for u, v, k, d in self._graph.edges(keys=True, data=True)]

    def in_edges(self, node: Node) -> List[Edge]:
        return [self._wrap(u, v, k, d)
                for u, v, k, d in self._graph.in_edges(node, keys=True, data=True)]

    def out_edges(self, node: Node) -> List[Edge]:
        return [self._wrap(u, v, k, d)
                for u, v, k, d in self._graph.out_edges(node, keys=True, data=True)]

    def edges_between(self, src: Node, dst: Node) -> List[Edge]:
        if not self._graph.has_edge(src, dst):
            return []
        return [self._wrap(src, dst, k, d)
                for k, d in self._graph[src][dst].items()]

    def in_degree(self, node: Node) -> int:
        return self._graph.in_degree(node)

    def out_degree(self, node: Node) -> int:
        return self._graph.out_degree(node)

    def predecessors(self, node: Node) -> List[Node]:
        return list(self._graph.predecessors(node))

    def successors(self, node: Node) -> List[Node]:
        return list(self._graph.successors(node))

    # -- convenience constructors -------------------------------------------
    def add_access(self, data: str) -> AccessNode:
        return self.add_node(AccessNode(data))

    add_read = add_access
    add_write = add_access

    def add_tasklet(self, label: str, inputs: Iterable[str], outputs: Iterable[str],
                    code: str) -> Tasklet:
        return self.add_node(Tasklet(label, inputs, outputs, code))

    def add_map(self, label: str, params: Sequence[str], rng: Union[Range, str],
                schedule: ScheduleType = ScheduleType.Default) -> Tuple[MapEntry, MapExit]:
        if isinstance(rng, str):
            rng = Range.from_string(rng)
        entry, exit_ = make_map_scope(label, params, rng, schedule)
        self.add_node(entry)
        self.add_node(exit_)
        return entry, exit_

    def add_mapped_tasklet(
        self,
        label: str,
        map_ranges: Dict[str, Union[str, tuple]],
        inputs: Dict[str, Memlet],
        code: str,
        outputs: Dict[str, Memlet],
        input_nodes: Optional[Dict[str, AccessNode]] = None,
        output_nodes: Optional[Dict[str, AccessNode]] = None,
        schedule: ScheduleType = ScheduleType.Default,
    ) -> Tuple[Tasklet, MapEntry, MapExit]:
        """Create ``access -> map_entry -> tasklet -> map_exit -> access``
        with routed memlets — the canonical element-wise operation subgraph.
        """
        params = list(map_ranges)
        dims = []
        for param in params:
            rng = map_ranges[param]
            if isinstance(rng, str):
                dims.append(Range.from_string(rng).dims[0])
            else:
                dims.append(rng)
        entry, exit_ = self.add_map(label, params, Range(dims), schedule)
        tasklet = self.add_tasklet(label, inputs.keys(), outputs.keys(), code)

        input_nodes = dict(input_nodes or {})
        output_nodes = dict(output_nodes or {})

        if not inputs:
            self.add_nedge(entry, tasklet)
        for conn, memlet in inputs.items():
            outer = input_nodes.get(memlet.data)
            if outer is None:
                outer = self.add_access(memlet.data)
                input_nodes[memlet.data] = outer
            in_conn = f"IN_{memlet.data}"
            out_conn = f"OUT_{memlet.data}"
            if in_conn not in entry.in_connectors:
                entry.add_in_connector(in_conn)
                entry.add_out_connector(out_conn)
                # Outer memlet: hull over the map range is computed by
                # propagation; start with the full container subset.
                desc = self.sdfg.arrays[memlet.data] if self.sdfg else None
                outer_subset = Range.from_shape(desc.shape) if desc is not None else memlet.subset
                self.add_edge(outer, None, entry, in_conn,
                              Memlet(memlet.data, outer_subset))
            self.add_edge(entry, out_conn, tasklet, conn, memlet)

        if not outputs:
            self.add_nedge(tasklet, exit_)
        for conn, memlet in outputs.items():
            outer = output_nodes.get(memlet.data)
            if outer is None:
                outer = self.add_access(memlet.data)
                output_nodes[memlet.data] = outer
            in_conn = f"IN_{memlet.data}"
            out_conn = f"OUT_{memlet.data}"
            if out_conn not in exit_.out_connectors:
                exit_.add_in_connector(in_conn)
                exit_.add_out_connector(out_conn)
                desc = self.sdfg.arrays[memlet.data] if self.sdfg else None
                outer_subset = Range.from_shape(desc.shape) if desc is not None else memlet.subset
                self.add_edge(exit_, out_conn, outer, None,
                              Memlet(memlet.data, outer_subset, wcr=memlet.wcr))
            self.add_edge(tasklet, conn, exit_, in_conn, memlet)
        return tasklet, entry, exit_

    def add_nested_sdfg(self, sdfg, label: str, inputs: Iterable[str],
                        outputs: Iterable[str],
                        symbol_mapping: Optional[dict] = None) -> NestedSDFG:
        node = NestedSDFG(label, sdfg, inputs, outputs, symbol_mapping)
        sdfg.parent = self
        return self.add_node(node)

    # -- queries -------------------------------------------------------------
    def data_nodes(self) -> List[AccessNode]:
        return [n for n in self.nodes() if isinstance(n, AccessNode)]

    def source_nodes(self) -> List[Node]:
        return [n for n in self.nodes() if self.in_degree(n) == 0]

    def sink_nodes(self) -> List[Node]:
        return [n for n in self.nodes() if self.out_degree(n) == 0]

    def topological_nodes(self) -> Iterator[Node]:
        return nx.topological_sort(self._graph)

    def descendants(self, node: Node) -> set:
        """All nodes reachable from *node* (excluding itself)."""
        return nx.descendants(self._graph, node)

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self._graph)

    def scope_dict(self) -> Dict[Node, Optional[MapEntry]]:
        """Map each node to its innermost enclosing MapEntry (None = top).

        By convention a MapExit's scope is its own MapEntry (i.e. the exit is
        *inside* the scope), matching DaCe.
        """
        scope: Dict[Node, Optional[MapEntry]] = {}
        for node in self.topological_nodes():
            if isinstance(node, MapExit):
                scope[node] = node.entry_node
                continue
            parents = self.predecessors(node)
            if not parents:
                scope[node] = None
                continue
            parent = parents[0]
            if isinstance(parent, MapEntry):
                scope[node] = parent
            elif isinstance(parent, MapExit):
                # node follows a closed scope: it lives where that map lives
                scope[node] = scope.get(parent.entry_node, None)
            else:
                scope[node] = scope.get(parent, None)
        return scope

    def scope_children(self, entry: Optional[MapEntry]) -> List[Node]:
        """All nodes whose innermost scope is *entry*."""
        sd = self.scope_dict()
        return [n for n, s in sd.items() if s is entry]

    def scope_subgraph_nodes(self, entry: MapEntry) -> List[Node]:
        """All nodes strictly inside a map scope, including nested scopes and
        the exit node, excluding the entry itself."""
        result: List[Node] = []
        stack = list(self.successors(entry))
        seen = {entry}
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            result.append(node)
            if node is entry.exit_node:
                continue
            stack.extend(self.successors(node))
        return result

    def exit_node_of(self, entry: MapEntry) -> MapExit:
        return entry.exit_node

    def entry_node_of(self, node: Node) -> Optional[MapEntry]:
        return self.scope_dict().get(node)

    def memlet_path(self, edge: Edge) -> List[Edge]:
        """Follow a memlet through map entry/exit connector pairs to get the
        full path from the outermost source to the innermost destination."""
        path = [edge]
        # walk backwards through matching IN_/OUT_ connectors
        current = edge
        while isinstance(current.src, (MapEntry, MapExit)) and current.src_conn \
                and current.src_conn.startswith("OUT_"):
            conn = "IN_" + current.src_conn[4:]
            upstream = [e for e in self.in_edges(current.src) if e.dst_conn == conn]
            if not upstream:
                break
            current = upstream[0]
            path.insert(0, current)
        current = edge
        while isinstance(current.dst, (MapEntry, MapExit)) and current.dst_conn \
                and current.dst_conn.startswith("IN_"):
            conn = "OUT_" + current.dst_conn[3:]
            downstream = [e for e in self.out_edges(current.dst) if e.src_conn == conn]
            if not downstream:
                break
            current = downstream[0]
            path.append(current)
        return path

    def read_and_write_sets(self) -> Tuple[Dict[str, List[Memlet]], Dict[str, List[Memlet]]]:
        """Container name -> memlets read / written in this state."""
        reads: Dict[str, List[Memlet]] = {}
        writes: Dict[str, List[Memlet]] = {}
        for edge in self.edges():
            if edge.memlet.is_empty():
                continue
            if isinstance(edge.src, AccessNode) and not isinstance(edge.dst, AccessNode):
                reads.setdefault(edge.src.data, []).append(edge.memlet)
            if isinstance(edge.dst, AccessNode):
                writes.setdefault(edge.dst.data, []).append(edge.memlet)
            if isinstance(edge.src, AccessNode) and isinstance(edge.dst, AccessNode):
                reads.setdefault(edge.src.data, []).append(edge.memlet)
        return reads, writes

    def __repr__(self) -> str:
        return (f"SDFGState({self.label!r}, {self.number_of_nodes()} nodes, "
                f"{self.number_of_edges()} edges)")

    # -- serialization -------------------------------------------------------
    def to_json(self) -> dict:
        node_list = self.nodes()
        index = {node: i for i, node in enumerate(node_list)}
        return {
            "label": self.label,
            "nodes": [n.to_json() for n in node_list],
            "edges": [
                {
                    "src": index[e.src],
                    "src_conn": e.src_conn,
                    "dst": index[e.dst],
                    "dst_conn": e.dst_conn,
                    "memlet": e.memlet.to_json(),
                }
                for e in self.edges()
            ],
        }
