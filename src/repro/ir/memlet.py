"""Memlets: explicit data-movement edges.

A memlet describes *what part* of a data container moves along an edge
(second data-centric tenet).  It carries the container name, a symbolic
subset, an optional write-conflict resolution (WCR) function for concurrent
writes, and an optional ``other_subset`` describing the destination layout
for copy edges.
"""

from __future__ import annotations

from typing import Optional, Union

from ..symbolic import Expr, Range, sympify

__all__ = ["Memlet"]

#: WCR functions supported by the runtime and models (a subset of DaCe's
#: arbitrary lambdas, covering the reductions in the evaluated corpus).
WCR_FUNCTIONS = ("sum", "prod", "min", "max", "logical_and", "logical_or")


class Memlet:
    """Data movement along one dataflow edge."""

    def __init__(
        self,
        data: Optional[str] = None,
        subset: Optional[Union[Range, str]] = None,
        wcr: Optional[str] = None,
        other_subset: Optional[Union[Range, str]] = None,
        dynamic: bool = False,
        squeeze: Optional[tuple] = None,
    ):
        if isinstance(subset, str):
            subset = Range.from_string(subset)
        if isinstance(other_subset, str):
            other_subset = Range.from_string(other_subset)
        if wcr is not None and wcr not in WCR_FUNCTIONS:
            raise ValueError(f"unsupported WCR function {wcr!r}; expected one of {WCR_FUNCTIONS}")
        self.data = data
        self.subset = subset
        self.wcr = wcr
        self.other_subset = other_subset
        #: dynamic memlets have data-dependent volume (e.g. indirect access)
        self.dynamic = bool(dynamic)
        #: subset axes dropped on read (set when a squeezing copy is
        #: composed away by redundant-copy removal)
        self.squeeze = tuple(squeeze) if squeeze else None

    # -- constructors ------------------------------------------------------
    @classmethod
    def simple(cls, data: str, subset: Union[Range, str], wcr: Optional[str] = None) -> "Memlet":
        return cls(data=data, subset=subset, wcr=wcr)

    @classmethod
    def from_array(cls, data: str, desc) -> "Memlet":
        """Full-array memlet for a data descriptor."""
        return cls(data=data, subset=Range.from_shape(desc.shape))

    @classmethod
    def empty(cls) -> "Memlet":
        """An empty memlet (pure ordering dependency, no data movement)."""
        return cls(data=None, subset=None)

    # -- queries -----------------------------------------------------------
    def is_empty(self) -> bool:
        return self.data is None

    def volume(self) -> Expr:
        """Number of elements moved (symbolic)."""
        if self.is_empty():
            return sympify(0)
        assert self.subset is not None
        return self.subset.volume()

    def num_elements(self, env=None) -> int:
        return self.volume().evaluate(env) if not self.is_empty() else 0

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        if self.subset is not None:
            out |= self.subset.free_symbols
        if self.other_subset is not None:
            out |= self.other_subset.free_symbols
        return out

    def subs(self, env) -> "Memlet":
        return Memlet(
            data=self.data,
            subset=self.subset.subs(env) if self.subset is not None else None,
            wcr=self.wcr,
            other_subset=self.other_subset.subs(env) if self.other_subset is not None else None,
            dynamic=self.dynamic,
            squeeze=self.squeeze,
        )

    def clone(self) -> "Memlet":
        return Memlet(self.data, self.subset, self.wcr, self.other_subset,
                      self.dynamic, self.squeeze)

    # -- protocol ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Memlet):
            return NotImplemented
        return (
            self.data == other.data
            and self.subset == other.subset
            and self.wcr == other.wcr
            and self.other_subset == other.other_subset
        )

    def __hash__(self) -> int:
        return hash((self.data, self.subset, self.wcr, self.other_subset))

    def __repr__(self) -> str:
        if self.is_empty():
            return "Memlet(empty)"
        wcr = f", wcr={self.wcr}" if self.wcr else ""
        other = f" -> [{self.other_subset}]" if self.other_subset is not None else ""
        return f"Memlet({self.data}[{self.subset}]{other}{wcr})"

    # -- serialization -------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "data": self.data,
            "subset": str(self.subset) if self.subset is not None else None,
            "wcr": self.wcr,
            "other_subset": str(self.other_subset) if self.other_subset is not None else None,
            "dynamic": self.dynamic,
            "squeeze": list(self.squeeze) if self.squeeze else None,
        }

    @staticmethod
    def from_json(obj: dict) -> "Memlet":
        squeeze = obj.get("squeeze")
        return Memlet(
            data=obj["data"],
            subset=obj["subset"],
            wcr=obj["wcr"],
            other_subset=obj["other_subset"],
            dynamic=obj.get("dynamic", False),
            squeeze=tuple(squeeze) if squeeze else None,
        )
