"""SDFG graph nodes: access nodes, tasklets, map scopes, library nodes,
nested SDFGs.

Node objects are identity-hashed; a node instance belongs to exactly one
state.  Dataflow edges between nodes attach to *connectors* — named ports on
code nodes.  Map entry/exit nodes use the ``IN_x`` / ``OUT_x`` connector
convention to route data through the scope.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..symbolic import Range

__all__ = [
    "ScheduleType",
    "Node",
    "AccessNode",
    "CodeNode",
    "Tasklet",
    "Map",
    "MapEntry",
    "MapExit",
    "NestedSDFG",
    "LibraryNode",
]


class ScheduleType(enum.Enum):
    """How a map scope executes; set by device transformations."""

    Default = "Default"
    Sequential = "Sequential"
    CPU_Multicore = "CPU_Multicore"
    GPU_Device = "GPU_Device"
    FPGA_Pipeline = "FPGA_Pipeline"


class Node:
    """Base class for all state-graph nodes (identity-hashed)."""

    def __init__(self, label: str = ""):
        self.label = label

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label})"

    def to_json(self) -> dict:
        return {"kind": type(self).__name__, "label": self.label}


class AccessNode(Node):
    """Reference to a data container (oval node in the paper's figures)."""

    def __init__(self, data: str):
        super().__init__(data)
        self.data = data

    def to_json(self) -> dict:
        obj = super().to_json()
        obj["data"] = self.data
        return obj


class CodeNode(Node):
    """Base for nodes with named input/output connectors."""

    def __init__(self, label: str, inputs: Iterable[str] = (), outputs: Iterable[str] = ()):
        super().__init__(label)
        self.in_connectors: Set[str] = set(inputs)
        self.out_connectors: Set[str] = set(outputs)

    def add_in_connector(self, name: str) -> None:
        self.in_connectors.add(name)

    def add_out_connector(self, name: str) -> None:
        self.out_connectors.add(name)


class Tasklet(CodeNode):
    """Stateless computation (octagon).  ``code`` is Python statements over
    the connector names, e.g. ``"__out = alpha * __in"``."""

    def __init__(self, label: str, inputs: Iterable[str], outputs: Iterable[str],
                 code: str, side_effect_free: bool = True):
        super().__init__(label, inputs, outputs)
        self.code = code
        self.side_effect_free = side_effect_free

    def to_json(self) -> dict:
        obj = super().to_json()
        obj.update({
            "inputs": sorted(self.in_connectors),
            "outputs": sorted(self.out_connectors),
            "code": self.code,
        })
        return obj


class Map:
    """A parametric-parallel iteration space shared by a MapEntry/MapExit pair."""

    def __init__(self, label: str, params: Sequence[str], rng: Range,
                 schedule: ScheduleType = ScheduleType.Default,
                 collapse: int = 1, tile_sizes: Optional[Sequence[int]] = None):
        if len(params) != rng.ndim:
            raise ValueError(
                f"map {label!r}: {len(params)} parameters vs {rng.ndim}-d range")
        self.label = label
        self.params: Tuple[str, ...] = tuple(params)
        self.range = rng
        self.schedule = schedule
        self.collapse = collapse          # OpenMP collapse analogue (§3.1 CPU)
        self.tile_sizes = tuple(tile_sizes) if tile_sizes else None

    def __repr__(self) -> str:
        return f"Map({self.label}: [{', '.join(self.params)}] in [{self.range}])"


class MapEntry(CodeNode):
    """Scope-opening node of a map.  Data enters via ``IN_x`` connectors and
    is served to the scope body through matching ``OUT_x`` connectors."""

    def __init__(self, map_obj: Map):
        super().__init__(map_obj.label)
        self.map = map_obj
        self._exit: Optional["MapExit"] = None

    @property
    def exit_node(self) -> "MapExit":
        assert self._exit is not None, "MapEntry not paired with a MapExit"
        return self._exit

    def to_json(self) -> dict:
        obj = super().to_json()
        obj.update({
            "params": list(self.map.params),
            "range": str(self.map.range),
            "schedule": self.map.schedule.value,
            "collapse": self.map.collapse,
            "tile_sizes": (list(self.map.tile_sizes)
                           if self.map.tile_sizes else None),
        })
        return obj


class MapExit(CodeNode):
    """Scope-closing node of a map (collects scope outputs)."""

    def __init__(self, map_obj: Map):
        super().__init__(map_obj.label)
        self.map = map_obj
        self._entry: Optional[MapEntry] = None

    @property
    def entry_node(self) -> MapEntry:
        assert self._entry is not None, "MapExit not paired with a MapEntry"
        return self._entry

    def to_json(self) -> dict:
        obj = super().to_json()
        obj["params"] = list(self.map.params)
        return obj


def make_map_scope(label: str, params: Sequence[str], rng: Range,
                   schedule: ScheduleType = ScheduleType.Default) -> Tuple[MapEntry, MapExit]:
    """Create a paired entry/exit for a new map."""
    map_obj = Map(label, params, rng, schedule)
    entry = MapEntry(map_obj)
    exit_ = MapExit(map_obj)
    entry._exit = exit_
    exit_._entry = entry
    return entry, exit_


class NestedSDFG(CodeNode):
    """A call to another SDFG (rectangle).  Connector names map to the inner
    SDFG's argument containers; ``symbol_mapping`` binds inner symbols to
    outer symbolic expressions."""

    def __init__(self, label: str, sdfg, inputs: Iterable[str], outputs: Iterable[str],
                 symbol_mapping: Optional[Dict[str, object]] = None):
        super().__init__(label, inputs, outputs)
        self.sdfg = sdfg
        self.symbol_mapping: Dict[str, object] = dict(symbol_mapping or {})

    def to_json(self) -> dict:
        obj = super().to_json()
        obj.update({
            "inputs": sorted(self.in_connectors),
            "outputs": sorted(self.out_connectors),
            "sdfg": self.sdfg.to_json(),
            "symbol_mapping": {k: str(v) for k, v in self.symbol_mapping.items()},
        })
        return obj


class LibraryNode(CodeNode):
    """Call to an external library (folded rectangle), e.g. MatMul.

    A library node can be *expanded* into one of several registered
    implementations (§3.2): a fast-library tasklet, an optimized subgraph, or
    a native SDFG.  Until expanded, the reference runtime executes it through
    :meth:`compute`.
    """

    #: name -> callable(node, sdfg, state) performing in-place expansion;
    #: populated per subclass by repro.library.registry.register_expansion.
    implementations: Dict[str, object] = {}
    #: platform -> ordered list of implementation names to try (§3.2).
    default_priority: Dict[str, List[str]] = {}

    def __init__(self, label: str, inputs: Iterable[str], outputs: Iterable[str]):
        super().__init__(label, inputs, outputs)
        self.implementation: Optional[str] = None  # chosen expansion, if any

    # Functional execution (reference runtime) --------------------------
    def compute(self, inputs: Dict[str, object], env: Dict[str, int]) -> Dict[str, object]:
        """Compute outputs from inputs (NumPy arrays/scalars)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement direct computation")

    # Cost accounting (performance models) -------------------------------
    def flop_count(self, env: Dict[str, int]) -> int:
        """Floating-point operations performed (for the device models)."""
        return 0

    def expand(self, sdfg, state, implementation: Optional[str] = None):
        """Replace this node in *state* with the chosen implementation.

        Ordering (no-connector) edges attached to the library node — e.g.
        the write-after-read dependency edges inserted by state fusion — are
        reattached to the replacement's scope so expansion never loosens the
        schedule.
        """
        impls = type(self).implementations
        if implementation is None:
            for name in type(self).default_priority.get("CPU", list(impls)):
                if name in impls:
                    implementation = name
                    break
        if implementation is None or implementation not in impls:
            raise KeyError(
                f"no implementation {implementation!r} registered for "
                f"{type(self).__name__} (have: {sorted(impls)})")
        self.implementation = implementation
        preds = [e.src for e in state.in_edges(self) if e.dst_conn is None]
        succs = [e.dst for e in state.out_edges(self) if e.src_conn is None]
        replacement = impls[implementation](self, sdfg, state)
        if replacement is not None and replacement in state and (preds or succs):
            from .memlet import Memlet

            # the replacement may live inside a freshly created map scope;
            # ordering edges must attach to the outermost scope boundary
            scopes = state.scope_dict()
            root = scopes.get(replacement)
            while root is not None and scopes.get(root) is not None:
                root = scopes.get(root)
            in_target = root if root is not None else replacement
            out_source = root.exit_node if root is not None else replacement
            for pred in preds:
                if pred in state and not state.edges_between(pred, in_target):
                    state.add_nedge(pred, in_target, Memlet.empty())
            for succ in succs:
                if succ in state and not state.edges_between(out_source, succ):
                    state.add_nedge(out_source, succ, Memlet.empty())
        return replacement

    def to_json(self) -> dict:
        obj = super().to_json()
        obj.update({
            "inputs": sorted(self.in_connectors),
            "outputs": sorted(self.out_connectors),
            "implementation": self.implementation,
        })
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "LibraryNode":
        """Reconstruct an unexpanded library node from its JSON form.

        Subclasses whose constructors take configuration beyond ``label``
        (e.g. Reduce) must override this.
        """
        node = cls(label=obj.get("label", cls.__name__))
        node.implementation = obj.get("implementation")
        return node

    @staticmethod
    def concrete_subclasses() -> Dict[str, type]:
        """All registered LibraryNode subclasses keyed by class name."""
        out: Dict[str, type] = {}
        stack = list(LibraryNode.__subclasses__())
        while stack:
            cls = stack.pop()
            out[cls.__name__] = cls
            stack.extend(cls.__subclasses__())
        return out
