"""SDFG validation: structural invariants of the data-centric IR.

Raises :class:`InvalidSDFGError` describing the first violated invariant.
Run after the frontend and (configurably) after every transformation.
"""

from __future__ import annotations

from typing import Optional

from .data import Scalar, Stream
from .memlet import Memlet
from .nodes import (
    AccessNode,
    CodeNode,
    LibraryNode,
    MapEntry,
    MapExit,
    NestedSDFG,
    Tasklet,
)

__all__ = ["InvalidSDFGError", "validate_sdfg", "validate_state",
           "collect_validation_errors"]


class InvalidSDFGError(ValueError):
    """An SDFG invariant is violated."""

    def __init__(self, message: str, sdfg=None, state=None, node=None):
        location = []
        if sdfg is not None:
            location.append(f"sdfg={sdfg.name!r}")
        if state is not None:
            location.append(f"state={state.label!r}")
        if node is not None:
            location.append(f"node={node!r}")
        suffix = f" ({', '.join(location)})" if location else ""
        super().__init__(message + suffix)
        self.sdfg = sdfg
        self.state = state
        self.node = node


def validate_sdfg(sdfg) -> None:
    _validate_toplevel(sdfg)
    for state in sdfg.states():
        validate_state(state, sdfg)


def _validate_toplevel(sdfg) -> None:
    """SDFG-level invariants (state machine + interstate edges)."""
    if sdfg.start_state is None and sdfg.number_of_states() > 0:
        raise InvalidSDFGError("SDFG has states but no start state", sdfg=sdfg)
    labels = [s.label for s in sdfg.states()]
    if len(labels) != len(set(labels)):
        raise InvalidSDFGError("duplicate state labels", sdfg=sdfg)
    for isedge in sdfg.edges():
        for name in isedge.data.free_symbols:
            if name not in sdfg.symbols and name not in sdfg.arrays:
                # allowed: loop variables assigned on other edges
                assigned = any(name in e.data.assignments for e in sdfg.edges())
                if not assigned:
                    raise InvalidSDFGError(
                        f"interstate edge references unknown symbol {name!r}",
                        sdfg=sdfg)


def collect_validation_errors(sdfg) -> list:
    """Validate without raising: return *every* violated invariant.

    ``validate_sdfg`` stops at the first violation, which is right for the
    transactional pipeline but unhelpful for diagnostics — a failure report
    wants the complete damage assessment of a corrupted graph.
    """
    errors = []
    try:
        _validate_toplevel(sdfg)
    except InvalidSDFGError as exc:
        errors.append(exc)
    for state in sdfg.states():
        try:
            validate_state(state, sdfg)
        except InvalidSDFGError as exc:
            errors.append(exc)
    return errors


def validate_state(state, sdfg=None) -> None:
    sdfg = sdfg or state.sdfg
    if not state.is_acyclic():
        raise InvalidSDFGError("state dataflow graph contains a cycle",
                               sdfg=sdfg, state=state)

    for node in state.nodes():
        if isinstance(node, AccessNode):
            if sdfg is not None and node.data not in sdfg.arrays:
                raise InvalidSDFGError(
                    f"access node refers to undeclared container {node.data!r}",
                    sdfg=sdfg, state=state, node=node)
        if isinstance(node, MapEntry):
            if node.exit_node not in state:
                raise InvalidSDFGError("MapEntry without its MapExit in state",
                                       sdfg=sdfg, state=state, node=node)
            for conn in node.in_connectors:
                if not conn.startswith("IN_"):
                    raise InvalidSDFGError(
                        f"MapEntry in-connector {conn!r} must start with IN_",
                        sdfg=sdfg, state=state, node=node)
        if isinstance(node, MapExit):
            if node.entry_node not in state:
                raise InvalidSDFGError("MapExit without its MapEntry in state",
                                       sdfg=sdfg, state=state, node=node)
        if isinstance(node, Tasklet):
            if not node.code or not isinstance(node.code, str):
                raise InvalidSDFGError("tasklet with empty code",
                                       sdfg=sdfg, state=state, node=node)
        if isinstance(node, NestedSDFG):
            node.sdfg.validate()
            for conn in node.in_connectors | node.out_connectors:
                if conn not in node.sdfg.arrays:
                    raise InvalidSDFGError(
                        f"nested SDFG connector {conn!r} has no matching "
                        f"container in the nested SDFG", sdfg=sdfg, state=state,
                        node=node)

    # Connector/edge consistency
    for edge in state.edges():
        _validate_edge(edge, state, sdfg)

    # Dangling connectors: every connector must have at least one edge
    for node in state.nodes():
        if not isinstance(node, CodeNode):
            continue
        in_used = {e.dst_conn for e in state.in_edges(node)}
        out_used = {e.src_conn for e in state.out_edges(node)}
        for conn in node.in_connectors - in_used:
            raise InvalidSDFGError(f"dangling input connector {conn!r}",
                                   sdfg=sdfg, state=state, node=node)
        for conn in node.out_connectors - out_used:
            raise InvalidSDFGError(f"dangling output connector {conn!r}",
                                   sdfg=sdfg, state=state, node=node)


def _validate_edge(edge, state, sdfg) -> None:
    memlet: Memlet = edge.memlet
    # connector existence
    if edge.src_conn is not None:
        if not isinstance(edge.src, CodeNode) or edge.src_conn not in edge.src.out_connectors:
            raise InvalidSDFGError(
                f"edge uses missing source connector {edge.src_conn!r}",
                sdfg=sdfg, state=state, node=edge.src)
    if edge.dst_conn is not None:
        if not isinstance(edge.dst, CodeNode) or edge.dst_conn not in edge.dst.in_connectors:
            raise InvalidSDFGError(
                f"edge uses missing destination connector {edge.dst_conn!r}",
                sdfg=sdfg, state=state, node=edge.dst)
    if memlet.is_empty():
        return
    if sdfg is None:
        return
    if memlet.data not in sdfg.arrays:
        raise InvalidSDFGError(
            f"memlet refers to undeclared container {memlet.data!r}",
            sdfg=sdfg, state=state)
    desc = sdfg.arrays[memlet.data]
    if memlet.subset is not None and not isinstance(desc, (Scalar, Stream)):
        if memlet.subset.ndim != desc.ndim:
            raise InvalidSDFGError(
                f"memlet subset [{memlet.subset}] has {memlet.subset.ndim} "
                f"dimensions but container {memlet.data!r} has {desc.ndim}",
                sdfg=sdfg, state=state)
    # memlets between two access nodes must name one of the two containers
    if isinstance(edge.src, AccessNode) and isinstance(edge.dst, AccessNode):
        if memlet.data not in (edge.src.data, edge.dst.data):
            raise InvalidSDFGError(
                "copy memlet names neither endpoint container",
                sdfg=sdfg, state=state)
