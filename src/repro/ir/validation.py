"""SDFG validation: structural invariants of the data-centric IR.

``validate_sdfg``/``validate_state`` raise :class:`InvalidSDFGError`
describing the first violated invariant (right for the transactional
pipeline, which only needs a yes/no).  Every check is written as a
generator, so :func:`collect_validation_errors` can drain the same checks
to produce the *complete* damage assessment of a corrupted graph —
including provable out-of-bounds memlets from the static bounds checker.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from .data import Scalar, Stream
from .memlet import Memlet
from .nodes import (
    AccessNode,
    CodeNode,
    LibraryNode,
    MapEntry,
    MapExit,
    NestedSDFG,
    Tasklet,
)

__all__ = ["InvalidSDFGError", "validate_sdfg", "validate_state",
           "collect_validation_errors"]


class InvalidSDFGError(ValueError):
    """An SDFG invariant is violated."""

    def __init__(self, message: str, sdfg=None, state=None, node=None):
        location = []
        if sdfg is not None:
            location.append(f"sdfg={sdfg.name!r}")
        if state is not None:
            location.append(f"state={state.label!r}")
        if node is not None:
            location.append(f"node={node!r}")
        suffix = f" ({', '.join(location)})" if location else ""
        super().__init__(message + suffix)
        self.sdfg = sdfg
        self.state = state
        self.node = node


def validate_sdfg(sdfg) -> None:
    for error in _toplevel_errors(sdfg):
        raise error
    for state in sdfg.states():
        validate_state(state, sdfg)


def validate_state(state, sdfg=None) -> None:
    sdfg = sdfg or state.sdfg
    for error in _state_errors(state, sdfg):
        raise error


def collect_validation_errors(sdfg) -> list:
    """Validate without raising: return *every* violated invariant.

    Unlike ``validate_sdfg`` this drains all checks (structural invariants
    of every state, nested SDFGs recursively, and provable out-of-bounds
    memlet subsets from :mod:`repro.sanitizer.bounds`), so multi-fault
    graphs report all faults at once.
    """
    errors = list(_toplevel_errors(sdfg))
    for state in sdfg.states():
        errors.extend(_state_errors(state, sdfg, collect_nested=True))
    errors.extend(_bounds_errors(sdfg))
    return errors


def _bounds_errors(sdfg) -> List[InvalidSDFGError]:
    """Provable out-of-bounds subsets, as validation errors.

    Only *provable* violations surface here (verdict ``out-of-bounds``);
    ``unproved`` subsets are legal graphs that merely resist static
    analysis.  Lazy import: the sanitizer sits above ``ir`` in the layer
    diagram, so ``ir.validation`` must not import it at module load.
    """
    try:
        from ..sanitizer.bounds import OUT_OF_BOUNDS, check_bounds
    except ImportError:  # pragma: no cover - sanitizer always ships
        return []
    errors = []
    for verdict in check_bounds(sdfg):
        if verdict.verdict == OUT_OF_BOUNDS:
            errors.append(InvalidSDFGError(
                f"memlet subset [{verdict.subset}] on container "
                f"{verdict.container!r} is provably out of bounds "
                f"({verdict.detail}) [sdfg={verdict.sdfg!r}, "
                f"state={verdict.state!r}]"))
    return errors


def _toplevel_errors(sdfg) -> Iterator[InvalidSDFGError]:
    """SDFG-level invariants (state machine + interstate edges)."""
    if sdfg.start_state is None and sdfg.number_of_states() > 0:
        yield InvalidSDFGError("SDFG has states but no start state", sdfg=sdfg)
    labels = [s.label for s in sdfg.states()]
    if len(labels) != len(set(labels)):
        yield InvalidSDFGError("duplicate state labels", sdfg=sdfg)
    for isedge in sdfg.edges():
        for name in isedge.data.free_symbols:
            if name not in sdfg.symbols and name not in sdfg.arrays:
                # allowed: loop variables assigned on other edges
                assigned = any(name in e.data.assignments for e in sdfg.edges())
                if not assigned:
                    yield InvalidSDFGError(
                        f"interstate edge references unknown symbol {name!r}",
                        sdfg=sdfg)


def _state_errors(state, sdfg=None,
                  collect_nested: bool = False) -> Iterator[InvalidSDFGError]:
    """Every violated invariant of one state, in deterministic order.

    ``collect_nested`` switches nested-SDFG handling from first-error
    (``validate``) to full collection (``collect_validation_errors``).
    """
    sdfg = sdfg or state.sdfg
    if not state.is_acyclic():
        yield InvalidSDFGError("state dataflow graph contains a cycle",
                               sdfg=sdfg, state=state)

    for node in state.nodes():
        if isinstance(node, AccessNode):
            if sdfg is not None and node.data not in sdfg.arrays:
                yield InvalidSDFGError(
                    f"access node refers to undeclared container {node.data!r}",
                    sdfg=sdfg, state=state, node=node)
        if isinstance(node, MapEntry):
            if node.exit_node not in state:
                yield InvalidSDFGError("MapEntry without its MapExit in state",
                                       sdfg=sdfg, state=state, node=node)
            yield from _scope_connector_errors(node, state, sdfg)
        if isinstance(node, MapExit):
            if node.entry_node not in state:
                yield InvalidSDFGError("MapExit without its MapEntry in state",
                                       sdfg=sdfg, state=state, node=node)
            yield from _scope_connector_errors(node, state, sdfg)
        if isinstance(node, Tasklet):
            if not node.code or not isinstance(node.code, str):
                yield InvalidSDFGError("tasklet with empty code",
                                       sdfg=sdfg, state=state, node=node)
        if isinstance(node, NestedSDFG):
            if collect_nested:
                yield from collect_validation_errors(node.sdfg)
            else:
                try:
                    node.sdfg.validate()
                except InvalidSDFGError as exc:
                    yield exc
            for conn in node.in_connectors | node.out_connectors:
                if conn not in node.sdfg.arrays:
                    yield InvalidSDFGError(
                        f"nested SDFG connector {conn!r} has no matching "
                        f"container in the nested SDFG", sdfg=sdfg, state=state,
                        node=node)

    # Connector/edge consistency
    for edge in state.edges():
        yield from _edge_errors(edge, state, sdfg)

    # Dangling connectors: every connector must have at least one edge
    for node in state.nodes():
        if not isinstance(node, CodeNode):
            continue
        in_used = {e.dst_conn for e in state.in_edges(node)}
        out_used = {e.src_conn for e in state.out_edges(node)}
        for conn in sorted(node.in_connectors - in_used):
            yield InvalidSDFGError(f"dangling input connector {conn!r}",
                                   sdfg=sdfg, state=state, node=node)
        for conn in sorted(node.out_connectors - out_used):
            yield InvalidSDFGError(f"dangling output connector {conn!r}",
                                   sdfg=sdfg, state=state, node=node)


def _scope_connector_errors(node, state, sdfg) -> Iterator[InvalidSDFGError]:
    """Prefix and pairing invariants of map scope connectors.

    Both scope nodes (entry *and* exit) route containers through matched
    ``IN_x``/``OUT_x`` connector pairs; a one-sided connector means a
    transformation dropped half of a routed path.
    """
    kind = "MapEntry" if isinstance(node, MapEntry) else "MapExit"
    for conn in sorted(node.in_connectors):
        if not conn.startswith("IN_"):
            yield InvalidSDFGError(
                f"{kind} in-connector {conn!r} must start with IN_",
                sdfg=sdfg, state=state, node=node)
    for conn in sorted(node.out_connectors):
        if not conn.startswith("OUT_"):
            yield InvalidSDFGError(
                f"{kind} out-connector {conn!r} must start with OUT_",
                sdfg=sdfg, state=state, node=node)
    routed_in = {c[len("IN_"):] for c in node.in_connectors
                 if c.startswith("IN_")}
    routed_out = {c[len("OUT_"):] for c in node.out_connectors
                  if c.startswith("OUT_")}
    for name in sorted(routed_in - routed_out):
        yield InvalidSDFGError(
            f"{kind} connector IN_{name} has no matching OUT_{name}",
            sdfg=sdfg, state=state, node=node)
    for name in sorted(routed_out - routed_in):
        yield InvalidSDFGError(
            f"{kind} connector OUT_{name} has no matching IN_{name}",
            sdfg=sdfg, state=state, node=node)


def _edge_errors(edge, state, sdfg) -> Iterator[InvalidSDFGError]:
    memlet: Memlet = edge.memlet
    # connector existence
    if edge.src_conn is not None:
        if not isinstance(edge.src, CodeNode) or edge.src_conn not in edge.src.out_connectors:
            yield InvalidSDFGError(
                f"edge uses missing source connector {edge.src_conn!r}",
                sdfg=sdfg, state=state, node=edge.src)
    if edge.dst_conn is not None:
        if not isinstance(edge.dst, CodeNode) or edge.dst_conn not in edge.dst.in_connectors:
            yield InvalidSDFGError(
                f"edge uses missing destination connector {edge.dst_conn!r}",
                sdfg=sdfg, state=state, node=edge.dst)
    if memlet.is_empty():
        return
    if sdfg is None:
        return
    if memlet.data not in sdfg.arrays:
        yield InvalidSDFGError(
            f"memlet refers to undeclared container {memlet.data!r}",
            sdfg=sdfg, state=state)
        return
    desc = sdfg.arrays[memlet.data]
    if memlet.subset is not None and not isinstance(desc, (Scalar, Stream)):
        if memlet.subset.ndim != desc.ndim:
            yield InvalidSDFGError(
                f"memlet subset [{memlet.subset}] has {memlet.subset.ndim} "
                f"dimensions but container {memlet.data!r} has {desc.ndim}",
                sdfg=sdfg, state=state)
    # memlets between two access nodes must name one of the two containers
    if isinstance(edge.src, AccessNode) and isinstance(edge.dst, AccessNode):
        if memlet.data not in (edge.src.data, edge.dst.data):
            yield InvalidSDFGError(
                "copy memlet names neither endpoint container",
                sdfg=sdfg, state=state)
