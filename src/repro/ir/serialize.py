"""SDFG JSON deserialization (serialization lives on the IR classes)."""

from __future__ import annotations

from typing import Dict

from .data import Data
from .interstate import InterstateEdge
from .memlet import Memlet
from .nodes import (
    AccessNode,
    LibraryNode,
    NestedSDFG,
    Node,
    ScheduleType,
    Tasklet,
    make_map_scope,
)
from .sdfg import SDFG
from .state import SDFGState
from ..symbolic import Range

__all__ = ["sdfg_from_json", "state_from_json"]


def _parse_symbol_mapping(obj: Dict[str, str]) -> Dict[str, object]:
    """Parse serialized nested-SDFG symbol bindings back to expressions.

    Values were stringified on serialization; anything the expression parser
    cannot digest stays a string (the executor resolves bare names in the
    outer environment at call time).
    """
    mapping: Dict[str, object] = {}
    for name, text in obj.items():
        try:
            mapping[name] = Range.from_string(str(text)).dims[0][0]
        except Exception:
            mapping[name] = text
    return mapping


def _library_node_from_json(kind: str, node_obj: dict):
    """Reconstruct an unexpanded library node (MatMul/Outer/Reduce/...).

    The concrete classes live in :mod:`repro.library`, which imports this
    package — resolve them lazily to avoid a circular import.
    """
    import repro.library  # noqa: F401  (registers the node classes)

    cls = LibraryNode.concrete_subclasses().get(kind)
    if cls is None:
        return None
    return cls.from_json(node_obj)


def sdfg_from_json(obj: dict) -> SDFG:
    sdfg = SDFG(obj["name"])
    for name, desc_obj in obj["arrays"].items():
        sdfg.add_datadesc(name, Data.from_json(desc_obj))
    for sym in obj.get("symbols", []):
        sdfg.add_symbol(sym)
    sdfg.arg_names = list(obj.get("arg_names", []))
    states = []
    for state_obj in obj["states"]:
        state = sdfg.add_state(state_obj["label"])
        state_from_json(state, state_obj)
        states.append(state)
    start = obj.get("start_state")
    if start is not None:
        sdfg.start_state = states[start]
    for edge_obj in obj.get("edges", []):
        sdfg.add_edge(states[edge_obj["src"]], states[edge_obj["dst"]],
                      InterstateEdge.from_json(edge_obj["data"]))
    return sdfg


def state_from_json(state: SDFGState, obj: dict) -> SDFGState:
    nodes: Dict[int, Node] = {}
    pending_exits = {}
    for i, node_obj in enumerate(obj["nodes"]):
        kind = node_obj["kind"]
        if kind == "AccessNode":
            node = AccessNode(node_obj["data"])
        elif kind == "Tasklet":
            node = Tasklet(node_obj["label"], node_obj["inputs"],
                           node_obj["outputs"], node_obj["code"])
        elif kind == "MapEntry":
            entry, exit_ = make_map_scope(
                node_obj["label"], node_obj["params"],
                Range.from_string(node_obj["range"]),
                ScheduleType(node_obj.get("schedule", "Default")))
            entry.map.collapse = node_obj.get("collapse", 1)
            tile_sizes = node_obj.get("tile_sizes")
            entry.map.tile_sizes = tuple(tile_sizes) if tile_sizes else None
            pending_exits[node_obj["label"]] = (entry, exit_)
            node = entry
        elif kind == "MapExit":
            entry, exit_ = pending_exits[node_obj["label"]]
            node = exit_
        elif kind == "NestedSDFG":
            node = NestedSDFG(node_obj["label"],
                              sdfg_from_json(node_obj["sdfg"]),
                              node_obj["inputs"], node_obj["outputs"],
                              symbol_mapping=_parse_symbol_mapping(
                                  node_obj.get("symbol_mapping", {})))
        else:
            node = _library_node_from_json(kind, node_obj)
            if node is None:
                raise ValueError(
                    f"cannot deserialize node kind {kind!r} (not a known "
                    f"library node class)")
        nodes[i] = node
        state.add_node(node)
    for edge_obj in obj["edges"]:
        src = nodes[edge_obj["src"]]
        dst = nodes[edge_obj["dst"]]
        if edge_obj["src_conn"]:
            src.add_out_connector(edge_obj["src_conn"])
        if edge_obj["dst_conn"]:
            dst.add_in_connector(edge_obj["dst_conn"])
        state.add_edge(src, edge_obj["src_conn"], dst, edge_obj["dst_conn"],
                       Memlet.from_json(edge_obj["memlet"]))
    return state
